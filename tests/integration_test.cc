#include <gtest/gtest.h>

#include "core/ariadne.h"

namespace ariadne {
namespace {

std::vector<std::string> TableStrings(const QueryResult& result,
                                      const std::string& name) {
  const Relation* rel = result.Table(name);
  if (rel == nullptr) return {};
  return rel->ToSortedStrings();
}

/// Chain 0 -> 1 -> ... -> 5 with unit weights; SSSP from 0 takes 6
/// supersteps and activates exactly vertex v at superstep v (plus the
/// all-active superstep 0), giving exact expectations below.
class ChainSsspFixture : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateChain(6);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }

  Graph graph_;
};

TEST_F(ChainSsspFixture, FullCaptureContents) {
  Session session(&graph_);
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok()) << capture.status().ToString();
  ASSERT_TRUE(capture->fast_capture().has_value());

  ProvenanceStore store;
  SsspProgram sssp(0);
  auto stats = session.Capture(sssp, *capture, &store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->supersteps, 6);
  EXPECT_EQ(store.num_layers(), 6);

  // Count tuples per stored relation.
  auto count = [&](const std::string& name) {
    const int rel = store.RelId(name);
    int64_t n = 0;
    for (int s = 0; s < store.num_layers(); ++s) {
      const Layer* layer = *store.GetLayer(s);
      for (const auto& slice : layer->slices) {
        if (slice.rel == rel) n += static_cast<int64_t>(slice.tuples.size());
      }
    }
    return n;
  };
  EXPECT_EQ(count("value"), 11);            // 6 at step 0 + 1 per step 1..5
  EXPECT_EQ(count("send-message"), 5);      // vertices 0..4, one send each
  EXPECT_EQ(count("receive-message"), 5);   // vertices 1..5, one receive
  EXPECT_EQ(count("superstep"), 11);        // skeleton: active vertex-steps
  EXPECT_EQ(count("evolution"), 5);         // (v, 0, v) for v = 1..5
}

TEST_F(ChainSsspFixture, BackwardLineageFullVsCustom) {
  Session session(&graph_);

  // Full capture + Query 10.
  ProvenanceStore full;
  {
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok());
    SsspProgram sssp(0);
    ASSERT_TRUE(session.Capture(sssp, *capture, &full).ok());
  }
  QueryParams params{{"alpha", Value(int64_t{5})}, {"sigma", Value(int64_t{5})}};
  auto q10 = session.PrepareOffline(queries::BackwardLineageFull(), full,
                                    params);
  ASSERT_TRUE(q10.ok()) << q10.status().ToString();
  EXPECT_EQ(q10->direction(), Direction::kBackward);
  auto full_layered = session.RunOffline(&full, *q10, EvalMode::kLayered);
  ASSERT_TRUE(full_layered.ok()) << full_layered.status().ToString();

  // Lemma 5.3: at most n supersteps.
  EXPECT_LE(full_layered->stats.supersteps, full.num_layers());

  // The trace walks the chain back to the source.
  EXPECT_EQ(TableStrings(full_layered->result, "back-trace"),
            (std::vector<std::string>{"(0, 0)", "(1, 1)", "(2, 2)", "(3, 3)",
                                      "(4, 4)", "(5, 5)"}));
  EXPECT_EQ(TableStrings(full_layered->result, "back-lineage"),
            (std::vector<std::string>{"(0, 0)"}));

  // Naive agrees with layered.
  auto full_naive = session.RunOffline(&full, *q10, EvalMode::kNaive);
  ASSERT_TRUE(full_naive.ok());
  for (const std::string& table : {"back-trace", "back-lineage"}) {
    EXPECT_EQ(TableStrings(full_layered->result, table),
              TableStrings(full_naive->result, table));
  }

  // Custom capture (Query 11) + Query 12: identical lineage, smaller store.
  ProvenanceStore custom;
  {
    auto capture = session.PrepareOnline(queries::CaptureCustomBackward());
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    SsspProgram sssp(0);
    ASSERT_TRUE(session.Capture(sssp, *capture, &custom).ok());
  }
  EXPECT_LT(custom.TotalBytes(), full.TotalBytes());
  auto q12 = session.PrepareOffline(queries::BackwardLineageCustom(), custom,
                                    params);
  ASSERT_TRUE(q12.ok()) << q12.status().ToString();
  auto custom_layered = session.RunOffline(&custom, *q12, EvalMode::kLayered);
  ASSERT_TRUE(custom_layered.ok()) << custom_layered.status().ToString();
  EXPECT_EQ(TableStrings(custom_layered->result, "back-trace"),
            TableStrings(full_layered->result, "back-trace"));
  EXPECT_EQ(TableStrings(custom_layered->result, "back-lineage"),
            TableStrings(full_layered->result, "back-lineage"));
}

TEST_F(ChainSsspFixture, AptOnlineMatchesOfflineModes) {
  Session session(&graph_);
  QueryParams eps{{"eps", Value(0.1)}};

  // Online.
  auto apt_online = session.PrepareOnline(queries::Apt(), eps);
  ASSERT_TRUE(apt_online.ok()) << apt_online.status().ToString();
  SsspProgram sssp1(0);
  auto online = session.RunOnline(sssp1, *apt_online);
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  // Expectations: every vertex idles safely-unknown at superstep 0 (no
  // neighbor sent a large update *to* it), but none of them is safe (all
  // are unsafe at step 0 because change(x, 0) cannot hold).
  EXPECT_EQ(online->query_result.TupleCount("no-execute"), 6u);
  EXPECT_EQ(online->query_result.TupleCount("unsafe"), 6u);
  EXPECT_EQ(online->query_result.TupleCount("safe"), 0u);

  // Capture + offline layered + naive: identical tables (Theorem 5.4).
  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp2(0);
  ASSERT_TRUE(session.Capture(sssp2, *capture, &store).ok());
  auto apt_offline = session.PrepareOffline(queries::Apt(), store, eps);
  ASSERT_TRUE(apt_offline.ok()) << apt_offline.status().ToString();
  auto layered = session.RunOffline(&store, *apt_offline, EvalMode::kLayered);
  ASSERT_TRUE(layered.ok()) << layered.status().ToString();
  auto naive = session.RunOffline(&store, *apt_offline, EvalMode::kNaive);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  for (const std::string& table :
       {"change", "neighbor-change", "no-execute", "safe", "unsafe"}) {
    EXPECT_EQ(TableStrings(online->query_result, table),
              TableStrings(layered->result, table))
        << table;
    EXPECT_EQ(TableStrings(layered->result, table),
              TableStrings(naive->result, table))
        << table;
  }
}

TEST_F(ChainSsspFixture, RetentionWindowPreservesResults) {
  Session session(&graph_);
  QueryParams eps{{"eps", Value(0.1)}};
  auto apt = session.PrepareOnline(queries::Apt(), eps);
  ASSERT_TRUE(apt.ok());
  SsspProgram sssp1(0);
  auto unlimited = session.RunOnline(sssp1, *apt);
  ASSERT_TRUE(unlimited.ok());
  SsspProgram sssp2(0);
  auto windowed = session.RunOnline(sssp2, *apt, /*retention_window=*/2);
  ASSERT_TRUE(windowed.ok());
  for (const std::string& table : {"no-execute", "safe", "unsafe"}) {
    EXPECT_EQ(TableStrings(unlimited->query_result, table),
              TableStrings(windowed->query_result, table))
        << table;
  }
  EXPECT_LE(windowed->transient_bytes, unlimited->transient_bytes);
}

TEST_F(ChainSsspFixture, GenericCaptureMatchesFastPath) {
  Session session(&graph_);
  // Defeating the projection recognizer with a no-op comparison forces
  // the generic Datalog path; stored contents must be identical.
  const std::string generic_text = R"(
    value(x, v, i) <- vertex-value(x, v), superstep(x, i), i >= 0.
    send-message(x, y, m, i) <- send(x, y, m), superstep(x, i), i >= 0.
    receive-message(x, y, m, i) <- receive(x, y, m), superstep(x, i), i >= 0.
  )";
  auto fast = session.PrepareOnline(queries::CaptureFull());
  auto generic = session.PrepareOnline(generic_text);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(generic.ok()) << generic.status().ToString();
  ASSERT_TRUE(fast->fast_capture().has_value());
  ASSERT_FALSE(generic->fast_capture().has_value());

  ProvenanceStore fast_store, generic_store;
  SsspProgram sssp1(0), sssp2(0);
  ASSERT_TRUE(session.Capture(sssp1, *fast, &fast_store).ok());
  auto generic_stats = session.Capture(sssp2, *generic, &generic_store);
  ASSERT_TRUE(generic_stats.ok()) << generic_stats.status().ToString();

  ASSERT_EQ(fast_store.num_layers(), generic_store.num_layers());
  auto dump = [](ProvenanceStore& store) {
    std::vector<std::string> out;
    for (int s = 0; s < store.num_layers(); ++s) {
      const Layer* layer = *store.GetLayer(s);
      for (const auto& slice : layer->slices) {
        for (const Tuple& t : slice.tuples) {
          out.push_back(store.schema()[static_cast<size_t>(slice.rel)].name +
                        TupleToString(t));
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(dump(fast_store), dump(generic_store));
}

TEST_F(ChainSsspFixture, SpilledStoreStillAnswersQueries) {
  Session session(&graph_);
  ProvenanceStore store;
  ASSERT_TRUE(store.EnableSpill(testing::TempDir(), 64).ok());
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp(0);
  ASSERT_TRUE(session.Capture(sssp, *capture, &store).ok());
  EXPECT_GT(store.SpilledLayerCount(), 0);

  QueryParams params{{"alpha", Value(int64_t{5})}, {"sigma", Value(int64_t{5})}};
  auto q10 = session.PrepareOffline(queries::BackwardLineageFull(), store,
                                    params);
  ASSERT_TRUE(q10.ok());
  auto run = session.RunOffline(&store, *q10, EvalMode::kLayered);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(TableStrings(run->result, "back-lineage"),
            (std::vector<std::string>{"(0, 0)"}));
}

// ---------------------------------------------------------------- PageRank

TEST(IntegrationPageRank, OnlineDoesNotPerturbAnalytic) {
  auto g = GenerateRmat({.scale = 7, .avg_degree = 6, .seed = 11});
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  PageRankOptions pr_options{.iterations = 8};

  PageRankProgram baseline(pr_options);
  std::vector<double> baseline_values;
  auto baseline_stats = session.RunBaseline(baseline, &baseline_values);
  ASSERT_TRUE(baseline_stats.ok());

  auto apt = session.PrepareOnline(queries::Apt(), {{"eps", Value(0.01)}});
  ASSERT_TRUE(apt.ok());
  PageRankProgram wrapped(pr_options);
  std::vector<double> online_values;
  auto online = session.RunOnline(wrapped, *apt, /*retention_window=*/2,
                                  &online_values);
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  // Theorem 5.4 part (i): A(G) == pi_A(Online_{A,Q}(G)), bit-for-bit.
  ASSERT_EQ(baseline_values.size(), online_values.size());
  for (size_t i = 0; i < baseline_values.size(); ++i) {
    EXPECT_EQ(baseline_values[i], online_values[i]) << "vertex " << i;
  }
  // Same number of supersteps and messages.
  EXPECT_EQ(baseline_stats->supersteps, online->engine_stats.supersteps);
  EXPECT_EQ(baseline_stats->total_messages,
            online->engine_stats.total_messages);
}

TEST(IntegrationPageRank, AptOnlineEqualsOfflineOnRandomGraph) {
  auto g = GenerateRmat({.scale = 6, .avg_degree = 5, .seed = 23});
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  PageRankOptions pr_options{.iterations = 6};
  QueryParams eps{{"eps", Value(0.01)}};

  auto apt_online = session.PrepareOnline(queries::Apt(), eps);
  ASSERT_TRUE(apt_online.ok());
  PageRankProgram pr1(pr_options);
  auto online = session.RunOnline(pr1, *apt_online);
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  PageRankProgram pr2(pr_options);
  ASSERT_TRUE(session.Capture(pr2, *capture, &store).ok());

  auto apt_offline = session.PrepareOffline(queries::Apt(), store, eps);
  ASSERT_TRUE(apt_offline.ok());
  auto layered = session.RunOffline(&store, *apt_offline, EvalMode::kLayered);
  ASSERT_TRUE(layered.ok()) << layered.status().ToString();
  auto naive = session.RunOffline(&store, *apt_offline, EvalMode::kNaive);
  ASSERT_TRUE(naive.ok());

  for (const std::string& table :
       {"change", "neighbor-change", "no-execute", "safe", "unsafe"}) {
    EXPECT_EQ(TableStrings(online->query_result, table),
              TableStrings(layered->result, table))
        << table;
    EXPECT_EQ(TableStrings(layered->result, table),
              TableStrings(naive->result, table))
        << table;
  }
}

/// Sends a rogue message to vertex 0 (which has no in-edges on a chain):
/// the Giraph loophole paper Query 4 audits.
class SpoofProgram final : public VertexProgram<double, double> {
 public:
  double InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override {
    if (ctx.superstep() == 0) ctx.SendMessage(0, 1.0);
    for (double m : messages) ctx.SetValue(ctx.value() + m);
    ctx.VoteToHalt();
  }
};

TEST(IntegrationMonitoring, InDegreeCheckFlagsSpoofedMessages) {
  auto g = GenerateChain(6);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  auto query = session.PrepareOnline(queries::PageRankInDegreeCheck());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  SpoofProgram spoof;
  auto run = session.RunOnline(spoof, *query);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Vertex 0 has in-degree 0 and received 6 spoofed messages at step 1.
  EXPECT_EQ(run->query_result.TupleCount("check-failed"), 6u);
  for (const std::string& row :
       TableStrings(run->query_result, "check-failed")) {
    EXPECT_EQ(row.substr(0, 3), "(0,");
  }
}

TEST(IntegrationMonitoring, CleanSsspPassesChecks) {
  auto g = GenerateRmat({.scale = 6, .avg_degree = 6, .seed = 3});
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  for (const std::string& text :
       {queries::MonotoneUpdateCheck(), queries::NoMessageNoChangeCheck()}) {
    auto query = session.PrepareOnline(text);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    SsspProgram sssp(0);
    auto run = session.RunOnline(sssp, *query, /*retention_window=*/2);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->query_result.TupleCount("check-failed"), 0u);
    EXPECT_EQ(run->query_result.TupleCount("problem"), 0u);
  }
}

/// A corrupted min-propagation: receiving a message *increases* the value,
/// which MonotoneUpdateCheck must flag.
class BuggyIncreaseProgram final : public VertexProgram<double, double> {
 public:
  double InitialValue(VertexId, const Graph&) const override { return 0.0; }
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override {
    if (ctx.superstep() == 0) {
      ctx.SendToAllOutNeighbors(1.0);
    } else if (!messages.empty()) {
      ctx.SetValue(ctx.value() + 1.0);  // bug: value grows on receive
    }
    ctx.VoteToHalt();
  }
};

TEST(IntegrationMonitoring, MonotoneCheckCatchesBuggyAnalytic) {
  auto g = GenerateChain(5);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  auto query = session.PrepareOnline(queries::MonotoneUpdateCheck());
  ASSERT_TRUE(query.ok());
  BuggyIncreaseProgram buggy;
  auto run = session.RunOnline(buggy, *query);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Vertices 1..4 received a message at step 1 and increased their value.
  EXPECT_EQ(run->query_result.TupleCount("check-failed"), 4u);
}

// -------------------------------------------------------------------- ALS

TEST(IntegrationAls, RangeAuditFlagsCorruptRating) {
  // Tiny bipartite graph with one out-of-range rating (7.0).
  GraphBuilder builder;
  const VertexId num_users = 3;
  auto add_rating = [&](VertexId user, VertexId item, double rating) {
    builder.AddEdge(user, num_users + item, rating);
    builder.AddEdge(num_users + item, user, rating);
  };
  add_rating(0, 0, 4.0);
  add_rating(0, 1, 3.0);
  add_rating(1, 0, 2.0);
  add_rating(1, 1, 7.0);  // corrupt: outside [0, 5]
  add_rating(2, 0, 5.0);
  add_rating(2, 1, 1.0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());

  Session session(&*g);
  auto audit = session.PrepareOnline(queries::AlsRangeAudit());
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  AlsOptions als_options;
  als_options.num_features = 2;
  als_options.max_iterations = 3;
  als_options.tolerance = 0;
  AlsProgram als(als_options, num_users);
  auto run = session.RunOnline(als, *audit);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The corrupt edge produces input-failed facts at user 1 / item vertex 4.
  EXPECT_GT(run->query_result.TupleCount("input-failed"), 0u);
  for (const std::string& row :
       TableStrings(run->query_result, "input-failed")) {
    EXPECT_TRUE(row.substr(0, 3) == "(1," || row.substr(0, 3) == "(4,")
        << row;
  }
  EXPECT_GT(run->query_result.TupleCount("prov-error"), 0u);
}

TEST(IntegrationAls, ErrorIncreaseQueryRuns) {
  auto ratings = GenerateBipartiteRatings(
      {.num_users = 40, .num_items = 15, .ratings_per_user = 6});
  ASSERT_TRUE(ratings.ok());
  Session session(&ratings->graph);
  auto query = session.PrepareOnline(queries::AlsErrorIncrease(),
                                     {{"eps", Value(0.0)}});
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  AlsOptions als_options;
  als_options.max_iterations = 3;
  als_options.tolerance = 0;
  AlsProgram als(als_options, ratings->num_users);
  auto run = session.RunOnline(als, *query);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // avg-error exists for every solving vertex-superstep.
  EXPECT_GT(run->query_result.TupleCount("avg-error"), 0u);
}

// ------------------------------------------------------------- mode rules

TEST(IntegrationModes, BackwardQueryRejectedOnline) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp(0);
  ASSERT_TRUE(session.Capture(sssp, *capture, &store).ok());

  auto q10 = session.PrepareOffline(
      queries::BackwardLineageFull(), store,
      {{"alpha", Value(int64_t{3})}, {"sigma", Value(int64_t{3})}});
  ASSERT_TRUE(q10.ok());
  SsspProgram sssp2(0);
  auto run = session.RunOnline(sssp2, *q10);
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsInvalidArgument());
}

TEST(IntegrationModes, ForwardQueryAllowedEverywhereBackwardOnlyLayered) {
  auto forward = ParseProgram("p(x, i) <- receive-message(x, y, m, i).");
  ASSERT_TRUE(forward.ok());
  auto fq = Analyze(*forward, Catalog::Default(), UdfRegistry::Default());
  ASSERT_TRUE(fq.ok());
  EXPECT_TRUE(ValidateMode(*fq, EvalMode::kOnline).ok());
  EXPECT_TRUE(ValidateMode(*fq, EvalMode::kLayered).ok());
  EXPECT_TRUE(ValidateMode(*fq, EvalMode::kNaive).ok());
}

}  // namespace
}  // namespace ariadne
