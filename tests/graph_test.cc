#include <gtest/gtest.h>

#include <numeric>

#include "common/serialize.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace ariadne {
namespace {

TEST(GraphTest, FromEdgesBuildsCsrBothDirections) {
  auto g = Graph::FromEdges(4, {{0, 1, 0.5}, {0, 2, 0.25}, {2, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 4);
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_EQ(g->OutDegree(0), 2);
  EXPECT_EQ(g->OutDegree(3), 0);
  EXPECT_EQ(g->InDegree(1), 2);
  ASSERT_EQ(g->OutNeighbors(0).size(), 2u);
  EXPECT_EQ(g->OutNeighbors(0)[0], 1);
  EXPECT_EQ(g->OutNeighbors(0)[1], 2);
  EXPECT_DOUBLE_EQ(g->OutWeights(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(g->OutWeights(0)[1], 0.25);
  ASSERT_EQ(g->InNeighbors(1).size(), 2u);
  EXPECT_EQ(g->InNeighbors(1)[0], 0);
  EXPECT_EQ(g->InNeighbors(1)[1], 2);
}

TEST(GraphTest, InWeightsFollowInNeighbors) {
  auto g = Graph::FromEdges(3, {{0, 2, 0.1}, {1, 2, 0.9}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->InNeighbors(2).size(), 2u);
  EXPECT_DOUBLE_EQ(g->InWeights(2)[0], 0.1);
  EXPECT_DOUBLE_EQ(g->InWeights(2)[1], 0.9);
}

TEST(GraphTest, OutOfRangeEdgeRejected) {
  EXPECT_FALSE(Graph::FromEdges(2, {{0, 2, 1.0}}).ok());
  EXPECT_FALSE(Graph::FromEdges(2, {{-1, 0, 1.0}}).ok());
  EXPECT_FALSE(Graph::FromEdges(-1, {}).ok());
}

TEST(GraphTest, HasEdge) {
  auto g = Graph::FromEdges(3, {{0, 1, 1}, {1, 2, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(1, 0));
  EXPECT_FALSE(g->HasEdge(0, 2));
}

TEST(GraphTest, ParallelEdgesKept) {
  auto g = Graph::FromEdges(2, {{0, 1, 1}, {0, 1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(GraphBuilderTest, DedupAndSelfLoops) {
  GraphBuilder b;
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(2, 2, 1.0);
  b.DropSelfLoops();
  b.Dedup();
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->num_vertices(), 3);  // vertex 2 still exists
}

TEST(GeneratorTest, ChainCycleStarGridComplete) {
  auto chain = GenerateChain(5);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->num_edges(), 4);

  auto cycle = GenerateCycle(5);
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle->num_edges(), 5);
  EXPECT_TRUE(cycle->HasEdge(4, 0));

  auto star = GenerateStar(4);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->num_edges(), 6);
  EXPECT_EQ(star->OutDegree(0), 3);

  auto grid = GenerateGrid(3, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_vertices(), 12);
  // 2*(rows*(cols-1) + cols*(rows-1)) directed edges.
  EXPECT_EQ(grid->num_edges(), 2 * (3 * 3 + 4 * 2));

  auto complete = GenerateComplete(4);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->num_edges(), 12);
}

TEST(GeneratorTest, RmatDeterministicAndSized) {
  RmatOptions opts;
  opts.scale = 8;
  opts.avg_degree = 8;
  opts.seed = 7;
  auto a = GenerateRmat(opts);
  auto b = GenerateRmat(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_vertices(), 256);
  EXPECT_EQ(a->num_edges(), b->num_edges());
  // Dedup/self-loop removal trims some edges but most survive.
  EXPECT_GT(a->num_edges(), 256 * 8 / 2);
  // Weights within [0, 1).
  for (VertexId v = 0; v < a->num_vertices(); ++v) {
    for (double w : a->OutWeights(v)) {
      EXPECT_GE(w, 0.0);
      EXPECT_LT(w, 1.0);
    }
  }
}

TEST(GeneratorTest, RmatIsSkewed) {
  RmatOptions opts;
  opts.scale = 10;
  opts.avg_degree = 16;
  auto g = GenerateRmat(opts);
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g, 0);
  // Power-law-ish: the max degree is far above the average.
  EXPECT_GT(static_cast<double>(stats.max_out_degree), 5 * stats.avg_degree);
}

TEST(GeneratorTest, ErdosRenyi) {
  auto g = GenerateErdosRenyi(100, 500, 3, /*dedup=*/false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 100);
  EXPECT_EQ(g->num_edges(), 500);
  EXPECT_FALSE(GenerateErdosRenyi(0, 10, 1).ok());
}

TEST(GeneratorTest, BipartiteRatings) {
  BipartiteRatingsOptions opts;
  opts.num_users = 50;
  opts.num_items = 20;
  opts.ratings_per_user = 5;
  auto r = GenerateBipartiteRatings(opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->graph.num_vertices(), 70);
  // Every rating appears in both directions.
  EXPECT_EQ(r->graph.num_edges(), 2 * 50 * 5);
  for (VertexId u = 0; u < 50; ++u) {
    EXPECT_EQ(r->graph.OutDegree(u), 5);
    for (VertexId item : r->graph.OutNeighbors(u)) {
      EXPECT_GE(item, 50);
      EXPECT_TRUE(r->graph.HasEdge(item, u));
    }
    for (double rating : r->graph.OutWeights(u)) {
      EXPECT_GE(rating, 0.0);
      EXPECT_LE(rating, 5.0);
    }
  }
  EXPECT_FALSE(GenerateBipartiteRatings({.num_users = 2,
                                         .num_items = 3,
                                         .ratings_per_user = 5})
                   .ok());
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  auto g = GenerateErdosRenyi(40, 120, 11);
  ASSERT_TRUE(g.ok());
  const std::string path = testing::TempDir() + "/ariadne_graph.el";
  ASSERT_TRUE(SaveEdgeList(*g, path).ok());
  auto loaded = LoadEdgeList(path, g->num_vertices());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    ASSERT_EQ(loaded->OutDegree(v), g->OutDegree(v));
    for (size_t i = 0; i < g->OutNeighbors(v).size(); ++i) {
      EXPECT_EQ(loaded->OutNeighbors(v)[i], g->OutNeighbors(v)[i]);
    }
  }
}

TEST(GraphIoTest, EdgeListParsesCommentsAndWeights) {
  const std::string path = testing::TempDir() + "/ariadne_manual.el";
  ASSERT_TRUE(WriteFile(path, "# comment\n% other comment\n0 1 0.5\n1 2\n").ok());
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_DOUBLE_EQ(g->OutWeights(0)[0], 0.5);
  EXPECT_DOUBLE_EQ(g->OutWeights(1)[0], 1.0);  // default weight
}

TEST(GraphIoTest, EdgeListRejectsGarbage) {
  const std::string path = testing::TempDir() + "/ariadne_bad.el";
  ASSERT_TRUE(WriteFile(path, "0 x\n").ok());
  EXPECT_FALSE(LoadEdgeList(path).ok());
  ASSERT_TRUE(WriteFile(path, "-1 2\n").ok());
  EXPECT_FALSE(LoadEdgeList(path).ok());
  EXPECT_FALSE(LoadEdgeList(path + ".does-not-exist").ok());
}

TEST(GraphIoTest, BinaryRoundTrip) {
  auto g = GenerateRmat({.scale = 6, .avg_degree = 4, .seed = 5});
  ASSERT_TRUE(g.ok());
  const std::string path = testing::TempDir() + "/ariadne_graph.bin";
  ASSERT_TRUE(SaveBinary(*g, path).ok());
  auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (size_t i = 0; i < g->OutNeighbors(v).size(); ++i) {
      EXPECT_EQ(loaded->OutNeighbors(v)[i], g->OutNeighbors(v)[i]);
      EXPECT_DOUBLE_EQ(loaded->OutWeights(v)[i], g->OutWeights(v)[i]);
    }
  }
  // Corrupt magic is rejected.
  ASSERT_TRUE(WriteFile(path, "garbagegarbage").ok());
  EXPECT_FALSE(LoadBinary(path).ok());
}

TEST(GraphStatsTest, ChainDiameterAndDegrees) {
  auto g = GenerateChain(10);
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g, 4, 1);
  EXPECT_EQ(stats.num_vertices, 10);
  EXPECT_EQ(stats.num_edges, 9);
  EXPECT_EQ(stats.max_out_degree, 1);
  EXPECT_GT(stats.avg_diameter, 0.0);
  EXPECT_GT(stats.input_bytes, 0u);
}

TEST(GraphStatsTest, HighestDegreeVertex) {
  auto g = GenerateStar(8);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(HighestDegreeVertex(*g), 0);
}

}  // namespace
}  // namespace ariadne
