#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

namespace ariadne {
namespace {

// ------------------------------------------------ chunk coverage property

/// Every index in [0, n) must be visited exactly once, for pools of any
/// size and chunk sizes that divide n unevenly.
TEST(ThreadPoolTest, ChunkedForCoversEveryIndexExactlyOnce) {
  for (size_t num_threads : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
    for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
      for (size_t chunk : {size_t{1}, size_t{3}, size_t{256}, size_t{5000}}) {
        ThreadPool pool(num_threads);
        std::vector<std::atomic<int>> visits(n);
        for (auto& v : visits) v.store(0);
        pool.ParallelForChunked(n, chunk,
                                [&](size_t, size_t, size_t begin, size_t end) {
                                  for (size_t i = begin; i < end; ++i) {
                                    visits[i].fetch_add(1);
                                  }
                                });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(visits[i].load(), 1)
              << "index " << i << " with threads=" << num_threads
              << " n=" << n << " chunk=" << chunk;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkIndexMatchesBeginAndBoundariesIgnoreThreads) {
  // Chunk boundaries must be begin = chunk * chunk_size regardless of the
  // pool size (the engine's determinism depends on this).
  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    ThreadPool pool(num_threads);
    const size_t n = 103, chunk_size = 10;
    std::mutex mu;
    std::set<std::tuple<size_t, size_t, size_t>> seen;
    pool.ParallelForChunked(n, chunk_size,
                            [&](size_t, size_t chunk, size_t begin,
                                size_t end) {
                              std::lock_guard<std::mutex> lock(mu);
                              seen.insert({chunk, begin, end});
                            });
    ASSERT_EQ(seen.size(), 11u);
    for (const auto& [chunk, begin, end] : seen) {
      EXPECT_EQ(begin, chunk * chunk_size);
      EXPECT_EQ(end, std::min(begin + chunk_size, n));
    }
  }
}

// ----------------------------------------------------------- edge cases

TEST(ThreadPoolTest, ZeroNRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelForChunked(0, 16, [&](size_t, size_t, size_t, size_t) {
    calls.fetch_add(1);
  });
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  for (auto& v : visits) v.store(0);
  pool.ParallelForChunked(3, 1, [&](size_t worker, size_t, size_t begin,
                                    size_t end) {
    EXPECT_LT(worker, pool.num_workers());
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, InlineExecutionWhenSingleThreaded) {
  // num_threads <= 1 must run on the caller thread (deterministic mode).
  for (size_t num_threads : {size_t{0}, size_t{1}}) {
    ThreadPool pool(num_threads);
    EXPECT_EQ(pool.num_workers(), 1u);
    const auto caller = std::this_thread::get_id();
    bool all_inline = true;
    pool.ParallelForChunked(100, 7, [&](size_t worker, size_t, size_t,
                                        size_t) {
      if (std::this_thread::get_id() != caller || worker != 0) {
        all_inline = false;
      }
    });
    EXPECT_TRUE(all_inline);
  }
}

TEST(ThreadPoolTest, WorkerIdsWithinRange) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.num_workers(), 5u);
  std::atomic<bool> ok{true};
  pool.ParallelForChunked(1000, 1, [&](size_t worker, size_t, size_t, size_t) {
    if (worker >= pool.num_workers()) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

// -------------------------------------------------------- ParallelReduce

TEST(ThreadPoolTest, ParallelReduceSumsLikeSerial) {
  ThreadPool pool(4);
  const size_t n = 12345;
  const int64_t total = pool.ParallelReduce(
      n, size_t{100}, int64_t{0},
      [](size_t begin, size_t end) {
        int64_t s = 0;
        for (size_t i = begin; i < end; ++i) s += static_cast<int64_t>(i);
        return s;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(total, static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1) / 2);
}

TEST(ThreadPoolTest, ParallelReduceBoolOrAndEmptyIdentity) {
  ThreadPool pool(3);
  auto any_eq = [&](size_t n, size_t needle) {
    return pool.ParallelReduce(
        n, size_t{8}, false,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            if (i == needle) return true;
          }
          return false;
        },
        [](bool a, bool b) { return a || b; });
  };
  EXPECT_TRUE(any_eq(100, 57));
  EXPECT_FALSE(any_eq(100, 1000));
  EXPECT_FALSE(any_eq(0, 0));  // n == 0 returns the identity
}

// ----------------------------------------------------- legacy ParallelFor

TEST(ThreadPoolTest, LegacyParallelForStillCovers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(500);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(500, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

/// Back-to-back jobs must not interfere (the pool reuses one job slot).
TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelForChunked(64, 4, [&](size_t, size_t, size_t begin,
                                       size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += static_cast<int64_t>(i);
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
}

}  // namespace
}  // namespace ariadne
