#include <gtest/gtest.h>

#include "pql/udf.h"

namespace ariadne {
namespace {

Result<bool> CallPredicate(const char* name, std::vector<Value> args) {
  const Udf* udf = UdfRegistry::Default().Find(name);
  EXPECT_NE(udf, nullptr) << name;
  EXPECT_EQ(udf->kind, UdfKind::kPredicate) << name;
  return udf->predicate(args);
}

Result<Value> CallFunction(const char* name, std::vector<Value> args) {
  const Udf* udf = UdfRegistry::Default().Find(name);
  EXPECT_NE(udf, nullptr) << name;
  EXPECT_EQ(udf->kind, UdfKind::kFunction) << name;
  return udf->function(args);
}

TEST(UdfTest, UdfDiffScalarsAndVectors) {
  // |d1 - d2| <= eps.
  EXPECT_TRUE(*CallPredicate("udf-diff", {Value(1.0), Value(1.05), Value(0.1)}));
  EXPECT_FALSE(*CallPredicate("udf-diff", {Value(1.0), Value(1.5), Value(0.1)}));
  // Integers coerce.
  EXPECT_TRUE(*CallPredicate("udf-diff",
                             {Value(int64_t{3}), Value(int64_t{4}), Value(1.0)}));
  // Vectors compare by euclidean distance.
  EXPECT_TRUE(*CallPredicate("udf-diff", {Value(std::vector<double>{0, 0}),
                                          Value(std::vector<double>{3, 4}),
                                          Value(5.0)}));
  EXPECT_FALSE(*CallPredicate("udf-diff", {Value(std::vector<double>{0, 0}),
                                           Value(std::vector<double>{3, 4}),
                                           Value(4.9)}));
  // Mismatched vector sizes are an error (treated as no-match upstream).
  EXPECT_FALSE(CallPredicate("udf-diff", {Value(std::vector<double>{0}),
                                          Value(std::vector<double>{1, 2}),
                                          Value(1.0)})
                   .ok());
  // Complement.
  EXPECT_TRUE(*CallPredicate("udf-large-diff",
                             {Value(1.0), Value(1.5), Value(0.1)}));
}

TEST(UdfTest, Outside) {
  EXPECT_TRUE(*CallPredicate("outside", {Value(-0.1), Value(0.0), Value(5.0)}));
  EXPECT_TRUE(*CallPredicate("outside", {Value(5.1), Value(0.0), Value(5.0)}));
  EXPECT_FALSE(*CallPredicate("outside", {Value(2.5), Value(0.0), Value(5.0)}));
  EXPECT_FALSE(*CallPredicate("outside", {Value(0.0), Value(0.0), Value(5.0)}));
  EXPECT_FALSE(CallPredicate("outside", {Value("x"), Value(0.0), Value(5.0)})
                   .ok());
}

TEST(UdfTest, AbsAndEuclidean) {
  EXPECT_EQ(*CallFunction("abs", {Value(-2.5)}), Value(2.5));
  EXPECT_EQ(*CallFunction("euclidean", {Value(std::vector<double>{0, 0}),
                                        Value(std::vector<double>{3, 4})}),
            Value(5.0));
  EXPECT_FALSE(CallFunction("euclidean", {Value(1.0), Value(2.0)}).ok());
}

TEST(UdfTest, AlsHelpers) {
  // Message = features (2) + rating.
  const Value features(std::vector<double>{0.5, 2.0});
  const Value message(std::vector<double>{1.0, 0.25, 4.5});
  auto prediction = CallFunction("als-predict", {features, message});
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(*prediction, Value(0.5 * 1.0 + 2.0 * 0.25));
  EXPECT_EQ(*CallFunction("als-rating", {message}), Value(4.5));
  // Arity mismatch between features and message is an error.
  EXPECT_FALSE(
      CallFunction("als-predict",
                   {Value(std::vector<double>{1.0}), message})
          .ok());
  EXPECT_FALSE(CallFunction("als-rating", {Value(std::vector<double>{})}).ok());
}

TEST(UdfTest, CustomRegistration) {
  UdfRegistry registry;
  registry.RegisterPredicate("is-even", 1,
                             [](std::span<const Value> args) -> Result<bool> {
                               ARIADNE_ASSIGN_OR_RETURN(int64_t v,
                                                        args[0].ToInt());
                               return v % 2 == 0;
                             });
  registry.RegisterFunction("double-it", 1,
                            [](std::span<const Value> args) -> Result<Value> {
                              ARIADNE_ASSIGN_OR_RETURN(double v,
                                                       args[0].ToDouble());
                              return Value(2 * v);
                            });
  const Udf* even = registry.Find("is-even");
  ASSERT_NE(even, nullptr);
  EXPECT_EQ(even->arity, 1);
  const Udf* dbl = registry.Find("double-it");
  ASSERT_NE(dbl, nullptr);
  EXPECT_EQ(dbl->arity, 2);  // inputs + output
  EXPECT_EQ(registry.Find("missing"), nullptr);
  std::vector<Value> args{Value(int64_t{4})};
  EXPECT_TRUE(*even->predicate(args));
}

}  // namespace
}  // namespace ariadne
