#include <gtest/gtest.h>

#include "core/ariadne.h"
#include "provenance/compact_view.h"

namespace ariadne {
namespace {

/// Chain SSSP capture (see integration_test.cc for the exact event
/// schedule: vertex v updates at superstep v).
class CompactViewFixture : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateChain(6);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    Session session(&graph_);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok());
    SsspProgram sssp(0);
    ASSERT_TRUE(session.Capture(sssp, *capture, &store_).ok());
  }

  Graph graph_;
  ProvenanceStore store_;
};

TEST_F(CompactViewFixture, VerticesCoverAllActive) {
  auto view = CompactProvenance::Build(&store_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->Vertices(), (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
  EXPECT_GT(view->TotalBytes(), 0u);
}

TEST_F(CompactViewFixture, ValueHistoryPerVertex) {
  auto view = CompactProvenance::Build(&store_);
  ASSERT_TRUE(view.ok());
  // Vertex 3: MAX at superstep 0, distance 3 at superstep 3.
  auto history = view->ValueHistory(3);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].first, 0);
  EXPECT_EQ(history[0].second, Value(kInfiniteDistance));
  EXPECT_EQ(history[1].first, 3);
  EXPECT_EQ(history[1].second, Value(3.0));
  // Vertex 0: a single activation at superstep 0 with distance 0.
  auto source = view->ValueHistory(0);
  ASSERT_EQ(source.size(), 1u);
  EXPECT_EQ(source[0].second, Value(0.0));
}

TEST_F(CompactViewFixture, ActivationsAndEvolution) {
  auto view = CompactProvenance::Build(&store_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->ActiveSupersteps(4), (std::vector<Superstep>{0, 4}));
  EXPECT_EQ(view->Evolution(4),
            (std::vector<std::pair<Superstep, Superstep>>{{0, 4}}));
  EXPECT_TRUE(view->Evolution(0).empty());  // single activation
}

TEST_F(CompactViewFixture, MessageEdges) {
  auto view = CompactProvenance::Build(&store_);
  ASSERT_TRUE(view.ok());
  // Vertex 2 sends once (to 3, at superstep 2) and receives once (from 1,
  // at superstep 2).
  EXPECT_EQ(view->SentTo(2),
            (std::vector<std::pair<VertexId, Superstep>>{{3, 2}}));
  EXPECT_EQ(view->ReceivedFrom(2),
            (std::vector<std::pair<VertexId, Superstep>>{{1, 2}}));
  // The terminal vertex never sends.
  EXPECT_TRUE(view->SentTo(5).empty());
}

TEST_F(CompactViewFixture, DescribeMentionsEverySection) {
  auto view = CompactProvenance::Build(&store_);
  ASSERT_TRUE(view.ok());
  const std::string text = view->Describe(2);
  EXPECT_NE(text.find("vertex 2"), std::string::npos);
  EXPECT_NE(text.find("values:"), std::string::npos);
  EXPECT_NE(text.find("active: 0 2"), std::string::npos);
  EXPECT_NE(text.find("->3@2"), std::string::npos);
  EXPECT_NE(text.find("<-1@2"), std::string::npos);
}

TEST_F(CompactViewFixture, UnknownVertexAndRelationAreEmpty) {
  auto view = CompactProvenance::Build(&store_);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->Table(99, "value").empty());
  EXPECT_TRUE(view->Table(2, "no-such-relation").empty());
  EXPECT_TRUE(view->ValueHistory(99).empty());
}

TEST(CompactViewCustomCapture, WorksOnProvValueSchema) {
  auto g = GenerateChain(5);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureCustomBackward());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp(0);
  ASSERT_TRUE(session.Capture(sssp, *capture, &store).ok());
  auto view = CompactProvenance::Build(&store);
  ASSERT_TRUE(view.ok());
  // prov-value(x, i, d) layout is detected and normalized.
  auto history = view->ValueHistory(2);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].first, 2);
  EXPECT_EQ(history[1].second, Value(2.0));
  // prov-send(x, i) has no destination: peer is reported as -1.
  auto sent = view->SentTo(2);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].first, -1);
  EXPECT_EQ(sent[0].second, 2);
}

}  // namespace
}  // namespace ariadne
