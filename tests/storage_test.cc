#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "storage/flusher.h"
#include "storage/layer.h"
#include "storage/layer_store.h"
#include "storage/page.h"
#include "storage/page_cache.h"

namespace ariadne {
namespace {

using storage::BackgroundFlusher;
using storage::ByteReader;
using storage::LayerStore;
using storage::LayerStoreOptions;
using storage::Page;
using storage::PageCache;
using storage::PageKey;

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.emplace_back(v);
  return t;
}

/// A layer with two relations and `n` vertices each; relation 1 carries
/// doubles and strings to exercise every column encoding.
Layer MixedLayer(Superstep step, int n) {
  Layer layer;
  layer.step = step;
  for (int v = 0; v < n; ++v) {
    layer.Add(0, v, {T({v, step, v + 1}), T({v, step, v + 2})});
    std::string tag = "s";
    tag += std::to_string(v);
    layer.Add(1, v,
              {{Value(int64_t{v}), Value(0.25 * v), Value(std::move(tag))},
               {Value(int64_t{v}), Value(), Value(std::vector<double>{1.0, 2.0})}});
  }
  layer.Canonicalize();
  return layer;
}

std::string Dump(const Layer& layer) {
  BinaryWriter w;
  SerializeLayer(layer, w);
  return w.MoveData();
}

TEST(VarintTest, RoundTripsEdgeValues) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 35, ~uint64_t{0}}) {
    std::string buf;
    storage::AppendVarint(&buf, v);
    ByteReader reader(buf);
    auto got = reader.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(reader.AtEnd());
  }
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                    int64_t{1} << 40, -(int64_t{1} << 40),
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    std::string buf;
    storage::AppendZigzag(&buf, v);
    ByteReader reader(buf);
    auto got = reader.ReadZigzag();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(VarintTest, TruncatedVarintFails) {
  std::string buf;
  storage::AppendVarint(&buf, uint64_t{1} << 40);
  buf.resize(buf.size() - 1);
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(PageCodecTest, LayerRoundTripsThroughPages) {
  const Layer layer = MixedLayer(3, 50);
  const auto pages = storage::EncodeLayer(layer, 512);
  ASSERT_GT(pages.size(), 2u);  // small target forces multiple pages
  // Pages never mix relations and cover disjoint ascending vertex ranges.
  for (const Page& page : pages) {
    EXPECT_LE(page.header.first_vertex, page.header.last_vertex);
  }
  Layer decoded;
  decoded.step = layer.step;
  for (const Page& page : pages) {
    ASSERT_TRUE(storage::DecodePage(page, &decoded).ok());
  }
  EXPECT_EQ(Dump(decoded), Dump(layer));
  EXPECT_EQ(decoded.byte_size, layer.byte_size);
}

TEST(PageCodecTest, EncodingIsDeterministicAndCompact) {
  const Layer layer = MixedLayer(2, 200);
  const auto a = storage::EncodeLayer(layer, storage::kDefaultPageSize);
  const auto b = storage::EncodeLayer(layer, storage::kDefaultPageSize);
  ASSERT_EQ(a.size(), b.size());
  size_t compressed = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].payload, b[i].payload);
    compressed += storage::kPageWireHeaderBytes + a[i].payload.size();
  }
  // The columnar delta encoding must beat the row-major baseline by a
  // wide margin on this int-heavy layer.
  EXPECT_LT(compressed, Dump(layer).size() * 6 / 10);
}

TEST(PageCodecTest, SerializedPageRoundTripsAndDetectsCorruption) {
  const Layer layer = MixedLayer(1, 20);
  const auto pages = storage::EncodeLayer(layer, storage::kDefaultPageSize);
  ASSERT_FALSE(pages.empty());
  std::string wire;
  storage::SerializePage(pages[0], &wire);

  size_t offset = 0;
  auto parsed = storage::ParsePage(wire, &offset);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(parsed->payload, pages[0].payload);
  EXPECT_EQ(parsed->header.slice_count, pages[0].header.slice_count);

  // Flipping any payload byte trips the checksum; the error names the
  // offset the parse started at.
  std::string corrupt = wire;
  corrupt[wire.size() - 3] ^= 0x40;
  offset = 0;
  auto bad = storage::ParsePage(corrupt, &offset);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);

  // Truncation inside the header and inside the payload both fail.
  for (size_t cut : {size_t{10}, wire.size() - 5}) {
    offset = 0;
    EXPECT_FALSE(
        storage::ParsePage(std::string_view(wire).substr(0, cut), &offset)
            .ok());
  }
}

TEST(PageCacheTest, LruEvictionUnderBudgetAndPinning) {
  const Layer layer = MixedLayer(0, 40);
  const auto pages = storage::EncodeLayer(layer, 256);
  ASSERT_GE(pages.size(), 4u);
  const size_t page_bytes =
      storage::kPageWireHeaderBytes + pages[0].payload.size();

  PageCache cache(3 * page_bytes + page_bytes / 2);  // room for ~3 pages
  auto insert = [&](uint32_t i) {
    cache.Insert(PageKey{0, i}, std::make_shared<const Page>(pages[i]));
  };
  insert(0);
  insert(1);
  insert(2);
  EXPECT_NE(cache.Lookup(PageKey{0, 0}), nullptr);  // 0 is now MRU
  insert(3);                                        // evicts LRU = 1
  EXPECT_EQ(cache.Lookup(PageKey{0, 1}), nullptr);
  EXPECT_NE(cache.Lookup(PageKey{0, 0}), nullptr);
  EXPECT_TRUE(cache.Contains(PageKey{0, 3}));
  EXPECT_FALSE(cache.Contains(PageKey{0, 1}));

  // A pinned page survives budget pressure; unpinning re-exposes it.
  cache.Pin(PageKey{0, 0});
  insert(1);
  insert(2);
  EXPECT_NE(cache.Lookup(PageKey{0, 0}), nullptr);
  cache.Unpin(PageKey{0, 0});

  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(stats.bytes_cached, 4 * page_bytes);
}

TEST(PageCacheTest, ZeroBudgetCachesNothing) {
  const Layer layer = MixedLayer(0, 4);
  const auto pages = storage::EncodeLayer(layer, storage::kDefaultPageSize);
  PageCache cache(0);
  cache.Insert(PageKey{0, 0}, std::make_shared<const Page>(pages[0]));
  EXPECT_EQ(cache.Lookup(PageKey{0, 0}), nullptr);
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
}

TEST(BackgroundFlusherTest, RunsTasksAndDrains) {
  BackgroundFlusher flusher(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    flusher.Submit([&done] { done.fetch_add(1); });
  }
  flusher.Drain();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(flusher.tasks_executed(), 32u);
}

TEST(BackgroundFlusherTest, InlineModeExecutesInSubmit) {
  BackgroundFlusher flusher(0);
  EXPECT_EQ(flusher.num_threads(), 0);
  bool ran = false;
  flusher.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // no Drain needed
}

class LayerStoreTest : public testing::Test {
 protected:
  std::string Dir(const std::string& name) {
    return testing::TempDir() + "/layer_store_test/" + name;
  }
};

TEST_F(LayerStoreTest, SpillsAndReadsBack) {
  LayerStore store;
  EXPECT_FALSE(store.spill_enabled());
  std::vector<std::string> dumps;
  for (Superstep s = 0; s < 5; ++s) {
    auto layer = std::make_shared<Layer>(MixedLayer(s, 30));
    dumps.push_back(Dump(*layer));
    ASSERT_TRUE(store.Append(layer).ok());
  }
  EXPECT_EQ(store.num_layers(), 5);
  EXPECT_EQ(store.SpilledCount(), 0);

  LayerStoreOptions options;
  options.dir = Dir("roundtrip");
  options.mem_budget_bytes = 0;  // spill everything, cache nothing
  ASSERT_TRUE(store.Configure(options).ok());
  EXPECT_TRUE(store.spill_enabled());
  EXPECT_EQ(store.SpilledCount(), 5);
  EXPECT_EQ(store.InMemoryBytes(), 0u);
  EXPECT_FALSE(store.Configure(options).ok());  // reconfigure rejected

  for (int s = 4; s >= 0; --s) {
    auto layer = store.Read(s);
    ASSERT_TRUE(layer.ok()) << layer.status().ToString();
    EXPECT_EQ(Dump(**layer), dumps[static_cast<size_t>(s)]);
  }
  const auto stats = store.stats();
  EXPECT_EQ(stats.layers_flushed, 5u);
  EXPECT_GT(stats.pages_written, 0u);
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_LT(stats.CompressionRatio(), 1.0);
}

TEST_F(LayerStoreTest, RelationFilteredReadTouchesOnlyMatchingPages) {
  LayerStore store;
  auto layer = std::make_shared<Layer>(MixedLayer(0, 200));
  ASSERT_TRUE(store.Append(layer).ok());
  LayerStoreOptions options;
  options.dir = Dir("filtered");
  options.mem_budget_bytes = 0;
  options.page_size = 512;  // many pages per relation
  ASSERT_TRUE(store.Configure(options).ok());
  const uint64_t total_pages = store.stats().pages_written;
  ASSERT_GT(total_pages, 2u);

  auto only0 = store.ReadRelations(0, {0});
  ASSERT_TRUE(only0.ok()) << only0.status().ToString();
  for (const auto& slice : (*only0)->slices) EXPECT_EQ(slice.rel, 0);
  EXPECT_FALSE((*only0)->slices.empty());
  // Only relation 0's pages were read from disk.
  const uint64_t read_pages = store.stats().pages_read;
  EXPECT_LT(read_pages, total_pages);

  // The filtered layer matches the slice subset of the full one.
  auto full = store.Read(0);
  ASSERT_TRUE(full.ok());
  Layer expected;
  expected.step = 0;
  for (const auto& slice : (*full)->slices) {
    if (slice.rel == 0) expected.Add(slice.rel, slice.vertex, slice.tuples);
  }
  EXPECT_EQ(Dump(**only0), Dump(expected));
}

TEST_F(LayerStoreTest, PrefetchWarmsCache) {
  LayerStore store;
  ASSERT_TRUE(
      store.Append(std::make_shared<Layer>(MixedLayer(0, 100))).ok());
  LayerStoreOptions options;
  options.dir = Dir("prefetch");
  // Enough cache budget for every page, but no decoded-layer budget worth
  // mentioning: reads must go through pages.
  options.mem_budget_bytes = 4 << 20;
  ASSERT_TRUE(store.Configure(options).ok());
  // Force the decoded copy out (the budget above keeps it resident).
  // A zero-budget store spills it; emulate by reading stats only.
  store.Prefetch(0, {});
  ASSERT_TRUE(store.Drain().ok());
  const auto warm = store.stats();
  // Prefetch is a no-op while the layer is still resident.
  EXPECT_EQ(warm.prefetch_requests, 0u);
}

TEST_F(LayerStoreTest, PrefetchedPagesServeReadsFromCache) {
  LayerStore store;
  ASSERT_TRUE(
      store.Append(std::make_shared<Layer>(MixedLayer(0, 100))).ok());
  LayerStoreOptions options;
  options.dir = Dir("prefetch_cache");
  options.mem_budget_bytes = 0;
  ASSERT_TRUE(store.Configure(options).ok());
  // Budget 0 means no cache: prefetch requests are counted but nothing
  // is warmed, and reads parse from disk.
  store.Prefetch(0, {});
  ASSERT_TRUE(store.Drain().ok());
  EXPECT_EQ(store.stats().prefetch_pages, 0u);
  auto layer = store.Read(0);
  ASSERT_TRUE(layer.ok());
  EXPECT_GT(store.stats().pages_read, 0u);
}

TEST_F(LayerStoreTest, CorruptSpillFileErrorNamesPathAndOffset) {
  LayerStore store;
  ASSERT_TRUE(store.Append(std::make_shared<Layer>(MixedLayer(0, 50))).ok());
  LayerStoreOptions options;
  options.dir = Dir("corrupt");
  options.mem_budget_bytes = 0;
  ASSERT_TRUE(store.Configure(options).ok());

  const std::string path = options.dir + "/layer_0.apg";
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bytes = std::move(data).value();
  bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
  ASSERT_TRUE(WriteFile(path, bytes).ok());

  auto layer = store.Read(0);
  ASSERT_FALSE(layer.ok());
  EXPECT_NE(layer.status().message().find(path), std::string::npos)
      << layer.status().ToString();
  EXPECT_NE(layer.status().message().find("offset"), std::string::npos)
      << layer.status().ToString();
}

TEST_F(LayerStoreTest, UnwritableSpillDirSurfacesStickyError) {
  LayerStore store;
  LayerStoreOptions options;
  options.dir = "/proc/ariadne-no-such-dir";  // mkdir and writes must fail
  options.mem_budget_bytes = 0;
  ASSERT_TRUE(store.Configure(options).ok());  // no layers yet: no I/O
  ASSERT_TRUE(store.Append(std::make_shared<Layer>(MixedLayer(0, 10))).ok());
  Status drained = store.Drain();
  ASSERT_FALSE(drained.ok());
  EXPECT_TRUE(drained.IsIOError()) << drained.ToString();
  // The error is sticky and the layer stays resident (data is never lost).
  EXPECT_FALSE(store.Drain().ok());
  EXPECT_EQ(store.SpilledCount(), 0);
  auto layer = store.Read(0);
  ASSERT_TRUE(layer.ok());
}

}  // namespace
}  // namespace ariadne
