// Fuzz-ish robustness tests of the AGP1 graph spill file, mirroring
// store_corruption_test.cc for the provenance image: bit flips and
// truncations must come back as Status errors that name the file — never
// crashes, and never a silently wrong adjacency. Every frame of the file
// (header, partition fragments, directory) is covered by a Checksum64,
// so a flipped bit anywhere but the 16-byte raw footer is caught by the
// frame checksums; footer damage is caught by the magic/offset checks.
//
// The paged VertexState spill (engine/vertex_state.h) carries the same
// per-page checksums but is created, consumed, and deleted within one
// run — it is scratch, not an interchange format — so it has no
// corruption surface to test at this level: a damaged page read surfaces
// as the engine's sticky backend error at the next superstep barrier.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "common/serialize.h"
#include "graph/generators.h"
#include "graph/paged_backend.h"

namespace ariadne {
namespace {

class GraphPageCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/graph_corruption_" +
            std::to_string(::getpid()) + ".agp";
    auto g = GenerateRmat(
        {.scale = 6, .avg_degree = 6, .seed = 3, .max_weight = 2.0});
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(PagedBackend::CreateFrom(*g, path_).ok());
    auto data = ReadFile(path_);
    ASSERT_TRUE(data.ok());
    image_ = std::move(data).value();
    ASSERT_GT(image_.size(), 64u);
  }

  void TearDown() override { std::filesystem::remove(path_); }

  /// Writes `bytes` to the test path and opens with full verification
  /// (every frame re-read and checksummed, exactly what a corrupted
  /// demand fault would hit lazily).
  Result<std::unique_ptr<PagedBackend>> OpenBytes(const std::string& bytes) {
    EXPECT_TRUE(WriteFile(path_, bytes).ok());
    PagedBackendOptions options;
    options.verify_on_open = true;
    return PagedBackend::Open(path_, options);
  }

  std::string path_;
  std::string image_;
};

TEST_F(GraphPageCorruptionTest, CleanImageOpens) {
  auto opened = OpenBytes(image_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->VerifyAllPartitions().ok());
}

TEST_F(GraphPageCorruptionTest, EveryStridedBitFlipDetected) {
  // A low bit (value damage) and the high bit (sign/magnitude damage) at
  // a prime stride so every frame of the file gets hit multiple times.
  for (unsigned char flip : {0x01, 0x80}) {
    for (size_t pos = 0; pos < image_.size(); pos += 37) {
      std::string corrupted = image_;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ flip);
      auto opened = OpenBytes(corrupted);
      EXPECT_FALSE(opened.ok())
          << "undetected flip of 0x" << std::hex << int(flip) << " at byte "
          << std::dec << pos;
      if (!opened.ok()) {
        EXPECT_NE(opened.status().ToString().find(path_), std::string::npos)
            << "error does not name the file: "
            << opened.status().ToString();
      }
    }
  }
}

TEST_F(GraphPageCorruptionTest, EveryStridedTruncationDetected) {
  for (size_t keep = 0; keep < image_.size(); keep += 41) {
    auto opened = OpenBytes(image_.substr(0, keep));
    EXPECT_FALSE(opened.ok()) << "undetected truncation to " << keep
                              << " bytes";
  }
  // Off-by-one at the end: dropping just the last byte kills the footer.
  auto opened = OpenBytes(image_.substr(0, image_.size() - 1));
  EXPECT_FALSE(opened.ok());
}

TEST_F(GraphPageCorruptionTest, TrailingGarbageDetected) {
  // Appended bytes shift the footer away from end-of-file.
  auto opened = OpenBytes(image_ + std::string(13, '\x5a'));
  EXPECT_FALSE(opened.ok());
}

TEST_F(GraphPageCorruptionTest, EmptyAndTinyFilesRejected) {
  EXPECT_FALSE(OpenBytes("").ok());
  EXPECT_FALSE(OpenBytes("AGP1").ok());
  EXPECT_FALSE(OpenBytes(std::string(15, '\0')).ok());
}

}  // namespace
}  // namespace ariadne
