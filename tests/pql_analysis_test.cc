#include <gtest/gtest.h>

#include "pql/analysis.h"
#include "pql/parser.h"
#include "pql/queries.h"

namespace ariadne {
namespace {

Result<AnalyzedQuery> AnalyzeText(
    const std::string& text,
    const std::vector<std::pair<std::string, Value>>& params = {},
    const StoreSchema* store = nullptr, bool allow_transient = true) {
  auto program = ParseProgram(text);
  if (!program.ok()) return program.status();
  if (!params.empty()) {
    ARIADNE_RETURN_NOT_OK(program->BindParameters(params));
  }
  AnalyzeOptions options;
  options.allow_transient = allow_transient;
  return Analyze(*program, Catalog::Default(), UdfRegistry::Default(), store,
                 options);
}

TEST(AnalysisTest, AptQueryIsForwardAndStratified) {
  auto q = AnalyzeText(queries::Apt(), {{"eps", Value(0.01)}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kForward);
  EXPECT_TRUE(q->vc_compatible());
  EXPECT_GE(q->num_strata(), 3);
  // change is shipped to neighbors along messages.
  ASSERT_EQ(q->shipped_preds().size(), 1u);
  const auto& shipped = q->pred(q->shipped_preds()[0]);
  EXPECT_EQ(shipped.name, "change");
  EXPECT_EQ(shipped.routing, ShipRouting::kAlongMessages);
  // Outputs include the verdict tables.
  EXPECT_GE(q->PredId("safe"), 0);
  EXPECT_GE(q->PredId("unsafe"), 0);
  EXPECT_GE(q->PredId("no-execute"), 0);
}

TEST(AnalysisTest, CaptureFullIsLocalWithFastPlan) {
  auto q = AnalyzeText(queries::CaptureFull());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kLocal);
  ASSERT_TRUE(q->fast_capture().has_value());
  EXPECT_EQ(q->fast_capture()->projections.size(), 3u);
  EXPECT_EQ(q->fast_capture()->projections[0].source,
            EdbKind::kVertexValueNow);
  // value(x, v, i): x <- col 0, v <- col 1, i <- current step (-1).
  EXPECT_EQ(q->fast_capture()->projections[0].columns,
            (std::vector<int>{0, 1, -1}));
}

TEST(AnalysisTest, CaptureCustomBackwardFastPlan) {
  auto q = AnalyzeText(queries::CaptureCustomBackward());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->fast_capture().has_value());
  ASSERT_EQ(q->fast_capture()->projections.size(), 3u);
  // prov-value(x, i, d) <- value(x, d, i): cols {0, 2, 1}.
  EXPECT_EQ(q->fast_capture()->projections[0].source, EdbKind::kValue);
  EXPECT_EQ(q->fast_capture()->projections[0].columns,
            (std::vector<int>{0, 2, 1}));
  // prov-send(x, i) <- send-message(x, y, m, i): cols {0, 3}.
  EXPECT_EQ(q->fast_capture()->projections[1].source, EdbKind::kSendMessage);
  EXPECT_EQ(q->fast_capture()->projections[1].columns,
            (std::vector<int>{0, 3}));
  // prov-edges(x, y) <- edges(x, y): static projection.
  EXPECT_EQ(q->fast_capture()->projections[2].source, EdbKind::kEdge);
}

TEST(AnalysisTest, ForwardLineageIsForwardRecursiveNoFastPlan) {
  auto q = AnalyzeText(queries::CaptureForwardLineage(),
                       {{"alpha", Value(int64_t{0})}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kForward);
  EXPECT_FALSE(q->fast_capture().has_value());
  ASSERT_EQ(q->shipped_preds().size(), 1u);
  EXPECT_EQ(q->pred(q->shipped_preds()[0]).name, "fwd-lineage");
}

TEST(AnalysisTest, MonitoringQueriesAreLocal) {
  for (const std::string& text :
       {queries::PageRankInDegreeCheck(), queries::MonotoneUpdateCheck(),
        queries::NoMessageNoChangeCheck(), queries::AlsRangeAudit()}) {
    auto q = AnalyzeText(text);
    ASSERT_TRUE(q.ok()) << text << "\n" << q.status().ToString();
    EXPECT_EQ(q->direction(), Direction::kLocal) << text;
    EXPECT_TRUE(q->vc_compatible());
    EXPECT_TRUE(q->shipped_preds().empty());
  }
}

TEST(AnalysisTest, AlsErrorIncreaseAggregatesStratified) {
  auto q = AnalyzeText(queries::AlsErrorIncrease(), {{"eps", Value(0.5)}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kLocal);
  // degree and sum-error are aggregate heads; avg-error must live in a
  // strictly higher stratum than both.
  const auto& preds = q->preds();
  int degree_stratum = -1, avg_stratum = -1, sum_stratum = -1;
  for (const auto& p : preds) {
    if (p.name == "degree") degree_stratum = p.stratum;
    if (p.name == "avg-error") avg_stratum = p.stratum;
    if (p.name == "sum-error") sum_stratum = p.stratum;
  }
  EXPECT_GT(avg_stratum, degree_stratum);
  EXPECT_GT(avg_stratum, sum_stratum);
}

TEST(AnalysisTest, BackwardLineageFullIsBackward) {
  auto q = AnalyzeText(queries::BackwardLineageFull(),
                       {{"alpha", Value(int64_t{7})},
                        {"sigma", Value(int64_t{4})}});
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kBackward);
  EXPECT_TRUE(q->vc_compatible());
  ASSERT_EQ(q->shipped_preds().size(), 1u);
  EXPECT_EQ(q->pred(q->shipped_preds()[0]).name, "back-trace");
  EXPECT_EQ(q->pred(q->shipped_preds()[0]).routing,
            ShipRouting::kAlongReverseMessages);
}

TEST(AnalysisTest, BackwardLineageCustomUsesStoreSchemaAndInEdges) {
  StoreSchema schema;
  schema.relations = {{"prov-value", 3}, {"prov-send", 2}, {"prov-edges", 2}};
  auto q = AnalyzeText(queries::BackwardLineageCustom(),
                       {{"alpha", Value(int64_t{7})},
                        {"sigma", Value(int64_t{4})}},
                       &schema, /*allow_transient=*/false);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kBackward);
  ASSERT_EQ(q->shipped_preds().size(), 1u);
  EXPECT_EQ(q->pred(q->shipped_preds()[0]).routing,
            ShipRouting::kAlongInEdges);
  // Without the store schema the stored relations are unknown.
  auto missing = AnalyzeText(queries::BackwardLineageCustom(),
                             {{"alpha", Value(int64_t{7})},
                              {"sigma", Value(int64_t{4})}},
                             nullptr, /*allow_transient=*/false);
  EXPECT_FALSE(missing.ok());
}

TEST(AnalysisTest, MixedDirectionRuleIsUndirected) {
  // The paper's R1 counter-example (§5.1): both send and receive guards.
  auto q = AnalyzeText(R"(
    t(y, i) <- superstep(y, i).
    s(z, i) <- superstep(z, i).
    r1(x, i) <- t(y, j), receive-message(x, y, m, i),
                s(z, w), send-message(x, z, m, i).
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->direction(), Direction::kUndirected);
}

TEST(AnalysisTest, UnguardedRemoteIsNotVcCompatible) {
  auto q = AnalyzeText(R"(
    t(y, i) <- superstep(y, i).
    r(x, i) <- superstep(x, i), t(y, i).
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->vc_compatible());
  EXPECT_EQ(q->direction(), Direction::kUndirected);
}

TEST(AnalysisTest, UnstratifiedNegationRejected) {
  auto q = AnalyzeText(R"(
    p(x) <- superstep(x, i), !q(x).
    q(x) <- superstep(x, i), !p(x).
  )");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsAnalysisError());
}

TEST(AnalysisTest, UnsafeRulesRejected) {
  // Head variable not bound by body.
  auto q1 = AnalyzeText("p(x, z) <- superstep(x, i).");
  EXPECT_FALSE(q1.ok());
  // Negated variable never bound.
  auto q2 = AnalyzeText("p(x) <- superstep(x, i), !value(x, d, j).");
  EXPECT_FALSE(q2.ok());
}

TEST(AnalysisTest, UnknownPredicateRejected) {
  auto q = AnalyzeText("p(x) <- no-such-relation(x, y).");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("no-such-relation"), std::string::npos);
}

TEST(AnalysisTest, ArityMismatchRejected) {
  EXPECT_FALSE(AnalyzeText("p(x) <- value(x, d).").ok());
  EXPECT_FALSE(AnalyzeText("p(x) <- udf-diff(x).").ok());
  EXPECT_FALSE(AnalyzeText("p(x) <- q(x, x).\nq(x) <- superstep(x, i).").ok());
}

TEST(AnalysisTest, TransientPredicatesRejectedOffline) {
  auto q = AnalyzeText("p(x, v) <- vertex-value(x, v).", {}, nullptr,
                       /*allow_transient=*/false);
  EXPECT_FALSE(q.ok());
}

TEST(AnalysisTest, UnboundParameterRejected) {
  auto q = AnalyzeText(queries::Apt());  // $eps unbound
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("eps"), std::string::npos);
}

TEST(AnalysisTest, AggregateWithMultipleRulesRejected) {
  auto q = AnalyzeText(R"(
    d(x, COUNT(y)) <- edge(x, y).
    d(x, i) <- superstep(x, i).
  )");
  EXPECT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsUnsupported());
}

TEST(AnalysisTest, AliasesResolveToCanonicalPredicates) {
  auto q = AnalyzeText(R"(
    p(x, i) <- receive-msg(x, y, m, i).
    r(x, i) <- receive-message(x, y, m, i).
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Both aliases map to one predicate id.
  int count = 0;
  for (const auto& pred : q->preds()) {
    if (pred.edb == EdbKind::kReceiveMessage) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(AnalysisTest, DebugStringMentionsDirection) {
  auto q = AnalyzeText(queries::MonotoneUpdateCheck());
  ASSERT_TRUE(q.ok());
  EXPECT_NE(q->DebugString().find("local"), std::string::npos);
}

}  // namespace
}  // namespace ariadne
