// Property tests for the diagnostics engine: mutate known-good paper
// queries (drop a binding, flip an arity, add an unreachable cycle,
// introduce a singleton) and assert the expected diagnostic code fires —
// and that applying the mechanical fixits yields a program that parses
// and lints clean again.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pql/analysis.h"
#include "pql/catalog.h"
#include "pql/diagnostics.h"
#include "pql/lint/fix.h"
#include "pql/lint/lint.h"
#include "pql/parser.h"
#include "pql/queries.h"
#include "pql/udf.h"

namespace ariadne {
namespace {

bool HasCode(const DiagnosticSink& sink, const std::string& code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) return true;
  }
  return false;
}

int CountCode(const DiagnosticSink& sink, const std::string& code) {
  int n = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) ++n;
  }
  return n;
}

/// Full front-end pipeline over `text`: parse (recovering), bind every
/// $param to 1, analyze, lint. Returns the sink with everything in it.
DiagnosticSink Pipeline(const std::string& text) {
  DiagnosticSink sink;
  sink.SetSource("mutated.pql", text);
  Program program = ParseProgram(text, sink);
  const auto params = program.UnboundParameters();
  std::vector<std::pair<std::string, Value>> binds;
  for (const auto& p : params) binds.emplace_back(p, Value(int64_t{1}));
  if (!binds.empty()) {
    EXPECT_TRUE(program.BindParameters(binds).ok());
  }
  std::optional<AnalyzedQuery> query;
  if (!sink.has_errors()) {
    auto analyzed = Analyze(program, Catalog::Default(),
                            UdfRegistry::Default(), nullptr, {}, &sink);
    if (analyzed.ok()) query = std::move(*analyzed);
  }
  lint::LintInput input;
  input.program = &program;
  input.query = query.has_value() ? &*query : nullptr;
  input.catalog = &Catalog::Default();
  input.udfs = &UdfRegistry::Default();
  input.program_params = params;
  lint::RunLintPasses(input, {}, sink);
  sink.SortBySpan();
  return sink;
}

std::string ReplaceOnce(const std::string& text, const std::string& from,
                        const std::string& to) {
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  if (pos == std::string::npos) return text;
  std::string out = text;
  out.replace(pos, from.size(), to);
  return out;
}

/// Every paper query the repo ships, as (name, text). Baseline sanity:
/// they all pass the pipeline without errors.
std::vector<std::pair<std::string, std::string>> PaperQueries() {
  return {
      {"apt", queries::Apt()},
      {"capture_full", queries::CaptureFull()},
      {"forward_lineage", queries::CaptureForwardLineage()},
      {"pagerank_indegree", queries::PageRankInDegreeCheck()},
      {"monotone_update", queries::MonotoneUpdateCheck()},
      {"no_message_no_change", queries::NoMessageNoChangeCheck()},
      {"als_range_audit", queries::AlsRangeAudit()},
      {"als_error_increase", queries::AlsErrorIncrease()},
      {"backward_lineage_full", queries::BackwardLineageFull()},
      {"capture_custom_backward", queries::CaptureCustomBackward()},
  };
}

TEST(LintPropertyTest, PaperQueriesHaveNoErrors) {
  for (const auto& [name, text] : PaperQueries()) {
    DiagnosticSink sink = Pipeline(text);
    EXPECT_FALSE(sink.has_errors()) << name << "\n" << sink.RenderText();
  }
}

TEST(LintPropertyTest, DroppingABindingLiteralFiresRangeRestriction) {
  // Removing `j = i - 1` leaves `!change(y, j)` with j unbound: the
  // planner cannot place the negated atom.
  const std::string mutated =
      ReplaceOnce(queries::Apt(), ", j = i - 1", "");
  DiagnosticSink sink = Pipeline(mutated);
  EXPECT_TRUE(HasCode(sink, "PQL2012")) << sink.RenderText();
}

TEST(LintPropertyTest, FlippingAnArityFiresArityMismatch) {
  for (const auto& [from, to] :
       std::vector<std::pair<std::string, std::string>>{
           {"evolution(x, j, i)", "evolution(x, j, i, i)"},
           {"superstep(x, i)", "superstep(x)"}}) {
    const std::string mutated = ReplaceOnce(queries::Apt(), from, to);
    DiagnosticSink sink = Pipeline(mutated);
    EXPECT_TRUE(HasCode(sink, "PQL2006")) << from << "\n" << sink.RenderText();
  }
}

TEST(LintPropertyTest, TwoMutationsAreBothReportedInOneRun) {
  std::string mutated =
      ReplaceOnce(queries::Apt(), "evolution(x, j, i)", "evolution(x, j)");
  mutated = ReplaceOnce(mutated, "receive-msg(x, y, m, i)",
                        "receive-msg(x, y, m)");
  DiagnosticSink sink = Pipeline(mutated);
  EXPECT_EQ(CountCode(sink, "PQL2006"), 2) << sink.RenderText();
}

TEST(LintPropertyTest, AddingAnOrphanCycleFiresUnreachable) {
  for (const auto& [name, text] : PaperQueries()) {
    const std::string mutated =
        text +
        "\nlint-orphan-a(x, i) <- lint-orphan-b(x, i)."
        "\nlint-orphan-b(x, i) <- lint-orphan-a(x, i).\n";
    DiagnosticSink sink = Pipeline(mutated);
    EXPECT_EQ(CountCode(sink, "PQL3001"), 2) << name << "\n"
                                             << sink.RenderText();
  }
}

TEST(LintPropertyTest, RenamingAVariableFiresSingletonAndFixRoundTrips) {
  // Renaming the message-side variables leaves two fresh singletons.
  const std::string mutated = ReplaceOnce(
      queries::MonotoneUpdateCheck(), "receive-message(x, y, m, i)",
      "receive-message(x, y2, m2, i)");
  DiagnosticSink sink = Pipeline(mutated);
  EXPECT_GE(CountCode(sink, "PQL3002"), 2) << sink.RenderText();

  // Applying the rename fixits must produce a program that parses and no
  // longer trips the singleton pass.
  const std::string fixed = lint::ApplyFixits(mutated, sink.diagnostics());
  EXPECT_TRUE(ParseProgram(fixed).ok()) << fixed;
  DiagnosticSink relint = Pipeline(fixed);
  EXPECT_EQ(CountCode(relint, "PQL3002"), 0) << relint.RenderText();
  EXPECT_FALSE(relint.has_errors()) << relint.RenderText();
}

TEST(LintPropertyTest, RedundantComparisonFixRoundTrips) {
  const std::string mutated = ReplaceOnce(
      queries::NoMessageNoChangeCheck(), "d1 != d2", "d1 != d2, 3 >= 2");
  DiagnosticSink sink = Pipeline(mutated);
  EXPECT_TRUE(HasCode(sink, "PQL3007")) << sink.RenderText();
  const std::string fixed = lint::ApplyFixits(mutated, sink.diagnostics());
  EXPECT_EQ(fixed.find("3 >= 2"), std::string::npos) << fixed;
  EXPECT_TRUE(ParseProgram(fixed).ok()) << fixed;
  DiagnosticSink relint = Pipeline(fixed);
  EXPECT_FALSE(HasCode(relint, "PQL3007")) << relint.RenderText();
  EXPECT_FALSE(relint.has_errors()) << relint.RenderText();
}

TEST(LintPropertyTest, MutatedProgramsNeverCrashThePipeline) {
  // Deleting any single body literal from any paper query must yield
  // diagnostics (or a clean run), never a crash or an empty silent fail.
  for (const auto& [name, text] : PaperQueries()) {
    for (const std::string& target :
         {std::string("superstep(x, i)"), std::string("value(x, d1, i)"),
          std::string("edge(y, x)")}) {
      if (text.find(target) == std::string::npos) continue;
      std::string mutated = text;
      const size_t pos = mutated.find(target);
      mutated.replace(pos, target.size(), "superstep(x, i)");
      DiagnosticSink sink = Pipeline(mutated);  // must not crash
      (void)sink;
    }
  }
}

}  // namespace
}  // namespace ariadne
