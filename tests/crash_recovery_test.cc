// Crash/restart matrix (DESIGN.md §2.4): a capture run killed at every
// superstep — via the deterministic fault injector's kCrash rules, in a
// forked child so the _Exit(42) cannot take the test down — must resume
// from its last checkpoint and produce byte-identical final vertex values
// AND a byte-identical APV2 store image, at 1 and 4 engine threads.
// Also proves atomic SaveToFile: a crash mid-write never leaves a torn
// destination image.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/ariadne.h"
#include "graph/paged_backend.h"
#include "recovery/checkpoint.h"
#include "recovery/fault_injector.h"

namespace ariadne {
namespace {

struct CaptureOutput {
  RunStats stats;
  std::vector<double> values;
  std::string store_image;
};

class CrashRecoveryTest : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateGrid(8, 8);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    dir_ = testing::TempDir() + "/crash_recovery";
    std::filesystem::remove_all(dir_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  void TearDown() override {
    recovery::FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  /// One capture run of `analytic` ("pagerank" or "sssp") under the given
  /// engine thread count and checkpoint configuration.
  template <typename P>
  Result<CaptureOutput> RunCapture(P& program, size_t threads,
                                   Superstep checkpoint_every, bool resume) {
    SessionOptions options;
    options.engine.num_threads = threads;
    options.engine.checkpoint_every = checkpoint_every;
    options.engine.checkpoint_dir = checkpoint_every > 0 ? dir_ : "";
    options.engine.resume = resume;
    options.engine.checkpoint_fingerprint = "crash-recovery-test";
    Session session(run_graph_ != nullptr ? run_graph_ : &graph_, options);
    auto query = session.PrepareOnline(queries::CaptureFull());
    ARIADNE_RETURN_NOT_OK(query.status());
    ProvenanceStore store;
    CaptureOutput out;
    ARIADNE_ASSIGN_OR_RETURN(
        out.stats,
        session.Capture(program, *query, &store, /*retention_window=*/2,
                        &out.values));
    ARIADNE_ASSIGN_OR_RETURN(out.store_image, store.SerializeToString());
    return out;
  }

  /// Crash matrix for one analytic: reference run without checkpointing,
  /// then for every superstep k a forked child that crashes at k (fault
  /// point "superstep", kCrash) followed by a resumed run in the parent.
  template <typename MakeProgram>
  void RunCrashMatrix(MakeProgram make_program, size_t threads) {
    auto reference_program = make_program();
    auto reference = RunCapture(reference_program, threads, 0, false);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    const Superstep supersteps = reference->stats.supersteps;
    ASSERT_GE(supersteps, 10) << "matrix needs a 10+ superstep run";

    for (Superstep kill = 1; kill <= supersteps; ++kill) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " kill_superstep=" + std::to_string(kill));
      std::filesystem::remove(recovery::CheckpointPath(dir_));

      const pid_t pid = fork();
      ASSERT_GE(pid, 0) << "fork failed";
      if (pid == 0) {
        // Child: arm the crash and run. The _Exit(42) fires at the start
        // of superstep kill-1 (the kill-th hit of the "superstep" point).
        const std::string scenario =
            "superstep:" + std::to_string(kill) + ":crash";
        if (!recovery::FaultInjector::Global().Arm(scenario).ok()) _exit(3);
        auto program = make_program();
        auto crashed = RunCapture(program, threads, 1, false);
        // Reached only if the run finished before the crash point.
        _exit(crashed.ok() ? 7 : 4);
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus));
      ASSERT_EQ(WEXITSTATUS(wstatus), recovery::FaultInjector::kCrashExitCode)
          << "child did not crash at the injected superstep";

      auto program = make_program();
      auto resumed = RunCapture(program, threads, 1, true);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      // Killed at superstep kill-1 with a checkpoint at every barrier, the
      // run restarts exactly there (except a crash at superstep 0, which
      // precedes the first checkpoint and restarts fresh).
      EXPECT_EQ(resumed->stats.resumed_from_step, kill >= 2 ? kill - 1 : -1);
      EXPECT_EQ(resumed->stats.supersteps, supersteps);
      EXPECT_EQ(resumed->values, reference->values)
          << "resumed vertex values differ from the uninterrupted run";
      EXPECT_EQ(resumed->store_image, reference->store_image)
          << "resumed capture image differs from the uninterrupted run";
    }
  }

  Graph graph_;
  std::string dir_;
  /// When set, RunCapture iterates this backend instead of graph_ (the
  /// cross-backend kill+resume case points it at a PagedBackend over the
  /// same topology).
  const Graph* run_graph_ = nullptr;
};

TEST_F(CrashRecoveryTest, PageRankKilledAtEverySuperstepSingleThread) {
  RunCrashMatrix([] { return PageRankProgram({.iterations = 9}); }, 1);
}

TEST_F(CrashRecoveryTest, PageRankKilledAtEverySuperstepFourThreads) {
  RunCrashMatrix([] { return PageRankProgram({.iterations = 9}); }, 4);
}

TEST_F(CrashRecoveryTest, SsspKilledAtEverySuperstepSingleThread) {
  RunCrashMatrix([] { return SsspProgram(0); }, 1);
}

TEST_F(CrashRecoveryTest, SsspKilledAtEverySuperstepFourThreads) {
  RunCrashMatrix([] { return SsspProgram(0); }, 4);
}

TEST_F(CrashRecoveryTest, ResumeAcrossThreadCountsIsByteIdentical) {
  // Checkpoint written by a 1-thread run, resumed by a 4-thread run (and
  // vice versa): chunk boundaries depend only on active-set size, so the
  // outputs stay byte-identical.
  PageRankProgram reference_program({.iterations = 9});
  auto reference = RunCapture(reference_program, 1, 0, false);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (const auto [crash_threads, resume_threads] :
       {std::pair<size_t, size_t>{1, 4}, std::pair<size_t, size_t>{4, 1}}) {
    SCOPED_TRACE("crash_threads=" + std::to_string(crash_threads) +
                 " resume_threads=" + std::to_string(resume_threads));
    std::filesystem::remove(recovery::CheckpointPath(dir_));
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      if (!recovery::FaultInjector::Global().Arm("superstep:6:crash").ok()) {
        _exit(3);
      }
      PageRankProgram program({.iterations = 9});
      auto crashed = RunCapture(program, crash_threads, 1, false);
      _exit(crashed.ok() ? 7 : 4);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), recovery::FaultInjector::kCrashExitCode);

    PageRankProgram program({.iterations = 9});
    auto resumed = RunCapture(program, resume_threads, 1, true);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed->stats.resumed_from_step, 5);
    EXPECT_EQ(resumed->values, reference->values);
    EXPECT_EQ(resumed->store_image, reference->store_image);
  }
}

TEST_F(CrashRecoveryTest, PagedBackendKilledMidRunResumesByteIdentical) {
  // Cross-backend kill+resume (`ariadne_run --graph-backend paged`): both
  // the crashed run and the resumed run iterate the out-of-core topology
  // under a tight budget, and the result must still be byte-identical to
  // the uninterrupted in-memory run. Each process opens its own backend
  // (fork must never inherit a live prefetcher thread or held cache lock).
  PageRankProgram reference_program({.iterations = 9});
  auto reference = RunCapture(reference_program, 4, 0, false);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const std::string spill = dir_ + "/crash_graph.agp";
  ASSERT_TRUE(
      PagedBackend::CreateFrom(graph_, spill, /*vertices_per_partition=*/16)
          .ok());
  auto open_paged = [&]() {
    PagedBackendOptions options;
    options.budget_bytes = 1 << 12;  // tight: constant faulting + eviction
    return PagedBackend::Open(spill, options);
  };

  std::filesystem::remove(recovery::CheckpointPath(dir_));
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!recovery::FaultInjector::Global().Arm("superstep:6:crash").ok()) {
      _exit(3);
    }
    auto paged = open_paged();
    if (!paged.ok()) _exit(5);
    run_graph_ = paged->get();
    PageRankProgram program({.iterations = 9});
    auto crashed = RunCapture(program, 4, 1, false);
    _exit(crashed.ok() ? 7 : 4);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), recovery::FaultInjector::kCrashExitCode);

  auto paged = open_paged();
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  run_graph_ = paged->get();
  PageRankProgram program({.iterations = 9});
  auto resumed = RunCapture(program, 4, 1, true);
  run_graph_ = nullptr;
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->stats.resumed_from_step, 5);
  EXPECT_EQ(resumed->values, reference->values)
      << "paged resume differs from the in-memory uninterrupted run";
  EXPECT_EQ(resumed->store_image, reference->store_image);
  EXPECT_GT(resumed->stats.graph_backend.partition_faults, 0u);
  EXPECT_EQ(resumed->stats.graph_backend.gave_up, 0u);
  PagedBackend::ReleaseThreadLeases();
}

TEST_F(CrashRecoveryTest, CrashDuringSaveNeverTearsTheImage) {
  // Atomic temp+fsync+rename (satellite of DESIGN.md §2.4): kill the
  // process in the middle of SaveToFile and the destination must either
  // not exist or hold the complete previous image — never a torn one.
  ProvenanceStore store;
  const int rel = store.AddRelation("value", 2);
  for (Superstep s = 0; s < 3; ++s) {
    Layer layer;
    layer.step = s;
    for (VertexId v = 0; v < 50; ++v) {
      layer.Add(rel, v, {{Value(int64_t{v}), Value(0.25 * v + s)}});
    }
    layer.Canonicalize();
    ASSERT_TRUE(store.AppendLayer(std::move(layer)).ok());
  }
  const std::string path = dir_ + "/save_target.apv";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto pristine = ReadFile(path);
  ASSERT_TRUE(pristine.ok());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: grow the store and crash halfway through rewriting the file.
    Layer layer;
    layer.step = 3;
    for (VertexId v = 0; v < 50; ++v) {
      layer.Add(rel, v, {{Value(int64_t{v}), Value(9.75 * v)}});
    }
    layer.Canonicalize();
    if (!store.AppendLayer(std::move(layer)).ok()) _exit(5);
    if (!recovery::FaultInjector::Global().Arm("file-write-mid:1:crash").ok()) {
      _exit(3);
    }
    Status saved = store.SaveToFile(path);  // must _Exit(42) mid-write
    (void)saved;
    _exit(7);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), recovery::FaultInjector::kCrashExitCode);

  // The destination is byte-identical to the pre-crash image and loads.
  auto after = ReadFile(path);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, *pristine) << "SaveToFile tore the destination image";
  auto loaded = ProvenanceStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_layers(), 3);
}

}  // namespace
}  // namespace ariadne
