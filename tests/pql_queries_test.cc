// Golden classification of every paper query (1-12): the analyzer must
// label each exactly as the paper's theory predicts, since the labels
// gate which evaluation modes Ariadne may use (§5).

#include <gtest/gtest.h>

#include "eval/common.h"
#include "pql/analysis.h"
#include "pql/parser.h"
#include "pql/queries.h"

namespace ariadne {
namespace {

struct GoldenCase {
  std::string name;
  std::string text;
  std::vector<std::pair<std::string, Value>> params;
  Direction direction = Direction::kLocal;
  bool online_ok = true;
  bool fast_capture = false;
  std::vector<std::string> shipped;
  bool offline_context = false;
};

class PaperQueryTest : public testing::TestWithParam<GoldenCase> {};

TEST_P(PaperQueryTest, ClassifiedExactlyAsThePaperRequires) {
  const GoldenCase& c = GetParam();
  auto program = ParseProgram(c.text);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  if (!c.params.empty()) {
    ASSERT_TRUE(program->BindParameters(c.params).ok());
  }
  AnalyzeOptions options;
  options.allow_transient = !c.offline_context;
  StoreSchema schema;
  schema.relations = {{"prov-value", 3}, {"prov-send", 2}, {"prov-edges", 2},
                      {"value", 3},      {"send-message", 4},
                      {"receive-message", 4}, {"superstep", 2},
                      {"evolution", 3}};
  auto query = Analyze(*program, Catalog::Default(), UdfRegistry::Default(),
                       c.offline_context ? &schema : nullptr, options);
  ASSERT_TRUE(query.ok()) << c.name << ": " << query.status().ToString();

  EXPECT_EQ(query->direction(), c.direction) << c.name;
  EXPECT_TRUE(query->vc_compatible()) << c.name;
  EXPECT_EQ(ValidateMode(*query, EvalMode::kOnline).ok(), c.online_ok)
      << c.name;
  EXPECT_TRUE(ValidateMode(*query, EvalMode::kLayered).ok()) << c.name;
  EXPECT_TRUE(ValidateMode(*query, EvalMode::kNaive).ok()) << c.name;
  EXPECT_EQ(query->fast_capture().has_value(), c.fast_capture) << c.name;

  std::vector<std::string> shipped;
  for (int pred : query->shipped_preds()) {
    shipped.push_back(query->pred(pred).name);
  }
  EXPECT_EQ(shipped, c.shipped) << c.name;
}

std::vector<GoldenCase> PaperQueries() {
  const std::vector<std::pair<std::string, Value>> eps{{"eps", Value(0.01)}};
  const std::vector<std::pair<std::string, Value>> trace{
      {"alpha", Value(int64_t{1})}, {"sigma", Value(int64_t{3})}};
  return {
      {"q1_apt", queries::Apt(), eps, Direction::kForward, true, false,
       {"change"}, false},
      {"q2_capture_full", queries::CaptureFull(), {}, Direction::kLocal,
       true, true, {}, false},
      {"q3_capture_lineage", queries::CaptureForwardLineage(),
       {{"alpha", Value(int64_t{0})}}, Direction::kForward, true, false,
       {"fwd-lineage"}, false},
      {"q4_indegree", queries::PageRankInDegreeCheck(), {},
       Direction::kLocal, true, false, {}, false},
      {"q5_monotone", queries::MonotoneUpdateCheck(), {}, Direction::kLocal,
       true, false, {}, false},
      {"q6_no_msg_no_change", queries::NoMessageNoChangeCheck(), {},
       Direction::kLocal, true, false, {}, false},
      {"q7_als_audit", queries::AlsRangeAudit(), {}, Direction::kLocal, true,
       false, {}, false},
      {"q8_als_error", queries::AlsErrorIncrease(), eps, Direction::kLocal,
       true, false, {}, false},
      {"q10_backward_full", queries::BackwardLineageFull(), trace,
       Direction::kBackward, false, false, {"back-trace"}, true},
      {"q11_capture_custom", queries::CaptureCustomBackward(), {},
       Direction::kLocal, true, true, {}, false},
      {"q12_backward_custom", queries::BackwardLineageCustom(), trace,
       Direction::kBackward, false, false, {"back-trace"}, true},
  };
}

INSTANTIATE_TEST_SUITE_P(Paper, PaperQueryTest,
                         testing::ValuesIn(PaperQueries()),
                         [](const testing::TestParamInfo<GoldenCase>& info) {
                           return info.param.name;
                         });

TEST(PaperQueryShipRouting, ForwardShipsRideMessagesBackwardReversed) {
  auto check = [](const std::string& text,
                  const std::vector<std::pair<std::string, Value>>& params,
                  const std::string& pred, ShipRouting routing,
                  bool offline) {
    auto program = ParseProgram(text);
    ASSERT_TRUE(program.ok());
    if (!params.empty()) ASSERT_TRUE(program->BindParameters(params).ok());
    StoreSchema schema;
    schema.relations = {{"prov-value", 3}, {"prov-send", 2},
                        {"prov-edges", 2}, {"value", 3},
                        {"send-message", 4}, {"superstep", 2}};
    AnalyzeOptions options;
    options.allow_transient = !offline;
    auto query = Analyze(*program, Catalog::Default(),
                         UdfRegistry::Default(), offline ? &schema : nullptr,
                         options);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    const int id = query->PredId(pred);
    ASSERT_GE(id, 0);
    EXPECT_TRUE(query->pred(id).shipped);
    EXPECT_EQ(query->pred(id).routing, routing);
  };
  const std::vector<std::pair<std::string, Value>> trace{
      {"alpha", Value(int64_t{1})}, {"sigma", Value(int64_t{3})}};
  check(queries::Apt(), {{"eps", Value(0.01)}}, "change",
        ShipRouting::kAlongMessages, false);
  check(queries::BackwardLineageFull(), trace, "back-trace",
        ShipRouting::kAlongReverseMessages, true);
  check(queries::BackwardLineageCustom(), trace, "back-trace",
        ShipRouting::kAlongInEdges, true);
}

}  // namespace
}  // namespace ariadne
