#include <gtest/gtest.h>

#include "eval/common.h"
#include "pql/parser.h"
#include "pql/queries.h"

namespace ariadne {
namespace {

Result<AnalyzedQuery> AnalyzeText(const std::string& text) {
  auto program = ParseProgram(text);
  if (!program.ok()) return program.status();
  return Analyze(*program, Catalog::Default(), UdfRegistry::Default());
}

TEST(ValidateModeTest, ForwardLocalBackwardMatrix) {
  auto forward = AnalyzeText(
      "p(x, i) <- receive-message(x, y, m, i), q(y, j), j = i - 1.\n"
      "q(x, i) <- superstep(x, i).");
  ASSERT_TRUE(forward.ok());
  ASSERT_EQ(forward->direction(), Direction::kForward);
  EXPECT_TRUE(ValidateMode(*forward, EvalMode::kOnline).ok());
  EXPECT_TRUE(ValidateMode(*forward, EvalMode::kLayered).ok());
  EXPECT_TRUE(ValidateMode(*forward, EvalMode::kNaive).ok());

  auto backward = AnalyzeText(
      "p(x, i) <- send-message(x, y, m, i), q(y, j), j = i + 1.\n"
      "q(x, i) <- superstep(x, i).");
  ASSERT_TRUE(backward.ok());
  ASSERT_EQ(backward->direction(), Direction::kBackward);
  EXPECT_FALSE(ValidateMode(*backward, EvalMode::kOnline).ok());
  EXPECT_TRUE(ValidateMode(*backward, EvalMode::kLayered).ok());
  EXPECT_TRUE(ValidateMode(*backward, EvalMode::kNaive).ok());

  auto undirected = AnalyzeText(
      "t(y, i) <- superstep(y, i).\n"
      "r(x, i) <- superstep(x, i), t(y, i).");
  ASSERT_TRUE(undirected.ok());
  ASSERT_EQ(undirected->direction(), Direction::kUndirected);
  EXPECT_FALSE(ValidateMode(*undirected, EvalMode::kOnline).ok());
  EXPECT_FALSE(ValidateMode(*undirected, EvalMode::kLayered).ok());
  EXPECT_TRUE(ValidateMode(*undirected, EvalMode::kNaive).ok());
}

TEST(EvalModeTest, Names) {
  EXPECT_STREQ(EvalModeToString(EvalMode::kOnline), "online");
  EXPECT_STREQ(EvalModeToString(EvalMode::kLayered), "layered");
  EXPECT_STREQ(EvalModeToString(EvalMode::kNaive), "naive");
}

TEST(ShipDeltaTest, OnlySelfLocatedTuplesShip) {
  auto query = AnalyzeText(
      "p(x, i) <- receive-message(x, y, m, i), q(y, j), j = i - 1.\n"
      "q(x, i) <- superstep(x, i).");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->shipped_preds().size(), 1u);
  const int q_pred = query->shipped_preds()[0];

  NodeQueryState state;
  Database& db = state.EnsureDb(*query);
  // Local tuple (located at vertex 5) and a foreign one that arrived via
  // an earlier ship (located at vertex 9).
  db.Rel(q_pred).Insert({Value(int64_t{5}), Value(int64_t{0})});
  db.Rel(q_pred).Insert({Value(int64_t{9}), Value(int64_t{0})});

  ShipBundlePtr bundle = CollectShipDelta(*query, state, /*self=*/5);
  ASSERT_NE(bundle, nullptr);
  ASSERT_EQ(bundle->size(), 1u);
  ASSERT_EQ((*bundle)[0].second.size(), 1u);
  EXPECT_EQ((*bundle)[0].second[0][0], Value(int64_t{5}));

  // Watermark advanced: nothing new to ship.
  EXPECT_EQ(CollectShipDelta(*query, state, 5), nullptr);
  // New local tuple ships; the foreign one stays filtered forever.
  db.Rel(q_pred).Insert({Value(int64_t{5}), Value(int64_t{1})});
  bundle = CollectShipDelta(*query, state, 5);
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ((*bundle)[0].second.size(), 1u);
}

TEST(ShipDeltaTest, RoutingFilterSelectsPredicates) {
  auto query = AnalyzeText(
      "p(x, i) <- receive-message(x, y, m, i), q(y, j), j = i - 1.\n"
      "q(x, i) <- superstep(x, i).");
  ASSERT_TRUE(query.ok());
  const int q_pred = query->shipped_preds()[0];
  ASSERT_EQ(query->pred(q_pred).routing, ShipRouting::kAlongMessages);

  NodeQueryState state;
  state.EnsureDb(*query).Rel(q_pred).Insert(
      {Value(int64_t{1}), Value(int64_t{0})});
  // Wrong routing class: nothing collected, watermark untouched.
  EXPECT_EQ(CollectShipDeltaForRouting(*query, state, 1,
                                       ShipRouting::kAlongInEdges),
            nullptr);
  EXPECT_NE(CollectShipDeltaForRouting(*query, state, 1,
                                       ShipRouting::kAlongMessages),
            nullptr);
}

TEST(RetentionTest, DropsOnlySteppedEdbHistory) {
  auto program = ParseProgram(queries::Apt());
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(program->BindParameters({{"eps", Value(0.01)}}).ok());
  auto query =
      Analyze(*program, Catalog::Default(), UdfRegistry::Default());
  ASSERT_TRUE(query.ok());

  Database db(&*query);
  const int value = query->PredId("value");
  const int no_execute = query->PredId("no-execute");
  for (int64_t step = 0; step < 10; ++step) {
    db.Rel(value).Insert({Value(int64_t{1}), Value(0.5), Value(step)});
    db.Rel(no_execute).Insert({Value(int64_t{1}), Value(step)});
  }
  ApplyRetention(*query, db, /*current=*/9, /*window=*/2);
  // EDB history trimmed to steps >= 7...
  EXPECT_EQ(db.RelIfExists(value)->size(), 3u);
  // ...but IDB results (the query's output) are never dropped.
  EXPECT_EQ(db.RelIfExists(no_execute)->size(), 10u);

  // Window 0 disables retention entirely.
  ApplyRetention(*query, db, 9, 0);
  EXPECT_EQ(db.RelIfExists(value)->size(), 3u);
}

}  // namespace
}  // namespace ariadne
