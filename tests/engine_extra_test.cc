#include <gtest/gtest.h>

#include "engine/aggregators.h"
#include "analytics/sssp.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace ariadne {
namespace {

// ---------------------------------------------------- AggregatorRegistry

TEST(AggregatorRegistryTest, SumMinMaxIdentitiesAndFolds) {
  AggregatorRegistry registry;
  registry.Register("sum", AggregateOp::kSum);
  registry.Register("min", AggregateOp::kMin);
  registry.Register("max", AggregateOp::kMax);
  EXPECT_TRUE(registry.Has("sum"));
  EXPECT_FALSE(registry.Has("nope"));

  registry.Accumulate("sum", 2.0);
  registry.Accumulate("sum", 3.0);
  registry.Accumulate("min", 5.0);
  registry.Accumulate("min", -1.0);
  registry.Accumulate("max", 5.0);
  registry.Accumulate("max", 9.0);
  // Values are published only at the superstep barrier.
  EXPECT_EQ(registry.Get("sum"), 0.0);
  registry.EndSuperstep();
  EXPECT_EQ(registry.Get("sum"), 5.0);
  EXPECT_EQ(registry.Get("min"), -1.0);
  EXPECT_EQ(registry.Get("max"), 9.0);
  // Next superstep with no accumulation publishes the identities.
  registry.EndSuperstep();
  EXPECT_EQ(registry.Get("sum"), 0.0);
  EXPECT_EQ(registry.Get("min"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(registry.Get("max"), -std::numeric_limits<double>::infinity());
}

TEST(AggregatorRegistryTest, ReRegisterResetsAndResetClears) {
  AggregatorRegistry registry;
  registry.Register("a", AggregateOp::kSum);
  registry.Accumulate("a", 4.0);
  registry.Register("a", AggregateOp::kSum);  // reset
  registry.EndSuperstep();
  EXPECT_EQ(registry.Get("a"), 0.0);
  registry.Reset();
  EXPECT_FALSE(registry.Has("a"));
}

// ------------------------------------------------------------- combiners

TEST(CombinerTest, BuiltinsCombineAsDocumented) {
  MinCombiner<double> min_combiner;
  MaxCombiner<double> max_combiner;
  SumCombiner<double> sum_combiner;
  EXPECT_EQ(min_combiner.Combine(2.0, 5.0), 2.0);
  EXPECT_EQ(max_combiner.Combine(2.0, 5.0), 5.0);
  EXPECT_EQ(sum_combiner.Combine(2.0, 5.0), 7.0);
}

/// Sums all messages received over a run under a sum-combiner.
class SumAllProgram final : public VertexProgram<double, double> {
 public:
  double InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override {
    double sum = ctx.value();
    for (double m : messages) sum += m;
    ctx.SetValue(sum);
    if (ctx.superstep() == 0) ctx.SendMessage(0, 1.0);
    ctx.VoteToHalt();
  }
  const MessageCombiner<double>* combiner() const override {
    return &combiner_;
  }

 private:
  SumCombiner<double> combiner_;
};

TEST(CombinerTest, SumCombinerPreservesTotals) {
  auto g = GenerateStar(16);
  ASSERT_TRUE(g.ok());
  Engine<double, double> engine(&*g);
  SumAllProgram program;
  ASSERT_TRUE(engine.Run(program).ok());
  EXPECT_DOUBLE_EQ(engine.value(0), 16.0);  // every vertex contributed 1.0
}

// ------------------------------------------------------------ engine reuse

class PingProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    ctx.SetValue(ctx.value() + static_cast<int64_t>(messages.size()));
    if (ctx.superstep() == 0) ctx.SendToAllOutNeighbors(1);
    ctx.VoteToHalt();
  }
};

TEST(EngineReuseTest, SecondRunStartsFresh) {
  auto g = GenerateCycle(8);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  PingProgram program;
  ASSERT_TRUE(engine.Run(program).ok());
  const int64_t first = engine.value(3);
  ASSERT_TRUE(engine.Run(program).ok());
  EXPECT_EQ(engine.value(3), first);  // identical, not accumulated
}

// ------------------------------------------------- thread-count sweep

class ThreadSweepTest : public testing::TestWithParam<size_t> {};

TEST_P(ThreadSweepTest, SsspIdenticalAcrossThreadCounts) {
  auto g = GenerateRmat({.scale = 8, .avg_degree = 6, .seed = 77});
  ASSERT_TRUE(g.ok());
  Engine<double, double> reference_engine(&*g, EngineOptions{.num_threads = 1});
  SsspProgram reference(0);
  ASSERT_TRUE(reference_engine.Run(reference).ok());

  EngineOptions options;
  options.num_threads = GetParam();
  Engine<double, double> engine(&*g, options);
  SsspProgram program(0);
  ASSERT_TRUE(engine.Run(program).ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(engine.value(v), reference_engine.value(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweepTest,
                         testing::Values(size_t{2}, size_t{3}, size_t{8}));

}  // namespace
}  // namespace ariadne
