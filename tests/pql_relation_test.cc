#include <gtest/gtest.h>

#include "pql/relation.h"

namespace ariadne {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.emplace_back(v);
  return t;
}

TEST(RelationTest, InsertDedups) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_TRUE(r.Insert(T({1, 3})));
  EXPECT_FALSE(r.Insert(T({1, 2})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({2, 1})));
}

TEST(RelationTest, VersionBumpsOnChange) {
  Relation r(1);
  const uint64_t v0 = r.version();
  r.Insert(T({1}));
  EXPECT_GT(r.version(), v0);
  const uint64_t v1 = r.version();
  r.Insert(T({1}));  // duplicate: no change
  EXPECT_EQ(r.version(), v1);
}

TEST(RelationTest, ProbeFindsMatchingRows) {
  Relation r(2);
  r.Insert(T({1, 10}));
  r.Insert(T({2, 20}));
  r.Insert(T({1, 30}));
  auto& rows = r.Probe(0, Value(int64_t{1}));
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(r.Probe(0, Value(int64_t{9})).empty());
  // Index extends incrementally on later inserts.
  r.Insert(T({1, 40}));
  EXPECT_EQ(r.Probe(0, Value(int64_t{1})).size(), 3u);
  // Second-column index coexists.
  EXPECT_EQ(r.Probe(1, Value(int64_t{20})).size(), 1u);
}

TEST(RelationTest, ReplaceAllDetectsNoChange) {
  Relation r(1);
  r.Insert(T({1}));
  r.Insert(T({2}));
  const uint64_t v = r.version();
  EXPECT_FALSE(r.ReplaceAll({T({2}), T({1}), T({1})}));  // same set
  EXPECT_EQ(r.version(), v);
  EXPECT_TRUE(r.ReplaceAll({T({1}), T({3})}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({3})));
  EXPECT_FALSE(r.Contains(T({2})));
}

TEST(RelationTest, RemoveIf) {
  Relation r(2);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T({i, i * 2}));
  r.RemoveIf([](const Tuple& t) { return t[0].AsInt() < 5; });
  EXPECT_EQ(r.size(), 5u);
  EXPECT_FALSE(r.Contains(T({0, 0})));
  EXPECT_TRUE(r.Contains(T({9, 18})));
  // Probe index rebuilt correctly after removal.
  EXPECT_EQ(r.Probe(0, Value(int64_t{9})).size(), 1u);
  EXPECT_TRUE(r.Probe(0, Value(int64_t{1})).empty());
}

TEST(RelationTest, ByteSizeTracksContents) {
  Relation r(2);
  EXPECT_EQ(r.byte_size(), 0u);
  r.Insert(T({1, 2}));
  const size_t one = r.byte_size();
  EXPECT_GT(one, 0u);
  r.Insert(T({3, 4}));
  EXPECT_EQ(r.byte_size(), 2 * one);
  r.Clear();
  EXPECT_EQ(r.byte_size(), 0u);
}

TEST(RelationTest, SortedStringsDeterministic) {
  Relation r(1);
  r.Insert(T({3}));
  r.Insert(T({1}));
  r.Insert(T({2}));
  EXPECT_EQ(r.ToSortedStrings(),
            (std::vector<std::string>{"(1)", "(2)", "(3)"}));
}

TEST(RelationTest, MixedValueKindsDistinct) {
  Relation r(1);
  EXPECT_TRUE(r.Insert({Value(int64_t{1})}));
  EXPECT_TRUE(r.Insert({Value(1.0)}));  // different kind, different tuple
  EXPECT_EQ(r.size(), 2u);
}

}  // namespace
}  // namespace ariadne
