// Chaos soak (DESIGN.md §2.8): the whole capture -> serve pipeline run
// under seeded probabilistic transient faults. Asserts the three
// resilience contracts end to end:
//   1. retried runs are byte-identical to fault-free runs (a healed
//      transient never changes a result or a stored image),
//   2. exhausted-retry runs fail loudly with coherent counters (never a
//      silent wrong answer),
//   3. the server never deadlocks and never loses a promise:
//      submitted == completed + failed + expired + rejected + shed,
//      exactly, under faults, overload and shutdown races.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ariadne.h"
#include "graph/paged_backend.h"
#include "recovery/fault_injector.h"
#include "serve/server.h"
#include "storage/layer_store.h"

namespace ariadne {
namespace {

constexpr uint64_t kSoakSeed = 0xC0FFEE;
constexpr int kSoakQueries = 64;

uint64_t ResolvedResponses(const serve::ServerStats& s) {
  return s.completed + s.failed + s.expired + s.rejected + s.shed;
}

/// Canonical text form of a query result: every table, sorted.
std::string Fingerprint(const QueryResult& result) {
  std::string out;
  for (const std::string& name : result.TableNames()) {
    out += name + ":";
    for (const std::string& row : result.Table(name)->ToSortedStrings()) {
      out += row + "\n";
    }
  }
  return out;
}

class ChaosSoakTest : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateGrid(12, 12);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    dir_ = testing::TempDir() + "/chaos_soak";
    std::filesystem::remove_all(dir_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
    recovery::FaultInjector::Global().Disarm();
  }

  void TearDown() override {
    recovery::FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  /// Everything-spills store options: mem budget 1 byte, so every layer
  /// hits the flusher on capture and every serve scan rereads spill pages
  /// ("page-read" hits) instead of being answered from cache.
  storage::LayerStoreOptions SpillingOptions(const std::string& subdir) {
    storage::LayerStoreOptions options;
    options.dir = dir_ + "/" + subdir;
    options.mem_budget_bytes = 1;
    options.flush_threads = 2;
    options.io_backoff_base_ms = 0.01;  // keep the soak fast
    return options;
  }

  /// SSSP full capture into `store` (optionally over paged vertex state),
  /// returning the APV2 image.
  Result<std::string> CaptureImage(ProvenanceStore* store,
                                   const std::string& subdir,
                                   bool paged_vertex_state,
                                   RunStats* stats_out = nullptr) {
    SessionOptions options;
    options.engine.num_threads = 2;
    if (paged_vertex_state) {
      options.engine.paged_vertex_state = true;
      options.engine.vertex_state_budget_bytes = 1 << 12;
      options.engine.vertex_state_dir = dir_;
    }
    Session session(&graph_, options);
    ARIADNE_ASSIGN_OR_RETURN(AnalyzedQuery query,
                             session.PrepareOnline(queries::CaptureFull()));
    ARIADNE_RETURN_NOT_OK(store->ConfigureStorage(SpillingOptions(subdir)));
    SsspProgram sssp(0);
    ARIADNE_ASSIGN_OR_RETURN(RunStats stats,
                             session.Capture(sssp, query, store));
    if (stats_out != nullptr) *stats_out = stats;
    return store->SerializeToString();
  }

  /// Query i asks for the backward lineage of a vertex that was derived
  /// exactly at step sigma (grid distance from the SSSP source == sigma),
  /// so the trace is non-empty — an all-empty soak would prove nothing.
  serve::ServeRequest SoakRequest(int i) const {
    const int64_t sigma = 1 + (i % 11);
    const int64_t row = i % (sigma + 1);
    const int64_t alpha = row * 12 + (sigma - row);
    serve::ServeRequest request;
    request.name = "q" + std::to_string(i);
    request.text = queries::BackwardLineageFull();
    request.params = {{"alpha", Value(alpha)}, {"sigma", Value(sigma)}};
    return request;
  }

  /// Submits kSoakQueries distinct queries and collects one fingerprint
  /// per query (empty string = that query failed).
  std::vector<std::string> ServeSoak(serve::QueryServer& server,
                                     int* failures) {
    std::vector<std::future<serve::ServeResponse>> futures;
    futures.reserve(kSoakQueries);
    for (int i = 0; i < kSoakQueries; ++i) {
      futures.push_back(server.Submit(SoakRequest(i)));
    }
    std::vector<std::string> fingerprints;
    *failures = 0;
    for (auto& future : futures) {
      serve::ServeResponse response = future.get();
      if (response.ok()) {
        fingerprints.push_back(Fingerprint(response.result));
      } else {
        fingerprints.push_back("<FAILED: " + response.status.ToString() + ">");
        ++*failures;
      }
    }
    return fingerprints;
  }

  Graph graph_;
  std::string dir_;
};

TEST_F(ChaosSoakTest, CaptureUnderTransientFaultsIsByteIdentical) {
  ProvenanceStore reference;
  auto want = CaptureImage(&reference, "ref", /*paged_vertex_state=*/false);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // ~1-5% transient flakes across the whole write path, plus one
  // deterministic first-flush failure so retries > 0 is guaranteed
  // regardless of how the probabilistic draws land.
  ASSERT_TRUE(recovery::FaultInjector::Global()
                  .Arm("flusher-write:1,flusher-write@0.05,page-read@0.05,"
                       "vstate-page-read@0.01,vstate-page-write@0.01",
                       kSoakSeed)
                  .ok());
  ProvenanceStore store;
  RunStats stats;
  auto got =
      CaptureImage(&store, "soak", /*paged_vertex_state=*/true, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *want) << "faulty-but-healed capture image differs";

  const storage::StorageStats storage = store.storage_stats();
  EXPECT_GE(storage.flush_retries, 1u);
  EXPECT_EQ(storage.layers_quarantined, 0u);
  EXPECT_FALSE(storage.degraded);
  // Per-thread attribution sums back to the total (the lockstep-jitter
  // fix keeps independent counters per flush thread).
  uint64_t per_thread_sum = 0;
  for (uint64_t n : storage.flush_retries_by_thread) per_thread_sum += n;
  EXPECT_EQ(per_thread_sum, storage.flush_retries);
  EXPECT_EQ(stats.vertex_state.gave_up, 0u);
  EXPECT_FALSE(stats.capture_degraded);
}

TEST_F(ChaosSoakTest, ServeSoakHealsTransientFaultsByteIdentically) {
  // The store the server reads: spilled to disk, so scans exercise the
  // "page-read" retry ladder; the graph: paged, so adjacency walks
  // exercise "graph-partition-read".
  ProvenanceStore store;
  ASSERT_TRUE(
      CaptureImage(&store, "serve", /*paged_vertex_state=*/false).ok());
  const std::string spill = dir_ + "/soak_graph.agp";
  ASSERT_TRUE(
      PagedBackend::CreateFrom(graph_, spill, /*vertices_per_partition=*/32)
          .ok());
  PagedBackendOptions paged_options;
  paged_options.budget_bytes = 1 << 14;  // tight enough to keep faulting
  paged_options.io_retry.backoff_base_ms = 0.01;
  auto paged = PagedBackend::Open(spill, paged_options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  auto state = serve::ServiceState::Create(paged->get(), &store);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  serve::ServerOptions server_options;
  server_options.max_inflight = 8;
  server_options.step_retry_backoff_ms = 0.01;

  // Pass 1: fault-free baseline.
  std::vector<std::string> baseline;
  {
    serve::QueryServer server(state->get(), server_options);
    int failures = -1;
    baseline = ServeSoak(server, &failures);
    ASSERT_EQ(failures, 0);
    // The soak is only meaningful if the baseline actually has payloads.
    size_t non_empty = 0;
    for (const std::string& fp : baseline) non_empty += !fp.empty();
    ASSERT_GE(non_empty, static_cast<size_t>(kSoakQueries) / 2);
    const serve::ServerStats stats = server.stats();
    ASSERT_EQ(stats.submitted, static_cast<uint64_t>(kSoakQueries));
    ASSERT_EQ(ResolvedResponses(stats), stats.submitted);
  }

  // Pass 2: the same 64 queries under seeded ~1-2% transient faults on
  // every serve-path injection point, plus one deterministic first-scan
  // failure (retries > 0 must hold however the seeded draws land).
  ASSERT_TRUE(recovery::FaultInjector::Global()
                  .Arm("serve-scan:1,serve-scan@0.02,page-read@0.02,"
                       "graph-partition-read@0.01",
                       kSoakSeed)
                  .ok());
  serve::QueryServer server(state->get(), server_options);
  int failures = -1;
  const std::vector<std::string> soaked = ServeSoak(server, &failures);
  recovery::FaultInjector::Global().Disarm();

  // Zero crashes, zero failures, byte-identical results per query.
  EXPECT_EQ(failures, 0);
  ASSERT_EQ(soaked.size(), baseline.size());
  for (size_t i = 0; i < soaked.size(); ++i) {
    EXPECT_EQ(soaked[i], baseline[i])
        << "query " << i << " result changed under healed faults";
  }

  // Retried, never gave up, and the promise accounting is exact.
  const serve::ServerStats stats = server.stats();
  const storage::StorageStats storage = store.storage_stats();
  EXPECT_GE(stats.step_retries + storage.read_retries, 1u);
  EXPECT_EQ(stats.scan_failures, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kSoakQueries));
  EXPECT_EQ(ResolvedResponses(stats), stats.submitted);
  const GraphBackendStats graph_stats = (*paged)->backend_stats();
  EXPECT_EQ(graph_stats.gave_up, 0u);
  EXPECT_TRUE((*paged)->backend_error().ok());
  PagedBackend::ReleaseThreadLeases();
}

TEST_F(ChaosSoakTest, PermanentFaultsFailLoudlyWithCoherentCounters) {
  ProvenanceStore store;
  ASSERT_TRUE(
      CaptureImage(&store, "perm", /*paged_vertex_state=*/false).ok());
  auto state = serve::ServiceState::Create(&graph_, &store);
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  // Every scan fails, forever: retries exhaust, queries fail with the
  // real error, the breaker trips and the rest shed — nothing silent,
  // nothing lost.
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("serve-scan:1+").ok());
  serve::ServerOptions options;
  options.step_retry_backoff_ms = 0.01;
  options.breaker_threshold = 3;
  options.breaker_cooldown_ms = 10'000.0;  // stays open for the whole test
  serve::QueryServer server(state->get(), options);
  // Submit sequentially so each query runs its own (failing) scan — a
  // single batch would coalesce into one wave and produce one scan
  // failure total, never reaching the trip threshold.
  int failed = 0, shed = 0;
  for (int i = 0; i < 16; ++i) {
    serve::ServeResponse response =
        server.Submit(SoakRequest(i)).get();  // must never hang
    ASSERT_FALSE(response.ok()) << response.name;
    if (response.status.IsUnavailable()) {
      ++shed;
    } else {
      ++failed;
    }
  }
  EXPECT_EQ(failed + shed, 16);
  EXPECT_GE(failed, 1) << "at least the pre-trip queries surface the error";
  EXPECT_GE(shed, 1) << "post-trip queries bounce with Unavailable";

  const serve::ServerStats stats = server.stats();
  EXPECT_GE(stats.scan_failures, 1u);
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GE(stats.step_retries, 1u);  // the ladder ran before exhausting
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(ResolvedResponses(stats), stats.submitted);
  EXPECT_EQ(server.health().breaker, serve::BreakerState::kOpen);
}

TEST_F(ChaosSoakTest, ShutdownUnderFaultsNeverLosesAPromise) {
  ProvenanceStore store;
  ASSERT_TRUE(
      CaptureImage(&store, "race", /*paged_vertex_state=*/false).ok());
  auto state = serve::ServiceState::Create(&graph_, &store);
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  ASSERT_TRUE(recovery::FaultInjector::Global()
                  .Arm("serve-scan@0.05,page-read@0.05", kSoakSeed)
                  .ok());
  for (int round = 0; round < 4; ++round) {
    serve::ServerOptions options;
    options.step_retry_backoff_ms = 0.01;
    auto server =
        std::make_unique<serve::QueryServer>(state->get(), options);
    std::vector<std::future<serve::ServeResponse>> futures;
    std::mutex futures_mu;
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < 8; ++i) {
          auto future = server->Submit(SoakRequest(t * 8 + i));
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(future));
        }
      });
    }
    server->Shutdown(/*drain_timeout_ms=*/round % 2 == 0 ? -1.0 : 1.0);
    for (auto& thread : submitters) thread.join();
    for (auto& future : futures) (void)future.get();  // must never hang
    const serve::ServerStats stats = server->stats();
    EXPECT_EQ(stats.submitted, 32u);
    EXPECT_EQ(ResolvedResponses(stats), stats.submitted)
        << "round " << round << " lost a promise";
  }
}

}  // namespace
}  // namespace ariadne
