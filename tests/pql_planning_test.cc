// Join-planning determinism (DESIGN.md §2.3): cost-ordered literal plans
// and cardinality-driven probe columns are pure performance devices — for
// every query and every evaluation mode the derived tables must be
// byte-identical with planning on and off. Also regression-covers
// recursive rules whose head relation grows (and rehashes its indexes)
// while a probe over that same relation is being walked.

#include <gtest/gtest.h>

#include "core/ariadne.h"

namespace ariadne {
namespace {

Value I(int64_t v) { return Value(v); }

AnalyzedQuery MustAnalyze(const std::string& text, const StoreSchema* store,
                          bool plan_joins) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  AnalyzeOptions options;
  options.plan_joins = plan_joins;
  auto q = Analyze(*program, Catalog::Default(), UdfRegistry::Default(),
                   store, options);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

/// Every table of `result`, dumped as sorted "name(row)" strings.
std::vector<std::string> DumpResult(const QueryResult& result) {
  std::vector<std::string> out;
  for (const std::string& name : result.TableNames()) {
    const Relation* rel = result.Table(name);
    if (rel == nullptr) continue;
    for (const std::string& row : rel->ToSortedStrings()) {
      out.push_back(name + row);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> DumpDatabase(const AnalyzedQuery& q, Database& db) {
  QueryResult result;
  result.Merge(q, db);
  return DumpResult(result);
}

// ------------------------------------------------------- direct evaluator

/// A 200-link chain closed in ONE Evaluate call: the recursive rule's
/// probe walks a bucket of the head relation while Derive() keeps growing
/// (and re-indexing) that same relation. The candidate list must be
/// snapshotted per plan position, or iteration invalidates mid-walk.
TEST(PlanningRegression, RecursiveHeadGrowsDuringProbe) {
  for (bool plan : {true, false}) {
    StoreSchema schema{{{"link", 2}}};
    AnalyzedQuery q = MustAnalyze(R"(
      reach(x, y) <- link(x, y).
      reach(x, z) <- reach(x, y), link(y, z).
    )",
                                  &schema, plan);
    Database db(&q);
    EvalContext ctx;
    ctx.db = &db;
    RuleEvaluator eval(&q);
    const int64_t n = 200;
    for (int64_t i = 0; i < n; ++i) {
      db.Rel(q.PredId("link")).Insert({I(i), I(i + 1)});
    }
    ASSERT_TRUE(eval.Evaluate(ctx).ok());
    // Closure of a chain of n+1 nodes: (n+1 choose 2) pairs.
    EXPECT_EQ(db.RelIfExists(q.PredId("reach"))->size(),
              static_cast<size_t>((n + 1) * n / 2))
        << "plan=" << plan;
    EXPECT_TRUE(db.RelIfExists(q.PredId("reach"))->Contains({I(0), I(n)}));
  }
}

/// Non-linear recursion: BOTH body literals probe the head relation, so
/// two plan positions iterate buckets of the relation being inserted
/// into. Guards against any shared/member snapshot buffer being clobbered
/// by the inner position while the outer one is mid-iteration.
TEST(PlanningRegression, NonLinearRecursionBothLiteralsProbeHead) {
  for (bool plan : {true, false}) {
    StoreSchema schema{{{"link", 2}}};
    AnalyzedQuery q = MustAnalyze(R"(
      path(x, y) <- link(x, y).
      path(x, z) <- path(x, y), path(y, z).
    )",
                                  &schema, plan);
    Database db(&q);
    EvalContext ctx;
    ctx.db = &db;
    RuleEvaluator eval(&q);
    const int64_t n = 60;
    for (int64_t i = 0; i < n; ++i) {
      db.Rel(q.PredId("link")).Insert({I(i), I(i + 1)});
    }
    ASSERT_TRUE(eval.Evaluate(ctx).ok());
    EXPECT_EQ(db.RelIfExists(q.PredId("path"))->size(),
              static_cast<size_t>((n + 1) * n / 2))
        << "plan=" << plan;
  }
}

/// Multi-literal joins over skewed relations: the planned probe picks a
/// different (smaller) bucket than the legacy first-evaluable column, and
/// the fixpoints must still agree byte for byte.
TEST(PlanningDeterminism, SkewedJoinPlannedMatchesUnplanned) {
  const std::string text = R"(
    reach(s, x) <- src(s, x).
    reach(s, y) <- reach(s, x), label(x, c), hop(c, x, y).
  )";
  StoreSchema schema{{{"src", 2}, {"label", 2}, {"hop", 3}}};
  std::vector<std::string> dumps[2];
  int di = 0;
  for (bool plan : {true, false}) {
    AnalyzedQuery q = MustAnalyze(text, &schema, plan);
    Database db(&q);
    EvalContext ctx;
    ctx.db = &db;
    RuleEvaluator eval(&q);
    // 40 vertices, 2 labels, fan-out 6: the hop bucket keyed on the label
    // column is ~20x the bucket keyed on the source vertex.
    const int64_t n = 40, labels = 2, fanout = 6;
    db.Rel(q.PredId("src")).Insert({I(0), I(0)});
    for (int64_t x = 0; x < n; ++x) {
      db.Rel(q.PredId("label")).Insert({I(x), I(x % labels)});
      for (int64_t k = 1; k <= fanout; ++k) {
        db.Rel(q.PredId("hop")).Insert({I(x % labels), I(x),
                                        I((x + k) % n)});
      }
    }
    ASSERT_TRUE(eval.Evaluate(ctx).ok());
    dumps[di++] = DumpDatabase(q, db);
  }
  ASSERT_FALSE(dumps[0].empty());
  EXPECT_EQ(dumps[0], dumps[1]);
}

// --------------------------------------------------------- session modes

class PlanningModesFixture : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateChain(6);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }

  Session MakeSession(bool plan) {
    SessionOptions options;
    options.plan_joins = plan;
    return Session(&graph_, options);
  }

  Graph graph_;
};

/// Every paper query runnable online: plan on/off byte-identical tables.
TEST_F(PlanningModesFixture, OnlinePlanOnOffByteIdentical) {
  struct Case {
    const char* name;
    std::string text;
    QueryParams params;
  };
  const std::vector<Case> cases = {
      {"apt", queries::Apt(), {{"eps", Value(0.1)}}},
      {"q4", queries::PageRankInDegreeCheck(), {}},
      {"q5", queries::MonotoneUpdateCheck(), {}},
      {"q6", queries::NoMessageNoChangeCheck(), {}},
  };
  for (const Case& c : cases) {
    std::vector<std::string> dumps[2];
    int di = 0;
    for (bool plan : {true, false}) {
      Session session = MakeSession(plan);
      auto query = session.PrepareOnline(c.text, c.params);
      ASSERT_TRUE(query.ok()) << c.name << ": " << query.status().ToString();
      SsspProgram sssp(0);
      auto run = session.RunOnline(sssp, *query, /*retention_window=*/2);
      ASSERT_TRUE(run.ok()) << c.name << ": " << run.status().ToString();
      dumps[di++] = DumpResult(run->query_result);
    }
    EXPECT_EQ(dumps[0], dumps[1]) << c.name;
  }
}

/// Offline layered and naive: plan on/off byte-identical tables, for both
/// a forward query (apt) and a backward one (query 10).
TEST_F(PlanningModesFixture, OfflinePlanOnOffByteIdentical) {
  // Capture once (the fast-capture path does not involve the planner).
  ProvenanceStore store;
  {
    Session session = MakeSession(true);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok());
    SsspProgram sssp(0);
    ASSERT_TRUE(session.Capture(sssp, *capture, &store).ok());
  }
  struct Case {
    const char* name;
    std::string text;
    QueryParams params;
  };
  const std::vector<Case> cases = {
      {"apt", queries::Apt(), {{"eps", Value(0.1)}}},
      {"q10",
       queries::BackwardLineageFull(),
       {{"alpha", Value(int64_t{5})}, {"sigma", Value(int64_t{5})}}},
  };
  for (const Case& c : cases) {
    for (EvalMode mode : {EvalMode::kLayered, EvalMode::kNaive}) {
      std::vector<std::string> dumps[2];
      int di = 0;
      for (bool plan : {true, false}) {
        Session session = MakeSession(plan);
        auto query = session.PrepareOffline(c.text, store, c.params);
        ASSERT_TRUE(query.ok()) << c.name << ": "
                                << query.status().ToString();
        auto run = session.RunOffline(&store, *query, mode);
        ASSERT_TRUE(run.ok()) << c.name << ": " << run.status().ToString();
        dumps[di++] = DumpResult(run->result);
      }
      ASSERT_FALSE(dumps[0].empty()) << c.name;
      EXPECT_EQ(dumps[0], dumps[1])
          << c.name << " mode=" << EvalModeToString(mode);
    }
  }
}

/// The per-rule profile is populated and consistent: recursive closure
/// must report evaluations, probes, derivations and a readable summary.
TEST_F(PlanningModesFixture, EvalStatsReportRuleActivity) {
  Session session = MakeSession(true);
  auto query = session.PrepareOnline(queries::Apt(), {{"eps", Value(0.1)}});
  ASSERT_TRUE(query.ok());
  SsspProgram sssp(0);
  auto run = session.RunOnline(sssp, *query, /*retention_window=*/2);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const RuleEvalStats total = run->eval_stats.Total();
  EXPECT_GT(total.evaluations, 0u);
  EXPECT_GT(total.derived, 0u);
  EXPECT_EQ(run->eval_stats.rules.size(), query->rules().size());
  const std::string summary = run->eval_stats.Summary(*query);
  EXPECT_FALSE(summary.empty());
  EXPECT_NE(summary.find("derived="), std::string::npos);

  // Offline runs carry the same counters.
  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp2(0);
  ASSERT_TRUE(session.Capture(sssp2, *capture, &store).ok());
  auto offline = session.PrepareOffline(queries::Apt(), store,
                                        {{"eps", Value(0.1)}});
  ASSERT_TRUE(offline.ok());
  auto layered = session.RunOffline(&store, *offline, EvalMode::kLayered);
  ASSERT_TRUE(layered.ok());
  EXPECT_GT(layered->stats.eval.Total().evaluations, 0u);
  auto naive = session.RunOffline(&store, *offline, EvalMode::kNaive);
  ASSERT_TRUE(naive.ok());
  EXPECT_GT(naive->stats.eval.Total().evaluations, 0u);
}

}  // namespace
}  // namespace ariadne
