#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/value.h"

namespace ariadne {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::IOError("disk gone").WithContext("loading graph");
  EXPECT_EQ(s.ToString(), "IOError: loading graph: disk gone");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  ARIADNE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.ValueOr(42), 42);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoubleIt(5), 10);
  EXPECT_FALSE(DoubleIt(0).ok());
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  Value vec(std::vector<double>{1, 2});
  EXPECT_EQ(vec.AsDoubleVector().size(), 2u);
}

TEST(ValueTest, StrictEqualityDistinguishesKinds) {
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_EQ(Value(1.5), Value(1.5));
}

TEST(ValueTest, NumericCompareCoerces) {
  EXPECT_EQ(*Value(int64_t{1}).NumericCompare(Value(1.0)), 0);
  EXPECT_EQ(*Value(int64_t{1}).NumericCompare(Value(2.0)), -1);
  EXPECT_EQ(*Value(3.0).NumericCompare(Value(int64_t{2})), 1);
  EXPECT_EQ(*Value("a").NumericCompare(Value("b")), -1);
  EXPECT_FALSE(Value("a").NumericCompare(Value(1.0)).ok());
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(*Value(int64_t{2}).Add(Value(int64_t{3})), Value(int64_t{5}));
  EXPECT_EQ(*Value(int64_t{2}).Mul(Value(int64_t{3})), Value(int64_t{6}));
  EXPECT_EQ(*Value(int64_t{7}).Sub(Value(int64_t{2})), Value(int64_t{5}));
  // Division always yields double.
  EXPECT_EQ(*Value(int64_t{6}).Div(Value(int64_t{3})), Value(2.0));
  EXPECT_EQ(*Value(1.5).Add(Value(int64_t{1})), Value(2.5));
  EXPECT_FALSE(Value(1.0).Div(Value(0.0)).ok());
  EXPECT_FALSE(Value("x").Add(Value(1.0)).ok());
}

TEST(ValueTest, VectorArithmetic) {
  Value a(std::vector<double>{1, 2});
  Value b(std::vector<double>{0.5, 1});
  EXPECT_EQ(*a.Sub(b), Value(std::vector<double>{0.5, 1.0}));
  EXPECT_FALSE(a.Add(Value(std::vector<double>{1})).ok());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, TotalOrderIsDeterministic) {
  std::vector<Value> vs = {Value("z"), Value(1.0), Value(int64_t{5}), Value()};
  std::sort(vs.begin(), vs.end());
  EXPECT_TRUE(vs[0].is_null());
  EXPECT_TRUE(vs[1].is_int());
  EXPECT_TRUE(vs[2].is_double());
  EXPECT_TRUE(vs[3].is_string());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(std::vector<double>{1, 2}).ToString(), "[1,2]");
}

// ---------------------------------------------------------------- Serialize

TEST(SerializeTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(1234567);
  w.WriteI64(-99);
  w.WriteDouble(3.25);
  w.WriteString("hello");
  BinaryReader r(w.MoveData());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 1234567u);
  EXPECT_EQ(*r.ReadI64(), -99);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.25);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, ValuesRoundTrip) {
  std::vector<Value> values = {Value(), Value(int64_t{-5}), Value(2.75),
                               Value("str"),
                               Value(std::vector<double>{1.5, -2.5})};
  BinaryWriter w;
  for (const auto& v : values) w.WriteValue(v);
  BinaryReader r(w.MoveData());
  for (const auto& v : values) {
    auto got = r.ReadValue();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedReadFails) {
  BinaryWriter w;
  w.WriteU8(1);
  BinaryReader r(w.MoveData());
  EXPECT_TRUE(r.ReadU8().ok());
  EXPECT_FALSE(r.ReadI64().ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ariadne_serialize_test.bin";
  ASSERT_TRUE(WriteFile(path, "payload\x00\x01"
                              "x")
                  .ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::string("payload\x00\x01"
                               "x"));
  EXPECT_FALSE(ReadFile(path + ".missing").ok());
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DoubleInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RandomTest, ZipfSkewsTowardsHead) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.2);
  int head = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // The head 10% of items should receive well over 10% of samples.
  EXPECT_GT(head, trials / 4);
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ',', /*skip_empty=*/false),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Trim("  hi\t\n"), "hi");
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024 * 1024), "5.00 GB");
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, InlineModeRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelModeCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace ariadne
