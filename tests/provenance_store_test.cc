#include <gtest/gtest.h>

#include "provenance/store.h"

namespace ariadne {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.emplace_back(v);
  return t;
}

Layer MakeLayer(Superstep step, int rel, VertexId vertex, int n_tuples) {
  Layer layer;
  layer.step = step;
  std::vector<Tuple> tuples;
  for (int i = 0; i < n_tuples; ++i) {
    tuples.push_back(T({vertex, step, i}));
  }
  layer.Add(rel, vertex, std::move(tuples));
  return layer;
}

TEST(ProvenanceStoreTest, SchemaIsIdempotent) {
  ProvenanceStore store;
  const int a = store.AddRelation("value", 3);
  const int b = store.AddRelation("value", 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.RelId("value"), a);
  EXPECT_EQ(store.RelId("nope"), -1);
  const auto schema = store.ToStoreSchema();
  ASSERT_NE(schema.Find("value"), nullptr);
  EXPECT_EQ(schema.Find("value")->arity, 3);
}

TEST(ProvenanceStoreTest, LayersAppendInOrder) {
  ProvenanceStore store;
  const int rel = store.AddRelation("value", 3);
  ASSERT_TRUE(store.AppendLayer(MakeLayer(0, rel, 1, 2)).ok());
  ASSERT_TRUE(store.AppendLayer(MakeLayer(1, rel, 1, 3)).ok());
  EXPECT_FALSE(store.AppendLayer(MakeLayer(5, rel, 1, 1)).ok());
  EXPECT_EQ(store.num_layers(), 2);
  EXPECT_EQ(store.TotalTuples(), 5);
  EXPECT_GT(store.TotalBytes(), 0u);
  auto layer = store.GetLayer(1);
  ASSERT_TRUE(layer.ok());
  EXPECT_EQ((*layer)->step, 1);
  EXPECT_FALSE(store.GetLayer(7).ok());
}

TEST(ProvenanceStoreTest, EmptyTupleSetsAreNotStored) {
  Layer layer;
  layer.Add(0, 3, {});
  EXPECT_TRUE(layer.slices.empty());
  EXPECT_EQ(layer.byte_size, 0u);
}

TEST(ProvenanceStoreTest, LayerSerializationRoundTrip) {
  Layer layer = MakeLayer(4, 2, 9, 5);
  layer.Add(1, 10, {{Value(int64_t{10}), Value(0.5)},
                    {Value(int64_t{10}), Value("txt")}});
  BinaryWriter writer;
  SerializeLayer(layer, writer);
  BinaryReader reader(writer.MoveData());
  auto loaded = DeserializeLayer(reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->step, 4);
  ASSERT_EQ(loaded->slices.size(), 2u);
  EXPECT_EQ(loaded->byte_size, layer.byte_size);
  EXPECT_EQ(loaded->slices[1].tuples[1][1], Value("txt"));
}

TEST(ProvenanceStoreTest, SpillAndReload) {
  ProvenanceStore store;
  const int rel = store.AddRelation("value", 3);
  for (Superstep s = 0; s < 6; ++s) {
    ASSERT_TRUE(store.AppendLayer(MakeLayer(s, rel, s, 50)).ok());
  }
  const size_t total = store.TotalBytes();
  // Budget forces most layers out.
  ASSERT_TRUE(store.EnableSpill(testing::TempDir(), total / 4).ok());
  EXPECT_GT(store.SpilledLayerCount(), 0);
  EXPECT_LT(store.InMemoryBytes(), total);
  EXPECT_EQ(store.TotalBytes(), total);  // logical size unchanged
  // Reload a spilled layer; contents identical.
  auto layer = store.GetLayer(0);
  ASSERT_TRUE(layer.ok()) << layer.status().ToString();
  ASSERT_EQ((*layer)->slices.size(), 1u);
  EXPECT_EQ((*layer)->slices[0].tuples.size(), 50u);
  EXPECT_EQ((*layer)->slices[0].vertex, 0);
}

TEST(ProvenanceStoreTest, SpillDuringAppend) {
  ProvenanceStore store;
  const int rel = store.AddRelation("value", 3);
  ASSERT_TRUE(store.EnableSpill(testing::TempDir(), 1).ok());  // tiny budget
  for (Superstep s = 0; s < 4; ++s) {
    ASSERT_TRUE(store.AppendLayer(MakeLayer(s, rel, s, 20)).ok());
  }
  // Appends write behind; quiesce before asserting spill state.
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_GE(store.SpilledLayerCount(), 3);
  for (int s = 0; s < 4; ++s) {
    auto layer = store.GetLayer(s);
    ASSERT_TRUE(layer.ok());
    EXPECT_EQ((*layer)->slices[0].tuples.size(), 20u);
  }
}

TEST(ProvenanceStoreTest, SaveLoadFileRoundTrip) {
  ProvenanceStore store;
  const int rel = store.AddRelation("value", 3);
  store.static_layer().Add(store.AddRelation("prov-edges", 2), 0,
                           {{Value(int64_t{0}), Value(int64_t{1})}});
  ASSERT_TRUE(store.AppendLayer(MakeLayer(0, rel, 7, 3)).ok());
  const std::string path = testing::TempDir() + "/ariadne_store.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = ProvenanceStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_layers(), 1);
  EXPECT_EQ(loaded->RelId("prov-edges"), store.RelId("prov-edges"));
  EXPECT_EQ(loaded->TotalBytes(), store.TotalBytes());
  EXPECT_EQ(loaded->static_data().slices.size(), 1u);
  EXPECT_FALSE(ProvenanceStore::LoadFromFile(path + ".missing").ok());
}

TEST(ProvenanceStoreTest, LoadsLegacyApv1Image) {
  // Hand-write the legacy row-major image format and check the current
  // loader still accepts it.
  Layer layer = MakeLayer(0, 0, 7, 3);
  Layer empty_static;
  BinaryWriter writer;
  writer.WriteU32(0x41505631);  // "APV1"
  writer.WriteU64(1);           // one relation
  writer.WriteString("value");
  writer.WriteU32(3);
  SerializeLayer(empty_static, writer);
  writer.WriteU64(1);  // one layer
  SerializeLayer(layer, writer);
  const std::string path = testing::TempDir() + "/ariadne_store_v1.bin";
  ASSERT_TRUE(WriteFile(path, writer.data()).ok());

  auto loaded = ProvenanceStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_layers(), 1);
  EXPECT_EQ(loaded->RelId("value"), 0);
  auto got = loaded->GetLayer(0);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ((*got)->slices.size(), 1u);
  EXPECT_EQ((*got)->slices[0].tuples.size(), 3u);
  EXPECT_EQ((*got)->byte_size, layer.byte_size);

  // A reserialized legacy store becomes a (smaller or equal) V2 image
  // with identical contents.
  const std::string path2 = testing::TempDir() + "/ariadne_store_v2.bin";
  ASSERT_TRUE(loaded->SaveToFile(path2).ok());
  auto reloaded = ProvenanceStore::LoadFromFile(path2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->TotalBytes(), loaded->TotalBytes());
  EXPECT_EQ(reloaded->TotalTuples(), loaded->TotalTuples());
}

}  // namespace
}  // namespace ariadne
