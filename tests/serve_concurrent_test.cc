// Concurrency correctness of the serve subsystem (DESIGN.md §2.6): many
// layered evaluations over ONE shared store — raw concurrent RunOffline
// calls and batched QueryServer runs alike — must produce results (and
// evaluation statistics) identical to sequential one-shot evaluation.
// This test runs under tsan in CI: the shared read path (LayerStore,
// PageCache, shared LayerViews, precomputed adjacency) must be race-free.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "common/serialize.h"
#include "core/ariadne.h"
#include "serve/server.h"

namespace ariadne {
namespace {

std::vector<std::string> TableStrings(const QueryResult& result,
                                      const std::string& name) {
  const Relation* rel = result.Table(name);
  if (rel == nullptr) return {};
  return rel->ToSortedStrings();
}

uint64_t TotalDerived(const OfflineEvalStats& stats) {
  return stats.eval.Total().derived;
}

/// Grid SSSP capture with a tight spill budget, so concurrent readers
/// really hit the page cache and decode path, not just resident layers.
class ServeConcurrentTest : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateGrid(8, 8);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    std::error_code ec;
    std::filesystem::create_directories(SpillDir(), ec);
    ASSERT_FALSE(ec) << ec.message();

    Session session(&graph_);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    storage::LayerStoreOptions storage_options;
    storage_options.dir = SpillDir();
    storage_options.mem_budget_bytes = 16 << 10;  // force spill + decode
    storage_options.flush_threads = 1;
    ASSERT_TRUE(store_.ConfigureStorage(std::move(storage_options)).ok());
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *capture, &store_);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_GT(store_.SpilledLayerCount(), 0);
  }

  static std::string SpillDir() {
    return testing::TempDir() + "/serve_concurrent_spill";
  }

  /// The mixed workload: backward lineage (several roots), apt, forward
  /// lineage — the serve bench's query classes.
  struct Workload {
    std::string text;
    QueryParams params;
  };

  std::vector<Workload> MixedWorkload() const {
    std::string forward = *ReadFile(std::string(ARIADNE_SOURCE_DIR) +
                                    "/examples/pql/forward_lineage.pql");
    std::vector<Workload> workload;
    for (int64_t alpha : {9, 18, 27, 36}) {
      workload.push_back({queries::BackwardLineageFull(),
                          {{"alpha", Value(alpha)}, {"sigma", Value(int64_t{5})}}});
    }
    workload.push_back({queries::Apt(), {{"eps", Value(0.1)}}});
    workload.push_back({queries::Apt(), {{"eps", Value(0.5)}}});
    workload.push_back({forward, {{"alpha", Value(int64_t{0})}}});
    workload.push_back({forward, {{"alpha", Value(int64_t{9})}}});
    return workload;
  }

  Graph graph_;
  ProvenanceStore store_;
};

/// >= 8 raw concurrent layered evaluations over the shared store match
/// the sequential one-shot runs table-for-table and counter-for-counter.
TEST_F(ServeConcurrentTest, ConcurrentRunOfflineMatchesSequential) {
  Session session(&graph_);
  const std::vector<Workload> workload = MixedWorkload();
  ASSERT_GE(workload.size(), 8u);

  std::vector<Result<AnalyzedQuery>> queries;
  for (const Workload& w : workload) {
    queries.push_back(session.PrepareOffline(w.text, store_, w.params));
    ASSERT_TRUE(queries.back().ok()) << queries.back().status().ToString();
  }

  // Sequential reference, one-shot per query.
  std::vector<Result<OfflineRun>> reference;
  for (const auto& q : queries) {
    reference.push_back(session.RunOffline(&store_, *q, EvalMode::kLayered));
    ASSERT_TRUE(reference.back().ok())
        << reference.back().status().ToString();
  }

  // The same queries, all at once, one thread each.
  std::vector<Result<OfflineRun>> concurrent;
  concurrent.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    concurrent.emplace_back(Status::Internal("unset"));
  }
  {
    std::vector<std::thread> threads;
    threads.reserve(workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      threads.emplace_back([&, i] {
        concurrent[i] =
            session.RunOffline(&store_, *queries[i], EvalMode::kLayered);
      });
    }
    for (auto& t : threads) t.join();
  }

  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(concurrent[i].ok()) << concurrent[i].status().ToString();
    EXPECT_EQ(concurrent[i]->stats.result_tuples,
              reference[i]->stats.result_tuples);
    EXPECT_EQ(TotalDerived(concurrent[i]->stats),
              TotalDerived(reference[i]->stats));
    EXPECT_EQ(concurrent[i]->stats.eval.Total().evaluations,
              reference[i]->stats.eval.Total().evaluations);
    for (const std::string& table : reference[i]->result.TableNames()) {
      EXPECT_EQ(TableStrings(concurrent[i]->result, table),
                TableStrings(reference[i]->result, table))
          << "query " << i << " table " << table;
    }
  }
}

/// The batched server (shared scans, shared adjacency, parallel group
/// stepping) returns exactly the one-shot results for every query.
TEST_F(ServeConcurrentTest, ServerBatchMatchesOneShot) {
  Session session(&graph_);
  const std::vector<Workload> workload = MixedWorkload();

  std::vector<Result<OfflineRun>> reference;
  for (const Workload& w : workload) {
    auto q = session.PrepareOffline(w.text, store_, w.params);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    reference.push_back(session.RunOffline(&store_, *q, EvalMode::kLayered));
    ASSERT_TRUE(reference.back().ok())
        << reference.back().status().ToString();
  }

  auto state = serve::ServiceState::Create(&graph_, &store_);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  serve::ServerOptions options;
  options.max_inflight = workload.size();
  options.step_threads = 4;
  serve::QueryServer server(state->get(), options);

  std::vector<std::future<serve::ServeResponse>> futures;
  for (size_t i = 0; i < workload.size(); ++i) {
    serve::ServeRequest request;
    request.name = "q" + std::to_string(i);
    request.text = workload[i].text;
    request.params = workload[i].params;
    futures.push_back(server.Submit(std::move(request)));
  }

  for (size_t i = 0; i < workload.size(); ++i) {
    serve::ServeResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(response.stats.result_tuples,
              reference[i]->stats.result_tuples);
    EXPECT_EQ(response.stats.supersteps, reference[i]->stats.supersteps);
    EXPECT_EQ(TotalDerived(response.stats), TotalDerived(reference[i]->stats));
    EXPECT_EQ(response.stats.eval.Total().evaluations,
              reference[i]->stats.eval.Total().evaluations);
    for (const std::string& table : reference[i]->result.TableNames()) {
      EXPECT_EQ(TableStrings(response.result, table),
                TableStrings(reference[i]->result, table))
          << "query " << i << " table " << table;
    }
  }

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, workload.size());
  EXPECT_EQ(stats.failed, 0u);
  // Sharing must actually have happened: fewer scans than query-steps.
  EXPECT_GT(stats.query_steps, 0u);
  EXPECT_LT(stats.scan.scans, stats.query_steps);
  EXPECT_GT(stats.scan.shared_hits, 0u);
}

/// Repeated server batches (warm shared caches) stay correct — the
/// LayerView LRU and page cache serve later rounds.
TEST_F(ServeConcurrentTest, RepeatedBatchesStayCorrect) {
  Session session(&graph_);
  QueryParams params{{"alpha", Value(int64_t{18})},
                     {"sigma", Value(int64_t{5})}};
  auto q = session.PrepareOffline(queries::BackwardLineageFull(), store_,
                                  params);
  ASSERT_TRUE(q.ok());
  auto reference = session.RunOffline(&store_, *q, EvalMode::kLayered);
  ASSERT_TRUE(reference.ok());

  auto state = serve::ServiceState::Create(&graph_, &store_);
  ASSERT_TRUE(state.ok());
  serve::ServerOptions options;
  options.max_inflight = 4;
  options.step_threads = 2;
  serve::QueryServer server(state->get(), options);

  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<serve::ServeResponse>> futures;
    for (int i = 0; i < 6; ++i) {
      serve::ServeRequest request;
      request.name = "r" + std::to_string(round) + "q" + std::to_string(i);
      request.text = queries::BackwardLineageFull();
      request.params = params;
      futures.push_back(server.Submit(std::move(request)));
    }
    for (auto& future : futures) {
      serve::ServeResponse response = future.get();
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      EXPECT_EQ(TableStrings(response.result, "back-trace"),
                TableStrings(reference->result, "back-trace"));
      EXPECT_EQ(TableStrings(response.result, "back-lineage"),
                TableStrings(reference->result, "back-lineage"));
    }
  }
}

}  // namespace
}  // namespace ariadne
