// Bit-flip and truncation fuzz over checkpoint files (DESIGN.md §2.4):
// every corrupted stride must surface as a parse error naming the file
// and offset — never a crash, a hang, or a silent wrong resume. A
// missing checkpoint is the one benign case (fresh start); a fingerprint
// mismatch is a loud error.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/ariadne.h"
#include "recovery/checkpoint.h"

namespace ariadne {
namespace {

class CheckpointCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateGrid(4, 4);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    dir_ = testing::TempDir() + "/checkpoint_corruption";
    std::filesystem::remove_all(dir_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();

    // Produce a real checkpoint: with checkpoint_every=1 the file left on
    // disk after the run is the last barrier's checkpoint.
    auto finished = RunCapture(/*resume=*/false, "checkpoint-fuzz");
    ASSERT_TRUE(finished.ok()) << finished.status().ToString();
    reference_ = std::move(finished).value();
    path_ = recovery::CheckpointPath(dir_);
    auto bytes = ReadFile(path_);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    image_ = std::move(bytes).value();
    ASSERT_GT(image_.size(), 64u);
    segments_path_ = recovery::SegmentsPath(dir_);
    auto segment_bytes = ReadFile(segments_path_);
    ASSERT_TRUE(segment_bytes.ok()) << segment_bytes.status().ToString();
    segments_ = std::move(segment_bytes).value();
    ASSERT_GT(segments_.size(), 64u);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  struct Output {
    RunStats stats;
    std::vector<double> values;
  };

  Result<Output> RunCapture(bool resume, const std::string& fingerprint) {
    SessionOptions options;
    options.engine.checkpoint_every = 1;
    options.engine.checkpoint_dir = dir_;
    options.engine.resume = resume;
    options.engine.checkpoint_fingerprint = fingerprint;
    Session session(&graph_, options);
    ARIADNE_ASSIGN_OR_RETURN(AnalyzedQuery query,
                             session.PrepareOnline(queries::CaptureFull()));
    ProvenanceStore store;
    PageRankProgram pagerank({.iterations = 6});
    Output out;
    ARIADNE_ASSIGN_OR_RETURN(
        out.stats, session.Capture(pagerank, query, &store,
                                   /*retention_window=*/2, &out.values));
    return out;
  }

  /// Writes `bytes` as the checkpoint file and attempts a resumed run.
  Result<Output> ResumeFrom(const std::string& bytes) {
    EXPECT_TRUE(WriteFile(path_, bytes).ok());
    return RunCapture(/*resume=*/true, "checkpoint-fuzz");
  }

  Graph graph_;
  std::string dir_;
  std::string path_;
  std::string image_;
  std::string segments_path_;
  std::string segments_;
  Output reference_;
};

TEST_F(CheckpointCorruptionTest, PristineCheckpointResumes) {
  auto resumed = ResumeFrom(image_);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GE(resumed->stats.resumed_from_step, 1);
  EXPECT_EQ(resumed->values, reference_.values);
}

TEST_F(CheckpointCorruptionTest, EveryBitFlipIsRejectedNamingTheFile) {
  const size_t stride = std::max<size_t>(1, image_.size() / 97);
  int flips = 0;
  for (size_t pos = 0; pos < image_.size(); pos += stride) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupt = image_;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ bit);
      auto resumed = ResumeFrom(corrupt);
      EXPECT_FALSE(resumed.ok())
          << "bit flip at byte " << pos << " resumed silently";
      if (!resumed.ok()) {
        // The error names the checkpoint file and a location in it.
        EXPECT_NE(resumed.status().message().find("checkpoint.bin"),
                  std::string::npos)
            << resumed.status().ToString();
        EXPECT_NE(resumed.status().message().find("offset"),
                  std::string::npos)
            << resumed.status().ToString();
      }
      ++flips;
    }
  }
  EXPECT_GE(flips, 100);
}

TEST_F(CheckpointCorruptionTest, EveryTruncationIsRejected) {
  const size_t stride = std::max<size_t>(1, image_.size() / 61);
  for (size_t cut = 0; cut < image_.size(); cut += stride) {
    auto resumed = ResumeFrom(image_.substr(0, cut));
    EXPECT_FALSE(resumed.ok())
        << "truncation to " << cut << " bytes resumed silently";
    if (!resumed.ok()) {
      EXPECT_NE(resumed.status().message().find("checkpoint.bin"),
                std::string::npos)
          << resumed.status().ToString();
    }
  }
}

TEST_F(CheckpointCorruptionTest, EverySegmentBitFlipIsRejected) {
  // The layer data lives in the store-segments.bin sidecar; every segment
  // is checksummed, so a flip anywhere in the referenced prefix must be a
  // loud error naming the sidecar — never a silent wrong resume.
  EXPECT_TRUE(WriteFile(path_, image_).ok());
  const size_t stride = std::max<size_t>(1, segments_.size() / 97);
  int flips = 0;
  for (size_t pos = 0; pos < segments_.size(); pos += stride) {
    std::string corrupt = segments_;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    EXPECT_TRUE(WriteFile(segments_path_, corrupt).ok());
    auto resumed = RunCapture(/*resume=*/true, "checkpoint-fuzz");
    EXPECT_FALSE(resumed.ok())
        << "segment bit flip at byte " << pos << " resumed silently";
    if (!resumed.ok()) {
      EXPECT_NE(resumed.status().message().find("store-segments.bin"),
                std::string::npos)
          << resumed.status().ToString();
    }
    ++flips;
  }
  EXPECT_GE(flips, 50);
  EXPECT_TRUE(WriteFile(segments_path_, segments_).ok());
}

TEST_F(CheckpointCorruptionTest, TruncatedSegmentsFileIsRejected) {
  EXPECT_TRUE(WriteFile(path_, image_).ok());
  for (size_t cut : {size_t{0}, segments_.size() / 3, segments_.size() - 1}) {
    EXPECT_TRUE(WriteFile(segments_path_, segments_.substr(0, cut)).ok());
    auto resumed = RunCapture(/*resume=*/true, "checkpoint-fuzz");
    EXPECT_FALSE(resumed.ok())
        << "segments truncation to " << cut << " bytes resumed silently";
    if (!resumed.ok()) {
      EXPECT_NE(resumed.status().message().find("store-segments.bin"),
                std::string::npos)
          << resumed.status().ToString();
    }
  }
  EXPECT_TRUE(WriteFile(segments_path_, segments_).ok());
}

TEST_F(CheckpointCorruptionTest, TrailingGarbageIsRejected) {
  auto resumed = ResumeFrom(image_ + std::string(16, '\x5a'));
  EXPECT_FALSE(resumed.ok());
}

TEST_F(CheckpointCorruptionTest, FingerprintMismatchIsALoudError) {
  EXPECT_TRUE(WriteFile(path_, image_).ok());
  auto resumed = RunCapture(/*resume=*/true, "a-different-run-config");
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("fingerprint"), std::string::npos)
      << resumed.status().ToString();
}

TEST_F(CheckpointCorruptionTest, MissingCheckpointIsAFreshStart) {
  std::filesystem::remove(path_);
  auto resumed = RunCapture(/*resume=*/true, "checkpoint-fuzz");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->stats.resumed_from_step, -1);
  EXPECT_EQ(resumed->values, reference_.values);
}

}  // namespace
}  // namespace ariadne
