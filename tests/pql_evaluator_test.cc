#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pql/analysis.h"
#include "pql/evaluator.h"
#include "pql/parser.h"

namespace ariadne {
namespace {

Tuple T(std::initializer_list<Value> vals) { return Tuple(vals); }
Value I(int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }

AnalyzedQuery MustAnalyze(
    const std::string& text,
    const std::vector<std::pair<std::string, Value>>& params = {},
    const StoreSchema* store = nullptr) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!params.empty()) {
    EXPECT_TRUE(program->BindParameters(params).ok());
  }
  auto q = Analyze(*program, Catalog::Default(), UdfRegistry::Default(), store);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(EvaluatorTest, SimpleJoinAndComparison) {
  AnalyzedQuery q = MustAnalyze(R"(
    hot(x, d) <- value(x, d, i), superstep(x, i), d > 2.5.
  )");
  Database db(&q);
  const int value_pred = q.PredId("value");
  const int step_pred = q.PredId("superstep");
  db.Rel(value_pred).Insert(T({I(1), D(3.0), I(0)}));
  db.Rel(value_pred).Insert(T({I(2), D(1.0), I(0)}));
  db.Rel(value_pred).Insert(T({I(3), D(9.0), I(1)}));
  db.Rel(step_pred).Insert(T({I(1), I(0)}));
  db.Rel(step_pred).Insert(T({I(2), I(0)}));
  // Vertex 3's superstep fact missing: its value must not qualify.
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  auto changed = eval.Evaluate(ctx);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(*changed);
  const Relation* hot = db.RelIfExists(q.PredId("hot"));
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->ToSortedStrings(), (std::vector<std::string>{"(1, 3)"}));
}

TEST(EvaluatorTest, IncrementalSkipsUnchangedRules) {
  AnalyzedQuery q = MustAnalyze("p(x, i) <- superstep(x, i).");
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  db.Rel(q.PredId("superstep")).Insert(T({I(1), I(0)}));
  ASSERT_TRUE(*eval.Evaluate(ctx));
  // Nothing changed: second call derives nothing.
  EXPECT_FALSE(*eval.Evaluate(ctx));
  // New EDB fact triggers re-evaluation.
  db.Rel(q.PredId("superstep")).Insert(T({I(2), I(0)}));
  EXPECT_TRUE(*eval.Evaluate(ctx));
  EXPECT_EQ(db.RelIfExists(q.PredId("p"))->size(), 2u);
}

TEST(EvaluatorTest, RecursionToFixpoint) {
  // Transitive closure over stored link facts.
  StoreSchema schema;
  schema.relations = {{"link", 2}};
  AnalyzedQuery q = MustAnalyze(R"(
    reach(x, y) <- link(x, y).
    reach(x, z) <- reach(x, y), link(y, z).
  )",
                                {}, &schema);
  Database db(&q);
  const int link = q.PredId("link");
  db.Rel(link).Insert(T({I(0), I(1)}));
  db.Rel(link).Insert(T({I(1), I(2)}));
  db.Rel(link).Insert(T({I(2), I(3)}));
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  const Relation* reach = db.RelIfExists(q.PredId("reach"));
  ASSERT_NE(reach, nullptr);
  EXPECT_EQ(reach->size(), 6u);  // all ordered pairs i < j
  EXPECT_TRUE(reach->Contains(T({I(0), I(3)})));
}

TEST(EvaluatorTest, StratifiedNegation) {
  AnalyzedQuery q = MustAnalyze(R"(
    received(x, i) <- receive-message(x, y, m, i).
    quiet(x, i) <- superstep(x, i), !received(x, i).
  )");
  Database db(&q);
  db.Rel(q.PredId("superstep")).Insert(T({I(1), I(0)}));
  db.Rel(q.PredId("superstep")).Insert(T({I(2), I(0)}));
  db.Rel(q.PredId("receive-message")).Insert(T({I(1), I(2), D(0.5), I(0)}));
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("quiet"))->ToSortedStrings(),
            (std::vector<std::string>{"(2, 0)"}));
}

TEST(EvaluatorTest, BindingEqualityAndArithmetic) {
  AnalyzedQuery q = MustAnalyze(R"(
    prev(x, j) <- superstep(x, i), j = i - 1, j >= 0.
  )");
  Database db(&q);
  db.Rel(q.PredId("superstep")).Insert(T({I(5), I(0)}));
  db.Rel(q.PredId("superstep")).Insert(T({I(5), I(3)}));
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("prev"))->ToSortedStrings(),
            (std::vector<std::string>{"(5, 2)"}));
}

TEST(EvaluatorTest, PredicateAndFunctionUdfs) {
  AnalyzedQuery q = MustAnalyze(R"(
    small(x, i) <- value(x, d1, i), value(x, d2, j), evolution(x, j, i),
                   udf-diff(d1, d2, 0.1).
    mag(x, a) <- value(x, d, i), abs(d, a).
  )");
  Database db(&q);
  const int value = q.PredId("value");
  db.Rel(value).Insert(T({I(1), D(-2.0), I(1)}));
  db.Rel(value).Insert(T({I(1), D(-2.05), I(2)}));
  db.Rel(q.PredId("evolution")).Insert(T({I(1), I(1), I(2)}));
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("small"))->ToSortedStrings(),
            (std::vector<std::string>{"(1, 2)"}));
  EXPECT_EQ(db.RelIfExists(q.PredId("mag"))->ToSortedStrings(),
            (std::vector<std::string>{"(1, 2)", "(1, 2.05)"}));
}

TEST(EvaluatorTest, CountAggregateOverStaticEdges) {
  AnalyzedQuery q = MustAnalyze("in-degree(x, COUNT(y)) <- edge(y, x).");
  auto g = GenerateChain(3);  // 0 -> 1 -> 2
  ASSERT_TRUE(g.ok());
  // Per-vertex mode: each vertex aggregates its own in-edges; vertex 0 has
  // none and must still get in-degree 0.
  RuleEvaluator eval(&q);
  std::vector<int64_t> expected = {0, 1, 1};
  for (VertexId v = 0; v < 3; ++v) {
    Database db(&q);
    EvalContext ctx;
  ctx.db = &db;
  ctx.graph = &*g;
  ctx.local_vertex = v;
    ASSERT_TRUE(eval.Evaluate(ctx).ok());
    const Relation* deg = db.RelIfExists(q.PredId("in-degree"));
    ASSERT_NE(deg, nullptr);
    ASSERT_EQ(deg->size(), 1u);
    EXPECT_TRUE(deg->Contains(T({I(v), I(expected[static_cast<size_t>(v)])})))
        << "vertex " << v;
  }
}

TEST(EvaluatorTest, SumAndAvgAggregates) {
  AnalyzedQuery q = MustAnalyze(R"(
    sum-error(x, i, SUM(e)) <- err(x, y, e, i).
    cnt(x, i, COUNT(y)) <- err(x, y, e, i).
  )",
                                {}, [] {
                                  static StoreSchema schema{
                                      {{"err", 4}}};
                                  return &schema;
                                }());
  Database db(&q);
  const int err = q.PredId("err");
  db.Rel(err).Insert(T({I(1), I(10), D(0.5), I(0)}));
  db.Rel(err).Insert(T({I(1), I(11), D(0.5), I(0)}));  // same e, distinct y
  db.Rel(err).Insert(T({I(1), I(12), D(1.0), I(1)}));
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  // SUM over distinct valuations: both 0.5 contributions count.
  EXPECT_TRUE(db.RelIfExists(q.PredId("sum-error"))
                  ->Contains(T({I(1), I(0), D(1.0)})));
  EXPECT_TRUE(db.RelIfExists(q.PredId("sum-error"))
                  ->Contains(T({I(1), I(1), D(1.0)})));
  EXPECT_TRUE(db.RelIfExists(q.PredId("cnt"))->Contains(T({I(1), I(0), I(2)})));
}

TEST(EvaluatorTest, AggregateFeedsLaterStratum) {
  AnalyzedQuery q = MustAnalyze(R"(
    in-degree(x, COUNT(y)) <- edge(y, x).
    orphan-mail(x, y, i) <- in-degree(x, d), receive-message(x, y, m, i),
                            d = 0.
  )");
  auto g = GenerateChain(3);
  ASSERT_TRUE(g.ok());
  RuleEvaluator eval(&q);
  // Vertex 0 (no in-edges) received mail: flagged.
  Database db0(&q);
  db0.Rel(q.PredId("receive-message")).Insert(T({I(0), I(9), D(1.0), I(4)}));
  EvalContext ctx0;
  ctx0.db = &db0;
  ctx0.graph = &*g;
  ctx0.local_vertex = VertexId{0};
  ASSERT_TRUE(eval.Evaluate(ctx0).ok());
  EXPECT_EQ(db0.RelIfExists(q.PredId("orphan-mail"))->size(), 1u);
  // Vertex 1 (has an in-edge) received mail: fine.
  Database db1(&q);
  db1.Rel(q.PredId("receive-message")).Insert(T({I(1), I(0), D(1.0), I(4)}));
  EvalContext ctx1;
  ctx1.db = &db1;
  ctx1.graph = &*g;
  ctx1.local_vertex = VertexId{1};
  ASSERT_TRUE(eval.Evaluate(ctx1).ok());
  const Relation* flagged = db1.RelIfExists(q.PredId("orphan-mail"));
  EXPECT_TRUE(flagged == nullptr || flagged->empty());
}

TEST(EvaluatorTest, StaticEdgeEnumerationModes) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  // Global mode: full scan.
  AnalyzedQuery q = MustAnalyze("pair(x, y) <- edge(x, y).");
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  ctx.graph = &*g;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("pair"))->size(), 3u);
  // Local mode: only incident edges, location pre-bound.
  Database db1(&q);
  EvalContext local;
  local.db = &db1;
  local.graph = &*g;
  local.local_vertex = VertexId{1};
  ASSERT_TRUE(eval.Evaluate(local).ok());
  // Out-edge (1,2) only: the head location is bound to 1 and pair(x,y)
  // requires x == 1.
  EXPECT_EQ(db1.RelIfExists(q.PredId("pair"))->ToSortedStrings(),
            (std::vector<std::string>{"(1, 2)"}));
}

TEST(EvaluatorTest, EdgeValuePassesWeightThrough) {
  auto g = Graph::FromEdges(2, {{0, 1, 0.75}});
  ASSERT_TRUE(g.ok());
  AnalyzedQuery q = MustAnalyze(R"(
    w(x, y, v) <- edge-value(x, y, v, i), superstep(x, i).
  )");
  Database db(&q);
  db.Rel(q.PredId("superstep")).Insert(T({I(0), I(2)}));
  EvalContext ctx;
  ctx.db = &db;
  ctx.graph = &*g;
  ctx.local_vertex = VertexId{0};
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("w"))->ToSortedStrings(),
            (std::vector<std::string>{"(0, 1, 0.75)"}));
}

TEST(EvaluatorTest, NegatedStaticEdge) {
  auto g = GenerateChain(3);
  ASSERT_TRUE(g.ok());
  StoreSchema schema{{{"cand", 2}}};
  AnalyzedQuery q = MustAnalyze(
      "missing(x, y) <- cand(x, y), !edge(x, y).", {}, &schema);
  Database db(&q);
  db.Rel(q.PredId("cand")).Insert(T({I(0), I(1)}));  // edge exists
  db.Rel(q.PredId("cand")).Insert(T({I(0), I(2)}));  // no such edge
  EvalContext ctx;
  ctx.db = &db;
  ctx.graph = &*g;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("missing"))->ToSortedStrings(),
            (std::vector<std::string>{"(0, 2)"}));
}

TEST(EvaluatorTest, DivisionByZeroSkipsValuation) {
  StoreSchema schema{{{"nums", 3}}};
  AnalyzedQuery q =
      MustAnalyze("ratio(x, a / b) <- nums(x, a, b).", {}, &schema);
  Database db(&q);
  db.Rel(q.PredId("nums")).Insert(T({I(1), D(4.0), D(2.0)}));
  db.Rel(q.PredId("nums")).Insert(T({I(2), D(4.0), D(0.0)}));
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("ratio"))->ToSortedStrings(),
            (std::vector<std::string>{"(1, 2)"}));
}

TEST(EvaluatorTest, QueryResultMergesAcrossDatabases) {
  AnalyzedQuery q = MustAnalyze("p(x, i) <- superstep(x, i).");
  RuleEvaluator eval(&q);
  QueryResult result;
  for (int64_t v = 0; v < 3; ++v) {
    Database db(&q);
    db.Rel(q.PredId("superstep")).Insert(T({I(v), I(0)}));
    EvalContext ctx;
  ctx.db = &db;
  ctx.local_vertex = VertexId{v};
    ASSERT_TRUE(eval.Evaluate(ctx).ok());
    result.Merge(q, db);
  }
  ASSERT_NE(result.Table("p"), nullptr);
  EXPECT_EQ(result.Table("p")->size(), 3u);
  EXPECT_EQ(result.TupleCount("p"), 3u);
  EXPECT_EQ(result.TupleCount("absent"), 0u);
  EXPECT_EQ(result.TableNames(), (std::vector<std::string>{"p"}));
  EXPECT_GT(result.TotalBytes(), 0u);
}

}  // namespace
}  // namespace ariadne
