// End-to-end tests of the storage subsystem under capture: a tiny memory
// budget that forces eviction every superstep must not change anything
// observable — the saved image is byte-identical to an unbounded run, and
// layered queries return identical results while staying under budget.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "core/ariadne.h"

namespace ariadne {
namespace {

std::vector<std::string> TableStrings(const QueryResult& result,
                                      const std::string& name) {
  const Relation* rel = result.Table(name);
  if (rel == nullptr) return {};
  return rel->ToSortedStrings();
}

class StorageCaptureTest : public testing::Test {
 protected:
  void SetUp() override {
    // An 8x8 grid: SSSP frontiers are wide, so no single layer dominates
    // the store (peak layer ~11% of total bytes — comfortably inside the
    // 25% memory budget the acceptance bar prescribes).
    auto g = GenerateGrid(8, 8);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    std::error_code ec;
    std::filesystem::create_directories(testing::TempDir() +
                                            "/storage_capture",
                                        ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  std::string Dir(const std::string& name) {
    return testing::TempDir() + "/storage_capture/" + name;
  }

  /// Runs a full SSSP capture; optionally spilling with `budget` bytes
  /// and `flush_threads`, with `engine_threads` compute workers.
  void CaptureStore(ProvenanceStore* store, const std::string& spill_dir,
                    size_t budget, int flush_threads, size_t engine_threads) {
    SessionOptions options;
    options.engine.num_threads = engine_threads;
    Session session(&graph_, options);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    if (!spill_dir.empty()) {
      storage::LayerStoreOptions storage_options;
      storage_options.dir = spill_dir;
      storage_options.mem_budget_bytes = budget;
      storage_options.flush_threads = flush_threads;
      ASSERT_TRUE(store->ConfigureStorage(std::move(storage_options)).ok());
    }
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *capture, store);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_GT(store->num_layers(), 4);
  }

  Result<std::string> SaveBytes(const ProvenanceStore& store,
                                const std::string& path) {
    ARIADNE_RETURN_NOT_OK(store.SaveToFile(path));
    return ReadFile(path);
  }

  Graph graph_;
};

TEST_F(StorageCaptureTest, TinyBudgetSaveIsByteIdenticalAcrossThreadCounts) {
  // Reference: unbounded in-memory capture, single-threaded engine.
  ProvenanceStore reference;
  CaptureStore(&reference, "", 0, 0, 1);
  ASSERT_EQ(reference.SpilledLayerCount(), 0);
  auto want = SaveBytes(reference, Dir("ref") + ".bin");
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // A ~one-layer budget forces eviction at every superstep barrier.
  const size_t budget = reference.TotalBytes() / reference.num_layers();
  int variant = 0;
  for (size_t engine_threads : {size_t{1}, size_t{4}}) {
    for (int flush_threads : {1, 2}) {
      SCOPED_TRACE("engine_threads=" + std::to_string(engine_threads) +
                   " flush_threads=" + std::to_string(flush_threads));
      ProvenanceStore store;
      std::string variant_name = "v";
      variant_name += std::to_string(variant++);
      const std::string dir = Dir(variant_name);
      CaptureStore(&store, dir, budget, flush_threads, engine_threads);
      EXPECT_GT(store.SpilledLayerCount(), 0);
      EXPECT_LE(store.InMemoryBytes(), reference.TotalBytes());
      const auto stats = store.storage_stats();
      EXPECT_EQ(stats.layers_flushed,
                static_cast<uint64_t>(store.num_layers()));
      EXPECT_LT(stats.CompressionRatio(), 1.0);
      auto got = SaveBytes(store, dir + ".bin");
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *want) << "saved image differs under spill";
    }
  }
}

TEST_F(StorageCaptureTest, BackwardLayeredQueryUnderBudgetMatchesUnbounded) {
  SessionOptions options;
  Session session(&graph_, options);

  ProvenanceStore unbounded;
  CaptureStore(&unbounded, "", 0, 0, 1);
  // Trace the far corner of the grid back from the last superstep.
  QueryParams params{
      {"alpha", Value(static_cast<int64_t>(graph_.num_vertices() - 1))},
      {"sigma", Value(static_cast<int64_t>(unbounded.num_layers() - 1))}};
  auto q10 = session.PrepareOffline(queries::BackwardLineageFull(), unbounded,
                                    params);
  ASSERT_TRUE(q10.ok()) << q10.status().ToString();
  ASSERT_EQ(q10->direction(), Direction::kBackward);
  auto want = session.RunOffline(&unbounded, *q10, EvalMode::kLayered);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // Budget <= 25% of the total provenance bytes (the acceptance bar).
  const size_t budget = unbounded.TotalBytes() / 4;
  ProvenanceStore bounded;
  CaptureStore(&bounded, Dir("bounded"), budget, 2, 4);
  EXPECT_GT(bounded.SpilledLayerCount(), 0);

  auto got = session.RunOffline(&bounded, *q10, EvalMode::kLayered);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (const char* table : {"back-trace", "back-lineage"}) {
    EXPECT_EQ(TableStrings(got->result, table),
              TableStrings(want->result, table));
  }
  // Peak decoded layer bytes stayed under the budget...
  EXPECT_LE(got->stats.peak_layer_bytes, budget);
  // ...and the descending pass prefetched the next-lower layers.
  const auto stats = bounded.storage_stats();
  EXPECT_GT(stats.prefetch_requests, 0u);
  EXPECT_GT(stats.pages_read, 0u);

  // Naive evaluation over the bounded store agrees too (it walks layers
  // ascending through the same storage path).
  auto naive = session.RunOffline(&bounded, *q10, EvalMode::kNaive);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(TableStrings(naive->result, "back-lineage"),
            TableStrings(want->result, "back-lineage"));
}

}  // namespace
}  // namespace ariadne
