// Fuzz-ish robustness tests of the provenance store image and the layer
// spill files: bit flips and truncations must come back as Status errors
// (never crashes or silent misreads), and the errors must name the file.

#include <gtest/gtest.h>

#include <string>

#include "provenance/store.h"
#include "storage/layer.h"

namespace ariadne {
namespace {

Layer MakeLayer(Superstep step, int rel, int n_vertices) {
  Layer layer;
  layer.step = step;
  for (int v = 0; v < n_vertices; ++v) {
    layer.Add(rel, v,
              {{Value(int64_t{v}), Value(static_cast<int64_t>(step)),
                Value(0.5 * v)},
               {Value(int64_t{v}), Value("payload-" + std::to_string(v)),
                Value()}});
  }
  layer.Canonicalize();
  return layer;
}

ProvenanceStore MakeStore() {
  ProvenanceStore store;
  const int rel = store.AddRelation("value", 3);
  store.static_layer().Add(store.AddRelation("prov-edges", 2), 0,
                           {{Value(int64_t{0}), Value(int64_t{1})}});
  for (Superstep s = 0; s < 4; ++s) {
    EXPECT_TRUE(store.AppendLayer(MakeLayer(s, rel, 25)).ok());
  }
  return store;
}

class StoreCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/corruption_test_store.bin";
    ProvenanceStore store = MakeStore();
    ASSERT_TRUE(store.SaveToFile(path_).ok());
    auto data = ReadFile(path_);
    ASSERT_TRUE(data.ok());
    image_ = std::move(data).value();
    ASSERT_GT(image_.size(), 64u);
  }

  /// Writes `bytes` to the test path and tries to load it.
  Result<ProvenanceStore> LoadBytes(const std::string& bytes) {
    EXPECT_TRUE(WriteFile(path_, bytes).ok());
    return ProvenanceStore::LoadFromFile(path_);
  }

  std::string path_;
  std::string image_;
};

TEST_F(StoreCorruptionTest, PristineImageLoads) {
  auto loaded = LoadBytes(image_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_layers(), 4);
}

TEST_F(StoreCorruptionTest, EveryBitFlipIsRejected) {
  // Walk the image with a stride, flipping one bit at a time. The file
  // checksum (plus magic/flags validation in the header) must catch every
  // single one — and none may crash or hang the loader.
  const size_t stride = std::max<size_t>(1, image_.size() / 97);
  int flips = 0;
  for (size_t pos = 0; pos < image_.size(); pos += stride) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupt = image_;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ bit);
      auto loaded = LoadBytes(corrupt);
      EXPECT_FALSE(loaded.ok())
          << "bit flip at byte " << pos << " was not detected";
      ++flips;
    }
  }
  EXPECT_GE(flips, 100);
}

TEST_F(StoreCorruptionTest, EveryTruncationIsRejected) {
  const size_t stride = std::max<size_t>(1, image_.size() / 61);
  for (size_t cut = 0; cut < image_.size(); cut += stride) {
    auto loaded = LoadBytes(image_.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "truncation to " << cut
                              << " bytes was not detected";
    EXPECT_NE(loaded.status().message().find(path_), std::string::npos)
        << "error does not name the file: " << loaded.status().ToString();
  }
}

TEST_F(StoreCorruptionTest, TrailingGarbageIsRejected) {
  // Appending bytes breaks the checksum; with a fixed-up checksum the
  // structural trailing-bytes check must still fire (defense in depth,
  // exercised directly on the legacy format below).
  auto loaded = LoadBytes(image_ + std::string(8, '\x7f'));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(StoreCorruptionTest, LegacyImageTruncationsAreRejected) {
  // The legacy APV1 format has no file checksum: its protection is the
  // per-count bounds validation, so truncations must fail structurally.
  BinaryWriter writer;
  writer.WriteU32(0x41505631);  // "APV1"
  writer.WriteU64(1);
  writer.WriteString("value");
  writer.WriteU32(3);
  Layer empty_static;
  SerializeLayer(empty_static, writer);
  writer.WriteU64(2);
  SerializeLayer(MakeLayer(0, 0, 25), writer);
  SerializeLayer(MakeLayer(1, 0, 25), writer);
  const std::string legacy = writer.MoveData();
  {
    auto ok = LoadBytes(legacy);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_EQ(ok->num_layers(), 2);
  }
  const size_t stride = std::max<size_t>(1, legacy.size() / 53);
  for (size_t cut = 4; cut < legacy.size(); cut += stride) {
    auto loaded = LoadBytes(legacy.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "legacy truncation to " << cut
                              << " bytes was not detected";
  }
}

TEST_F(StoreCorruptionTest, LegacyCountCorruptionIsBounded) {
  // Blow up the layer-count field of a legacy image: the loader must
  // reject it via the bounds guard instead of attempting a huge reserve.
  BinaryWriter writer;
  writer.WriteU32(0x41505631);
  writer.WriteU64(1);
  writer.WriteString("value");
  writer.WriteU32(3);
  Layer empty_static;
  SerializeLayer(empty_static, writer);
  writer.WriteU64(uint64_t{1} << 60);  // absurd layer count
  auto loaded = LoadBytes(writer.MoveData());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError()) << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("exceeds"), std::string::npos);
}

}  // namespace
}  // namespace ariadne
