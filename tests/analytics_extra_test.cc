#include <gtest/gtest.h>

#include <queue>

#include "analytics/bfs.h"
#include "analytics/label_propagation.h"
#include "core/ariadne.h"

namespace ariadne {
namespace {

std::vector<int64_t> ReferenceBfs(const Graph& g, VertexId source) {
  std::vector<int64_t> hops(static_cast<size_t>(g.num_vertices()),
                            kUnreachedHops);
  std::queue<VertexId> queue;
  hops[static_cast<size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    for (VertexId u : g.OutNeighbors(v)) {
      if (hops[static_cast<size_t>(u)] == kUnreachedHops) {
        hops[static_cast<size_t>(u)] = hops[static_cast<size_t>(v)] + 1;
        queue.push(u);
      }
    }
  }
  return hops;
}

TEST(BfsTest, MatchesReferenceOnRandomGraphs) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    auto g = GenerateRmat({.scale = 8, .avg_degree = 5, .seed = seed});
    ASSERT_TRUE(g.ok());
    const VertexId source = HighestDegreeVertex(*g);
    BfsProgram program(source);
    Engine<int64_t, int64_t> engine(&*g);
    ASSERT_TRUE(engine.Run(program).ok());
    const auto expected = ReferenceBfs(*g, source);
    for (VertexId v = 0; v < g->num_vertices(); ++v) {
      EXPECT_EQ(engine.value(v), expected[static_cast<size_t>(v)])
          << "vertex " << v << " seed " << seed;
    }
  }
}

TEST(BfsTest, ChainHopsAreExact) {
  auto g = GenerateChain(10);
  ASSERT_TRUE(g.ok());
  BfsProgram program(0);
  Engine<int64_t, int64_t> engine(&*g);
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(engine.value(v), v);
  EXPECT_EQ(stats->supersteps, 10);  // one thin frontier layer per hop
}

TEST(BfsTest, SupportsOnlineMonitoring) {
  auto g = GenerateRmat({.scale = 8, .avg_degree = 5, .seed = 2});
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  auto query = session.PrepareOnline(queries::NoMessageNoChangeCheck());
  ASSERT_TRUE(query.ok());
  BfsProgram bfs(HighestDegreeVertex(*g));
  auto run = session.RunOnline(bfs, *query, /*retention_window=*/2);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->query_result.TupleCount("problem"), 0u);
}

TEST(LabelPropagationTest, TwoCliquesSeparate) {
  // Two 5-cliques joined by a single bridge edge: LP should give each
  // clique a uniform label, different across cliques.
  GraphBuilder builder;
  auto add_clique = [&](VertexId base) {
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = 0; j < 5; ++j) {
        if (i != j) builder.AddEdge(base + i, base + j, 1.0);
      }
    }
  };
  add_clique(0);
  add_clique(5);
  builder.AddEdge(4, 5, 1.0);
  auto g = builder.Build();
  ASSERT_TRUE(g.ok());

  LabelPropagationProgram program(/*rounds=*/8);
  Engine<int64_t, int64_t> engine(&*g);
  ASSERT_TRUE(engine.Run(program).ok());
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_EQ(engine.value(v), engine.value(0)) << "clique A vertex " << v;
  }
  for (VertexId v = 6; v < 10; ++v) {
    EXPECT_EQ(engine.value(v), engine.value(5)) << "clique B vertex " << v;
  }
  EXPECT_NE(engine.value(0), engine.value(5));
}

TEST(LabelPropagationTest, RunsForExactlyTheConfiguredRounds) {
  auto g = GenerateGrid(4, 4);
  ASSERT_TRUE(g.ok());
  LabelPropagationProgram program(6);
  Engine<int64_t, int64_t> engine(&*g);
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 7);  // rounds 0..6
}

TEST(LabelPropagationTest, AptQueryRunsOnline) {
  auto g = GenerateRmat({.scale = 7, .avg_degree = 6, .seed = 4});
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  auto apt = session.PrepareOnline(queries::Apt(), {{"eps", Value(0.0)}});
  ASSERT_TRUE(apt.ok());
  LabelPropagationProgram lp(5);
  auto run = session.RunOnline(lp, *apt, /*retention_window=*/2);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Every active vertex-step lands in exactly one of safe/unsafe... or
  // received a large update; structural sanity only.
  EXPECT_EQ(run->query_result.TupleCount("safe") +
                run->query_result.TupleCount("unsafe"),
            run->query_result.TupleCount("no-execute"));
}

// ------------------------------------------------------- Session surface

TEST(SessionTest, PrepareRejectsGarbage) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  EXPECT_FALSE(session.PrepareOnline("not a query").ok());
  EXPECT_FALSE(session.PrepareOnline("p(x) <- nope(x, y).").ok());
  EXPECT_FALSE(
      session.PrepareOnline(queries::Apt(), {{"wrong", Value(1.0)}}).ok());
}

TEST(SessionTest, CaptureRequiresStore) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp(0);
  EXPECT_FALSE(session.Capture(sssp, *capture, nullptr).ok());
}

TEST(SessionTest, OfflineModeRejectsOnlineEnum) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp(0);
  ASSERT_TRUE(session.Capture(sssp, *capture, &store).ok());
  auto query = session.PrepareOffline(queries::MonotoneUpdateCheck(), store);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(session.RunOffline(&store, *query, EvalMode::kOnline).ok());
}

TEST(SessionTest, OfflineOnEmptyStoreFails) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  Session session(&*g);
  ProvenanceStore store;
  store.AddRelation("value", 3);
  auto query = session.PrepareOffline(queries::MonotoneUpdateCheck(), store);
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(session.RunOffline(&store, *query, EvalMode::kLayered).ok());
  EXPECT_FALSE(session.RunOffline(&store, *query, EvalMode::kNaive).ok());
}

}  // namespace
}  // namespace ariadne
