// Deterministic fault injection over the failure-policy ladder
// (DESIGN.md §2.4): transient I/O errors are retried with backoff,
// exhausted flushes are quarantined and requeued once, a second
// exhaustion degrades capture per policy instead of killing the
// analytic, and offline evaluation refuses full-history queries over a
// degraded capture with a clear error.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ariadne.h"
#include "engine/engine.h"
#include "graph/paged_backend.h"
#include "recovery/fault_injector.h"
#include "storage/layer_store.h"

namespace ariadne {
namespace {

Layer MakeLayer(Superstep step, int rel, int n_vertices) {
  Layer layer;
  layer.step = step;
  for (int v = 0; v < n_vertices; ++v) {
    layer.Add(rel, v,
              {{Value(int64_t{v}), Value(static_cast<int64_t>(step)),
                Value(0.5 * v)}});
  }
  layer.Canonicalize();
  return layer;
}

class FaultInjectionTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/fault_injection";
    std::filesystem::remove_all(dir_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
    recovery::FaultInjector::Global().Disarm();
  }

  void TearDown() override {
    recovery::FaultInjector::Global().Disarm();
    std::filesystem::remove_all(dir_);
  }

  storage::LayerStoreOptions FastRetryOptions(const std::string& subdir) {
    storage::LayerStoreOptions options;
    options.dir = dir_ + "/" + subdir;
    options.flush_threads = 1;
    options.io_max_attempts = 3;
    options.io_backoff_base_ms = 0.01;  // keep tests fast
    return options;
  }

  std::string dir_;
};

TEST_F(FaultInjectionTest, TransientFlushErrorIsRetriedAndRecovers) {
  storage::LayerStore store;
  ASSERT_TRUE(store.Configure(FastRetryOptions("retry")).ok());
  // Exactly one injected failure: attempt 1 fails, attempt 2 succeeds.
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("flusher-write:1").ok());
  ASSERT_TRUE(
      store.Append(std::make_shared<const Layer>(MakeLayer(0, 0, 40))).ok());
  const Status drained = store.Drain();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  const storage::StorageStats stats = store.stats();
  EXPECT_GE(stats.flush_retries, 1u);
  EXPECT_EQ(stats.layers_flushed, 1u);
  EXPECT_EQ(stats.layers_quarantined, 0u);
  EXPECT_FALSE(stats.degraded);
}

TEST_F(FaultInjectionTest, ExhaustedFlushQuarantinesThenSticks) {
  storage::LayerStore store;
  ASSERT_TRUE(store.Configure(FastRetryOptions("quarantine")).ok());
  // Persistent failure: 3 attempts, quarantine + requeue, 3 more
  // attempts, then the error sticks.
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("flusher-write:1+").ok());
  ASSERT_TRUE(
      store.Append(std::make_shared<const Layer>(MakeLayer(0, 0, 40))).ok());
  const Status drained = store.Drain();
  EXPECT_FALSE(drained.ok());
  EXPECT_NE(drained.message().find("quarantine"), std::string::npos)
      << drained.ToString();
  const storage::StorageStats stats = store.stats();
  EXPECT_EQ(stats.layers_quarantined, 1u);
  EXPECT_GE(stats.flush_retries, 4u);  // 2 per exhausted pass
  EXPECT_EQ(stats.layers_flushed, 0u);

  // The poisoned layer was never lost: it is still readable (resident).
  auto layer = store.Read(0);
  ASSERT_TRUE(layer.ok()) << layer.status().ToString();
  EXPECT_EQ((*layer)->step, 0);

  // Degraded mode is the escape hatch: appends and drains work again.
  store.EnterDegradedMode();
  EXPECT_TRUE(store.degraded());
  EXPECT_FALSE(store.flush_error().ok());  // the reason is preserved
  ASSERT_TRUE(
      store.Append(std::make_shared<const Layer>(MakeLayer(1, 0, 40))).ok());
  EXPECT_TRUE(store.Drain().ok());
  EXPECT_EQ(store.num_layers(), 2);
}

TEST_F(FaultInjectionTest, TransientPageReadErrorIsRetried) {
  storage::LayerStore store;
  // Zero budget: everything spills, nothing stays resident or cached.
  ASSERT_TRUE(store.Configure(FastRetryOptions("pageread")).ok());
  ASSERT_TRUE(
      store.Append(std::make_shared<const Layer>(MakeLayer(0, 0, 40))).ok());
  ASSERT_TRUE(store.Drain().ok());
  ASSERT_EQ(store.SpilledCount(), 1);

  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("page-read:1").ok());
  auto layer = store.Read(0);
  ASSERT_TRUE(layer.ok()) << layer.status().ToString();
  EXPECT_EQ((*layer)->step, 0);
  EXPECT_GE(store.stats().read_retries, 1u);
}

class DegradedCaptureTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    auto g = GenerateGrid(8, 8);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }

  /// SSSP capture with a spill-configured store whose every flush fails.
  Result<RunStats> CaptureWithBrokenSpill(ProvenanceStore* store,
                                          CaptureDegradePolicy policy) {
    Session session(&graph_);
    ARIADNE_ASSIGN_OR_RETURN(AnalyzedQuery query,
                             session.PrepareOnline(queries::CaptureFull()));
    storage::LayerStoreOptions options = FastRetryOptions("degrade");
    // No write-behind allowance: Append blocks until the flusher has
    // settled, so the exhausted-retry error reaches the program at a
    // barrier deterministically instead of only at the final Flush.
    options.max_unflushed_bytes = 0;
    ARIADNE_RETURN_NOT_OK(store->ConfigureStorage(std::move(options)));
    ARIADNE_RETURN_NOT_OK(
        recovery::FaultInjector::Global().Arm("flusher-write:1+"));
    SsspProgram sssp(0);
    return session.Capture(sssp, query, store, /*retention_window=*/2,
                           nullptr, /*use_fast_capture=*/true, policy);
  }

  /// A layered-evaluable backward query reading the captured relations.
  Result<AnalyzedQuery> BackwardQuery(Session& session,
                                      const ProvenanceStore& store) {
    QueryParams params{
        {"alpha", Value(static_cast<int64_t>(graph_.num_vertices() - 1))},
        {"sigma", Value(int64_t{3})}};
    return session.PrepareOffline(queries::BackwardLineageFull(), store,
                                  params);
  }

  Graph graph_;
};

TEST_F(DegradedCaptureTest, FailPolicySurfacesTheStorageError) {
  ProvenanceStore store;
  auto stats = CaptureWithBrokenSpill(&store, CaptureDegradePolicy::kFail);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("injected fault"),
            std::string::npos)
      << stats.status().ToString();
}

TEST_F(DegradedCaptureTest, CaptureOffKeepsTheAnalyticAliveAndRefusesEval) {
  ProvenanceStore store;
  auto stats =
      CaptureWithBrokenSpill(&store, CaptureDegradePolicy::kCaptureOff);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->capture_degraded);
  EXPECT_GE(stats->capture_degraded_at, 0);
  EXPECT_TRUE(store.degraded());
  EXPECT_EQ(store.degraded_at(), stats->capture_degraded_at);
  EXPECT_TRUE(store.surviving_relations().empty());
  // Capture stopped: fewer layers than the analytic ran supersteps.
  EXPECT_LT(store.num_layers(), stats->supersteps);

  // Offline evaluation refuses loudly — in both modes.
  recovery::FaultInjector::Global().Disarm();
  Session session(&graph_);
  auto query = BackwardQuery(session, store);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (EvalMode mode : {EvalMode::kLayered, EvalMode::kNaive}) {
    auto run = session.RunOffline(&store, *query, mode);
    ASSERT_FALSE(run.ok()) << "mode " << EvalModeToString(mode);
    EXPECT_NE(run.status().message().find("degraded capture"),
              std::string::npos)
        << run.status().ToString();
    EXPECT_NE(run.status().message().find("stopped being captured"),
              std::string::npos);
  }
}

TEST_F(DegradedCaptureTest, DegradationSurvivesSaveAndReload) {
  ProvenanceStore store;
  auto stats =
      CaptureWithBrokenSpill(&store, CaptureDegradePolicy::kCaptureOff);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  recovery::FaultInjector::Global().Disarm();

  const std::string path = dir_ + "/degraded.apv";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto reloaded = ProvenanceStore::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded->degraded());
  EXPECT_EQ(reloaded->degraded_at(), store.degraded_at());
  EXPECT_EQ(reloaded->surviving_relations(), store.surviving_relations());
  EXPECT_FALSE(reloaded->degraded_reason().empty());

  Session session(&graph_);
  auto query = BackwardQuery(session, *reloaded);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto run = session.RunOffline(&*reloaded, *query, EvalMode::kLayered);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("degraded capture"),
            std::string::npos);
}

TEST_F(DegradedCaptureTest, ForwardLineageKeepsTheSkeleton) {
  ProvenanceStore store;
  auto stats =
      CaptureWithBrokenSpill(&store, CaptureDegradePolicy::kForwardLineage);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->capture_degraded);
  EXPECT_TRUE(store.degraded());
  // The skeleton (superstep + evolution) survives degradation...
  const std::vector<int> surviving = store.surviving_relations();
  ASSERT_EQ(surviving.size(), 2u);
  for (int rel : surviving) {
    const std::string& name = store.schema()[static_cast<size_t>(rel)].name;
    EXPECT_TRUE(name == "superstep" || name == "evolution") << name;
  }
  // ...and keeps being captured: one layer per superstep, with only
  // skeleton slices after the degradation point.
  EXPECT_EQ(store.num_layers(), stats->supersteps);
  auto last = store.GetLayer(store.num_layers() - 1);
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  for (const auto& slice : (*last)->slices) {
    const std::string& name =
        store.schema()[static_cast<size_t>(slice.rel)].name;
    EXPECT_TRUE(name == "superstep" || name == "evolution")
        << "non-skeleton slice '" << name << "' after degradation";
  }

  // A query over the dropped relations is still refused.
  recovery::FaultInjector::Global().Disarm();
  Session session(&graph_);
  auto query = BackwardQuery(session, store);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto run = session.RunOffline(&store, *query, EvalMode::kLayered);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("degraded capture"),
            std::string::npos);
}

class EngineFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    auto g = GenerateGrid(8, 8);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }

  Graph graph_;
};

TEST_F(EngineFaultTest, CheckpointWhileFlushingStaysByteIdentical) {
  // Checkpoints embed a store image cut at the barrier while the
  // background flusher is spilling the newest layers — the combination
  // the tsan CI job runs. The final image must match a plain in-memory,
  // single-threaded capture byte for byte.
  Session reference_session(&graph_);
  auto query = reference_session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ProvenanceStore reference;
  SsspProgram reference_sssp(0);
  auto reference_stats =
      reference_session.Capture(reference_sssp, *query, &reference);
  ASSERT_TRUE(reference_stats.ok()) << reference_stats.status().ToString();
  auto want = reference.SerializeToString();
  ASSERT_TRUE(want.ok());

  SessionOptions options;
  options.engine.num_threads = 4;
  options.engine.checkpoint_every = 1;
  options.engine.checkpoint_dir = dir_ + "/ckpt";
  options.engine.checkpoint_fingerprint = "checkpoint-while-flushing";
  std::error_code ec;
  std::filesystem::create_directories(options.engine.checkpoint_dir, ec);
  ASSERT_FALSE(ec);
  Session session(&graph_, options);
  ProvenanceStore store;
  storage::LayerStoreOptions storage_options = FastRetryOptions("spill");
  storage_options.flush_threads = 2;
  storage_options.mem_budget_bytes = 1;  // force spilling + eviction
  ASSERT_TRUE(store.ConfigureStorage(std::move(storage_options)).ok());
  SsspProgram sssp(0);
  auto stats = session.Capture(sssp, *query, &store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->checkpoints_written, 0);
  EXPECT_GT(store.SpilledLayerCount(), 0);
  auto got = store.SerializeToString();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *want);
}

TEST_F(EngineFaultTest, ShardDropIsCountedInRunStats) {
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("shard-drop:1").ok());
  SessionOptions options;
  options.engine.num_threads = 4;
  Session session(&graph_, options);
  PageRankProgram pagerank({.iterations = 5});
  auto stats = session.RunBaseline(pagerank);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->injected_faults, 1);
}

TEST_F(EngineFaultTest, SuperstepErrorFaultFailsTheRunCleanly) {
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("superstep:3").ok());
  Session session(&graph_);
  PageRankProgram pagerank({.iterations = 5});
  auto stats = session.RunBaseline(pagerank);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("superstep"), std::string::npos)
      << stats.status().ToString();
}

TEST_F(EngineFaultTest, GenericCapturePathRefusesCheckpointing) {
  SessionOptions options;
  options.engine.checkpoint_every = 2;
  options.engine.checkpoint_dir = dir_ + "/nope";
  Session session(&graph_, options);
  auto query = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ProvenanceStore store;
  SsspProgram sssp(0);
  auto stats = session.Capture(sssp, *query, &store, /*retention_window=*/2,
                               nullptr, /*use_fast_capture=*/false);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("fast-capture"), std::string::npos)
      << stats.status().ToString();
}

TEST_F(EngineFaultTest, CheckpointWriteFailureDoesNotKillTheRun) {
  // A failed checkpoint write is a loud warning + counter, never a run
  // failure: the analytic's results still arrive.
  ASSERT_TRUE(
      recovery::FaultInjector::Global().Arm("checkpoint-write:1+").ok());
  SessionOptions options;
  options.engine.checkpoint_every = 1;
  options.engine.checkpoint_dir = dir_ + "/failing";
  std::error_code ec;
  std::filesystem::create_directories(options.engine.checkpoint_dir, ec);
  ASSERT_FALSE(ec);
  Session session(&graph_, options);
  auto query = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ProvenanceStore store;
  SsspProgram sssp(0);
  auto stats = session.Capture(sssp, *query, &store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->checkpoints_written, 0);
  EXPECT_GT(stats->checkpoint_failures, 0);
}

// ---- Resilience-layer fault points (DESIGN.md §2.8) ----

/// Paged graph / vertex-state / checkpoint-read injection points: a
/// transient hit heals invisibly behind the retry ladder, a persistent
/// one exhausts the ladder (plus one reopen) and goes sticky with
/// coherent gave_up counters.
class ResilienceFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    auto g = GenerateGrid(8, 8);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }

  Result<std::unique_ptr<PagedBackend>> OpenPaged(const std::string& name) {
    const std::string path = dir_ + "/" + name + ".agp";
    ARIADNE_RETURN_NOT_OK(
        PagedBackend::CreateFrom(graph_, path, /*vertices_per_partition=*/16));
    PagedBackendOptions options;
    options.budget_bytes = 1;  // evict aggressively: every touch re-reads
    options.enable_prefetch = false;
    options.io_retry.backoff_base_ms = 0.01;  // keep tests fast
    return PagedBackend::Open(path, options);
  }

  Graph graph_;
};

TEST_F(ResilienceFaultTest, PagedPartitionReadTransientErrorHeals) {
  auto paged = OpenPaged("transient");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_TRUE(
      recovery::FaultInjector::Global().Arm("graph-partition-read:1").ok());
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    ASSERT_EQ((*paged)->OutDegree(v), graph_.OutDegree(v)) << v;
  }
  EXPECT_TRUE((*paged)->backend_error().ok());
  const GraphBackendStats stats = (*paged)->backend_stats();
  EXPECT_GE(stats.read_retries, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
  PagedBackend::ReleaseThreadLeases();
}

TEST_F(ResilienceFaultTest, PagedPartitionReadPermanentFailureGoesSticky) {
  auto paged = OpenPaged("sticky");
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ASSERT_TRUE(
      recovery::FaultInjector::Global().Arm("graph-partition-read:1+").ok());
  EXPECT_TRUE((*paged)->OutNeighbors(0).empty());
  EXPECT_FALSE((*paged)->backend_error().ok());
  const GraphBackendStats stats = (*paged)->backend_stats();
  EXPECT_GE(stats.read_retries, 2u);  // two ladders: before + after reopen
  EXPECT_GE(stats.fd_reopens, 1u);    // the reopen was attempted...
  EXPECT_GE(stats.gave_up, 1u);       // ...and the error still went sticky
  // Healing the fault does not resurrect the backend: the error stays
  // sticky (a degraded backend never silently self-repairs mid-run).
  recovery::FaultInjector::Global().Disarm();
  EXPECT_FALSE((*paged)->backend_error().ok());
  PagedBackend::ReleaseThreadLeases();
}

TEST_F(ResilienceFaultTest, VertexStatePageReadTransientErrorHeals) {
  ASSERT_TRUE(
      recovery::FaultInjector::Global().Arm("vstate-page-read:1").ok());
  SsspProgram sssp(0);
  EngineOptions options;
  options.paged_vertex_state = true;
  options.vertex_state_budget_bytes = 1 << 12;  // force eviction + reload
  options.vertex_state_dir = dir_;
  Engine<double, double> engine(&graph_, options);
  auto stats = engine.Run(sssp);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->vertex_state.read_retries, 1u);
  EXPECT_EQ(stats->vertex_state.gave_up, 0u);
}

TEST_F(ResilienceFaultTest, VertexStateWritebackTransientErrorHeals) {
  ASSERT_TRUE(
      recovery::FaultInjector::Global().Arm("vstate-page-write:1").ok());
  SsspProgram sssp(0);
  EngineOptions options;
  options.paged_vertex_state = true;
  options.vertex_state_budget_bytes = 1 << 12;  // dirty evictions write back
  options.vertex_state_dir = dir_;
  Engine<double, double> engine(&graph_, options);
  auto stats = engine.Run(sssp);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->vertex_state.write_retries, 1u);
  EXPECT_EQ(stats->vertex_state.gave_up, 0u);
}

TEST_F(ResilienceFaultTest, CheckpointReadTransientErrorHealsOnResume) {
  SessionOptions options;
  options.engine.checkpoint_every = 2;
  options.engine.checkpoint_dir = dir_ + "/ckpt";
  options.engine.checkpoint_fingerprint = "resilience-resume";
  std::error_code ec;
  std::filesystem::create_directories(options.engine.checkpoint_dir, ec);
  ASSERT_FALSE(ec);
  {
    Session session(&graph_, options);
    auto query = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ProvenanceStore store;
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *query, &store);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_GT(stats->checkpoints_written, 0);
  }
  // Resume hits the checkpoint read path: one transient error, healed.
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("checkpoint-read:1").ok());
  options.engine.resume = true;
  Session session(&graph_, options);
  auto query = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ProvenanceStore store;
  SsspProgram sssp(0);
  auto stats = session.Capture(sssp, *query, &store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->resumed_from_step, 0);
}

// ---- Probabilistic / transient injection DSL ----

TEST(FaultInjectorDslTest, ProbabilisticRuleValidation) {
  recovery::FaultInjector& injector = recovery::FaultInjector::Global();
  EXPECT_TRUE(injector.Arm("page-read@0.01", 7).ok());
  EXPECT_TRUE(injector.Arm("page-read@1.0:3", 7).ok());
  EXPECT_TRUE(injector.Arm("vstate-page-read@0.05:2:error", 7).ok());
  EXPECT_FALSE(injector.Arm("page-read@0", 7).ok());     // rate must be > 0
  EXPECT_FALSE(injector.Arm("page-read@1.5", 7).ok());   // ... and <= 1
  EXPECT_FALSE(injector.Arm("page-read@0.5:0", 7).ok()); // burst must be > 0
  EXPECT_FALSE(injector.Arm("page-read@", 7).ok());
  injector.Disarm();
}

TEST(FaultInjectorDslTest, RateOneFiresEveryHitAndBurstHeals) {
  recovery::FaultInjector& injector = recovery::FaultInjector::Global();
  ASSERT_TRUE(injector.Arm("p@1.0:2", 1).ok());
  // rate=1 triggers on every draw; burst=2 groups failures in pairs but
  // with certain re-trigger the net effect is: every hit fails.
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(injector.Hit("p").ok()) << "hit " << i;
  }
  EXPECT_EQ(injector.fired_count(), 6u);
  injector.Disarm();
}

TEST(FaultInjectorDslTest, SeededStreamReplaysExactly) {
  recovery::FaultInjector& injector = recovery::FaultInjector::Global();
  auto pattern = [&](uint64_t seed) {
    EXPECT_TRUE(injector.Arm("p@0.3", seed).ok());
    std::string fired;
    for (int i = 0; i < 64; ++i) {
      fired += injector.Hit("p").ok() ? '.' : 'X';
    }
    injector.Disarm();
    return fired;
  };
  const std::string a = pattern(42);
  const std::string b = pattern(42);
  const std::string c = pattern(43);
  EXPECT_EQ(a, b);  // same seed -> identical flake pattern
  EXPECT_NE(a, c);  // different seed -> a different (still ~30%) pattern
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultInjectorDslTest, BurstFailsConsecutiveHitsThenHeals) {
  recovery::FaultInjector& injector = recovery::FaultInjector::Global();
  // Find a seed whose first draw triggers, then verify the burst shape:
  // k consecutive failures, then the stream resumes drawing.
  for (uint64_t seed = 1; seed < 64; ++seed) {
    ASSERT_TRUE(injector.Arm("p@0.2:3", seed).ok());
    if (injector.Hit("p").ok()) {
      injector.Disarm();
      continue;
    }
    // Triggered on hit 1: hits 2 and 3 are the rest of the burst.
    EXPECT_FALSE(injector.Hit("p").ok());
    EXPECT_FALSE(injector.Hit("p").ok());
    injector.Disarm();
    return;
  }
  FAIL() << "no seed in [1,64) triggered p@0.2 on the first hit";
}

}  // namespace
}  // namespace ariadne
