// Focused tests of the evaluator's incremental machinery: delta drivers,
// epoch-guarded watermarks (retention / aggregate rebuilds), existential
// subgoals, and incremental aggregates — the optimizations DESIGN.md §6
// calls out.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pql/analysis.h"
#include "pql/evaluator.h"
#include "pql/parser.h"

namespace ariadne {
namespace {

Value I(int64_t v) { return Value(v); }

AnalyzedQuery MustAnalyze(const std::string& text,
                          const StoreSchema* store = nullptr) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto q =
      Analyze(*program, Catalog::Default(), UdfRegistry::Default(), store);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(SemiNaiveTest, IncrementalInsertsAcrossManyRounds) {
  // Transitive closure grown edge by edge; every intermediate state must
  // be a correct closure of the inserted prefix.
  StoreSchema schema{{{"link", 2}}};
  AnalyzedQuery q = MustAnalyze(R"(
    reach(x, y) <- link(x, y).
    reach(x, z) <- reach(x, y), link(y, z).
  )",
                                &schema);
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  const int link = q.PredId("link");
  const int reach = q.PredId("reach");
  // Chain 0 -> 1 -> ... -> 6 inserted one link per evaluation round.
  for (int64_t i = 0; i + 1 <= 6; ++i) {
    db.Rel(link).Insert({I(i), I(i + 1)});
    ASSERT_TRUE(eval.Evaluate(ctx).ok());
    // Closure of the prefix chain 0..i+1: (i+2 choose 2) pairs.
    const size_t n = static_cast<size_t>(i) + 2;
    EXPECT_EQ(db.RelIfExists(reach)->size(), n * (n - 1) / 2) << "after " << i;
  }
  EXPECT_TRUE(db.RelIfExists(reach)->Contains({I(0), I(6)}));
}

TEST(SemiNaiveTest, RetentionEpochForcesCorrectRescan) {
  // After RemoveIf rebuilds an input relation, the rule must rescan it
  // (row-index watermarks are invalid across epochs) without losing or
  // duplicating derivations.
  AnalyzedQuery q = MustAnalyze("p(x, i) <- superstep(x, i).");
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  Relation& steps = db.Rel(q.PredId("superstep"));
  for (int64_t s = 0; s < 6; ++s) steps.Insert({I(1), I(s)});
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("p"))->size(), 6u);

  // Trim old rows (epoch bump), add a new one, re-evaluate.
  steps.RemoveIf([](const Tuple& t) { return t[1].AsInt() < 4; });
  steps.Insert({I(1), I(6)});
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  // Derived results persist; the new fact is picked up exactly once.
  EXPECT_EQ(db.RelIfExists(q.PredId("p"))->size(), 7u);
  EXPECT_TRUE(db.RelIfExists(q.PredId("p"))->Contains({I(1), I(6)}));
}

TEST(SemiNaiveTest, IncrementalAggregateTracksGrowingInput) {
  StoreSchema schema{{{"obs", 3}}};
  AnalyzedQuery q = MustAnalyze(
      "total(x, SUM(e)) <- obs(x, y, e).\n"
      "peers(x, COUNT(y)) <- obs(x, y, e).",
      &schema);
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  const int obs = q.PredId("obs");
  db.Rel(obs).Insert({I(1), I(10), Value(0.5)});
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_TRUE(db.RelIfExists(q.PredId("total"))->Contains({I(1), Value(0.5)}));
  EXPECT_TRUE(db.RelIfExists(q.PredId("peers"))->Contains({I(1), I(1)}));

  // Incremental growth: old aggregate rows are replaced, not kept.
  db.Rel(obs).Insert({I(1), I(11), Value(0.25)});
  db.Rel(obs).Insert({I(1), I(10), Value(1.0)});  // same peer, new value
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  const Relation* total = db.RelIfExists(q.PredId("total"));
  EXPECT_EQ(total->size(), 1u);
  EXPECT_TRUE(total->Contains({I(1), Value(1.75)}));
  const Relation* peers = db.RelIfExists(q.PredId("peers"));
  EXPECT_EQ(peers->size(), 1u);
  EXPECT_TRUE(peers->Contains({I(1), I(2)}));  // distinct peers, not rows
}

TEST(SemiNaiveTest, IncrementalAggregateSurvivesInputRebuild) {
  StoreSchema schema{{{"obs", 3}}};
  AnalyzedQuery q = MustAnalyze("total(x, SUM(e)) <- obs(x, y, e).", &schema);
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  Relation& obs = db.Rel(q.PredId("obs"));
  obs.Insert({I(1), I(10), Value(2.0)});
  obs.Insert({I(1), I(11), Value(3.0)});
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_TRUE(db.RelIfExists(q.PredId("total"))->Contains({I(1), Value(5.0)}));
  // Rebuild the input (epoch bump): persistent state must reset, not
  // double count.
  obs.RemoveIf([](const Tuple& t) { return t[1] == Value(int64_t{10}); });
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  const Relation* total = db.RelIfExists(q.PredId("total"));
  EXPECT_EQ(total->size(), 1u);
  EXPECT_TRUE(total->Contains({I(1), Value(3.0)}));
}

TEST(SemiNaiveTest, ExistentialFlagComputedForDeadWitnessVars) {
  // fwd-lineage style: the witness variables (w, j) of the recursive atom
  // are dead, so the planner marks that plan position existential.
  StoreSchema schema{{{"seen", 3}}};
  AnalyzedQuery q = MustAnalyze(R"(
    out(x, i) <- receive-message(x, y, m, i), seen(y, w, j).
  )",
                                &schema);
  const CompiledRule& rule = q.rules()[0];
  bool found_existential = false;
  for (size_t k = 0; k < rule.eval_order.size(); ++k) {
    const CLiteral& lit = rule.body[rule.eval_order[k]];
    if (lit.kind == CLiteral::Kind::kAtom &&
        q.pred(lit.pred).name == "seen") {
      EXPECT_EQ(rule.existential[k], 1);
      found_existential = true;
    }
  }
  EXPECT_TRUE(found_existential);

  // Evaluation with many witnesses derives the same single head tuple.
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  for (int64_t j = 0; j < 50; ++j) {
    db.Rel(q.PredId("seen")).Insert({I(7), I(j), I(j)});
  }
  db.Rel(q.PredId("receive-message")).Insert({I(1), I(7), Value(0.5), I(3)});
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("out"))->size(), 1u);
}

TEST(SemiNaiveTest, HeadVariablesAreNeverExistential) {
  StoreSchema schema{{{"seen", 2}}};
  AnalyzedQuery q = MustAnalyze(
      "out(x, w) <- superstep(x, i), seen(x, w).", &schema);
  const CompiledRule& rule = q.rules()[0];
  for (size_t k = 0; k < rule.eval_order.size(); ++k) {
    const CLiteral& lit = rule.body[rule.eval_order[k]];
    if (lit.kind == CLiteral::Kind::kAtom &&
        q.pred(lit.pred).name == "seen") {
      // w flows into the head: every witness matters.
      EXPECT_EQ(rule.existential[k], 0);
    }
  }
  Database db(&q);
  EvalContext ctx;
  ctx.db = &db;
  RuleEvaluator eval(&q);
  db.Rel(q.PredId("superstep")).Insert({I(1), I(0)});
  db.Rel(q.PredId("seen")).Insert({I(1), I(10)});
  db.Rel(q.PredId("seen")).Insert({I(1), I(11)});
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("out"))->size(), 2u);
}

TEST(SemiNaiveTest, MaxStratumGatesEvaluation) {
  AnalyzedQuery q = MustAnalyze(R"(
    received(x, i) <- receive-message(x, y, m, i).
    quiet(x, i) <- superstep(x, i), !received(x, i).
  )");
  Database db(&q);
  db.Rel(q.PredId("superstep")).Insert({I(1), I(0)});
  RuleEvaluator eval(&q);
  EvalContext ctx;
  ctx.db = &db;
  ctx.max_stratum = 0;  // only the first stratum may run
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  const Relation* quiet = db.RelIfExists(q.PredId("quiet"));
  EXPECT_TRUE(quiet == nullptr || quiet->empty());
  // Raising the cap completes the evaluation.
  ctx.max_stratum = std::numeric_limits<int>::max();
  ASSERT_TRUE(eval.Evaluate(ctx).ok());
  EXPECT_EQ(db.RelIfExists(q.PredId("quiet"))->size(), 1u);
}

}  // namespace
}  // namespace ariadne
