// Behavioural tests of the QueryServer admission layer and scheduler:
// bounded-queue rejection, per-query deadlines, error accounting,
// shutdown semantics and stats coherence (DESIGN.md §2.6).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/ariadne.h"
#include "recovery/fault_injector.h"
#include "serve/server.h"
#include "serve/shared_scan.h"

namespace ariadne {
namespace {

/// In-memory chain SSSP capture — small enough that a query completes in
/// a handful of layer steps, which is all these tests need.
class ServeServerTest : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateChain(6);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    Session session(&graph_);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *capture, &store_);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    auto state = serve::ServiceState::Create(&graph_, &store_);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    state_ = state.MoveValue();
  }

  serve::ServeRequest BackwardRequest(const std::string& name) const {
    serve::ServeRequest request;
    request.name = name;
    request.text = queries::BackwardLineageFull();
    request.params = {{"alpha", Value(int64_t{5})},
                      {"sigma", Value(int64_t{5})}};
    return request;
  }

  Graph graph_;
  ProvenanceStore store_;
  std::unique_ptr<serve::ServiceState> state_;
};

TEST_F(ServeServerTest, CompletesSimpleQuery) {
  serve::QueryServer server(state_.get());
  serve::ServeResponse response = server.SubmitAndWait(BackwardRequest("q"));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.name, "q");
  EXPECT_GT(response.stats.result_tuples, 0);
  EXPECT_EQ(response.stats.supersteps, store_.num_layers());
  EXPECT_GE(response.exec_seconds, 0.0);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ServeServerTest, FullQueueRejectsWithOutOfRange) {
  serve::ServerOptions options;
  options.queue_capacity = 0;  // every submit bounces at admission
  serve::QueryServer server(state_.get(), options);
  serve::ServeResponse response = server.SubmitAndWait(BackwardRequest("q"));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST_F(ServeServerTest, DeadlineExpiryIsCountedSeparately) {
  serve::QueryServer server(state_.get());
  serve::ServeRequest request = BackwardRequest("late");
  // Already past its budget when the scheduler first looks at it.
  request.deadline_ms = 1e-6;
  serve::ServeResponse response = server.SubmitAndWait(std::move(request));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(ServeServerTest, ParseErrorCountsAsFailed) {
  serve::QueryServer server(state_.get());
  serve::ServeRequest request;
  request.name = "bad";
  request.text = "this is not pql (";
  serve::ServeResponse response = server.SubmitAndWait(std::move(request));
  EXPECT_FALSE(response.ok());
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST_F(ServeServerTest, ShutdownDrainsThenRejectsNewSubmits) {
  serve::QueryServer server(state_.get());
  auto inflight = server.Submit(BackwardRequest("before"));
  server.Shutdown();
  // The pre-shutdown query was drained, not dropped.
  serve::ServeResponse drained = inflight.get();
  EXPECT_TRUE(drained.ok()) << drained.status.ToString();
  serve::ServeResponse after = server.SubmitAndWait(BackwardRequest("after"));
  EXPECT_FALSE(after.ok());
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ServeServerTest, StatsStayCoherentOverMixedOutcomes) {
  serve::QueryServer server(state_.get());
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.Submit(BackwardRequest("ok" + std::to_string(i))));
  }
  serve::ServeRequest bad;
  bad.name = "bad";
  bad.text = "nonsense(";
  futures.push_back(server.Submit(std::move(bad)));
  for (auto& future : futures) future.get();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admitted + stats.coalesced, 5u);
  EXPECT_EQ(stats.completed + stats.failed + stats.expired, 5u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 1u);
  // Each evaluated (non-coalesced) query stepped every layer once.
  EXPECT_EQ(stats.query_steps,
            (4u - stats.coalesced) * static_cast<uint64_t>(store_.num_layers()));
  EXPECT_GE(stats.group_steps, static_cast<uint64_t>(store_.num_layers()));
  EXPECT_LE(stats.group_steps, stats.query_steps);
}

/// Identical concurrent requests coalesce onto one evaluation, and every
/// coalesced response carries the full (identical) result.
TEST_F(ServeServerTest, IdenticalInFlightQueriesCoalesce) {
  serve::QueryServer server(state_.get());
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(BackwardRequest("c" + std::to_string(i))));
  }
  std::vector<std::vector<std::string>> traces;
  for (auto& future : futures) {
    serve::ServeResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    traces.push_back(response.result.Table("back-trace")->ToSortedStrings());
    EXPECT_GT(response.stats.result_tuples, 0u);
  }
  for (size_t i = 1; i < traces.size(); ++i) EXPECT_EQ(traces[i], traces[0]);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  // All 8 were submitted back-to-back while the first was still layers
  // away from finishing, so at least some must have ridden it.
  EXPECT_GE(stats.coalesced, 1u);
  EXPECT_EQ(stats.admitted + stats.coalesced, 8u);
  EXPECT_EQ(stats.query_steps,
            stats.admitted * static_cast<uint64_t>(store_.num_layers()));
}

// ---- Resilience layer (DESIGN.md §2.8) ----

uint64_t ResolvedResponses(const serve::ServerStats& s) {
  return s.completed + s.failed + s.expired + s.rejected + s.shed;
}

/// Regression: a Submit racing Shutdown must resolve its promise with
/// Unavailable, never drop it — waiters on future.get() always wake.
TEST_F(ServeServerTest, SubmitRacingShutdownNeverDropsAPromise) {
  for (int round = 0; round < 8; ++round) {
    auto server =
        std::make_unique<serve::QueryServer>(state_.get());
    std::vector<std::future<serve::ServeResponse>> futures;
    std::mutex futures_mu;
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < 8; ++i) {
          auto future =
              server->Submit(BackwardRequest("r" + std::to_string(t * 8 + i)));
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(future));
        }
      });
    }
    server->Shutdown();  // races the submitters
    for (auto& thread : submitters) thread.join();
    for (auto& future : futures) {
      // get() must return for every future; post-shutdown bounces carry
      // Unavailable.
      serve::ServeResponse response = future.get();
      if (!response.ok()) {
        EXPECT_TRUE(response.status.IsUnavailable() ||
                    response.status.code() == StatusCode::kOutOfRange)
            << response.status.ToString();
      }
    }
    const serve::ServerStats stats = server->stats();
    EXPECT_EQ(stats.submitted, 32u);
    EXPECT_EQ(ResolvedResponses(stats), stats.submitted);
  }
}

class ServeFaultTest : public ServeServerTest {
 protected:
  void SetUp() override {
    ServeServerTest::SetUp();
    recovery::FaultInjector::Global().Disarm();
  }
  void TearDown() override { recovery::FaultInjector::Global().Disarm(); }

  serve::ServerOptions FastRetryOptions() const {
    serve::ServerOptions options;
    options.step_retry_backoff_ms = 0.01;
    // Long enough that a bounce test cannot accidentally land in the
    // half-open window on a slow machine.
    options.breaker_cooldown_ms = 250.0;
    return options;
  }
};

TEST_F(ServeFaultTest, TransientScanErrorIsRetriedInvisibly) {
  // One injected scan failure: attempt 1 fails, attempt 2 succeeds —
  // the client sees a normal result.
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("serve-scan:1").ok());
  serve::QueryServer server(state_.get(), FastRetryOptions());
  serve::ServeResponse response = server.SubmitAndWait(BackwardRequest("q"));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  const serve::ServerStats stats = server.stats();
  EXPECT_GE(stats.step_retries, 1u);
  EXPECT_EQ(stats.scan_failures, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ServeFaultTest, PersistentScanFailureTripsBreakerThenRecovers) {
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("serve-scan:1+").ok());
  serve::ServerOptions options = FastRetryOptions();
  options.breaker_threshold = 1;  // first exhausted scan trips
  serve::QueryServer server(state_.get(), options);

  serve::ServeResponse failed = server.SubmitAndWait(BackwardRequest("f"));
  EXPECT_FALSE(failed.ok());
  {
    const serve::ServerStats stats = server.stats();
    EXPECT_GE(stats.scan_failures, 1u);
    EXPECT_EQ(stats.breaker_trips, 1u);
    EXPECT_GE(stats.step_retries, 1u);  // the ladder ran before tripping
  }
  const serve::HealthSnapshot tripped = server.health();
  EXPECT_EQ(tripped.breaker, serve::BreakerState::kOpen);
  EXPECT_GT(tripped.retry_after_ms, 0.0);
  EXPECT_GE(tripped.breaker_trips, 1u);

  // While open (cooldown 20ms), new queries bounce with Unavailable.
  serve::ServeResponse bounced = server.SubmitAndWait(BackwardRequest("b"));
  EXPECT_FALSE(bounced.ok());
  EXPECT_TRUE(bounced.status.IsUnavailable()) << bounced.status.ToString();
  EXPECT_NE(bounced.status.message().find("retry after"), std::string::npos);
  EXPECT_GE(server.stats().shed, 1u);

  // Heal the store and wait out the cooldown: the next query is the
  // half-open probe; its healthy scan closes the breaker.
  recovery::FaultInjector::Global().Disarm();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  serve::ServeResponse probe = server.SubmitAndWait(BackwardRequest("p"));
  ASSERT_TRUE(probe.ok()) << probe.status.ToString();
  EXPECT_EQ(server.health().breaker, serve::BreakerState::kClosed);
  EXPECT_GE(server.stats().breaker_probes, 1u);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(ResolvedResponses(stats), stats.submitted);
}

TEST_F(ServeFaultTest, FailedProbeReopensTheBreaker) {
  ASSERT_TRUE(recovery::FaultInjector::Global().Arm("serve-scan:1+").ok());
  serve::ServerOptions options = FastRetryOptions();
  options.breaker_threshold = 1;
  serve::QueryServer server(state_.get(), options);
  EXPECT_FALSE(server.SubmitAndWait(BackwardRequest("f")).ok());
  ASSERT_EQ(server.health().breaker, serve::BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Store still broken: the probe's scan fails and re-opens immediately.
  EXPECT_FALSE(server.SubmitAndWait(BackwardRequest("p")).ok());
  const serve::HealthSnapshot health = server.health();
  EXPECT_EQ(health.breaker, serve::BreakerState::kOpen);
  EXPECT_GE(server.stats().breaker_trips, 2u);
}

TEST_F(ServeServerTest, HealthSnapshotTracksLifecycle) {
  serve::QueryServer server(state_.get());
  serve::HealthSnapshot fresh = server.health();
  EXPECT_TRUE(fresh.accepting);
  EXPECT_EQ(fresh.breaker, serve::BreakerState::kClosed);
  EXPECT_EQ(fresh.queue_depth, 0u);
  EXPECT_EQ(fresh.est_query_ms, 0.0);
  EXPECT_FALSE(fresh.ToString().empty());

  ASSERT_TRUE(server.SubmitAndWait(BackwardRequest("q")).ok());
  EXPECT_GT(server.health().est_query_ms, 0.0);  // EWMA fed by completion

  server.Shutdown();
  EXPECT_FALSE(server.health().accepting);
}

TEST_F(ServeServerTest, DeadlineAwareShedBouncesAtAdmission) {
  serve::ServerOptions options;
  options.max_inflight = 1;  // every waiting query is a full wave
  serve::QueryServer server(state_.get(), options);
  // Feed the EWMA with one completed query so the wait estimate is real.
  ASSERT_TRUE(server.SubmitAndWait(BackwardRequest("warmup")).ok());

  // A burst of distinct (non-coalescing) queries builds a backlog; a
  // tiny-deadline victim submitted behind it is shed at admission.
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 24; ++i) {
    serve::ServeRequest request = BackwardRequest("w" + std::to_string(i));
    request.params[0].second = Value(static_cast<int64_t>(i % 5));
    futures.push_back(server.Submit(std::move(request)));
  }
  uint64_t shed_seen = 0;
  for (int i = 0; i < 24; ++i) {
    serve::ServeRequest victim = BackwardRequest("v" + std::to_string(i));
    victim.deadline_ms = 1e-7;  // any backlog at all exceeds this
    futures.push_back(server.Submit(std::move(victim)));
    shed_seen = server.stats().shed;
    if (shed_seen > 0) break;
  }
  for (auto& future : futures) future.get();
  const serve::ServerStats stats = server.stats();
  EXPECT_GE(stats.shed, 1u) << "no victim was shed at admission";
  EXPECT_EQ(ResolvedResponses(stats), stats.submitted);
}

TEST_F(ServeServerTest, TimedShutdownFailsFastAndResolvesEverything) {
  serve::ServerOptions options;
  options.max_inflight = 1;
  serve::QueryServer server(state_.get(), options);
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    serve::ServeRequest request = BackwardRequest("q" + std::to_string(i));
    request.params[0].second = Value(static_cast<int64_t>(i % 5));
    futures.push_back(server.Submit(std::move(request)));
  }
  server.Shutdown(/*drain_timeout_ms=*/0.0);  // fail-fast immediately
  for (auto& future : futures) {
    serve::ServeResponse response = future.get();  // must not hang
    if (!response.ok()) {
      EXPECT_TRUE(response.status.IsUnavailable())
          << response.status.ToString();
    }
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(ResolvedResponses(stats), stats.submitted);
}

TEST(UnionNeededRelsTest, EmptyMeansAllRelations) {
  EXPECT_TRUE(serve::UnionNeededRels({}, {1, 2}).empty());
  EXPECT_TRUE(serve::UnionNeededRels({1, 2}, {}).empty());
  EXPECT_EQ(serve::UnionNeededRels({1, 3}, {2, 3}),
            (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace ariadne
