// Behavioural tests of the QueryServer admission layer and scheduler:
// bounded-queue rejection, per-query deadlines, error accounting,
// shutdown semantics and stats coherence (DESIGN.md §2.6).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ariadne.h"
#include "serve/server.h"
#include "serve/shared_scan.h"

namespace ariadne {
namespace {

/// In-memory chain SSSP capture — small enough that a query completes in
/// a handful of layer steps, which is all these tests need.
class ServeServerTest : public testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateChain(6);
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    Session session(&graph_);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *capture, &store_);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    auto state = serve::ServiceState::Create(&graph_, &store_);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    state_ = state.MoveValue();
  }

  serve::ServeRequest BackwardRequest(const std::string& name) const {
    serve::ServeRequest request;
    request.name = name;
    request.text = queries::BackwardLineageFull();
    request.params = {{"alpha", Value(int64_t{5})},
                      {"sigma", Value(int64_t{5})}};
    return request;
  }

  Graph graph_;
  ProvenanceStore store_;
  std::unique_ptr<serve::ServiceState> state_;
};

TEST_F(ServeServerTest, CompletesSimpleQuery) {
  serve::QueryServer server(state_.get());
  serve::ServeResponse response = server.SubmitAndWait(BackwardRequest("q"));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.name, "q");
  EXPECT_GT(response.stats.result_tuples, 0);
  EXPECT_EQ(response.stats.supersteps, store_.num_layers());
  EXPECT_GE(response.exec_seconds, 0.0);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ServeServerTest, FullQueueRejectsWithOutOfRange) {
  serve::ServerOptions options;
  options.queue_capacity = 0;  // every submit bounces at admission
  serve::QueryServer server(state_.get(), options);
  serve::ServeResponse response = server.SubmitAndWait(BackwardRequest("q"));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST_F(ServeServerTest, DeadlineExpiryIsCountedSeparately) {
  serve::QueryServer server(state_.get());
  serve::ServeRequest request = BackwardRequest("late");
  // Already past its budget when the scheduler first looks at it.
  request.deadline_ms = 1e-6;
  serve::ServeResponse response = server.SubmitAndWait(std::move(request));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(ServeServerTest, ParseErrorCountsAsFailed) {
  serve::QueryServer server(state_.get());
  serve::ServeRequest request;
  request.name = "bad";
  request.text = "this is not pql (";
  serve::ServeResponse response = server.SubmitAndWait(std::move(request));
  EXPECT_FALSE(response.ok());
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST_F(ServeServerTest, ShutdownDrainsThenRejectsNewSubmits) {
  serve::QueryServer server(state_.get());
  auto inflight = server.Submit(BackwardRequest("before"));
  server.Shutdown();
  // The pre-shutdown query was drained, not dropped.
  serve::ServeResponse drained = inflight.get();
  EXPECT_TRUE(drained.ok()) << drained.status.ToString();
  serve::ServeResponse after = server.SubmitAndWait(BackwardRequest("after"));
  EXPECT_FALSE(after.ok());
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(ServeServerTest, StatsStayCoherentOverMixedOutcomes) {
  serve::QueryServer server(state_.get());
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.Submit(BackwardRequest("ok" + std::to_string(i))));
  }
  serve::ServeRequest bad;
  bad.name = "bad";
  bad.text = "nonsense(";
  futures.push_back(server.Submit(std::move(bad)));
  for (auto& future : futures) future.get();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admitted + stats.coalesced, 5u);
  EXPECT_EQ(stats.completed + stats.failed + stats.expired, 5u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 1u);
  // Each evaluated (non-coalesced) query stepped every layer once.
  EXPECT_EQ(stats.query_steps,
            (4u - stats.coalesced) * static_cast<uint64_t>(store_.num_layers()));
  EXPECT_GE(stats.group_steps, static_cast<uint64_t>(store_.num_layers()));
  EXPECT_LE(stats.group_steps, stats.query_steps);
}

/// Identical concurrent requests coalesce onto one evaluation, and every
/// coalesced response carries the full (identical) result.
TEST_F(ServeServerTest, IdenticalInFlightQueriesCoalesce) {
  serve::QueryServer server(state_.get());
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(BackwardRequest("c" + std::to_string(i))));
  }
  std::vector<std::vector<std::string>> traces;
  for (auto& future : futures) {
    serve::ServeResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    traces.push_back(response.result.Table("back-trace")->ToSortedStrings());
    EXPECT_GT(response.stats.result_tuples, 0u);
  }
  for (size_t i = 1; i < traces.size(); ++i) EXPECT_EQ(traces[i], traces[0]);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  // All 8 were submitted back-to-back while the first was still layers
  // away from finishing, so at least some must have ridden it.
  EXPECT_GE(stats.coalesced, 1u);
  EXPECT_EQ(stats.admitted + stats.coalesced, 8u);
  EXPECT_EQ(stats.query_steps,
            stats.admitted * static_cast<uint64_t>(store_.num_layers()));
}

TEST(UnionNeededRelsTest, EmptyMeansAllRelations) {
  EXPECT_TRUE(serve::UnionNeededRels({}, {1, 2}).empty());
  EXPECT_TRUE(serve::UnionNeededRels({1, 2}, {}).empty());
  EXPECT_EQ(serve::UnionNeededRels({1, 3}, {2, 3}),
            (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace ariadne
