// Determinism of the sharded owner-computes engine (DESIGN.md §2): vertex
// values, run statistics, and captured provenance must be identical —
// bit-for-bit — for any thread count, chunk size, shard multiplier, and
// routing mode. CI also runs this binary under ThreadSanitizer (the
// `tsan` preset) to keep the lock-free merge phase race-clean.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/serialize.h"
#include "core/ariadne.h"

namespace ariadne {
namespace {

Graph TestWeb() {
  auto g = GenerateRmat({.scale = 8, .avg_degree = 8, .seed = 1234});
  ARIADNE_CHECK(g.ok());
  return std::move(*g);
}

template <typename P, typename MakeProgram>
std::vector<typename P::ValueType> RunWith(const Graph& g, EngineOptions options,
                                           MakeProgram make) {
  Engine<typename P::ValueType, typename P::MessageType> engine(&g, options);
  P program = make();
  auto stats = engine.Run(program);
  ARIADNE_CHECK(stats.ok());
  return {engine.values().begin(), engine.values().end()};
}

// ----------------------------------------- values identical across threads

class ThreadCountTest : public testing::TestWithParam<size_t> {};

TEST_P(ThreadCountTest, PageRankBitIdentical) {
  const Graph g = TestWeb();
  EngineOptions reference;
  auto ref = RunWith<PageRankProgram>(g, reference, [] {
    return PageRankProgram({.iterations = 10});
  });
  EngineOptions options;
  options.num_threads = GetParam();
  auto values = RunWith<PageRankProgram>(g, options, [] {
    return PageRankProgram({.iterations = 10});
  });
  ASSERT_EQ(values.size(), ref.size());
  for (size_t v = 0; v < ref.size(); ++v) {
    // EXPECT_EQ, not EXPECT_NEAR: delivery order is serial order for any
    // thread count, so the floating-point folds are bit-identical.
    EXPECT_EQ(values[v], ref[v]) << "vertex " << v;
  }
}

TEST_P(ThreadCountTest, PageRankWithAggregatorBitIdentical) {
  // redistribute_dangling folds a global double aggregator back into every
  // rank: exercises the chunk-ordered aggregator fold.
  const Graph g = TestWeb();
  PageRankOptions pr{.iterations = 8, .redistribute_dangling = true};
  auto ref = RunWith<PageRankProgram>(g, EngineOptions{},
                                      [&] { return PageRankProgram(pr); });
  EngineOptions options;
  options.num_threads = GetParam();
  auto values = RunWith<PageRankProgram>(g, options,
                                         [&] { return PageRankProgram(pr); });
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(values[v], ref[v]) << "vertex " << v;
  }
}

TEST_P(ThreadCountTest, SsspIdenticalWithAndWithoutCombiner) {
  const Graph g = TestWeb();
  for (bool use_combiner : {false, true}) {
    auto ref = RunWith<SsspProgram>(g, EngineOptions{}, [&] {
      return SsspProgram(0, use_combiner);
    });
    EngineOptions options;
    options.num_threads = GetParam();
    auto values = RunWith<SsspProgram>(g, options, [&] {
      return SsspProgram(0, use_combiner);
    });
    for (size_t v = 0; v < ref.size(); ++v) {
      EXPECT_EQ(values[v], ref[v])
          << "vertex " << v << " combiner=" << use_combiner;
    }
  }
}

TEST_P(ThreadCountTest, WccIdenticalAcrossChunkAndShardGeometry) {
  const Graph g = TestWeb();
  auto ref = RunWith<WccProgram>(g, EngineOptions{}, [] { return WccProgram(); });
  for (size_t chunk_size : {size_t{1}, size_t{64}, size_t{4096}}) {
    for (size_t shard_multiplier : {size_t{1}, size_t{7}}) {
      EngineOptions options;
      options.num_threads = GetParam();
      options.chunk_size = chunk_size;
      options.shard_multiplier = shard_multiplier;
      auto values = RunWith<WccProgram>(g, options, [] { return WccProgram(); });
      for (size_t v = 0; v < ref.size(); ++v) {
        ASSERT_EQ(values[v], ref[v])
            << "vertex " << v << " chunk=" << chunk_size
            << " shards/worker=" << shard_multiplier;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         testing::Values(size_t{2}, size_t{4}, size_t{8}));

// --------------------------------------------- routing-mode equivalence

TEST(RoutingModeTest, GlobalLockMatchesShardedValues) {
  const Graph g = TestWeb();
  EngineOptions sharded;
  sharded.num_threads = 4;
  auto a = RunWith<SsspProgram>(g, sharded, [] { return SsspProgram(0); });
  EngineOptions locked;
  locked.num_threads = 4;
  locked.routing = MessageRouting::kGlobalLock;
  auto b = RunWith<SsspProgram>(g, locked, [] { return SsspProgram(0); });
  for (size_t v = 0; v < a.size(); ++v) EXPECT_EQ(a[v], b[v]);
}

// -------------------------------------------------- dropped-message stats

/// Vertex 0 sends one message to a configurable (possibly invalid) target
/// every superstep 0; everyone else stays quiet.
class WildSenderProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  explicit WildSenderProgram(std::vector<VertexId> targets)
      : targets_(std::move(targets)) {}
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    if (ctx.superstep() == 0 && ctx.id() == 0) {
      for (VertexId t : targets_) ctx.SendMessage(t, 7);
    }
    for (int64_t m : messages) ctx.SetValue(ctx.value() + m);
    ctx.VoteToHalt();
  }

 private:
  std::vector<VertexId> targets_;
};

TEST(DroppedMessageTest, OutOfRangeTargetsAreCountedNotSilent) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  for (auto routing : {MessageRouting::kSharded, MessageRouting::kGlobalLock}) {
    EngineOptions options;
    options.routing = routing;
    options.num_threads = 2;
    Engine<int64_t, int64_t> engine(&*g, options);
    WildSenderProgram program({-1, 2, 1000, 3});
    auto stats = engine.Run(program);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->dropped_messages, 2);  // -1 and 1000
    EXPECT_EQ(stats->total_messages, 4);    // drops still count as sends
    EXPECT_EQ(engine.value(2), 7);
    EXPECT_EQ(engine.value(3), 7);
  }
}

TEST(DroppedMessageTest, CleanRunReportsZero) {
  auto g = GenerateCycle(8);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  WildSenderProgram program({1});
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->dropped_messages, 0);
}

// ------------------------------------------------------ combiner plumbing

/// Every vertex sends its id to vertex 0; vertex 0 sums what it receives.
/// Under a SumCombiner the inbox collapses to one message but the sum is
/// exact (integer payloads), for any chunk/shard/thread geometry.
class FanInProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    if (ctx.superstep() == 0) {
      ctx.SendMessage(0, ctx.id());
    } else {
      int64_t sum = 0;
      for (int64_t m : messages) sum += m;
      ctx.SetValue(sum);
      max_inbox_ = std::max(max_inbox_, messages.size());
    }
    ctx.VoteToHalt();
  }
  const MessageCombiner<int64_t>* combiner() const override {
    return &combiner_;
  }
  size_t max_inbox() const { return max_inbox_; }

 private:
  SumCombiner<int64_t> combiner_;
  size_t max_inbox_ = 0;
};

TEST(CombineStatsTest, SenderAndOwnerCombiningBothHit) {
  auto g = GenerateCycle(64);
  ASSERT_TRUE(g.ok());
  const int64_t expected = 64 * 63 / 2;
  for (bool sender_side : {true, false}) {
    EngineOptions options;
    options.num_threads = 4;
    options.chunk_size = 8;  // 8 chunks: forces cross-chunk owner combining
    options.sender_side_combining = sender_side;
    Engine<int64_t, int64_t> engine(&*g, options);
    FanInProgram program;
    auto stats = engine.Run(program);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(engine.value(0), expected) << "sender_side=" << sender_side;
    EXPECT_EQ(program.max_inbox(), 1u);
    // All 64 vertices send (vertex 0 includes itself); 64 messages fold
    // into 1 delivered message: 63 combine hits, split between the sender
    // side and the owner merge (or all on the owner merge when
    // sender-side combining is off).
    EXPECT_EQ(stats->combine_hits, 63);
  }
}

// ------------------------------------------- provenance byte determinism

std::string CaptureBytes(const Graph& g, size_t threads) {
  SessionOptions session_options;
  session_options.engine.num_threads = threads;
  session_options.engine.chunk_size = 32;  // many chunks even on small graphs
  Session session(&g, session_options);
  auto query = session.PrepareOnline(queries::CaptureFull());
  ARIADNE_CHECK(query.ok());
  ProvenanceStore store;
  SsspProgram sssp(0);
  ARIADNE_CHECK(session.Capture(sssp, *query, &store).ok());
  BinaryWriter writer;
  SerializeLayer(store.static_data(), writer);
  for (int i = 0; i < store.num_layers(); ++i) {
    auto layer = store.GetLayer(i);
    ARIADNE_CHECK(layer.ok());
    SerializeLayer(**layer, writer);
  }
  return writer.MoveData();
}

TEST(CaptureDeterminismTest, FullCaptureBytesIdenticalAcrossThreadCounts) {
  const Graph g = TestWeb();
  const std::string reference = CaptureBytes(g, 1);
  ASSERT_FALSE(reference.empty());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    EXPECT_EQ(CaptureBytes(g, threads), reference) << "threads=" << threads;
  }
}

// ----------------------------------------------------- per-phase timings

TEST(PhaseStatsTest, ShardedRunsRecordPhaseTimings) {
  const Graph g = TestWeb();
  EngineOptions options;
  options.num_threads = 2;
  Engine<double, double> engine(&g, options);
  PageRankProgram program({.iterations = 5});
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->compute_seconds, 0.0);
  EXPECT_GT(stats->merge_seconds, 0.0);
  ASSERT_FALSE(stats->steps.empty());
  for (const auto& step : stats->steps) {
    EXPECT_GE(step.seconds, step.compute_seconds + step.merge_seconds);
  }
}

}  // namespace
}  // namespace ariadne
