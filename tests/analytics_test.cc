#include <gtest/gtest.h>

#include <queue>

#include "analytics/als.h"
#include "analytics/linalg.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/value_traits.h"
#include "analytics/wcc.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace ariadne {
namespace {

// ------------------------------------------------------------------ linalg

TEST(LinalgTest, SolveLinearKnownSystem) {
  // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
  auto x = SolveLinear({2, 1, 1, 3}, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(LinalgTest, SolveLinearSingularRejected) {
  EXPECT_FALSE(SolveLinear({1, 2, 2, 4}, {1, 2}).ok());
  EXPECT_FALSE(SolveLinear({1, 2, 3}, {1, 2}).ok());  // bad dims
}

TEST(LinalgTest, SolveLinearNeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  auto x = SolveLinear({0, 1, 1, 0}, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-9);
  EXPECT_NEAR((*x)[1], 2.0, 1e-9);
}

TEST(LinalgTest, NormsAndErrors) {
  EXPECT_DOUBLE_EQ(Dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(LpNorm({3, -4}, 2), 5.0);
  EXPECT_DOUBLE_EQ(LpNorm({3, -4}, 1), 7.0);
  EXPECT_DOUBLE_EQ(RelativeError({1, 1}, {1, 1}, 2), 0.0);
  EXPECT_GT(RelativeError({1, 1}, {2, 1}, 2), 0.0);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
}

// ----------------------------------------------------------------- PageRank

TEST(PageRankTest, MassConservedWithDanglingRedistribution) {
  auto g = GenerateRmat({.scale = 8, .avg_degree = 6, .seed = 3});
  ASSERT_TRUE(g.ok());
  PageRankOptions opts;
  opts.iterations = 15;
  opts.redistribute_dangling = true;
  PageRankProgram program(opts);
  Engine<double, double> engine(&*g);
  ASSERT_TRUE(engine.Run(program).ok());
  double mass = 0;
  for (double r : engine.values()) mass += r;
  EXPECT_NEAR(mass, static_cast<double>(g->num_vertices()),
              0.01 * static_cast<double>(g->num_vertices()));
}

TEST(PageRankTest, CycleIsUniform) {
  auto g = GenerateCycle(10);
  ASSERT_TRUE(g.ok());
  PageRankProgram program({.iterations = 30});
  Engine<double, double> engine(&*g);
  ASSERT_TRUE(engine.Run(program).ok());
  for (double r : engine.values()) EXPECT_NEAR(r, 1.0, 1e-6);
}

TEST(PageRankTest, RunsExactlyIterationsPlusOneSupersteps) {
  auto g = GenerateCycle(5);
  ASSERT_TRUE(g.ok());
  PageRankProgram program({.iterations = 7});
  Engine<double, double> engine(&*g);
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 8);
}

TEST(PageRankTest, ApproxCloseToExactAndCheaper) {
  auto g = GenerateRmat({.scale = 10, .avg_degree = 8, .seed = 21});
  ASSERT_TRUE(g.ok());
  PageRankOptions opts;
  opts.iterations = 20;
  PageRankProgram exact(opts);
  Engine<double, double> exact_engine(&*g);
  auto exact_stats = exact_engine.Run(exact);
  ASSERT_TRUE(exact_stats.ok());

  ApproxPageRankProgram approx(opts, /*epsilon=*/0.01);
  Engine<ApproxPageRankState, double> approx_engine(&*g);
  auto approx_stats = approx_engine.Run(approx);
  ASSERT_TRUE(approx_stats.ok());

  std::vector<double> exact_ranks(exact_engine.values().begin(),
                                  exact_engine.values().end());
  std::vector<double> approx_ranks;
  approx_ranks.reserve(exact_ranks.size());
  for (const auto& s : approx_engine.values()) approx_ranks.push_back(s.rank);

  EXPECT_LT(RelativeError(exact_ranks, approx_ranks, 2), 0.05);
  EXPECT_LT(approx_stats->total_messages, exact_stats->total_messages);
}

// ------------------------------------------------------------------- SSSP

std::vector<double> Dijkstra(const Graph& g, VertexId source) {
  std::vector<double> dist(static_cast<size_t>(g.num_vertices()),
                           kInfiniteDistance);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<size_t>(source)] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(v)]) continue;
    auto nbrs = g.OutNeighbors(v);
    auto weights = g.OutWeights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const double nd = d + weights[i];
      if (nd < dist[static_cast<size_t>(nbrs[i])]) {
        dist[static_cast<size_t>(nbrs[i])] = nd;
        heap.push({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

TEST(SsspTest, MatchesDijkstraOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto g = GenerateRmat({.scale = 8, .avg_degree = 6, .seed = seed});
    ASSERT_TRUE(g.ok());
    SsspProgram program(/*source=*/0);
    Engine<double, double> engine(&*g);
    ASSERT_TRUE(engine.Run(program).ok());
    const auto expected = Dijkstra(*g, 0);
    for (VertexId v = 0; v < g->num_vertices(); ++v) {
      EXPECT_NEAR(engine.value(v), expected[static_cast<size_t>(v)], 1e-9)
          << "vertex " << v << " seed " << seed;
    }
  }
}

TEST(SsspTest, UnreachableStaysInfinite) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  SsspProgram program(/*source=*/2);
  Engine<double, double> engine(&*g);
  ASSERT_TRUE(engine.Run(program).ok());
  EXPECT_EQ(engine.value(0), kInfiniteDistance);
  EXPECT_EQ(engine.value(1), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(engine.value(2), 0.0);
  EXPECT_DOUBLE_EQ(engine.value(3), 1.0);
}

TEST(SsspTest, CombinerGivesSameDistances) {
  auto g = GenerateRmat({.scale = 8, .avg_degree = 8, .seed = 9});
  ASSERT_TRUE(g.ok());
  SsspProgram plain(0, /*use_combiner=*/false);
  Engine<double, double> e1(&*g);
  ASSERT_TRUE(e1.Run(plain).ok());
  SsspProgram combined(0, /*use_combiner=*/true);
  Engine<double, double> e2(&*g);
  ASSERT_TRUE(e2.Run(combined).ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(e1.value(v), e2.value(v));
  }
}

TEST(SsspTest, ApproxWithinAdditiveEpsilonPerHop) {
  auto g = GenerateRmat({.scale = 9, .avg_degree = 8, .seed = 4});
  ASSERT_TRUE(g.ok());
  const double eps = 0.1;
  SsspProgram exact(0);
  Engine<double, double> e1(&*g);
  auto s1 = e1.Run(exact);
  ASSERT_TRUE(s1.ok());
  ApproxSsspProgram approx(0, eps);
  Engine<double, double> e2(&*g);
  auto s2 = e2.Run(approx);
  ASSERT_TRUE(s2.ok());
  int64_t reached = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    if (e1.value(v) == kInfiniteDistance) {
      EXPECT_EQ(e2.value(v), kInfiniteDistance);
      continue;
    }
    ++reached;
    EXPECT_GE(e2.value(v) + 1e-12, e1.value(v));  // never shorter than exact
    // Approximation error is bounded by eps per relaxation hop; use a
    // generous structural bound instead of an exact constant.
    EXPECT_LE(e2.value(v), e1.value(v) + eps * 64);
  }
  EXPECT_GT(reached, 0);
  EXPECT_LE(s2->total_messages, s1->total_messages);
}

// -------------------------------------------------------------------- WCC

TEST(WccTest, MatchesUnionFind) {
  auto g = GenerateErdosRenyi(300, 400, 8);
  ASSERT_TRUE(g.ok());
  WccProgram program;
  Engine<int64_t, int64_t> engine(&*g);
  ASSERT_TRUE(engine.Run(program).ok());

  // Reference union-find over undirected edges.
  std::vector<VertexId> parent(static_cast<size_t>(g->num_vertices()));
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<VertexId>(i);
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[static_cast<size_t>(v)] != v) {
      parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
      v = parent[static_cast<size_t>(v)];
    }
    return v;
  };
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (VertexId u : g->OutNeighbors(v)) {
      parent[static_cast<size_t>(find(u))] = find(v);
    }
  }
  // Same component <=> same label.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (VertexId u : g->OutNeighbors(v)) {
      EXPECT_EQ(engine.value(v), engine.value(u));
    }
  }
  // Label is the smallest id in the component.
  std::unordered_map<VertexId, int64_t> min_of_root;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    const VertexId root = find(v);
    auto it = min_of_root.find(root);
    if (it == min_of_root.end() || v < it->second) min_of_root[root] = v;
  }
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(engine.value(v), min_of_root[find(v)]);
  }
}

TEST(WccTest, ApproxWccBreaksComponents) {
  // A chain has many label improvements of exactly 1; suppressing them
  // must leave wrong labels (the paper's negative result for WCC).
  auto g = GenerateChain(64);
  ASSERT_TRUE(g.ok());
  ApproxWccProgram program(/*epsilon=*/1);
  Engine<int64_t, int64_t> engine(&*g);
  ASSERT_TRUE(engine.Run(program).ok());
  int64_t wrong = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    if (engine.value(v) != 0) ++wrong;
  }
  EXPECT_GT(wrong, 0);
}

// -------------------------------------------------------------------- ALS

TEST(AlsTest, TrainingErrorDecreases) {
  BipartiteRatingsOptions gopts;
  gopts.num_users = 120;
  gopts.num_items = 40;
  gopts.ratings_per_user = 10;
  auto r = GenerateBipartiteRatings(gopts);
  ASSERT_TRUE(r.ok());

  AlsOptions opts;
  opts.num_features = 5;
  opts.max_iterations = 5;
  opts.tolerance = 0;  // run all iterations
  AlsProgram program(opts, r->num_users);
  Engine<std::vector<double>, std::vector<double>> engine(&r->graph);
  ASSERT_TRUE(engine.Run(program).ok());

  const double trained = AlsRmse(r->graph, r->num_users, engine.values());
  // Untrained baseline: initial random features.
  std::vector<std::vector<double>> initial;
  initial.reserve(static_cast<size_t>(r->graph.num_vertices()));
  for (VertexId v = 0; v < r->graph.num_vertices(); ++v) {
    initial.push_back(program.InitialValue(v, r->graph));
  }
  const double untrained = AlsRmse(r->graph, r->num_users, initial);
  EXPECT_LT(trained, untrained);
  EXPECT_LT(trained, 1.0);  // ratings in [0,5]; the model must fit decently
  EXPECT_GT(program.last_rmse(), 0.0);
}

TEST(AlsTest, ToleranceStopsEarly) {
  auto r = GenerateBipartiteRatings(
      {.num_users = 60, .num_items = 20, .ratings_per_user = 8});
  ASSERT_TRUE(r.ok());
  AlsOptions opts;
  opts.max_iterations = 50;
  opts.tolerance = 0.5;  // very loose: stop almost immediately
  AlsProgram program(opts, r->num_users);
  Engine<std::vector<double>, std::vector<double>> engine(&r->graph);
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->supersteps, 20);
}

TEST(AlsTest, AlternatingSchedule) {
  auto r = GenerateBipartiteRatings(
      {.num_users = 30, .num_items = 10, .ratings_per_user = 5});
  ASSERT_TRUE(r.ok());
  AlsOptions opts;
  opts.max_iterations = 3;
  opts.tolerance = 0;
  AlsProgram program(opts, r->num_users);
  Engine<std::vector<double>, std::vector<double>> engine(&r->graph);
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  // Superstep 0 activates all; afterwards the two sides alternate, so the
  // active count per step is one side or the other.
  for (const auto& step : stats->steps) {
    if (step.step == 0) continue;
    EXPECT_TRUE(step.active_vertices == r->num_users ||
                step.active_vertices == r->num_items)
        << "superstep " << step.step << " active " << step.active_vertices;
  }
}

// -------------------------------------------------------------- ValueTraits

TEST(ValueTraitsTest, Conversions) {
  EXPECT_EQ(ValueTraits<double>::ToValue(1.5), Value(1.5));
  EXPECT_EQ(ValueTraits<int64_t>::ToValue(7), Value(int64_t{7}));
  EXPECT_EQ(ValueTraits<std::vector<double>>::ToValue({1, 2}),
            Value(std::vector<double>{1, 2}));
  ApproxPageRankState state;
  state.rank = 0.25;
  EXPECT_EQ(ValueTraits<ApproxPageRankState>::ToValue(state), Value(0.25));
}

}  // namespace
}  // namespace ariadne
