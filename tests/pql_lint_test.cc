// Tests for the PQL static analyzer: multi-error recovery in the lexer /
// parser / analyzer, the lint passes (exact code + span + message), the
// ariadne_lint driver (exit codes, --Werror, --fix, batch mode) and the
// JSON / SARIF output (structural schema validity).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "pql/analysis.h"
#include "pql/catalog.h"
#include "pql/diagnostics.h"
#include "pql/lint/driver.h"
#include "pql/lint/fix.h"
#include "pql/lint/lint.h"
#include "pql/parser.h"
#include "pql/udf.h"

namespace ariadne {
namespace {

constexpr char kFixtureDir[] = ARIADNE_SOURCE_DIR "/tests/data/lint";
constexpr char kExamplesDir[] = ARIADNE_SOURCE_DIR "/examples/pql";

std::vector<std::string> Codes(const DiagnosticSink& sink) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : sink.diagnostics()) codes.push_back(d.code);
  return codes;
}

bool HasCode(const DiagnosticSink& sink, const std::string& code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic& FindCode(const DiagnosticSink& sink,
                           const std::string& code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) return d;
  }
  static const Diagnostic missing;
  ADD_FAILURE() << "diagnostic " << code << " not found";
  return missing;
}

struct DriverRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

DriverRun RunDriver(std::vector<std::string> args) {
  DriverRun run;
  run.exit_code = lint::RunAriadneLint(args, &run.out, &run.err);
  return run;
}

/// Writes `content` under a per-process temp dir and returns the path.
std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string dir = ::testing::TempDir() + "ariadne_lint_test_" +
                          std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name;
  EXPECT_TRUE(WriteFile(path, content).ok());
  return path;
}

/// Strips the directory prefix of `path` from every line of `text` so
/// golden files stay location-independent.
std::string StripDir(const std::string& text, const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string() + "/";
  std::string out = text;
  size_t pos = 0;
  while ((pos = out.find(dir, pos)) != std::string::npos) {
    out.erase(pos, dir.size());
  }
  return out;
}

/// Parses, binds `$`params to 0, analyzes and lints `text`, accumulating
/// everything into one sink (the same pipeline the driver runs).
struct Linted {
  Program program;
  std::optional<AnalyzedQuery> query;
  DiagnosticSink sink;
};

Linted LintText(const std::string& text, const lint::LintOptions& lopts = {},
                const StoreSchema* store = nullptr) {
  Linted r;
  r.sink.SetSource("test.pql", text);
  r.program = ParseProgram(text, r.sink);
  const auto params = r.program.UnboundParameters();
  std::vector<std::pair<std::string, Value>> binds;
  for (const auto& p : params) binds.emplace_back(p, Value(int64_t{0}));
  if (!binds.empty()) {
    EXPECT_TRUE(r.program.BindParameters(binds).ok());
  }
  if (!r.sink.has_errors()) {
    auto analyzed = Analyze(r.program, Catalog::Default(),
                            UdfRegistry::Default(), store, {}, &r.sink);
    if (analyzed.ok()) r.query = std::move(*analyzed);
  }
  lint::LintInput input;
  input.program = &r.program;
  input.query = r.query.has_value() ? &*r.query : nullptr;
  input.catalog = &Catalog::Default();
  input.udfs = &UdfRegistry::Default();
  input.store = store;
  input.program_params = params;
  lint::RunLintPasses(input, lopts, r.sink);
  r.sink.SortBySpan();
  return r;
}

// ---------------------------------------------------------------------------
// Multi-error recovery through the front end

TEST(ParserRecoveryTest, ReportsEverySyntaxErrorInOnePass) {
  DiagnosticSink sink;
  sink.SetSource("syntax.pql",
                 "good(x, i) <- superstep(x, i).\n"
                 "bad1(x <- superstep(x, i).\n"
                 "bad2(x, ) <- value(x, d, i).\n"
                 "bad3(x, i) <- superstep(x i).\n");
  Program program = ParseProgram(sink.source(), sink);
  EXPECT_EQ(sink.error_count(), 3u);
  EXPECT_EQ(program.rules.size(), 1u);  // only the good rule survives
  std::set<int> lines;
  for (const Diagnostic& d : sink.diagnostics()) {
    EXPECT_EQ(d.code, "PQL1004");
    EXPECT_TRUE(d.span.valid());
    lines.insert(d.span.line);
  }
  EXPECT_EQ(lines, (std::set<int>{2, 3, 4}));
}

TEST(AnalyzerRecoveryTest, AccumulatesSemanticErrorsAcrossRules) {
  const std::string text =
      "a(x, i) <- nope(x, i).\n"
      "b(x, i) <- value(x, i).\n"
      "c(x, i) <- superstep(x, i).\n";
  DiagnosticSink sink;
  sink.SetSource("multi.pql", text);
  Program program = ParseProgram(text, sink);
  ASSERT_FALSE(sink.has_errors());
  auto result = Analyze(program, Catalog::Default(), UdfRegistry::Default(),
                        nullptr, {}, &sink);
  ASSERT_FALSE(result.ok());
  // Legacy Status is the FIRST error with its original category.
  EXPECT_TRUE(result.status().IsAnalysisError());
  EXPECT_NE(result.status().message().find("nope"), std::string::npos);
  // Both bad rules were diagnosed in one run, each with a span.
  EXPECT_EQ(sink.error_count(), 2u);
  EXPECT_TRUE(HasCode(sink, "PQL2008"));
  EXPECT_TRUE(HasCode(sink, "PQL2006"));
  for (const Diagnostic& d : sink.diagnostics()) {
    EXPECT_TRUE(d.span.valid()) << d.code;
  }
}

TEST(AnalyzerRecoveryTest, EveryLegacyErrorCarriesSpanAndCode) {
  // Unbound parameter: previously a bare string, now PQL2001 with the
  // parameter's own span.
  const std::string text = "p(x, i) <- value(x, d, i), d > $eps.\n";
  DiagnosticSink sink;
  sink.SetSource("param.pql", text);
  Program program = ParseProgram(text, sink);
  auto result = Analyze(program, Catalog::Default(), UdfRegistry::Default(),
                        nullptr, {}, &sink);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("eps"), std::string::npos);
  const Diagnostic& d = FindCode(sink, "PQL2001");
  EXPECT_EQ(d.span.line, 1);
  EXPECT_EQ(d.span.column, 32);  // the `$eps` token
  EXPECT_EQ(d.span.length, 4);
}

// ---------------------------------------------------------------------------
// Lint passes: exact code + span + message

TEST(LintPassTest, CartesianProductAndFullScanPlan) {
  lint::LintOptions lopts;
  lopts.disabled.insert("PQL3002");  // singleton noise not under test
  Linted r = LintText("pair(x, y) <- superstep(x, i), value(y, d, j).\n",
                      lopts);
  ASSERT_TRUE(r.query.has_value());
  const Diagnostic& cartesian = FindCode(r.sink, "PQL3005");
  EXPECT_EQ(cartesian.span.line, 1);
  EXPECT_EQ(cartesian.span.column, 32);  // the value(...) atom
  EXPECT_EQ(cartesian.message,
            "atom 'value' shares no bound variables with earlier atoms "
            "(cartesian product)");
  const Diagnostic& scans = FindCode(r.sink, "PQL3010");
  EXPECT_EQ(scans.span.column, 1);  // anchored at the rule head name
  EXPECT_NE(scans.message.find("O(N^2)"), std::string::npos);
}

TEST(LintPassTest, NegationOverRecursivePredicate) {
  Linted r = LintText(
      "reach(x, i) <- superstep(x, i), x = 1.\n"
      "reach(x, i) <- receive-message(x, y, m, i), reach(y, j), j = i - 1.\n"
      "blocked(x, i) <- superstep(x, i), !reach(x, i).\n",
      [] {
        lint::LintOptions o;
        o.disabled.insert("PQL3002");
        return o;
      }());
  ASSERT_TRUE(r.query.has_value());
  const Diagnostic& d = FindCode(r.sink, "PQL3006");
  EXPECT_EQ(d.span.line, 3);
  EXPECT_EQ(d.span.column, 35);  // the !reach(x, i) literal
  EXPECT_NE(d.message.find("'reach'"), std::string::npos);
}

TEST(LintPassTest, ConstantComparisons) {
  Linted t = LintText("p(x, i) <- superstep(x, i), 2 * 3 >= 6.\n");
  const Diagnostic& always_true = FindCode(t.sink, "PQL3007");
  EXPECT_EQ(always_true.span.line, 1);
  EXPECT_EQ(always_true.span.column, 29);
  EXPECT_EQ(always_true.message,
            "comparison '(2 * 3) >= 6' is always true (redundant literal)");
  ASSERT_EQ(always_true.fixits.size(), 1u);  // removal fixit

  Linted f = LintText("p(x, i) <- superstep(x, i), 1 > 2.\n");
  const Diagnostic& always_false = FindCode(f.sink, "PQL3008");
  EXPECT_EQ(always_false.message,
            "comparison '1 > 2' is always false (rule can never fire)");
  EXPECT_TRUE(always_false.fixits.empty());  // removal would change meaning
}

TEST(LintPassTest, SingletonVariableHasRenameFixit) {
  const std::string text = "p(x, i) <- value(x, d, i).\n";
  Linted r = LintText(text);
  const Diagnostic& d = FindCode(r.sink, "PQL3002");
  EXPECT_EQ(d.span.line, 1);
  EXPECT_EQ(d.span.column, 21);  // the `d`
  ASSERT_EQ(d.fixits.size(), 1u);
  EXPECT_EQ(d.fixits[0].replacement, "_d");
  // Underscore-prefixed variables are exempt.
  Linted ok = LintText("p(x, i) <- value(x, _d, i).\n");
  EXPECT_FALSE(HasCode(ok.sink, "PQL3002"));
}

TEST(LintPassTest, ShadowedStoredRelationAndConfusableBuiltin) {
  StoreSchema store;
  store.relations.push_back({"prov-value", 3});
  Linted shadow =
      LintText("prov-value(x, i, d) <- value(x, d, i).\n", {}, &store);
  const Diagnostic& s = FindCode(shadow.sink, "PQL3003");
  EXPECT_EQ(s.span.column, 1);
  EXPECT_NE(s.message.find("shadows a stored relation"), std::string::npos);

  // send_message is not a catalog name (send-message is): PQL3004 fires
  // alongside the unknown-predicate error in the same run.
  Linted confusable =
      LintText("p(x, i) <- send_message(x, y, m, i).\n",
               [] {
                 lint::LintOptions o;
                 o.disabled.insert("PQL3002");
                 return o;
               }());
  EXPECT_TRUE(HasCode(confusable.sink, "PQL2008"));
  const Diagnostic& c = FindCode(confusable.sink, "PQL3004");
  EXPECT_NE(c.message.find("'send-message'"), std::string::npos);
}

TEST(LintPassTest, UnusedParameterWarns) {
  lint::LintOptions lopts;
  lopts.provided_params.push_back("ghost");
  Linted r = LintText("p(x, i) <- superstep(x, i).\n", lopts);
  const Diagnostic& d = FindCode(r.sink, "PQL3009");
  EXPECT_FALSE(d.span.valid());
  EXPECT_EQ(d.message,
            "parameter $ghost was provided but the program never uses it");
}

TEST(LintPassTest, UnreachableRuleCycle) {
  Linted r = LintText(
      "out(x, i) <- superstep(x, i).\n"
      "orphan-a(x, i) <- orphan-b(x, i).\n"
      "orphan-b(x, i) <- orphan-a(x, i).\n");
  int unreachable = 0;
  for (const Diagnostic& d : r.sink.diagnostics()) {
    if (d.code == "PQL3001") ++unreachable;
  }
  EXPECT_EQ(unreachable, 2);
  EXPECT_FALSE(HasCode(r.sink, "PQL3005"));
}

// ---------------------------------------------------------------------------
// Driver: golden file, exit codes, formats, --fix

TEST(DriverTest, BrokenFixtureMatchesGolden) {
  auto fixture = ReadFile(std::string(kFixtureDir) + "/broken.pql");
  ASSERT_TRUE(fixture.ok());
  const std::string path = WriteTemp("broken.pql", *fixture);
  DriverRun run = RunDriver({path});
  EXPECT_EQ(run.exit_code, 1);
  auto golden = ReadFile(std::string(kFixtureDir) + "/broken.expected");
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(StripDir(run.out, path), *golden);
}

TEST(DriverTest, ExamplesLintCleanUnderWerror) {
  DriverRun run = RunDriver({"--Werror", kExamplesDir});
  EXPECT_EQ(run.exit_code, 0) << run.out << run.err;
  EXPECT_NE(run.out.find("11 files checked: 0 errors, 0 warnings"),
            std::string::npos)
      << run.out;
}

TEST(DriverTest, WerrorFlipsWarningOnlyRunToExitOne) {
  const std::string path =
      WriteTemp("warn.pql", "p(x, i) <- value(x, d, i).\n");
  EXPECT_EQ(RunDriver({path}).exit_code, 0);
  EXPECT_EQ(RunDriver({"--Werror", path}).exit_code, 1);
}

TEST(DriverTest, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(RunDriver({}).exit_code, 2);
  EXPECT_EQ(RunDriver({"--format", "xml", "x.pql"}).exit_code, 2);
  EXPECT_EQ(RunDriver({"--no-such-flag", "x.pql"}).exit_code, 2);
  EXPECT_EQ(RunDriver({"/no/such/file.pql"}).exit_code, 2);
}

TEST(DriverTest, FixRewritesFileAndReparsesClean) {
  const std::string path = WriteTemp(
      "fixable.pql", "p(x, i) <- superstep(x, i), value(x, d, i), 1 <= 2.\n");
  DriverRun run = RunDriver({"--fix", path});
  EXPECT_EQ(run.exit_code, 0) << run.out;
  auto fixed = ReadFile(path);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(*fixed, "p(x, i) <- superstep(x, i), value(x, _d, i).\n");
  EXPECT_TRUE(ParseProgram(*fixed).ok());
  // The rewritten file lints clean even under --Werror.
  EXPECT_EQ(RunDriver({"--Werror", path}).exit_code, 0);
}

TEST(DriverTest, PragmasConfigureStoreOfflineAndParams) {
  const std::string path = WriteTemp(
      "pragma.pql",
      "%! stored prov-x/2\n%! offline\n%! param k=3\n"
      "out(x, i) <- prov-x(x, i), i = $k.\n");
  DriverRun run = RunDriver({path});
  EXPECT_EQ(run.exit_code, 0) << run.out;
}

TEST(DriverTest, JsonFormatCountsErrorsAndWarnings) {
  DriverRun run = RunDriver(
      {"--format", "json", std::string(kFixtureDir) + "/broken.pql"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.out.find("\"errors\": 2"), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("\"warnings\": 4"), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("\"code\": \"PQL2008\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF structural schema validity (hand-rolled JSON walker: the build has
// no JSON library, so validate the grammar and the fields we rely on).

struct JsonCursor {
  const std::string& s;
  size_t i = 0;

  void Ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool Eat(char c) {
    Ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  /// Validates one JSON value; returns false on malformed input.
  bool SkipValue() {
    Ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') {
      ++i;
      if (Eat('}')) return true;
      do {
        Ws();
        if (!SkipString()) return false;
        if (!Eat(':')) return false;
        if (!SkipValue()) return false;
      } while (Eat(','));
      return Eat('}');
    }
    if (c == '[') {
      ++i;
      if (Eat(']')) return true;
      do {
        if (!SkipValue()) return false;
      } while (Eat(','));
      return Eat(']');
    }
    if (c == '"') return SkipString();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
              s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
        ++i;
      }
      return true;
    }
    for (const char* kw : {"true", "false", "null"}) {
      const size_t n = std::string(kw).size();
      if (s.compare(i, n, kw) == 0) {
        i += n;
        return true;
      }
    }
    return false;
  }
  bool SkipString() {
    Ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
};

TEST(SarifTest, OutputIsWellFormedAndCarriesRequiredFields) {
  DriverRun run = RunDriver(
      {"--format", "sarif", std::string(kFixtureDir) + "/broken.pql"});
  EXPECT_EQ(run.exit_code, 1);
  JsonCursor cursor{run.out};
  EXPECT_TRUE(cursor.SkipValue()) << "malformed JSON near offset "
                                  << cursor.i;
  cursor.Ws();
  EXPECT_EQ(cursor.i, run.out.size()) << "trailing garbage";

  EXPECT_NE(run.out.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(run.out.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(run.out.find("\"name\": \"ariadne_lint\""), std::string::npos);
  // Every result has a ruleId naming a registered code, a level and a
  // message; spans carry 1-based startLine/startColumn.
  size_t pos = 0;
  int results = 0;
  while ((pos = run.out.find("\"ruleId\": \"", pos)) != std::string::npos) {
    pos += 11;
    const std::string code = run.out.substr(pos, 7);
    EXPECT_NE(DiagCodeDescription(code), nullptr) << code;
    ++results;
  }
  EXPECT_EQ(results, 6);
  EXPECT_NE(run.out.find("\"startLine\": 3"), std::string::npos);
  EXPECT_EQ(run.out.find("\"startLine\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exit-code contract of pql_check's sibling entry points is covered above;
// the diagnostic registry itself must stay description-complete.

TEST(DiagnosticRegistryTest, EveryCodeHasDescription) {
  for (const std::string& code : AllDiagCodes()) {
    EXPECT_NE(DiagCodeDescription(code), nullptr) << code;
    EXPECT_EQ(code.size(), 7u) << code;
    EXPECT_EQ(code.substr(0, 3), "PQL") << code;
  }
  EXPECT_EQ(DiagCodeDescription("PQL9999"), nullptr);
}

}  // namespace
}  // namespace ariadne
