// Property-based (parameterized) tests of the system-level invariants
// listed in DESIGN.md §6, swept across analytics, graph families, seeds
// and queries.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <type_traits>

#include "common/random.h"
#include "core/ariadne.h"

namespace ariadne {
namespace {

// --------------------------------------------------------------- helpers

enum class GraphKind { kRmat, kErdos, kGrid, kStar, kChain, kCycle };

const char* GraphKindName(GraphKind kind) {
  switch (kind) {
    case GraphKind::kRmat:
      return "rmat";
    case GraphKind::kErdos:
      return "erdos";
    case GraphKind::kGrid:
      return "grid";
    case GraphKind::kStar:
      return "star";
    case GraphKind::kChain:
      return "chain";
    case GraphKind::kCycle:
      return "cycle";
  }
  return "?";
}

Result<Graph> MakeGraph(GraphKind kind, uint64_t seed) {
  switch (kind) {
    case GraphKind::kRmat:
      return GenerateRmat({.scale = 7, .avg_degree = 5, .seed = seed});
    case GraphKind::kErdos:
      return GenerateErdosRenyi(120, 500, seed);
    case GraphKind::kGrid:
      return GenerateGrid(8, 12);
    case GraphKind::kStar:
      return GenerateStar(64);
    case GraphKind::kChain:
      return GenerateChain(48);
    case GraphKind::kCycle:
      return GenerateCycle(48);
  }
  return Status::Internal("unknown graph kind");
}

enum class Analytic { kPageRank, kSssp, kWcc };

const char* AnalyticName(Analytic a) {
  switch (a) {
    case Analytic::kPageRank:
      return "pagerank";
    case Analytic::kSssp:
      return "sssp";
    case Analytic::kWcc:
      return "wcc";
  }
  return "?";
}

/// Runs `fn(program)` with the analytic for `a` (fresh program instance).
template <typename Fn>
Status WithAnalytic(Analytic a, Fn&& fn) {
  switch (a) {
    case Analytic::kPageRank: {
      PageRankProgram program({.iterations = 6});
      return fn(program);
    }
    case Analytic::kSssp: {
      SsspProgram program(/*source=*/0);
      return fn(program);
    }
    case Analytic::kWcc: {
      WccProgram program;
      return fn(program);
    }
  }
  return Status::Internal("unknown analytic");
}

std::vector<std::string> TableStrings(const QueryResult& result,
                                      const std::string& name) {
  const Relation* rel = result.Table(name);
  return rel == nullptr ? std::vector<std::string>{} : rel->ToSortedStrings();
}

double AptEps(Analytic a) {
  switch (a) {
    case Analytic::kPageRank:
      return 0.01;
    case Analytic::kSssp:
      return 0.1;
    case Analytic::kWcc:
      return 1.0;
  }
  return 0;
}

// ------------------------- Theorem 5.4 / mode equivalence, swept broadly

using EquivalenceParam = std::tuple<Analytic, GraphKind, uint64_t>;

class ModeEquivalenceTest : public testing::TestWithParam<EquivalenceParam> {};

TEST_P(ModeEquivalenceTest, AptAgreesAcrossOnlineLayeredNaive) {
  const auto [analytic, graph_kind, seed] = GetParam();
  auto graph = MakeGraph(graph_kind, seed);
  ASSERT_TRUE(graph.ok());
  Session session(&*graph);
  const QueryParams eps{{"eps", Value(AptEps(analytic))}};

  auto apt_online = session.PrepareOnline(queries::Apt(), eps);
  ASSERT_TRUE(apt_online.ok()) << apt_online.status().ToString();
  QueryResult online;
  ASSERT_TRUE(WithAnalytic(analytic, [&](auto& program) -> Status {
                auto run = session.RunOnline(program, *apt_online);
                if (!run.ok()) return run.status();
                online = std::move(run->query_result);
                return Status::OK();
              }).ok());

  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  ASSERT_TRUE(WithAnalytic(analytic, [&](auto& program) -> Status {
                return session.Capture(program, *capture, &store).status();
              }).ok());

  auto apt_offline = session.PrepareOffline(queries::Apt(), store, eps);
  ASSERT_TRUE(apt_offline.ok()) << apt_offline.status().ToString();
  auto layered = session.RunOffline(&store, *apt_offline, EvalMode::kLayered);
  ASSERT_TRUE(layered.ok()) << layered.status().ToString();
  auto naive = session.RunOffline(&store, *apt_offline, EvalMode::kNaive);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  for (const std::string& table :
       {"change", "neighbor-change", "no-execute", "safe", "unsafe"}) {
    EXPECT_EQ(TableStrings(online, table),
              TableStrings(layered->result, table))
        << table << " online vs layered";
    EXPECT_EQ(TableStrings(layered->result, table),
              TableStrings(naive->result, table))
        << table << " layered vs naive";
  }
  // Lemma 5.3 for the layered run.
  EXPECT_LE(layered->stats.supersteps, store.num_layers());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeEquivalenceTest,
    testing::Combine(testing::Values(Analytic::kPageRank, Analytic::kSssp,
                                     Analytic::kWcc),
                     testing::Values(GraphKind::kRmat, GraphKind::kErdos,
                                     GraphKind::kGrid, GraphKind::kStar,
                                     GraphKind::kChain),
                     testing::Values(uint64_t{1}, uint64_t{7})),
    [](const testing::TestParamInfo<EquivalenceParam>& info) {
      return std::string(AnalyticName(std::get<0>(info.param))) + "_" +
             GraphKindName(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// --------------------------------- analytic non-interference (Thm 5.4 i)

using InterferenceParam = std::tuple<Analytic, uint64_t>;

class NonInterferenceTest : public testing::TestWithParam<InterferenceParam> {
};

TEST_P(NonInterferenceTest, OnlineRunLeavesAnalyticBitIdentical) {
  const auto [analytic, seed] = GetParam();
  auto graph = MakeGraph(GraphKind::kRmat, seed);
  ASSERT_TRUE(graph.ok());
  Session session(&*graph);
  auto query = session.PrepareOnline(queries::NoMessageNoChangeCheck());
  ASSERT_TRUE(query.ok());

  auto check = [&](auto& baseline_program, auto& wrapped_program) {
    using V =
        typename std::remove_reference_t<decltype(baseline_program)>::ValueType;
    std::vector<V> baseline_values, online_values;
    auto baseline_stats =
        session.RunBaseline(baseline_program, &baseline_values);
    ASSERT_TRUE(baseline_stats.ok());
    auto online = session.RunOnline(wrapped_program, *query,
                                    /*retention_window=*/2, &online_values);
    ASSERT_TRUE(online.ok()) << online.status().ToString();
    EXPECT_EQ(baseline_values, online_values);
    EXPECT_EQ(baseline_stats->supersteps, online->engine_stats.supersteps);
    EXPECT_EQ(baseline_stats->total_messages,
              online->engine_stats.total_messages);
    EXPECT_EQ(baseline_stats->total_active,
              online->engine_stats.total_active);
  };
  switch (analytic) {
    case Analytic::kPageRank: {
      PageRankProgram a({.iterations = 6}), b({.iterations = 6});
      check(a, b);
      break;
    }
    case Analytic::kSssp: {
      SsspProgram a(0), b(0);
      check(a, b);
      break;
    }
    case Analytic::kWcc: {
      WccProgram a, b;
      check(a, b);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NonInterferenceTest,
    testing::Combine(testing::Values(Analytic::kPageRank, Analytic::kSssp,
                                     Analytic::kWcc),
                     testing::Values(uint64_t{3}, uint64_t{11}, uint64_t{29})),
    [](const testing::TestParamInfo<InterferenceParam>& info) {
      return std::string(AnalyticName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------- capture completeness sweep

using CaptureParam = std::tuple<Analytic, GraphKind>;

class CaptureCompletenessTest : public testing::TestWithParam<CaptureParam> {};

TEST_P(CaptureCompletenessTest, StoreAccountsForEveryEventTheEngineSaw) {
  const auto [analytic, graph_kind] = GetParam();
  auto graph = MakeGraph(graph_kind, 5);
  ASSERT_TRUE(graph.ok());
  Session session(&*graph);
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());

  ProvenanceStore store;
  RunStats stats;
  ASSERT_TRUE(WithAnalytic(analytic, [&](auto& program) -> Status {
                auto run = session.Capture(program, *capture, &store);
                if (!run.ok()) return run.status();
                stats = *run;
                return Status::OK();
              }).ok());

  auto count = [&](const std::string& name) {
    const int rel = store.RelId(name);
    int64_t n = 0;
    for (int s = 0; s < store.num_layers(); ++s) {
      const Layer* layer = *store.GetLayer(s);
      for (const auto& slice : layer->slices) {
        if (slice.rel == rel) n += static_cast<int64_t>(slice.tuples.size());
      }
    }
    return n;
  };

  // One value / superstep fact per (vertex, active superstep).
  EXPECT_EQ(count("value"), stats.total_active);
  EXPECT_EQ(count("superstep"), stats.total_active);
  // Every send is recorded; every delivered message is received (all of
  // these analytics only message real vertices). Provenance relations are
  // sets, so WCC's duplicate identical sends (same label via both
  // adjacency directions of a reciprocal edge) collapse to one fact.
  const auto [analytic_kind, graph_kind_unused] = GetParam();
  (void)graph_kind_unused;
  if (analytic_kind == Analytic::kWcc) {
    EXPECT_LE(count("send-message"), stats.total_messages);
    EXPECT_GE(count("send-message"), stats.total_messages / 2);
    EXPECT_EQ(count("receive-message"), count("send-message"));
  } else {
    EXPECT_EQ(count("send-message"), stats.total_messages);
    EXPECT_EQ(count("receive-message"), stats.total_messages);
  }
  // Evolution edges: one per re-activation.
  std::set<VertexId> active_vertices;
  const int superstep_rel = store.RelId("superstep");
  for (int s = 0; s < store.num_layers(); ++s) {
    const Layer* layer = *store.GetLayer(s);
    for (const auto& slice : layer->slices) {
      if (slice.rel == superstep_rel) active_vertices.insert(slice.vertex);
    }
  }
  EXPECT_EQ(count("evolution"),
            stats.total_active -
                static_cast<int64_t>(active_vertices.size()));
  EXPECT_EQ(store.num_layers(), stats.supersteps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaptureCompletenessTest,
    testing::Combine(testing::Values(Analytic::kPageRank, Analytic::kSssp,
                                     Analytic::kWcc),
                     testing::Values(GraphKind::kRmat, GraphKind::kGrid,
                                     GraphKind::kCycle)),
    [](const testing::TestParamInfo<CaptureParam>& info) {
      return std::string(AnalyticName(std::get<0>(info.param))) + "_" +
             GraphKindName(std::get<1>(info.param));
    });

// ----------------------------------- retention windows preserve results

class RetentionTest : public testing::TestWithParam<int> {};

TEST_P(RetentionTest, WindowedAptMatchesUnlimited) {
  const int window = GetParam();
  auto graph = MakeGraph(GraphKind::kRmat, 13);
  ASSERT_TRUE(graph.ok());
  Session session(&*graph);
  auto apt = session.PrepareOnline(queries::Apt(), {{"eps", Value(0.01)}});
  ASSERT_TRUE(apt.ok());

  PageRankProgram unlimited_program({.iterations = 6});
  auto unlimited = session.RunOnline(unlimited_program, *apt, 0);
  ASSERT_TRUE(unlimited.ok());
  PageRankProgram windowed_program({.iterations = 6});
  auto windowed = session.RunOnline(windowed_program, *apt, window);
  ASSERT_TRUE(windowed.ok());
  for (const std::string& table : {"no-execute", "safe", "unsafe"}) {
    EXPECT_EQ(TableStrings(unlimited->query_result, table),
              TableStrings(windowed->query_result, table))
        << table << " window=" << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RetentionTest, testing::Values(2, 3, 5));

// ----------------------------------------- store round-trips, randomized

class StoreRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StoreRoundTripTest, SaveLoadAndSpillPreserveRandomContents) {
  Rng rng(GetParam());
  ProvenanceStore store;
  const int rel_a = store.AddRelation("a", 3);
  const int rel_b = store.AddRelation("b", 2);
  auto random_value = [&]() -> Value {
    switch (rng.NextUInt(4)) {
      case 0:
        return Value(static_cast<int64_t>(rng.NextUInt(1000)));
      case 1:
        return Value(rng.NextDouble());
      case 2:
        return Value("s" + std::to_string(rng.NextUInt(50)));
      default: {
        std::vector<double> v(rng.NextUInt(4) + 1);
        for (auto& x : v) x = rng.NextDouble();
        return Value(std::move(v));
      }
    }
  };
  const int n_layers = 3 + static_cast<int>(rng.NextUInt(4));
  for (Superstep s = 0; s < n_layers; ++s) {
    Layer layer;
    layer.step = s;
    const int n_slices = 1 + static_cast<int>(rng.NextUInt(5));
    for (int i = 0; i < n_slices; ++i) {
      const int rel = rng.NextBool(0.5) ? rel_a : rel_b;
      const int arity = rel == rel_a ? 3 : 2;
      std::vector<Tuple> tuples;
      const int n_tuples = 1 + static_cast<int>(rng.NextUInt(6));
      for (int t = 0; t < n_tuples; ++t) {
        Tuple tuple;
        for (int c = 0; c < arity; ++c) tuple.push_back(random_value());
        tuples.push_back(std::move(tuple));
      }
      layer.Add(rel, static_cast<VertexId>(rng.NextUInt(64)),
                std::move(tuples));
    }
    ASSERT_TRUE(store.AppendLayer(std::move(layer)).ok());
  }

  auto dump = [](ProvenanceStore& s) {
    std::vector<std::string> out;
    for (int i = 0; i < s.num_layers(); ++i) {
      const Layer* layer = *s.GetLayer(i);
      for (const auto& slice : layer->slices) {
        for (const Tuple& t : slice.tuples) {
          out.push_back(std::to_string(slice.rel) + "@" +
                        std::to_string(slice.vertex) + TupleToString(t));
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto original = dump(store);
  const size_t original_bytes = store.TotalBytes();

  // File round trip.
  const std::string path = testing::TempDir() + "/prop_store_" +
                           std::to_string(GetParam()) + ".bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto loaded = ProvenanceStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(dump(*loaded), original);
  EXPECT_EQ(loaded->TotalBytes(), original_bytes);

  // Spill round trip.
  ASSERT_TRUE(store.EnableSpill(testing::TempDir(), 1).ok());
  EXPECT_GT(store.SpilledLayerCount(), 0);
  EXPECT_EQ(dump(store), original);
  EXPECT_EQ(store.TotalBytes(), original_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreRoundTripTest,
                         testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{4}));

// ----------------------------------------------- parser robustness sweep

class ParserRobustnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam());
  static const char* kPieces[] = {"a",  "foo-bar", "(",  ")", ",", ".",
                                  "<-", "!",       "=",  "<", ">", "$p",
                                  "1",  "2.5",     "\"s\"", "+", "-", "COUNT"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int n = 1 + static_cast<int>(rng.NextUInt(24));
    for (int i = 0; i < n; ++i) {
      text += kPieces[rng.NextUInt(std::size(kPieces))];
      text += " ";
    }
    auto program = ParseProgram(text);  // must not crash; errors are fine
    if (program.ok()) {
      // Whatever parsed must print and re-parse consistently.
      auto reparsed = ParseProgram(program->ToString());
      ASSERT_TRUE(reparsed.ok()) << program->ToString();
      EXPECT_EQ(program->ToString(), reparsed->ToString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         testing::Values(uint64_t{10}, uint64_t{20},
                                         uint64_t{30}));

// ------------------------------------ backward trace = reverse reachability

class BackwardTraceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BackwardTraceTest, TraceEqualsReverseReachabilityOverSends) {
  auto graph = MakeGraph(GraphKind::kRmat, GetParam());
  ASSERT_TRUE(graph.ok());
  Session session(&*graph);
  ProvenanceStore store;
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ASSERT_TRUE(capture.ok());
  SsspProgram sssp(0);
  ASSERT_TRUE(session.Capture(sssp, *capture, &store).ok());

  // Seed: any vertex active in the last layer.
  const int superstep_rel = store.RelId("superstep");
  VertexId alpha = -1;
  Superstep sigma = store.num_layers() - 1;
  {
    const Layer* last = *store.GetLayer(sigma);
    for (const auto& slice : last->slices) {
      if (slice.rel == superstep_rel) {
        alpha = slice.vertex;
        break;
      }
    }
  }
  ASSERT_GE(alpha, 0);

  auto q10 = session.PrepareOffline(
      queries::BackwardLineageFull(), store,
      {{"alpha", Value(static_cast<int64_t>(alpha))},
       {"sigma", Value(static_cast<int64_t>(sigma))}});
  ASSERT_TRUE(q10.ok());
  auto run = session.RunOffline(&store, *q10, EvalMode::kLayered);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Reference: reverse BFS over the recorded send-message records.
  // reached[(x, i)] iff x sent a message at superstep i that leads to the
  // seed, or (x, i) is the seed.
  std::set<std::pair<VertexId, Superstep>> reference;
  reference.insert({alpha, sigma});
  const int send_rel = store.RelId("send-message");
  // send records grouped per receive step: sent at i, received at i+1.
  std::map<Superstep, std::vector<std::pair<VertexId, VertexId>>> sends;
  for (int s = 0; s < store.num_layers(); ++s) {
    const Layer* layer = *store.GetLayer(s);
    for (const auto& slice : layer->slices) {
      if (slice.rel != send_rel) continue;
      for (const Tuple& t : slice.tuples) {
        sends[layer->step].emplace_back(t[0].AsInt(), t[1].AsInt());
      }
    }
  }
  for (Superstep i = sigma - 1; i >= 0; --i) {
    for (const auto& [src, dst] : sends[i]) {
      if (reference.count({dst, i + 1}) > 0) reference.insert({src, i});
    }
  }

  const Relation* trace = run->result.Table("back-trace");
  ASSERT_NE(trace, nullptr);
  std::set<std::pair<VertexId, Superstep>> traced;
  for (size_t i = 0; i < trace->size(); ++i) {
    const Relation::RowView t = trace->row_view(i);
    traced.insert({t.AsInt(0), static_cast<Superstep>(t.AsInt(1))});
  }
  EXPECT_EQ(traced, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackwardTraceTest,
                         testing::Values(uint64_t{2}, uint64_t{9},
                                         uint64_t{17}));

}  // namespace
}  // namespace ariadne
