#include <gtest/gtest.h>

#include "pql/lexer.h"
#include "pql/parser.h"
#include "pql/queries.h"

namespace ariadne {
namespace {

TEST(LexerTest, HyphenatedIdentifiersVsSubtraction) {
  auto tokens = Tokenize("receive-message(x), j = i - 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "receive-message");
  // ... ( x ) , j = i - 1 EOF
  bool saw_minus = false;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kMinus) saw_minus = true;
  }
  EXPECT_TRUE(saw_minus);
}

TEST(LexerTest, OperatorsAndLiterals) {
  auto tokens = Tokenize("<- :- != <> <= >= == = ! not 3 4.5 1e3 \"s\" $eps");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kArrow);
  EXPECT_EQ(kinds[1], TokenKind::kArrow);
  EXPECT_EQ(kinds[2], TokenKind::kNe);
  EXPECT_EQ(kinds[3], TokenKind::kNe);
  EXPECT_EQ(kinds[4], TokenKind::kLe);
  EXPECT_EQ(kinds[5], TokenKind::kGe);
  EXPECT_EQ(kinds[6], TokenKind::kEq);
  EXPECT_EQ(kinds[7], TokenKind::kEq);
  EXPECT_EQ(kinds[8], TokenKind::kBang);
  EXPECT_EQ(kinds[9], TokenKind::kBang);
  EXPECT_EQ(kinds[10], TokenKind::kInt);
  EXPECT_EQ(kinds[11], TokenKind::kDouble);
  EXPECT_EQ(kinds[12], TokenKind::kDouble);
  EXPECT_EQ(kinds[13], TokenKind::kString);
  EXPECT_EQ(kinds[14], TokenKind::kParam);
  EXPECT_EQ((*tokens)[14].text, "eps");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a % comment\n// another\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a b EOF
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("@").ok());
  EXPECT_FALSE(Tokenize(": x").ok());
  EXPECT_FALSE(Tokenize("$1").ok());
}

TEST(ParserTest, SimpleRule) {
  auto rule = ParseRule("change(x, i) <- value(x, d1, i), udf-diff(d1, d2, $eps).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head_predicate, "change");
  ASSERT_EQ(rule->head.size(), 2u);
  EXPECT_EQ(rule->head[0].term.name, "x");
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_EQ(rule->body[0].atom.predicate, "value");
  EXPECT_EQ(rule->body[1].atom.predicate, "udf-diff");
  EXPECT_EQ(rule->body[1].atom.args[2].kind, Term::Kind::kParameter);
}

TEST(ParserTest, NegationBothSyntaxes) {
  auto r1 = ParseRule("a(x) <- b(x), !c(x).");
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->body[1].atom.negated);
  auto r2 = ParseRule("a(x) <- b(x), not c(x).");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->body[1].atom.negated);
}

TEST(ParserTest, ComparisonsAndArithmetic) {
  auto rule = ParseRule("a(x, j) <- b(x, i), j = i - 1, i >= 2 * (x + 1).");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->body.size(), 3u);
  EXPECT_EQ(rule->body[1].kind, BodyLiteral::Kind::kComparison);
  EXPECT_EQ(rule->body[1].comparison.op, ComparisonOp::kEq);
  EXPECT_EQ(rule->body[1].comparison.rhs.kind, Term::Kind::kArith);
  EXPECT_EQ(rule->body[2].comparison.op, ComparisonOp::kGe);
}

TEST(ParserTest, Aggregates) {
  auto rule = ParseRule("deg(x, COUNT(y)) <- edge(x, y).");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->head[0].is_aggregate);
  ASSERT_TRUE(rule->head[1].is_aggregate);
  EXPECT_EQ(rule->head[1].aggregate, AggregateFn::kCount);
  EXPECT_EQ(rule->head[1].aggregate_arg.name, "y");

  auto sum = ParseRule("s(x, sum(e)) <- t(x, e).");  // case-insensitive
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->head[1].aggregate, AggregateFn::kSum);
}

TEST(ParserTest, ArithmeticHeadTerm) {
  auto rule = ParseRule("avg(x, s / d) <- s1(x, s), d1(x, d).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head[1].term.kind, Term::Kind::kArith);
  EXPECT_EQ(rule->head[1].term.op, '/');
}

TEST(ParserTest, UnaryMinusConstant) {
  auto rule = ParseRule("a(x) <- b(x, w), w > -1.5.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body[1].comparison.rhs.constant, Value(-1.5));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("").ok());
  EXPECT_FALSE(ParseRule("a(x) <- b(x)").ok());   // missing dot
  EXPECT_FALSE(ParseRule("a(x) b(x).").ok());     // missing arrow
  EXPECT_FALSE(ParseRule("a() <- b(x).").ok());   // empty head args
  EXPECT_FALSE(ParseRule("a(x) <- .").ok());      // empty body
  EXPECT_FALSE(ParseRule("a(x) <- b(x,).").ok()); // trailing comma
}

TEST(ParserTest, ProgramRoundTripThroughToString) {
  for (const std::string& text :
       {queries::Apt(), queries::CaptureFull(),
        queries::CaptureForwardLineage(), queries::PageRankInDegreeCheck(),
        queries::MonotoneUpdateCheck(), queries::NoMessageNoChangeCheck(),
        queries::AlsRangeAudit(), queries::AlsErrorIncrease(),
        queries::BackwardLineageFull(), queries::CaptureCustomBackward(),
        queries::BackwardLineageCustom()}) {
    auto program = ParseProgram(text);
    ASSERT_TRUE(program.ok()) << text << "\n" << program.status().ToString();
    auto reparsed = ParseProgram(program->ToString());
    ASSERT_TRUE(reparsed.ok()) << program->ToString();
    EXPECT_EQ(program->ToString(), reparsed->ToString());
  }
}

TEST(ParserTest, BindParameters) {
  auto program = ParseProgram(queries::BackwardLineageFull());
  ASSERT_TRUE(program.ok());
  auto unbound = program->UnboundParameters();
  EXPECT_EQ(unbound, (std::set<std::string>{"alpha", "sigma"}));
  // Missing parameter is an error.
  EXPECT_FALSE(program->BindParameters({{"alpha", Value(int64_t{3})}}).ok());
  auto fresh = ParseProgram(queries::BackwardLineageFull());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh
                  ->BindParameters({{"alpha", Value(int64_t{3})},
                                    {"sigma", Value(int64_t{5})}})
                  .ok());
  EXPECT_TRUE(fresh->UnboundParameters().empty());
  EXPECT_NE(fresh->ToString().find("3"), std::string::npos);
}

}  // namespace
}  // namespace ariadne
