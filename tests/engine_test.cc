#include <gtest/gtest.h>

#include <atomic>

#include "engine/engine.h"
#include "graph/generators.h"

namespace ariadne {
namespace {

/// Every vertex sends its id once; receivers record the sum of messages.
class SumOnceProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    if (ctx.superstep() == 0) {
      ctx.SendToAllOutNeighbors(ctx.id());
    } else {
      int64_t sum = 0;
      for (int64_t m : messages) sum += m;
      ctx.SetValue(sum);
    }
    ctx.VoteToHalt();
  }
};

TEST(EngineTest, MessagesDeliveredNextSuperstepThenQuiesces) {
  auto g = GenerateCycle(4);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  SumOnceProgram program;
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 2);  // send step + receive step
  EXPECT_EQ(stats->total_messages, 4);
  EXPECT_FALSE(stats->halted_by_cap);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(engine.value(v), (v + 3) % 4);  // id of the predecessor
  }
}

TEST(EngineTest, EmptyGraphRejected) {
  Graph g;
  Engine<int64_t, int64_t> engine(&g);
  SumOnceProgram program;
  EXPECT_FALSE(engine.Run(program).ok());
}

/// Propagates the minimum id along the cycle; needs n supersteps.
class MinPropagateProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId id, const Graph&) const override { return id; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    int64_t best = ctx.value();
    for (int64_t m : messages) best = std::min(best, m);
    if (ctx.superstep() == 0 || best < ctx.value()) {
      ctx.SetValue(best);
      ctx.SendToAllOutNeighbors(best);
    }
    ctx.VoteToHalt();
  }
};

TEST(EngineTest, HaltedVerticesWakeOnMessages) {
  auto g = GenerateCycle(16);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  MinPropagateProgram program;
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(engine.value(v), 0);
  EXPECT_GE(stats->supersteps, 16);
}

TEST(EngineTest, MaxSuperstepsCapStopsEarly) {
  auto g = GenerateCycle(16);
  ASSERT_TRUE(g.ok());
  EngineOptions options;
  options.max_supersteps = 3;
  Engine<int64_t, int64_t> engine(&*g, options);
  MinPropagateProgram program;
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 3);
  EXPECT_TRUE(stats->halted_by_cap);
}

TEST(EngineTest, PerStepStatsRecorded) {
  auto g = GenerateCycle(4);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  SumOnceProgram program;
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->steps.size(), 2u);
  EXPECT_EQ(stats->steps[0].active_vertices, 4);
  EXPECT_EQ(stats->steps[0].messages_sent, 4);
  EXPECT_EQ(stats->steps[1].messages_sent, 0);
}

/// Sends to an arbitrary (possibly invalid) vertex id.
class WildSenderProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  explicit WildSenderProgram(VertexId target) : target_(target) {}
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    if (ctx.superstep() == 0 && ctx.id() == 0) {
      ctx.SendMessage(target_, 99);
    }
    for (int64_t m : messages) ctx.SetValue(m);
    ctx.VoteToHalt();
  }

 private:
  VertexId target_;
};

TEST(EngineTest, MessagesToNonNeighborsAreDelivered) {
  auto g = GenerateChain(4);  // no edge 0 -> 3
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  WildSenderProgram program(3);
  ASSERT_TRUE(engine.Run(program).ok());
  EXPECT_EQ(engine.value(3), 99);
}

TEST(EngineTest, MessagesToInvalidIdsAreDropped) {
  auto g = GenerateChain(4);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  WildSenderProgram program(1000);
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 1);
}

/// Uses a min-combiner; inbox sizes must be 1.
class CombinerProbeProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId, const Graph&) const override { return -1; }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override {
    if (ctx.superstep() == 0) {
      ctx.SendMessage(0, ctx.id() + 10);
    } else if (ctx.id() == 0 && !messages.empty()) {
      max_inbox_ = std::max(max_inbox_, messages.size());
      ctx.SetValue(messages[0]);
    }
    ctx.VoteToHalt();
  }
  const MessageCombiner<int64_t>* combiner() const override {
    return &combiner_;
  }
  size_t max_inbox() const { return max_inbox_; }

 private:
  MinCombiner<int64_t> combiner_;
  size_t max_inbox_ = 0;
};

TEST(EngineTest, CombinerReducesInbox) {
  auto g = GenerateStar(8);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  CombinerProbeProgram program;
  ASSERT_TRUE(engine.Run(program).ok());
  EXPECT_EQ(program.max_inbox(), 1u);
  EXPECT_EQ(engine.value(0), 10);  // min over ids+10
}

/// Aggregates the count of active vertices; master halts at a target.
class AggregatorProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  int64_t InitialValue(VertexId, const Graph&) const override { return 0; }
  void RegisterAggregators(AggregatorRegistry& registry) override {
    registry.Register("active", AggregateOp::kSum);
    registry.Register("max_id", AggregateOp::kMax);
  }
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t>) override {
    ctx.AggregateDouble("active", 1.0);
    ctx.AggregateDouble("max_id", static_cast<double>(ctx.id()));
    if (ctx.superstep() == 1) {
      // Aggregated values from superstep 0 are visible now.
      EXPECT_DOUBLE_EQ(ctx.GetAggregate("active"),
                       static_cast<double>(ctx.num_vertices()));
      EXPECT_DOUBLE_EQ(ctx.GetAggregate("max_id"),
                       static_cast<double>(ctx.num_vertices() - 1));
    }
    // Stay alive; the master halts us.
  }
  void MasterCompute(MasterContext& master) override {
    if (master.superstep >= 1) master.halt = true;
  }
};

TEST(EngineTest, AggregatorsVisibleNextSuperstepAndMasterHalts) {
  auto g = GenerateCycle(6);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> engine(&*g);
  AggregatorProgram program;
  auto stats = engine.Run(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->supersteps, 2);
}

TEST(EngineTest, ParallelMatchesSequential) {
  auto g = GenerateErdosRenyi(200, 1000, 17);
  ASSERT_TRUE(g.ok());
  Engine<int64_t, int64_t> seq(&*g, EngineOptions{.num_threads = 1});
  MinPropagateProgram p1;
  ASSERT_TRUE(seq.Run(p1).ok());
  Engine<int64_t, int64_t> par(&*g, EngineOptions{.num_threads = 4});
  MinPropagateProgram p2;
  ASSERT_TRUE(par.Run(p2).ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(seq.value(v), par.value(v));
  }
}

}  // namespace
}  // namespace ariadne
