// Paged-vs-in-memory storage backend equivalence (DESIGN.md §2.7).
//
// The out-of-core contract is exact equivalence, not approximation: for
// any thread count and any byte budget, a paged run must produce
// byte-identical vertex values, a byte-identical APV2 capture image, and
// identical PQL query results to the in-memory run. These tests sweep
// budgets of 100%/50%/25% of the topology footprint and 1/4 compute
// threads over every backend combination (paged topology x paged vertex
// state).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/ariadne.h"
#include "engine/engine.h"
#include "graph/paged_backend.h"

namespace ariadne {
namespace {

Graph TestGraph() {
  auto g = GenerateRmat(
      {.scale = 8, .avg_degree = 8, .seed = 17, .max_weight = 2.5});
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::string UniquePath(const std::string& tag) {
  static int counter = 0;
  return testing::TempDir() + "/gbt_" + std::to_string(::getpid()) + "_" +
         tag + "_" + std::to_string(counter++) + ".agp";
}

/// Partition span small enough that the scale-8 test graph splits into
/// 8 partitions (the default targets ~4 MiB fragments, which would put
/// the whole test graph in one — and page nothing).
constexpr VertexId kTestSpan = 32;

/// CreateFrom + Open with a budget that is `fraction` of the decoded
/// topology footprint (so 0.25 forces heavy eviction traffic).
std::unique_ptr<PagedBackend> MakePaged(const Graph& mem,
                                        const std::string& path,
                                        double fraction) {
  EXPECT_TRUE(PagedBackend::CreateFrom(mem, path, kTestSpan).ok());
  auto probe = PagedBackend::Open(path);
  EXPECT_TRUE(probe.ok());
  const uint64_t footprint = (*probe)->backend_stats().footprint_bytes;
  probe->reset();
  PagedBackendOptions options;
  options.budget_bytes =
      static_cast<size_t>(static_cast<double>(footprint) * fraction);
  auto opened = PagedBackend::Open(path, options);
  EXPECT_TRUE(opened.ok());
  return std::move(opened).value();
}

/// Copies a vertex's full adjacency out of `g` (spans from a paged
/// backend stay valid only until the thread touches further partitions).
struct Adjacency {
  std::vector<VertexId> out, in;
  std::vector<double> out_w, in_w;
};

Adjacency CopyAdjacency(const Graph& g, VertexId v) {
  Adjacency a;
  auto on = g.OutNeighbors(v);
  auto ow = g.OutWeights(v);
  auto in = g.InNeighbors(v);
  auto iw = g.InWeights(v);
  a.out.assign(on.begin(), on.end());
  a.out_w.assign(ow.begin(), ow.end());
  a.in.assign(in.begin(), in.end());
  a.in_w.assign(iw.begin(), iw.end());
  return a;
}

TEST(GraphBackendTest, AdjacencyMatchesInMemoryAcrossBudgets) {
  const Graph mem = TestGraph();
  for (double fraction : {1.0, 0.5, 0.25}) {
    const std::string path = UniquePath("adj");
    auto paged = MakePaged(mem, path, fraction);
    ASSERT_NE(paged, nullptr);
    EXPECT_STREQ(paged->backend_name(), "paged");
    EXPECT_TRUE(paged->paged());
    EXPECT_GT(paged->num_partitions(), 1);
    EXPECT_EQ(paged->num_vertices(), mem.num_vertices());
    EXPECT_EQ(paged->num_edges(), mem.num_edges());
    for (VertexId v = 0; v < mem.num_vertices(); ++v) {
      const Adjacency expect = CopyAdjacency(mem, v);
      const Adjacency got = CopyAdjacency(*paged, v);
      ASSERT_EQ(got.out, expect.out) << "vertex " << v;
      ASSERT_EQ(got.out_w, expect.out_w) << "vertex " << v;
      ASSERT_EQ(got.in, expect.in) << "vertex " << v;
      ASSERT_EQ(got.in_w, expect.in_w) << "vertex " << v;
      ASSERT_EQ(paged->OutDegree(v), mem.OutDegree(v));
      ASSERT_EQ(paged->InDegree(v), mem.InDegree(v));
    }
    EXPECT_TRUE(paged->backend_error().ok());
    const GraphBackendStats stats = paged->backend_stats();
    EXPECT_GT(stats.partition_faults + stats.cache_hits, 0u);
    if (fraction < 1.0) {
      EXPECT_GT(stats.evictions, 0u);
    }
    paged.reset();
    std::filesystem::remove(path);
  }
}

/// Runs PageRank and returns the final values; `vs_fraction` < 0 keeps
/// the flat in-RAM vertex state, otherwise pages it under that fraction
/// of its footprint.
std::vector<double> RunPageRank(const Graph& g, size_t threads,
                                double vs_fraction) {
  PageRankProgram program({.iterations = 12});
  EngineOptions options;
  options.num_threads = threads;
  if (vs_fraction >= 0.0) {
    options.paged_vertex_state = true;
    options.vertex_state_budget_bytes = static_cast<size_t>(
        static_cast<double>(g.num_vertices()) * sizeof(double) * vs_fraction);
    options.vertex_state_dir = testing::TempDir();
  }
  Engine<double, double> engine(&g, options);
  auto stats = engine.Run(program);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  std::vector<double> values;
  EXPECT_TRUE(engine.CopyValuesTo(&values).ok());
  return values;
}

void ExpectBytesEqual(const std::vector<double>& got,
                      const std::vector<double>& expect,
                      const std::string& what) {
  ASSERT_EQ(got.size(), expect.size()) << what;
  EXPECT_EQ(std::memcmp(got.data(), expect.data(),
                        got.size() * sizeof(double)),
            0)
      << what;
}

TEST(GraphBackendTest, PageRankByteIdenticalAcrossBackendsThreadsBudgets) {
  const Graph mem = TestGraph();
  const std::vector<double> baseline = RunPageRank(mem, 1, -1.0);
  for (double fraction : {1.0, 0.5, 0.25}) {
    const std::string path = UniquePath("pr");
    auto paged = MakePaged(mem, path, fraction);
    ASSERT_NE(paged, nullptr);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      const std::string tag = "budget=" + std::to_string(fraction) +
                              " threads=" + std::to_string(threads);
      // Paged topology, flat vertex state.
      ExpectBytesEqual(RunPageRank(*paged, threads, -1.0), baseline,
                       "paged-graph/flat-state " + tag);
      // Paged topology AND paged vertex state at the same fraction.
      ExpectBytesEqual(RunPageRank(*paged, threads, fraction), baseline,
                       "paged-graph/paged-state " + tag);
      // In-memory topology, paged vertex state.
      ExpectBytesEqual(RunPageRank(mem, threads, fraction), baseline,
                       "memory-graph/paged-state " + tag);
    }
    paged.reset();
    std::filesystem::remove(path);
  }
}

TEST(GraphBackendTest, SsspByteIdenticalUnderTightBudget) {
  const Graph mem = TestGraph();
  const VertexId source = HighestDegreeVertex(mem);
  auto run = [&](const Graph& g, size_t threads, bool paged_vs) {
    SsspProgram program(source);
    EngineOptions options;
    options.num_threads = threads;
    if (paged_vs) {
      options.paged_vertex_state = true;
      options.vertex_state_budget_bytes = 1 << 12;  // force eviction
      options.vertex_state_dir = testing::TempDir();
    }
    Engine<double, double> engine(&g, options);
    auto stats = engine.Run(program);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    std::vector<double> values;
    EXPECT_TRUE(engine.CopyValuesTo(&values).ok());
    return values;
  };
  const std::vector<double> baseline = run(mem, 1, false);
  const std::string path = UniquePath("sssp");
  auto paged = MakePaged(mem, path, 0.25);
  ASSERT_NE(paged, nullptr);
  ExpectBytesEqual(run(*paged, 4, true), baseline, "sssp paged/paged t=4");
  ExpectBytesEqual(run(*paged, 1, true), baseline, "sssp paged/paged t=1");
  paged.reset();
  std::filesystem::remove(path);
}

/// Captures full provenance of PageRank over `g` and returns the APV2
/// store image plus the final values.
void CaptureImage(const Graph& g, size_t threads, bool paged_vs,
                  std::string* image, std::vector<double>* values) {
  PageRankProgram program({.iterations = 6});
  SessionOptions options;
  options.engine.num_threads = threads;
  if (paged_vs) {
    options.engine.paged_vertex_state = true;
    options.engine.vertex_state_budget_bytes = 1 << 12;
    options.engine.vertex_state_dir = testing::TempDir();
  }
  Session session(&g, options);
  auto query = session.PrepareOnline(queries::CaptureFull(), {});
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ProvenanceStore store;
  auto stats = session.Capture(program, *query, &store, /*retention=*/2,
                               values);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto serialized = store.SerializeToString();
  ASSERT_TRUE(serialized.ok());
  *image = std::move(serialized).value();
}

TEST(GraphBackendTest, CaptureImageByteIdentical) {
  const Graph mem = TestGraph();
  std::string baseline_image;
  std::vector<double> baseline_values;
  CaptureImage(mem, 1, false, &baseline_image, &baseline_values);
  ASSERT_FALSE(baseline_image.empty());

  const std::string path = UniquePath("cap");
  auto paged = MakePaged(mem, path, 0.25);
  ASSERT_NE(paged, nullptr);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::string image;
    std::vector<double> values;
    CaptureImage(*paged, threads, true, &image, &values);
    EXPECT_EQ(image, baseline_image) << "threads=" << threads;
    ExpectBytesEqual(values, baseline_values,
                     "capture values threads=" + std::to_string(threads));
  }
  paged.reset();
  std::filesystem::remove(path);
}

/// Online PQL evaluation (the apt query) must see the same derived
/// tables whichever backend the graph lives in.
TEST(GraphBackendTest, OnlineQueryResultsMatch) {
  const Graph mem = TestGraph();
  auto run_tables = [&](const Graph& g, size_t threads) {
    PageRankProgram program({.iterations = 6});
    SessionOptions options;
    options.engine.num_threads = threads;
    Session session(&g, options);
    auto query = session.PrepareOnline(queries::Apt(), {{"eps", 0.01}});
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto run = session.RunOnline(program, *query, /*retention=*/2);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    std::vector<std::string> rows;
    for (const std::string& name : run->query_result.TableNames()) {
      const Relation* rel = run->query_result.Table(name);
      for (const std::string& row : rel->ToSortedStrings()) {
        rows.push_back(name + row);
      }
    }
    return rows;
  };
  const std::vector<std::string> baseline = run_tables(mem, 1);
  const std::string path = UniquePath("pql");
  auto paged = MakePaged(mem, path, 0.25);
  ASSERT_NE(paged, nullptr);
  EXPECT_EQ(run_tables(*paged, 1), baseline);
  EXPECT_EQ(run_tables(*paged, 4), baseline);
  paged.reset();
  std::filesystem::remove(path);
}

/// A checkpoint written by an in-memory flat-state run resumes under the
/// paged backend with paged vertex state — and lands on byte-identical
/// final values (checkpoints are storage-backend-neutral,
/// recovery/checkpoint.h).
TEST(GraphBackendTest, CheckpointResumesAcrossBackends) {
  const Graph mem = TestGraph();
  const std::string ckpt_dir =
      testing::TempDir() + "/gbt_ckpt_" + std::to_string(::getpid());
  std::filesystem::create_directories(ckpt_dir);
  const std::string fingerprint = "graph-backend-test-pr12";

  const std::vector<double> baseline = RunPageRank(mem, 1, -1.0);

  // Partial in-memory run: halt by superstep cap with a checkpoint taken
  // every barrier.
  {
    PageRankProgram program({.iterations = 12});
    EngineOptions options;
    options.max_supersteps = 5;
    options.checkpoint_dir = ckpt_dir;
    options.checkpoint_every = 1;
    options.checkpoint_fingerprint = fingerprint;
    Engine<double, double> engine(&mem, options);
    auto stats = engine.Run(program);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_TRUE(stats->halted_by_cap);
    ASSERT_GT(stats->checkpoints_written, 0);
  }

  // Resume out-of-core: paged topology at 25% budget, paged vertex state.
  const std::string path = UniquePath("ckpt");
  auto paged = MakePaged(mem, path, 0.25);
  ASSERT_NE(paged, nullptr);
  {
    PageRankProgram program({.iterations = 12});
    EngineOptions options;
    options.checkpoint_dir = ckpt_dir;
    options.checkpoint_fingerprint = fingerprint;
    options.resume = true;
    options.paged_vertex_state = true;
    options.vertex_state_budget_bytes = 1 << 12;
    options.vertex_state_dir = testing::TempDir();
    Engine<double, double> engine(paged.get(), options);
    auto stats = engine.Run(program);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GE(stats->resumed_from_step, 0);
    std::vector<double> values;
    ASSERT_TRUE(engine.CopyValuesTo(&values).ok());
    ExpectBytesEqual(values, baseline, "resumed paged run");
  }
  paged.reset();
  std::filesystem::remove(path);
  std::filesystem::remove_all(ckpt_dir);
}

/// BuildFromEdgeList (streaming, never materializes the graph) must open
/// to the same adjacency as the in-memory loader reading the same file.
TEST(GraphBackendTest, StreamedBuildMatchesLoadEdgeList) {
  const Graph mem = TestGraph();
  const std::string el_path = UniquePath("el") + ".el";
  ASSERT_TRUE(SaveEdgeList(mem, el_path).ok());
  auto loaded = LoadEdgeList(el_path, mem.num_vertices());
  ASSERT_TRUE(loaded.ok());

  const std::string agp_path = UniquePath("stream");
  ASSERT_TRUE(PagedBackend::BuildFromEdgeList(el_path, agp_path, kTestSpan,
                                              mem.num_vertices())
                  .ok());
  auto paged = PagedBackend::Open(agp_path);
  ASSERT_TRUE(paged.ok());
  ASSERT_EQ((*paged)->num_vertices(), loaded->num_vertices());
  ASSERT_EQ((*paged)->num_edges(), loaded->num_edges());
  for (VertexId v = 0; v < loaded->num_vertices(); ++v) {
    const Adjacency expect = CopyAdjacency(*loaded, v);
    const Adjacency got = CopyAdjacency(**paged, v);
    ASSERT_EQ(got.out, expect.out) << "vertex " << v;
    ASSERT_EQ(got.out_w, expect.out_w) << "vertex " << v;
    ASSERT_EQ(got.in, expect.in) << "vertex " << v;
    ASSERT_EQ(got.in_w, expect.in_w) << "vertex " << v;
  }
  // No bucket temp files left behind.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(agp_path).parent_path())) {
    EXPECT_EQ(entry.path().string().find(".bucket."), std::string::npos)
        << entry.path();
  }
  paged->reset();
  std::filesystem::remove(agp_path);
  std::filesystem::remove(el_path);
}

TEST(GraphBackendTest, VerifyAllPartitionsPassesOnCleanFile) {
  const Graph mem = TestGraph();
  const std::string path = UniquePath("verify");
  ASSERT_TRUE(PagedBackend::CreateFrom(mem, path).ok());
  PagedBackendOptions options;
  options.verify_on_open = true;
  auto paged = PagedBackend::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_TRUE((*paged)->VerifyAllPartitions().ok());
  paged->reset();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ariadne
