// Ablation (DESIGN.md §5): the online history-retention window. The
// paper's online mode claims to obviate capture; that only holds if the
// transient provenance a vertex keeps is bounded. This bench runs the apt
// query online with unlimited history vs a 2-superstep window.
//
// Shape to check: identical query verdicts, with the windowed run holding
// a fraction of the transient bytes (the gap grows with superstep count).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Ablation: online EDB history retention window",
              "(no direct paper counterpart; supports the §5.2 claim that "
              "online evaluation avoids materializing the provenance graph)");

  TablePrinter table({"Dataset", "Window", "Time(s)", "Transient bytes",
                      "safe/unsafe/no-execute"});
  for (const auto& dataset : WebDatasets()) {
    if (!dataset.naive_feasible) continue;  // keep the unlimited runs small
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto apt = session.PrepareOnline(
        queries::Apt(), {{"eps", Value(AptEpsilon(AnalyticKind::kPageRank))}});
    if (!apt.ok()) return 1;
    for (int window : {0, 2}) {
      size_t transient = 0;
      std::string verdicts;
      const double seconds = TimedSeconds([&] {
        auto run = RunOnlineQuery(AnalyticKind::kPageRank, *graph, *apt,
                                  window);
        ARIADNE_CHECK(run.ok());
        transient = run->transient_bytes;
        verdicts = std::to_string(run->query_result.TupleCount("safe")) +
                   "/" + std::to_string(run->query_result.TupleCount("unsafe")) +
                   "/" +
                   std::to_string(run->query_result.TupleCount("no-execute"));
      });
      table.AddRow({dataset.short_name,
                    window == 0 ? "unlimited" : std::to_string(window),
                    FormatDouble(seconds, 3), HumanBytes(transient),
                    verdicts});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
