// Reproduces paper Figure 7: runtime overhead of provenance capture —
// full capture (Query 2) vs custom capture (Query 3) — relative to the
// plain analytic (the "Giraph" baseline).
//
// Shape to check: full capture costs a small-integer multiple of the
// baseline (paper: 2.7-3.4x for PageRank, 3-5.6x for SSSP/WCC) and custom
// capture stays well below it (paper: < 2x).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Figure 7: capture runtime (Full = Query 2, Custom = Query 3)",
              "Full capture 2.7-5.6x the analytic's runtime; custom capture "
              "< 2x");

  TablePrinter table({"Dataset", "Analytic", "Baseline(s)", "Full(s)",
                      "Full/Base", "Custom(s)", "Custom/Base"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto full_query = session.PrepareOnline(queries::CaptureFull());
    if (!full_query.ok()) return 1;
    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kSssp,
                              AnalyticKind::kWcc}) {
      const double base = TimedSeconds([&] {
        auto stats = RunBaseline(kind, *graph);
        ARIADNE_CHECK(stats.ok());
      });
      const double full = TimedSeconds([&] {
        ProvenanceStore store;
        auto stats = RunCapture(kind, *graph, *full_query, &store);
        ARIADNE_CHECK(stats.ok());
      });
      const VertexId alpha = CaptureSource(kind, *graph);
      auto custom_query = session.PrepareOnline(
          queries::CaptureForwardLineage(),
          {{"alpha", Value(static_cast<int64_t>(alpha))}});
      if (!custom_query.ok()) return 1;
      const double custom = TimedSeconds([&] {
        ProvenanceStore store;
        auto stats = RunCapture(kind, *graph, *custom_query, &store);
        ARIADNE_CHECK(stats.ok());
      });
      table.AddRow({dataset.short_name, AnalyticName(kind),
                    FormatDouble(base, 3), FormatDouble(full, 3),
                    Ratio(full, base), FormatDouble(custom, 3),
                    Ratio(custom, base)});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
