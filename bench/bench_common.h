#ifndef ARIADNE_BENCH_BENCH_COMMON_H_
#define ARIADNE_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/ariadne.h"

namespace ariadne::bench {

/// Laptop-scale R-MAT stand-ins for the paper's web crawls (Table 2).
/// Sizes grow in the same order as IN-04 < UK-02 < AR-05 < UK-05; the
/// experiments report ratios, which depend on the degree distribution and
/// superstep counts rather than absolute scale (see DESIGN.md §2).
struct WebDataset {
  std::string name;        ///< e.g. "WEB-XS (IN-04 stand-in)"
  std::string short_name;  ///< e.g. "WEB-XS"
  RmatOptions rmat;
  bool naive_feasible;  ///< paper: Naive only scaled to the two smallest
};

const std::vector<WebDataset>& WebDatasets();

/// The MovieLens-20M stand-in for the ALS experiments.
BipartiteRatingsOptions MlSynOptions(int seed = 7);

/// PageRank iteration count used across all experiments (paper: 20).
PageRankOptions BenchPageRankOptions();

/// The three web-graph analytics of the evaluation.
enum class AnalyticKind { kPageRank, kSssp, kWcc };
const char* AnalyticName(AnalyticKind kind);

/// SSSP source / capture source per the paper: the SSSP source for SSSP,
/// the highest-degree vertex for PageRank and WCC.
VertexId CaptureSource(AnalyticKind kind, const Graph& graph);

/// apt query epsilon per analytic (paper §6.2.2).
double AptEpsilon(AnalyticKind kind);

/// Dispatchers over the statically-typed analytics.
Result<RunStats> RunBaseline(AnalyticKind kind, const Graph& graph);
Result<RunStats> RunCapture(AnalyticKind kind, const Graph& graph,
                            const AnalyzedQuery& capture_query,
                            ProvenanceStore* store, int retention_window = 2,
                            bool use_fast_capture = true);
Result<OnlineRunResult> RunOnlineQuery(AnalyticKind kind, const Graph& graph,
                                       const AnalyzedQuery& query,
                                       int retention_window = 2);

/// Moves a captured store fully onto disk (budget 0), standing in for the
/// paper's HDFS-resident provenance graph: offline querying then pays
/// real (re)load costs per layer, exactly as in the paper's setup, while
/// online evaluation never touches storage.
Status SpillToDisk(ProvenanceStore* store);

/// Repetition count for timed sections; override with ARIADNE_BENCH_REPS.
/// The paper reports the trimmed mean of 5 runs; the default here is 1 so
/// the full harness stays fast — raise it for careful measurements.
int BenchReps();

/// Runs `fn` BenchReps() times and returns the trimmed-mean seconds
/// (drops min and max when reps >= 3, matching the paper's methodology).
double TimedSeconds(const std::function<void()>& fn);

/// Fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the bench banner: which paper table/figure, what the paper
/// reported, what to look for in the output below.
void PrintBanner(const std::string& experiment, const std::string& paper_says);

std::string Ratio(double value, double baseline);

// ------------------------------------------------------------------ JSON
// JSON emission lives in common/json.h (shared with ariadne_run
// --stats-json and ariadne_serve); these aliases keep existing bench
// call sites (`bench::JsonObject`, ...) source-compatible.

using json::JsonEscape;
using json::JsonObject;
using json::JsonArray;

/// Removes `--json <path>` / `--json=<path>` from the argument list (so
/// the rest can go to benchmark::Initialize) and returns the path, or ""
/// when the flag is absent.
std::string ConsumeJsonFlag(int* argc, char** argv);

}  // namespace ariadne::bench

#endif  // ARIADNE_BENCH_BENCH_COMMON_H_
