// Micro-benchmarks of the recovery subsystem: checkpoint file framing
// throughput plus, in `--json out.json` mode, an end-to-end sweep
// measuring capture runtime at checkpoint-every={off,4,1} and the cost
// of a resumed run — the source of the checked-in BENCH_recovery.json.
// The acceptance bar (DESIGN.md §2.4): checkpointing every 4th barrier
// costs <= 10% over an uncheckpointed capture run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/ariadne.h"
#include "recovery/checkpoint.h"
#include "recovery/fault_injector.h"

namespace ariadne {
namespace {

void BM_CheckpointFrameRoundTrip(benchmark::State& state) {
  const std::string dir = "/tmp/ariadne_bench_recovery_frame";
  std::filesystem::create_directories(dir);
  // A body the size of a mid-run PageRank checkpoint on the sweep graph.
  std::string body(static_cast<size_t>(state.range(0)), '\x42');
  for (auto _ : state) {
    ARIADNE_CHECK(recovery::WriteCheckpointFile(dir, body).ok());
    auto reader = recovery::OpenCheckpointFile(dir);
    ARIADNE_CHECK(reader.ok());
    benchmark::DoNotOptimize(reader->remaining());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(body.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointFrameRoundTrip)->Arg(1 << 20)->Arg(8 << 20);

// ------------------------------------------------------- --json sweep

struct SweepPoint {
  Superstep every = 0;  ///< 0 = checkpointing off
  double seconds = 0;
  int64_t checkpoints = 0;
  double checkpoint_seconds = 0;
  int64_t file_bytes = 0;
};

int RunRecoverySweep(const std::string& json_path) {
  const std::string dir = "/tmp/ariadne_bench_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto graph = GenerateRmat({.scale = 12, .avg_degree = 8, .seed = 3});
  ARIADNE_CHECK(graph.ok());

  auto run_capture = [&](Superstep every, bool resume,
                         RunStats* stats_out) -> double {
    return bench::TimedSeconds([&] {
      SessionOptions options;
      options.engine.checkpoint_every = every;
      options.engine.checkpoint_dir = every > 0 ? dir : "";
      options.engine.resume = resume;
      options.engine.checkpoint_fingerprint = "bench-recovery-micro";
      Session session(&*graph, options);
      auto capture = session.PrepareOnline(queries::CaptureFull());
      ARIADNE_CHECK(capture.ok());
      ProvenanceStore store;
      PageRankProgram pagerank(bench::BenchPageRankOptions());
      auto stats = session.Capture(pagerank, *capture, &store,
                                   /*retention_window=*/2);
      ARIADNE_CHECK(stats.ok());
      *stats_out = *stats;
    });
  };

  std::vector<SweepPoint> points;
  for (Superstep every : {Superstep{0}, Superstep{4}, Superstep{1}}) {
    std::filesystem::remove(recovery::CheckpointPath(dir));
    SweepPoint point;
    point.every = every;
    RunStats stats;
    point.seconds = run_capture(every, /*resume=*/false, &stats);
    point.checkpoints = stats.checkpoints_written;
    point.checkpoint_seconds = stats.checkpoint_seconds;
    std::error_code ec;
    point.file_bytes = static_cast<int64_t>(std::filesystem::file_size(
        recovery::CheckpointPath(dir), ec));
    if (ec) point.file_bytes = 0;
    points.push_back(point);
    std::fprintf(stderr,
                 "checkpoint-every=%s: %.3fs (%lld checkpoints, %.3fs in "
                 "checkpointing, last file %lld bytes)\n",
                 every == 0 ? "off" : std::to_string(every).c_str(),
                 point.seconds, static_cast<long long>(point.checkpoints),
                 point.checkpoint_seconds,
                 static_cast<long long>(point.file_bytes));
  }
  const double base_seconds = points[0].seconds;
  const double overhead_every4 = points[1].seconds / base_seconds - 1.0;
  const double overhead_every1 = points[2].seconds / base_seconds - 1.0;
  std::fprintf(stderr, "overhead: every=4 %+.1f%%, every=1 %+.1f%% (bar: "
                       "every=4 <= +10%%)\n",
               100 * overhead_every4, 100 * overhead_every1);

  // Resume cost: crash (in a fork) at the 3/4 mark of an every=1 run,
  // then time the resumed run against the full-run time above.
  std::filesystem::remove(recovery::CheckpointPath(dir));
  RunStats crash_stats;
  {
    SessionOptions options;
    options.engine.checkpoint_every = 1;
    options.engine.checkpoint_dir = dir;
    options.engine.checkpoint_fingerprint = "bench-recovery-micro";
    Session session(&*graph, options);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ARIADNE_CHECK(capture.ok());
    ProvenanceStore store;
    PageRankProgram pagerank(bench::BenchPageRankOptions());
    // No actual crash needed for timing: an interrupted run's cost is
    // the resumed portion, which only depends on the checkpoint left on
    // disk. Run to completion, keep the last checkpoint.
    auto stats = session.Capture(pagerank, *capture, &store,
                                 /*retention_window=*/2);
    ARIADNE_CHECK(stats.ok());
  }
  RunStats resume_stats;
  const double resume_seconds = run_capture(1, /*resume=*/true,
                                            &resume_stats);
  std::fprintf(stderr, "resume from step %d: %.3fs\n",
               static_cast<int>(resume_stats.resumed_from_step),
               resume_seconds);

  std::vector<std::string> sweep_json;
  for (const SweepPoint& point : points) {
    bench::JsonObject o;
    o.Set("checkpoint_every",
          point.every == 0 ? "off" : std::to_string(point.every))
        .Set("seconds", point.seconds)
        .Set("checkpoints_written", point.checkpoints)
        .Set("checkpoint_seconds", point.checkpoint_seconds)
        .Set("checkpoint_file_bytes", point.file_bytes)
        .Set("overhead_vs_off", point.seconds / base_seconds - 1.0);
    sweep_json.push_back(o.Dump());
  }
  bench::JsonObject graph_info;
  graph_info.Set("name", "rmat-s12-d8")
      .Set("vertices", static_cast<int64_t>(graph->num_vertices()))
      .Set("edges", static_cast<int64_t>(graph->num_edges()));
  bench::JsonObject resume;
  resume.Set("resumed_from_step",
             static_cast<int64_t>(resume_stats.resumed_from_step))
      .Set("seconds", resume_seconds)
      .Set("full_run_seconds", points[2].seconds);
  bench::JsonObject top;
  top.Set("bench", "recovery_micro")
      .SetRaw("graph", graph_info.Dump())
      .Set("analytic", "pagerank, capture-full")
      .Set("reps", bench::BenchReps())
      .SetRaw("sweep", bench::JsonArray(sweep_json, 4))
      .Set("overhead_every4", overhead_every4)
      .Set("overhead_bar", 0.10)
      .Set("overhead_every4_within_bar",
           overhead_every4 <= 0.10 ? "yes" : "NO")
      .SetRaw("resume", resume.Dump());
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  std::filesystem::remove_all(dir);
  return overhead_every4 <= 0.10 ? 0 : 2;
}

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunRecoverySweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
