// Micro-benchmarks (google-benchmark) of the PQL evaluator fast paths:
// flat-arena relation inserts, RowView scans, indexed probes, and the
// cost-ordered join planner against the legacy literal order.
//
// Running with `--json out.json` skips google-benchmark and instead runs
// the planned-vs-unplanned join sweep on a skewed recursive reachability
// workload (>= 100k hop tuples), writing throughput, probe hit rates and
// allocation counts per configuration — the source of the checked-in
// BENCH_eval.json. The "no-plan" configuration is exactly the pre-planner
// evaluation order, so the speedup column measures the planner itself.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/ariadne.h"

// ---------------------------------------------------- allocation counters
// Interposed in this binary only: every operator-new in the process bumps
// the counters, so deltas around a timed section give the allocation cost
// of that section (single-threaded here, so deltas are exact).

namespace evalbench {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace evalbench

void* operator new(std::size_t size) {
  evalbench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  evalbench::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  evalbench::g_allocs.fetch_add(1, std::memory_order_relaxed);
  evalbench::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ariadne {
namespace {

// ------------------------------------------------------------- gbench

void BM_FlatRelationInsertInts(benchmark::State& state) {
  for (auto _ : state) {
    Relation rel(3);
    for (int64_t i = 0; i < 1000; ++i) {
      rel.Insert({Value(i % 64), Value(static_cast<double>(i)), Value(i)});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FlatRelationInsertInts);

void BM_FlatRelationInsertInternedStrings(benchmark::State& state) {
  // 32 distinct strings cycled over 1000 inserts: after the first cycle
  // every insert hits the intern pool instead of heap-copying the string.
  std::vector<Value> labels;
  for (int i = 0; i < 32; ++i) {
    labels.push_back(Value("label-" + std::to_string(i)));
  }
  for (auto _ : state) {
    Relation rel(2);
    for (int64_t i = 0; i < 1000; ++i) {
      rel.Insert({Value(i), labels[static_cast<size_t>(i) % labels.size()]});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FlatRelationInsertInternedStrings);

void BM_RowViewScan(benchmark::State& state) {
  Relation rel(3);
  for (int64_t i = 0; i < 10000; ++i) {
    rel.Insert({Value(i % 256), Value(static_cast<double>(i)), Value(i)});
  }
  const Value needle(int64_t{17});
  for (auto _ : state) {
    size_t hits = 0;
    for (size_t i = 0; i < rel.size(); ++i) {
      if (rel.row_view(i).Equals(0, needle)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rel.size()));
}
BENCHMARK(BM_RowViewScan);

AnalyzedQuery ClosureQuery(bool planned) {
  StoreSchema schema{{{"src", 2}, {"label", 2}, {"hop", 3}}};
  auto program = ParseProgram(R"(
    reach(s, x) <- src(s, x).
    reach(s, y) <- reach(s, x), label(x, c), hop(c, x, y).
  )");
  ARIADNE_CHECK(program.ok());
  AnalyzeOptions options;
  options.plan_joins = planned;
  auto q = Analyze(*program, Catalog::Default(), UdfRegistry::Default(),
                   &schema, options);
  ARIADNE_CHECK(q.ok());
  return std::move(*q);
}

/// Loads the skewed reachability EDB: `n` vertices, `labels` label
/// classes, `fanout` hop edges per vertex. hop is keyed (label, from, to),
/// so probing on the label column touches n*fanout/labels rows while
/// probing on the bound `from` column touches fanout.
void LoadClosureEdb(const AnalyzedQuery& q, Database& db, int64_t n,
                    int64_t labels, int64_t fanout) {
  db.Rel(q.PredId("src")).Insert({Value(int64_t{0}), Value(int64_t{0})});
  Relation& label = db.Rel(q.PredId("label"));
  Relation& hop = db.Rel(q.PredId("hop"));
  for (int64_t x = 0; x < n; ++x) {
    label.Insert({Value(x), Value(x % labels)});
    for (int64_t k = 1; k <= fanout; ++k) {
      hop.Insert({Value(x % labels), Value(x), Value((x + k) % n)});
    }
  }
}

void RecursiveClosure(benchmark::State& state, bool planned) {
  AnalyzedQuery q = ClosureQuery(planned);
  size_t derived = 0;
  for (auto _ : state) {
    Database db(&q);
    EvalContext ctx;
    ctx.db = &db;
    RuleEvaluator eval(&q);
    LoadClosureEdb(q, db, /*n=*/120, /*labels=*/4, /*fanout=*/40);
    ARIADNE_CHECK(eval.Evaluate(ctx).ok());
    derived += db.RelIfExists(q.PredId("reach"))->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(derived));
}

void BM_RecursiveClosurePlanned(benchmark::State& state) {
  RecursiveClosure(state, true);
}
BENCHMARK(BM_RecursiveClosurePlanned);

void BM_RecursiveClosureUnplanned(benchmark::State& state) {
  RecursiveClosure(state, false);
}
BENCHMARK(BM_RecursiveClosureUnplanned);

// ------------------------------------------------- --json planning sweep

struct SweepResult {
  double seconds = 0;
  size_t reach_tuples = 0;
  RuleEvalStats totals;
  uint64_t allocs = 0;
  uint64_t alloc_bytes = 0;
};

/// One configuration: builds the EDB fresh per rep and times only the
/// fixpoint evaluation (trimmed mean over BenchReps() runs, matching the
/// paper's methodology). Counters come from the last run — evaluation is
/// deterministic, so they are identical across reps.
SweepResult RunSweepConfig(bool planned, int64_t n, int64_t labels,
                           int64_t fanout) {
  AnalyzedQuery q = ClosureQuery(planned);
  SweepResult out;
  std::vector<double> times;
  const int reps = std::max(1, bench::BenchReps());
  for (int rep = 0; rep < reps; ++rep) {
    Database db(&q);
    EvalContext ctx;
    ctx.db = &db;
    RuleEvaluator eval(&q);
    LoadClosureEdb(q, db, n, labels, fanout);
    const uint64_t allocs0 = evalbench::g_allocs.load();
    const uint64_t bytes0 = evalbench::g_alloc_bytes.load();
    WallTimer timer;
    ARIADNE_CHECK(eval.Evaluate(ctx).ok());
    times.push_back(timer.ElapsedSeconds());
    out.allocs = evalbench::g_allocs.load() - allocs0;
    out.alloc_bytes = evalbench::g_alloc_bytes.load() - bytes0;
    out.totals = db.eval_stats().Total();
    out.reach_tuples = db.RelIfExists(q.PredId("reach"))->size();
  }
  std::sort(times.begin(), times.end());
  size_t lo = 0, hi = times.size();
  if (times.size() >= 3) {
    ++lo;
    --hi;
  }
  double sum = 0;
  for (size_t i = lo; i < hi; ++i) sum += times[i];
  out.seconds = sum / static_cast<double>(hi - lo);
  return out;
}

std::string SweepRow(const char* label, const SweepResult& r) {
  const double probe_hit_rate =
      r.totals.probe_rows == 0
          ? 0.0
          : static_cast<double>(r.totals.derived) /
                static_cast<double>(r.totals.probe_rows);
  std::fprintf(stderr,
               "  %-8s %.4fs  %zu tuples  probes=%llu probe-rows=%llu "
               "scanned=%llu allocs=%llu\n",
               label, r.seconds, r.reach_tuples,
               static_cast<unsigned long long>(r.totals.index_probes),
               static_cast<unsigned long long>(r.totals.probe_rows),
               static_cast<unsigned long long>(r.totals.rows_scanned),
               static_cast<unsigned long long>(r.allocs));
  bench::JsonObject row;
  row.Set("plan", label)
      .Set("seconds", r.seconds)
      .Set("reach_tuples", static_cast<int64_t>(r.reach_tuples))
      .Set("derived", static_cast<int64_t>(r.totals.derived))
      .Set("derived_per_sec",
           static_cast<double>(r.totals.derived) / r.seconds)
      .Set("rule_evaluations", static_cast<int64_t>(r.totals.evaluations))
      .Set("rows_scanned", static_cast<int64_t>(r.totals.rows_scanned))
      .Set("index_probes", static_cast<int64_t>(r.totals.index_probes))
      .Set("probe_rows", static_cast<int64_t>(r.totals.probe_rows))
      .Set("probe_hit_rate", probe_hit_rate)
      .Set("index_builds", static_cast<int64_t>(r.totals.index_builds))
      .Set("delta_rescans", static_cast<int64_t>(r.totals.delta_rescans))
      .Set("allocs", static_cast<int64_t>(r.allocs))
      .Set("alloc_bytes", static_cast<int64_t>(r.alloc_bytes));
  return row.Dump();
}

int RunPlanningSweep(const std::string& json_path) {
  // 500 vertices x fanout 200 = 100k hop tuples; 4 label classes make the
  // legacy probe column (the label) ~50x denser than the planned one (the
  // bound source vertex).
  const int64_t kN = 500, kLabels = 4, kFanout = 200;
  std::fprintf(stderr,
               "eval planning sweep: %lld vertices, %lld labels, fanout "
               "%lld (%lld hop tuples), reps=%d\n",
               static_cast<long long>(kN), static_cast<long long>(kLabels),
               static_cast<long long>(kFanout),
               static_cast<long long>(kN * kFanout), bench::BenchReps());
  const SweepResult planned = RunSweepConfig(true, kN, kLabels, kFanout);
  const SweepResult unplanned = RunSweepConfig(false, kN, kLabels, kFanout);
  ARIADNE_CHECK(planned.reach_tuples == unplanned.reach_tuples);

  std::vector<std::string> rows;
  rows.push_back(SweepRow("planned", planned));
  rows.push_back(SweepRow("no-plan", unplanned));
  const double speedup = unplanned.seconds / planned.seconds;
  std::fprintf(stderr, "  planned speedup: %.2fx\n", speedup);

  bench::JsonObject workload;
  workload.Set("rules",
               "reach(s,x) <- src(s,x). "
               "reach(s,y) <- reach(s,x), label(x,c), hop(c,x,y).")
      .Set("vertices", static_cast<int64_t>(kN))
      .Set("labels", static_cast<int64_t>(kLabels))
      .Set("fanout", static_cast<int64_t>(kFanout))
      .Set("hop_tuples", static_cast<int64_t>(kN * kFanout));
  bench::JsonObject top;
  top.Set("bench", "eval_join_planning")
      .SetRaw("workload", workload.Dump())
      .Set("reps", bench::BenchReps())
      .Set("speedup_planned_over_unplanned", speedup)
      .SetRaw("results", bench::JsonArray(rows, 4));
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunPlanningSweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
