// Reproduces paper Table 3: size of the full provenance graph (capture
// Query 2) vs the input graph, for PageRank / SSSP / WCC on each web
// dataset.
//
// Shape to check: provenance is a large multiple of the input for all
// three analytics (paper: ~10x for PageRank and SSSP, ~5x for WCC — WCC
// quiesces quickly so it generates roughly half the provenance of the
// fixed-20-iteration PageRank).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Table 3: input vs full provenance graph size",
              "PageRank/SSSP provenance ~10x input, WCC ~5x (IN-04: 4.1GB "
              "input -> 45.1/42.7/22.6GB)");

  TablePrinter table({"Dataset", "Input", "PageRank", "(ratio)", "SSSP",
                      "(ratio)", "WCC", "(ratio)"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto capture_query = session.PrepareOnline(queries::CaptureFull());
    if (!capture_query.ok()) {
      std::fprintf(stderr, "%s\n", capture_query.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row{dataset.short_name,
                                 HumanBytes(graph->InputByteSize())};
    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kSssp,
                              AnalyticKind::kWcc}) {
      ProvenanceStore store;
      auto stats = RunCapture(kind, *graph, *capture_query, &store);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s capture: %s\n", AnalyticName(kind),
                     stats.status().ToString().c_str());
        return 1;
      }
      row.push_back(HumanBytes(store.TotalBytes()));
      row.push_back(Ratio(static_cast<double>(store.TotalBytes()),
                          static_cast<double>(graph->InputByteSize())));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
