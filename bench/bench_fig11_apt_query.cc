// Reproduces paper Figure 11: runtime of the motivating apt query
// (Query 1) for PageRank / SSSP / WCC / ALS under the three evaluation
// modes, plus the verdicts the query returns.
//
// Shape to check: Online is the cheapest mode, Layered costs a multiple,
// Naive the most (and only runs on the smallest datasets). Verdicts
// (paper §6.2.2): for PageRank a majority of vertex-steps can safely
// skip and there are no unsafe vertices; for SSSP most skips are safe;
// for WCC *every* no-execute vertex is unsafe and safe is empty — the
// query correctly rejects the optimization; for ALS few vertices land in
// either table.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner(
      "Figure 11: apt query (Query 1) across analytics and modes",
      "Online 1.3-1.6x baseline; Layered 3.2-3.7x; Naive 3.8-5x; PageRank: "
      "60% of vertices skip safely, none unsafe; WCC: safe empty, all "
      "no-execute unsafe; ALS: few vertices in either table");

  TablePrinter table({"Dataset", "Analytic", "Base(s)", "Online", "Layered",
                      "Naive", "safe", "unsafe", "no-execute"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto capture_query = session.PrepareOnline(queries::CaptureFull());
    if (!capture_query.ok()) return 1;

    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kSssp,
                              AnalyticKind::kWcc}) {
      const QueryParams eps{{"eps", Value(AptEpsilon(kind))}};
      const double base = TimedSeconds([&] {
        ARIADNE_CHECK(RunBaseline(kind, *graph).ok());
      });

      auto apt_online = session.PrepareOnline(queries::Apt(), eps);
      if (!apt_online.ok()) return 1;
      size_t safe = 0, unsafe = 0, no_execute = 0;
      const double online = TimedSeconds([&] {
        auto run = RunOnlineQuery(kind, *graph, *apt_online);
        ARIADNE_CHECK(run.ok());
        safe = run->query_result.TupleCount("safe");
        unsafe = run->query_result.TupleCount("unsafe");
        no_execute = run->query_result.TupleCount("no-execute");
      });

      ProvenanceStore store;
      ARIADNE_CHECK(RunCapture(kind, *graph, *capture_query, &store).ok());
      // The paper's provenance graph lives in HDFS; offline modes pay
      // storage reads that online evaluation never incurs.
      ARIADNE_CHECK(SpillToDisk(&store).ok());
      auto apt_offline = session.PrepareOffline(queries::Apt(), store, eps);
      if (!apt_offline.ok()) return 1;
      const double layered = TimedSeconds([&] {
        auto run =
            session.RunOffline(&store, *apt_offline, EvalMode::kLayered);
        ARIADNE_CHECK(run.ok());
      });
      std::string naive_cell = "(skipped)";
      if (dataset.naive_feasible) {
        const double naive = TimedSeconds([&] {
          auto run =
              session.RunOffline(&store, *apt_offline, EvalMode::kNaive);
          ARIADNE_CHECK(run.ok());
        });
        naive_cell = Ratio(naive, base);
      }
      table.AddRow({dataset.short_name, AnalyticName(kind),
                    FormatDouble(base, 3), Ratio(online, base),
                    Ratio(layered, base), naive_cell, std::to_string(safe),
                    std::to_string(unsafe), std::to_string(no_execute)});
    }
  }

  // ALS (online only, matching the paper's "lower than 10%" framing).
  {
    auto ratings = GenerateBipartiteRatings(MlSynOptions());
    if (!ratings.ok()) return 1;
    Session session(&ratings->graph);
    AlsOptions als_options;
    als_options.max_iterations = 4;
    als_options.tolerance = 0;
    const double base = TimedSeconds([&] {
      AlsProgram als(als_options, ratings->num_users);
      ARIADNE_CHECK(session.RunBaseline(als).ok());
    });
    auto apt = session.PrepareOnline(queries::Apt(), {{"eps", Value(0.05)}});
    if (!apt.ok()) return 1;
    size_t safe = 0, unsafe = 0, no_execute = 0;
    const double online = TimedSeconds([&] {
      AlsProgram als(als_options, ratings->num_users);
      auto run = session.RunOnline(als, *apt, /*retention_window=*/4);
      ARIADNE_CHECK(run.ok());
      safe = run->query_result.TupleCount("safe");
      unsafe = run->query_result.TupleCount("unsafe");
      no_execute = run->query_result.TupleCount("no-execute");
    });
    table.AddRow({"ML-SYN", "ALS", FormatDouble(base, 3),
                  Ratio(online, base), "-", "-", std::to_string(safe),
                  std::to_string(unsafe), std::to_string(no_execute)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
