// Micro-benchmark of the multi-tenant query server (DESIGN.md §2.6):
// Quegel-style superstep-sharing vs sequential one-shot evaluation.
//
// Running with `--json out.json` skips google-benchmark and runs the
// concurrency sweep behind the checked-in BENCH_serve.json: a mixed
// backward/forward/apt workload (examples/pql + builtins) over one
// spilled SSSP capture, at 1..256 concurrent queries. Per level it
// reports aggregate QPS, p50/p95/p99 latency, the shared-scan hit rate,
// the in-flight coalescing count, and the speedup over evaluating the
// same query list sequentially with one-shot Session::RunOffline — and
// aborts if any served result differs from its one-shot reference
// (results must be byte-identical). Levels at or below the distinct
// query count isolate superstep-sharing; levels above it additionally
// exercise coalescing, which is where a repeating tenant mix wins big.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "core/ariadne.h"
#include "serve/server.h"

namespace ariadne {
namespace {

struct QuerySpec {
  std::string label;
  std::string text;
  QueryParams params;
};

/// The mixed tenant workload: selective backward traces from several
/// roots, approximate-provenance-tracking probes, forward lineage.
std::vector<QuerySpec> DistinctWorkload() {
  auto forward = ReadFile(std::string(ARIADNE_SOURCE_DIR) +
                          "/examples/pql/forward_lineage.pql");
  ARIADNE_CHECK(forward.ok());
  std::vector<QuerySpec> specs;
  for (int64_t alpha : {3, 57, 211, 400}) {
    specs.push_back({"backward/a" + std::to_string(alpha),
                     queries::BackwardLineageFull(),
                     {{"alpha", Value(alpha)}, {"sigma", Value(int64_t{4})}}});
  }
  specs.push_back({"apt/eps0.1", queries::Apt(), {{"eps", Value(0.1)}}});
  specs.push_back({"apt/eps0.4", queries::Apt(), {{"eps", Value(0.4)}}});
  specs.push_back(
      {"forward/a0", *forward, {{"alpha", Value(int64_t{0})}}});
  specs.push_back(
      {"forward/a57", *forward, {{"alpha", Value(int64_t{57})}}});
  return specs;
}

/// One spilled SSSP capture shared by the whole sweep. Scale-10 R-MAT
/// keeps a single one-shot query in the tens of milliseconds while the
/// spill budget forces every layer scan through read + decompress.
struct ServeFixture {
  Graph graph;
  ProvenanceStore store;
  std::vector<QuerySpec> specs;
  /// Per-spec one-shot sorted table dump, the byte-identity reference.
  std::vector<std::vector<std::string>> reference;

  static ServeFixture Build() {
    ServeFixture f;
    auto g = GenerateRmat({.scale = 10, .avg_degree = 8, .seed = 42});
    ARIADNE_CHECK(g.ok());
    f.graph = std::move(*g);
    Session session(&f.graph);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ARIADNE_CHECK(capture.ok());
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *capture, &f.store);
    ARIADNE_CHECK(stats.ok());
    ARIADNE_CHECK(bench::SpillToDisk(&f.store).ok());
    f.specs = DistinctWorkload();
    for (const QuerySpec& spec : f.specs) {
      f.reference.push_back(f.OneShotTables(session, spec));
    }
    return f;
  }

  std::vector<std::string> OneShotTables(Session& session,
                                         const QuerySpec& spec) const {
    auto q = session.PrepareOffline(spec.text, store, spec.params);
    ARIADNE_CHECK(q.ok());
    auto run = session.RunOffline(&store, *q, EvalMode::kLayered);
    ARIADNE_CHECK(run.ok());
    return DumpTables(run->result);
  }

  static std::vector<std::string> DumpTables(const QueryResult& result) {
    std::vector<std::string> dump;
    for (const std::string& name : result.TableNames()) {
      dump.push_back("== " + name);
      const auto rows = result.Table(name)->ToSortedStrings();
      dump.insert(dump.end(), rows.begin(), rows.end());
    }
    return dump;
  }
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LevelResult {
  size_t concurrency = 0;
  double serve_seconds = 0;
  double sequential_seconds = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  serve::ServerStats stats;

  double ServeQps() const {
    return static_cast<double>(concurrency) / serve_seconds;
  }
  double SequentialQps() const {
    return static_cast<double>(concurrency) / sequential_seconds;
  }
  double Speedup() const { return sequential_seconds / serve_seconds; }
};

/// Runs one sweep level: `concurrency` queries (the distinct workload,
/// round-robin) through a fresh server, then the same list sequentially
/// one-shot. Verifies every served result against the reference dump.
LevelResult RunLevel(const ServeFixture& fixture, size_t concurrency) {
  LevelResult out;
  out.concurrency = concurrency;

  auto state = serve::ServiceState::Create(&fixture.graph, &fixture.store);
  ARIADNE_CHECK(state.ok());
  std::unique_ptr<serve::ServiceState> service = state.MoveValue();
  serve::ServerOptions options;
  options.max_inflight = concurrency;
  options.queue_capacity = concurrency;
  serve::QueryServer server(service.get(), options);

  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(concurrency);
  WallTimer serve_timer;
  for (size_t i = 0; i < concurrency; ++i) {
    const QuerySpec& spec = fixture.specs[i % fixture.specs.size()];
    serve::ServeRequest request;
    request.name = spec.label + "#" + std::to_string(i);
    request.text = spec.text;
    request.params = spec.params;
    futures.push_back(server.Submit(std::move(request)));
  }
  std::vector<double> latencies;
  for (size_t i = 0; i < concurrency; ++i) {
    serve::ServeResponse response = futures[i].get();
    ARIADNE_CHECK(response.ok());
    latencies.push_back(response.queue_seconds + response.exec_seconds);
    const auto dump = ServeFixture::DumpTables(response.result);
    ARIADNE_CHECK(dump == fixture.reference[i % fixture.specs.size()]);
  }
  out.serve_seconds = serve_timer.ElapsedSeconds();
  out.stats = server.stats();

  std::sort(latencies.begin(), latencies.end());
  out.p50 = Percentile(latencies, 0.50);
  out.p95 = Percentile(latencies, 0.95);
  out.p99 = Percentile(latencies, 0.99);

  // The sequential baseline: the same query list, one-shot, one at a
  // time (what N independent ariadne_run invocations would do, minus
  // process startup and store load).
  Session session(&fixture.graph);
  WallTimer seq_timer;
  for (size_t i = 0; i < concurrency; ++i) {
    const QuerySpec& spec = fixture.specs[i % fixture.specs.size()];
    auto q = session.PrepareOffline(spec.text, fixture.store, spec.params);
    ARIADNE_CHECK(q.ok());
    auto run = session.RunOffline(&fixture.store, *q, EvalMode::kLayered);
    ARIADNE_CHECK(run.ok());
  }
  out.sequential_seconds = seq_timer.ElapsedSeconds();
  return out;
}

int RunServeSweep(const std::string& json_path) {
  ServeFixture fixture = ServeFixture::Build();
  std::fprintf(stderr,
               "serve sweep: %lld vertices, %d layers, %lld tuples, "
               "%zu spilled layers, %zu distinct queries\n",
               static_cast<long long>(fixture.graph.num_vertices()),
               fixture.store.num_layers(),
               static_cast<long long>(fixture.store.TotalTuples()),
               static_cast<size_t>(fixture.store.SpilledLayerCount()),
               fixture.specs.size());

  std::vector<std::string> rows;
  for (size_t concurrency : {1, 4, 16, 64, 256}) {
    const LevelResult r = RunLevel(fixture, concurrency);
    std::fprintf(stderr,
                 "  %3zu concurrent: %7.1f qps (seq %6.1f, %4.2fx)  "
                 "p50 %.1fms p95 %.1fms p99 %.1fms  "
                 "scan hit %.0f%% mean group %.1f coalesced %llu\n",
                 concurrency, r.ServeQps(), r.SequentialQps(), r.Speedup(),
                 r.p50 * 1e3, r.p95 * 1e3, r.p99 * 1e3,
                 100.0 * r.stats.scan.HitRate(), r.stats.MeanGroupSize(),
                 static_cast<unsigned long long>(r.stats.coalesced));
    bench::JsonObject scan;
    scan.Set("scans", static_cast<int64_t>(r.stats.scan.scans))
        .Set("subscribers", static_cast<int64_t>(r.stats.scan.subscribers))
        .Set("shared_hits", static_cast<int64_t>(r.stats.scan.shared_hits))
        .Set("hit_rate", r.stats.scan.HitRate());
    bench::JsonObject row;
    row.Set("concurrency", static_cast<int64_t>(r.concurrency))
        .Set("serve_seconds", r.serve_seconds)
        .Set("aggregate_qps", r.ServeQps())
        .Set("sequential_seconds", r.sequential_seconds)
        .Set("sequential_qps", r.SequentialQps())
        .Set("speedup_vs_sequential", r.Speedup())
        .Set("latency_p50_ms", r.p50 * 1e3)
        .Set("latency_p95_ms", r.p95 * 1e3)
        .Set("latency_p99_ms", r.p99 * 1e3)
        .Set("coalesced", static_cast<int64_t>(r.stats.coalesced))
        .Set("group_steps", static_cast<int64_t>(r.stats.group_steps))
        .Set("query_steps", static_cast<int64_t>(r.stats.query_steps))
        .Set("mean_group_size", r.stats.MeanGroupSize())
        .SetRaw("shared_scan", scan.Dump());
    rows.push_back(row.Dump());
  }

  bench::JsonObject workload;
  workload.Set("graph", "rmat scale 10, avg degree 8, seed 42")
      .Set("analytic", "sssp")
      .Set("layers", fixture.store.num_layers())
      .Set("store_tuples", static_cast<int64_t>(fixture.store.TotalTuples()))
      .Set("distinct_queries", static_cast<int64_t>(fixture.specs.size()))
      .Set("mix", "4x backward-lineage, 2x apt, 2x forward-lineage");
  bench::JsonObject top;
  top.Set("bench", "serve_superstep_sharing")
      .SetRaw("workload", workload.Dump())
      .Set("results_verified_identical_to_one_shot", true)
      .SetRaw("results", bench::JsonArray(rows, 4));
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

// ------------------------------------------------------------- gbench

void BM_ServeSingleQuery(benchmark::State& state) {
  static ServeFixture* fixture = new ServeFixture(ServeFixture::Build());
  auto service =
      serve::ServiceState::Create(&fixture->graph, &fixture->store)
          .MoveValue();
  serve::QueryServer server(service.get());
  for (auto _ : state) {
    serve::ServeRequest request;
    request.name = "bench";
    request.text = queries::BackwardLineageFull();
    request.params = {{"alpha", Value(int64_t{3})},
                      {"sigma", Value(int64_t{4})}};
    serve::ServeResponse response = server.SubmitAndWait(std::move(request));
    ARIADNE_CHECK(response.ok());
    benchmark::DoNotOptimize(response.stats.result_tuples);
  }
}
BENCHMARK(BM_ServeSingleQuery);

void BM_ServeBatch16(benchmark::State& state) {
  static ServeFixture* fixture = new ServeFixture(ServeFixture::Build());
  auto service =
      serve::ServiceState::Create(&fixture->graph, &fixture->store)
          .MoveValue();
  serve::ServerOptions options;
  options.max_inflight = 16;
  serve::QueryServer server(service.get(), options);
  for (auto _ : state) {
    std::vector<std::future<serve::ServeResponse>> futures;
    for (int i = 0; i < 16; ++i) {
      const QuerySpec& spec = fixture->specs[i % fixture->specs.size()];
      serve::ServeRequest request;
      request.name = spec.label;
      request.text = spec.text;
      request.params = spec.params;
      futures.push_back(server.Submit(std::move(request)));
    }
    for (auto& f : futures) ARIADNE_CHECK(f.get().ok());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ServeBatch16);

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunServeSweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
