// Reproduces paper Figure 10 and Tables 5 & 6: the payoff of the apt
// optimization — running the threshold-gated approximate analytics
// against the originals, reporting speedup, normalized relative error and
// result medians.
//
// Shape to check (paper, threshold tuned on one dataset and reused):
//   * PageRank (eps = 0.01): ~1.4x speedup, L2 error 1e-3..1e-5,
//     medians of original and optimized ranks close (Table 5).
//   * SSSP (eps = 0.1): ~1.8x speedup, L1 error ~1e-2, medians close
//     (Table 6).
//   * WCC (eps = 1): the "optimization" breaks correctness — normalized
//     error ~0.9 — exactly what the apt query predicts (all no-execute
//     vertices are unsafe).

#include <cstdio>

#include "analytics/linalg.h"
#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

std::string Scientific(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1e", v);
  return buf;
}

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner(
      "Figure 10 + Tables 5/6: original vs apt-optimized analytics",
      "PageRank speedup 1.4x with L2 error 1e-3..1e-5; SSSP speedup 1.8x "
      "with L1 error ~1e-2; WCC 'optimization' yields error ~0.9");

  TablePrinter table({"Dataset", "Analytic", "eps", "Speedup", "Error",
                      "Median orig", "Median opt", "Msgs saved"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    // Run PageRank closer to convergence here so the reported error
    // isolates the approximation (threshold) effect rather than the
    // different truncation behaviour of the two formulations.
    PageRankOptions pr_options = BenchPageRankOptions();
    pr_options.iterations = 40;
    const VertexId source = CaptureSource(AnalyticKind::kSssp, *graph);

    // ---- PageRank (Table 5: L2 error, medians). ----
    {
      std::vector<double> exact_values, approx_values;
      RunStats exact_stats, approx_stats;
      const double exact_time = TimedSeconds([&] {
        PageRankProgram program(pr_options);
        exact_stats = *session.RunBaseline(program, &exact_values);
      });
      const double approx_time = TimedSeconds([&] {
        ApproxPageRankProgram program(pr_options, AptEpsilon(AnalyticKind::kPageRank));
        Engine<ApproxPageRankState, double> engine(&*graph);
        approx_stats = *engine.Run(program);
        approx_values.clear();
        for (const auto& s : engine.values()) approx_values.push_back(s.rank);
      });
      table.AddRow(
          {dataset.short_name, "PageRank", "0.01",
           Ratio(exact_time, approx_time),
           Scientific(RelativeError(exact_values, approx_values, 2)),
           FormatDouble(Median(exact_values), 3),
           FormatDouble(Median(approx_values), 3),
           FormatDouble(100.0 * (1.0 - static_cast<double>(approx_stats.total_messages) /
                                           static_cast<double>(exact_stats.total_messages)),
                        1) + "%"});
    }

    // ---- SSSP (Table 6: L1 error over reached vertices, medians). ----
    {
      std::vector<double> exact_values, approx_values;
      RunStats exact_stats, approx_stats;
      const double exact_time = TimedSeconds([&] {
        SsspProgram program(source);
        exact_stats = *session.RunBaseline(program, &exact_values);
      });
      const double approx_time = TimedSeconds([&] {
        ApproxSsspProgram program(source, AptEpsilon(AnalyticKind::kSssp));
        approx_stats = *session.RunBaseline(program, &approx_values);
      });
      // Restrict the error to reached vertices (unreached stay at +inf).
      std::vector<double> exact_reached, approx_reached;
      for (size_t i = 0; i < exact_values.size(); ++i) {
        if (exact_values[i] != kInfiniteDistance) {
          exact_reached.push_back(exact_values[i]);
          approx_reached.push_back(approx_values[i] == kInfiniteDistance
                                       ? exact_values[i] + 1.0
                                       : approx_values[i]);
        }
      }
      table.AddRow(
          {dataset.short_name, "SSSP", "0.1", Ratio(exact_time, approx_time),
           Scientific(RelativeError(exact_reached, approx_reached, 1)),
           FormatDouble(Median(exact_reached), 3),
           FormatDouble(Median(approx_reached), 3),
           FormatDouble(100.0 * (1.0 - static_cast<double>(approx_stats.total_messages) /
                                           static_cast<double>(exact_stats.total_messages)),
                        1) + "%"});
    }

    // ---- WCC: the negative result (error ~0.9). ----
    {
      std::vector<int64_t> exact_labels, approx_labels;
      RunStats exact_stats, approx_stats;
      const double exact_time = TimedSeconds([&] {
        WccProgram program;
        exact_stats = *session.RunBaseline(program, &exact_labels);
      });
      const double approx_time = TimedSeconds([&] {
        ApproxWccProgram program(/*epsilon=*/1);
        approx_stats = *session.RunBaseline(program, &approx_labels);
      });
      std::vector<double> exact_d(exact_labels.begin(), exact_labels.end());
      std::vector<double> approx_d(approx_labels.begin(), approx_labels.end());
      table.AddRow(
          {dataset.short_name, "WCC", "1", Ratio(exact_time, approx_time),
           Scientific(RelativeError(exact_d, approx_d, 2)),
           FormatDouble(Median(exact_d), 1), FormatDouble(Median(approx_d), 1),
           FormatDouble(100.0 * (1.0 - static_cast<double>(approx_stats.total_messages) /
                                           static_cast<double>(exact_stats.total_messages)),
                        1) + "%"});
    }
  }

  // The WCC negative result depends on label improvements of exactly 1,
  // which need consecutive-id structure; R-MAT's random wiring collapses
  // labels in large jumps. A chain exhibits the paper's catastrophic
  // error (the apt query's "all no-execute vertices are unsafe" verdict
  // predicts exactly this).
  {
    auto chain = GenerateChain(1 << 14);
    if (!chain.ok()) return 1;
    Session session(&*chain);
    std::vector<int64_t> exact_labels, approx_labels;
    const double exact_time = TimedSeconds([&] {
      WccProgram program;
      ARIADNE_CHECK(session.RunBaseline(program, &exact_labels).ok());
    });
    const double approx_time = TimedSeconds([&] {
      ApproxWccProgram program(/*epsilon=*/1);
      ARIADNE_CHECK(session.RunBaseline(program, &approx_labels).ok());
    });
    std::vector<double> exact_d(exact_labels.begin(), exact_labels.end());
    std::vector<double> approx_d(approx_labels.begin(), approx_labels.end());
    table.AddRow({"CHAIN-16K", "WCC", "1", Ratio(exact_time, approx_time),
                  Scientific(RelativeError(exact_d, approx_d, 2)),
                  FormatDouble(Median(exact_d), 1),
                  FormatDouble(Median(approx_d), 1), "-"});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
