// Reproduces paper Table 4: size of a *custom* provenance graph — capture
// Query 3 records only the forward lineage of one influential vertex (the
// highest-degree vertex for PageRank/WCC, the source for SSSP).
//
// Shape to check: custom provenance is a small fraction of the input
// graph (paper: always < 40% of the input) while still covering a large
// share of the input vertices (paper: > 80%), and is orders of magnitude
// below the full capture of Table 3.

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

/// Distinct vertices with at least one captured tuple.
int64_t CoveredVertices(ProvenanceStore& store) {
  std::set<VertexId> seen;
  for (int s = 0; s < store.num_layers(); ++s) {
    auto layer = store.GetLayer(s);
    if (!layer.ok()) return -1;
    for (const auto& slice : (*layer)->slices) seen.insert(slice.vertex);
  }
  return static_cast<int64_t>(seen.size());
}

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Table 4: input vs custom (fwd-lineage) provenance size",
              "custom provenance < 40% of the input graph and covers > 80% "
              "of the input vertices (IN-04: 4.1GB -> 2.6/2.1/1.8GB)");

  TablePrinter table({"Dataset", "Analytic", "Input", "Custom", "(ratio)",
                      "Vertices covered"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kSssp,
                              AnalyticKind::kWcc}) {
      const VertexId alpha = CaptureSource(kind, *graph);
      auto capture_query = session.PrepareOnline(
          queries::CaptureForwardLineage(),
          {{"alpha", Value(static_cast<int64_t>(alpha))}});
      if (!capture_query.ok()) {
        std::fprintf(stderr, "%s\n",
                     capture_query.status().ToString().c_str());
        return 1;
      }
      ProvenanceStore store;
      auto stats = RunCapture(kind, *graph, *capture_query, &store);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s capture: %s\n", AnalyticName(kind),
                     stats.status().ToString().c_str());
        return 1;
      }
      const int64_t covered = CoveredVertices(store);
      table.AddRow(
          {dataset.short_name, AnalyticName(kind),
           HumanBytes(graph->InputByteSize()), HumanBytes(store.TotalBytes()),
           FormatDouble(100.0 * static_cast<double>(store.TotalBytes()) /
                            static_cast<double>(graph->InputByteSize()),
                        1) + "%",
           FormatDouble(100.0 * static_cast<double>(covered) /
                            static_cast<double>(graph->num_vertices()),
                        1) + "%"});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
