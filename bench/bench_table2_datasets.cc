// Reproduces paper Table 2: dataset characteristics.
//
// The paper's datasets are real web crawls (IN-04 .. UK-05, 194M-936M
// edges) plus MovieLens-20M; this repo substitutes seeded R-MAT graphs and
// a synthetic bipartite ratings matrix at laptop scale (DESIGN.md §2). The
// row *shape* to check: sizes strictly increasing, web-like average
// degrees (16-28), small effective diameters, and the ML dataset's much
// higher average degree.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Table 2: dataset characteristics",
              "IN-04 7.4M/194M deg 26.2 diam 28.1; UK-02 18.5M/298M deg 16.0 "
              "diam 21.6; AR-05 22.7M/640M deg 28.1 diam 22.4; UK-05 "
              "39.5M/936M deg 23.7 diam 23.2; ML-20 16.5K/20M deg 121");

  TablePrinter table({"Dataset", "|V|", "|E|", "Avg Degree", "Avg Diameter",
                      "Input bytes"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.short_name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    GraphStats stats = ComputeGraphStats(*graph, /*diameter_samples=*/8);
    table.AddRow({dataset.short_name, std::to_string(stats.num_vertices),
                  std::to_string(stats.num_edges),
                  FormatDouble(stats.avg_degree, 2),
                  FormatDouble(stats.avg_diameter, 2),
                  HumanBytes(stats.input_bytes)});
  }
  auto ratings = GenerateBipartiteRatings(MlSynOptions());
  if (!ratings.ok()) {
    std::fprintf(stderr, "ML-SYN: %s\n", ratings.status().ToString().c_str());
    return 1;
  }
  GraphStats ml = ComputeGraphStats(ratings->graph, 4);
  table.AddRow({"ML-SYN", std::to_string(ml.num_vertices),
                std::to_string(ml.num_edges), FormatDouble(ml.avg_degree, 2),
                FormatDouble(ml.avg_diameter, 2), HumanBytes(ml.input_bytes)});
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
