// Micro-benchmarks of the storage subsystem: page codec throughput plus,
// in `--json out.json` mode, an end-to-end sweep measuring append/flush
// throughput, cold-vs-warm backward layered query latency over a
// memory-budgeted store, and the compressed-vs-raw spill byte ratio — the
// source of the checked-in BENCH_store.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/ariadne.h"
#include "storage/layer_store.h"
#include "storage/page.h"

namespace ariadne {
namespace {

/// A synthetic provenance-shaped layer: int-heavy columns with a step
/// constant, like the capture path produces.
Layer SyntheticLayer(Superstep step, int n_vertices) {
  Layer layer;
  layer.step = step;
  for (int v = 0; v < n_vertices; ++v) {
    layer.Add(0, v,
              {{Value(int64_t{v}), Value(static_cast<int64_t>(step)),
                Value(1.0 / (v + 1))}});
    if (v + 1 < n_vertices) {
      layer.Add(1, v,
                {{Value(int64_t{v}), Value(int64_t{v + 1}),
                  Value(static_cast<int64_t>(step))}});
    }
  }
  layer.Canonicalize();
  return layer;
}

void BM_EncodeLayer(benchmark::State& state) {
  const Layer layer = SyntheticLayer(3, 2000);
  for (auto _ : state) {
    auto pages = storage::EncodeLayer(layer, storage::kDefaultPageSize);
    benchmark::DoNotOptimize(pages.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(layer.byte_size));
}
BENCHMARK(BM_EncodeLayer);

void BM_DecodePages(benchmark::State& state) {
  const Layer layer = SyntheticLayer(3, 2000);
  const auto pages = storage::EncodeLayer(layer, storage::kDefaultPageSize);
  for (auto _ : state) {
    Layer decoded;
    for (const auto& page : pages) {
      ARIADNE_CHECK(storage::DecodePage(page, &decoded).ok());
    }
    benchmark::DoNotOptimize(decoded.slices.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(layer.byte_size));
}
BENCHMARK(BM_DecodePages);

void BM_PageSerializeParse(benchmark::State& state) {
  const Layer layer = SyntheticLayer(1, 500);
  const auto pages = storage::EncodeLayer(layer, storage::kDefaultPageSize);
  ARIADNE_CHECK(!pages.empty());
  for (auto _ : state) {
    std::string wire;
    storage::SerializePage(pages[0], &wire);
    size_t offset = 0;
    auto parsed = storage::ParsePage(wire, &offset);
    ARIADNE_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed->payload.size());
  }
}
BENCHMARK(BM_PageSerializeParse);

// ------------------------------------------------------- --json sweep

int RunStoreSweep(const std::string& json_path) {
  const std::string dir = "/tmp/ariadne_bench_store";
  auto graph = GenerateRmat({.scale = 12, .avg_degree = 8, .seed = 3});
  ARIADNE_CHECK(graph.ok());
  Session session(&*graph);
  auto capture = session.PrepareOnline(queries::CaptureFull());
  ARIADNE_CHECK(capture.ok());
  const VertexId source = HighestDegreeVertex(*graph);

  // Reference capture, fully in memory.
  ProvenanceStore reference;
  {
    SsspProgram sssp(source);
    ARIADNE_CHECK(session.Capture(sssp, *capture, &reference).ok());
  }
  const size_t total_bytes = reference.TotalBytes();
  const int n_layers = reference.num_layers();
  std::fprintf(stderr, "captured %d layers, %zu bytes\n", n_layers,
               total_bytes);

  // Append + background-flush throughput into a fresh spilling store.
  std::vector<std::shared_ptr<const Layer>> layers;
  for (int s = 0; s < n_layers; ++s) {
    auto layer = reference.GetLayer(s);
    ARIADNE_CHECK(layer.ok());
    layers.push_back(std::make_shared<Layer>(**layer));
  }
  storage::StorageStats flush_stats;
  const double append_seconds = bench::TimedSeconds([&] {
    storage::LayerStore store;
    storage::LayerStoreOptions options;
    options.dir = dir + "/append";
    options.mem_budget_bytes = 0;  // everything spills
    options.flush_threads = 1;
    ARIADNE_CHECK(store.Configure(options).ok());
    for (const auto& layer : layers) {
      ARIADNE_CHECK(store.Append(layer).ok());
    }
    ARIADNE_CHECK(store.Drain().ok());
    flush_stats = store.stats();
  });
  std::fprintf(stderr,
               "append+flush: %.3fs (%.1f layers/s, %.1f MB/s logical)\n",
               append_seconds, n_layers / append_seconds,
               total_bytes / append_seconds / (1 << 20));

  // Cold vs warm backward layered query over a budgeted store (25% of
  // the provenance bytes, the acceptance-bar configuration).
  ProvenanceStore bounded;
  {
    storage::LayerStoreOptions options;
    options.dir = dir + "/bounded";
    options.mem_budget_bytes = total_bytes / 4;
    options.flush_threads = 2;
    ARIADNE_CHECK(bounded.ConfigureStorage(std::move(options)).ok());
    SsspProgram sssp(source);
    ARIADNE_CHECK(session.Capture(sssp, *capture, &bounded).ok());
  }
  QueryParams params{
      {"alpha", Value(static_cast<int64_t>(source))},
      {"sigma", Value(static_cast<int64_t>(bounded.num_layers() - 1))}};
  auto q10 = session.PrepareOffline(queries::BackwardLineageFull(), bounded,
                                    params);
  ARIADNE_CHECK(q10.ok());
  auto run_query = [&]() -> double {
    WallTimer timer;
    auto run = session.RunOffline(&bounded, *q10, EvalMode::kLayered);
    ARIADNE_CHECK(run.ok());
    benchmark::DoNotOptimize(run->result.TotalTuples());
    return timer.ElapsedSeconds();
  };
  const auto before = bounded.storage_stats();
  const double cold_seconds = run_query();
  const auto after_cold = bounded.storage_stats();
  const double warm_seconds = run_query();
  const auto after_warm = bounded.storage_stats();
  const double cold_hit_rate =
      after_cold.cache_hits + after_cold.cache_misses >
              before.cache_hits + before.cache_misses
          ? static_cast<double>(after_cold.cache_hits - before.cache_hits) /
                static_cast<double>((after_cold.cache_hits +
                                     after_cold.cache_misses) -
                                    (before.cache_hits + before.cache_misses))
          : 0.0;
  const double warm_hit_rate =
      after_warm.cache_hits + after_warm.cache_misses >
              after_cold.cache_hits + after_cold.cache_misses
          ? static_cast<double>(after_warm.cache_hits -
                                after_cold.cache_hits) /
                static_cast<double>((after_warm.cache_hits +
                                     after_warm.cache_misses) -
                                    (after_cold.cache_hits +
                                     after_cold.cache_misses))
          : 1.0;
  std::fprintf(stderr, "backward layered: cold %.3fs, warm %.3fs\n",
               cold_seconds, warm_seconds);

  const auto storage = bounded.storage_stats();
  std::fprintf(stderr,
               "compression: %llu compressed / %llu raw (ratio %.3f)\n",
               static_cast<unsigned long long>(storage.compressed_bytes),
               static_cast<unsigned long long>(storage.raw_serialized_bytes),
               storage.CompressionRatio());

  bench::JsonObject graph_info;
  graph_info.Set("name", "rmat-s12-d8")
      .Set("vertices", static_cast<int64_t>(graph->num_vertices()))
      .Set("edges", static_cast<int64_t>(graph->num_edges()));
  bench::JsonObject append;
  append.Set("seconds", append_seconds)
      .Set("layers_per_sec", n_layers / append_seconds)
      .Set("logical_mb_per_sec", total_bytes / append_seconds / (1 << 20))
      .Set("pages_written", static_cast<int64_t>(flush_stats.pages_written))
      .Set("flush_seconds", flush_stats.flush_seconds);
  bench::JsonObject query;
  query.Set("query", "backward-lineage-full (Q10), layered, budget=25%")
      .Set("cold_seconds", cold_seconds)
      .Set("warm_seconds", warm_seconds)
      .Set("cold_cache_hit_rate", cold_hit_rate)
      .Set("warm_cache_hit_rate", warm_hit_rate)
      .Set("prefetch_requests",
           static_cast<int64_t>(storage.prefetch_requests))
      .Set("prefetch_pages", static_cast<int64_t>(storage.prefetch_pages))
      .Set("pages_read", static_cast<int64_t>(storage.pages_read));
  bench::JsonObject compression;
  compression
      .Set("compressed_spill_bytes",
           static_cast<int64_t>(storage.compressed_bytes))
      .Set("raw_serialized_bytes",
           static_cast<int64_t>(storage.raw_serialized_bytes))
      .Set("compression_ratio", storage.CompressionRatio());
  bench::JsonObject top;
  top.Set("bench", "store_micro")
      .SetRaw("graph", graph_info.Dump())
      .Set("analytic", "sssp, capture-full")
      .Set("layers", n_layers)
      .Set("provenance_bytes", static_cast<int64_t>(total_bytes))
      .Set("mem_budget_bytes", static_cast<int64_t>(total_bytes / 4))
      .Set("reps", bench::BenchReps())
      .SetRaw("append_flush", append.Dump())
      .SetRaw("layered_query", query.Dump())
      .SetRaw("compression", compression.Dump());
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunStoreSweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
