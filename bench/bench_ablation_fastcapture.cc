// Ablation (DESIGN.md §5): the compiled fast path for projection-only
// capture queries vs interpreting the same rules through the Datalog
// evaluator. Both must produce byte-identical stores.
//
// Shape to check: the compiled plan captures several times faster; this
// is the optimization that keeps full capture in the small-multiple range
// the paper reports (their capture is also specialized, not interpreted).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Ablation: compiled vs interpreted capture (Query 2)",
              "(implementation ablation; the paper's capture overhead of "
              "2.7-5.6x presumes specialized capture code)");

  TablePrinter table({"Dataset", "Analytic", "Compiled(s)", "Interpreted(s)",
                      "Speedup", "Same bytes"});
  for (const auto& dataset : WebDatasets()) {
    if (!dataset.naive_feasible) continue;  // interpreted runs are slow
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    if (!capture.ok()) return 1;
    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kWcc}) {
      size_t compiled_bytes = 0, interpreted_bytes = 0;
      const double compiled = TimedSeconds([&] {
        ProvenanceStore store;
        ARIADNE_CHECK(RunCapture(kind, *graph, *capture, &store, 2,
                                 /*use_fast_capture=*/true)
                          .ok());
        compiled_bytes = store.TotalBytes();
      });
      const double interpreted = TimedSeconds([&] {
        ProvenanceStore store;
        ARIADNE_CHECK(RunCapture(kind, *graph, *capture, &store, 2,
                                 /*use_fast_capture=*/false)
                          .ok());
        interpreted_bytes = store.TotalBytes();
      });
      table.AddRow({dataset.short_name, AnalyticName(kind),
                    FormatDouble(compiled, 3), FormatDouble(interpreted, 3),
                    Ratio(interpreted, compiled),
                    compiled_bytes == interpreted_bytes ? "yes" : "NO"});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
