#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <numeric>

#include "common/string_util.h"
#include "common/timer.h"

namespace ariadne::bench {

const std::vector<WebDataset>& WebDatasets() {
  static const std::vector<WebDataset>* kDatasets = new std::vector<WebDataset>{
      // Edge weights span [0, 2.5) instead of the paper's [0, 1): our
      // R-MAT stand-ins have ~5x smaller diameters than the web crawls,
      // so this keeps typical SSSP distances (median ~5) — and therefore
      // the meaning of the apt epsilon = 0.1 — comparable to the paper.
      {"WEB-XS (IN-04 stand-in)", "WEB-XS",
       RmatOptions{.scale = 10, .avg_degree = 16, .seed = 101,
                   .max_weight = 2.5},
       true},
      {"WEB-S (UK-02 stand-in)", "WEB-S",
       RmatOptions{.scale = 11, .avg_degree = 16, .seed = 102,
                   .max_weight = 2.5},
       true},
      {"WEB-M (AR-05 stand-in)", "WEB-M",
       RmatOptions{.scale = 12, .avg_degree = 20, .seed = 103,
                   .max_weight = 2.5},
       false},
      {"WEB-L (UK-05 stand-in)", "WEB-L",
       RmatOptions{.scale = 13, .avg_degree = 24, .seed = 104,
                   .max_weight = 2.5},
       false},
  };
  return *kDatasets;
}

BipartiteRatingsOptions MlSynOptions(int seed) {
  BipartiteRatingsOptions options;
  options.num_users = 1500;
  options.num_items = 400;
  options.ratings_per_user = 40;
  options.seed = static_cast<uint64_t>(seed);
  return options;
}

PageRankOptions BenchPageRankOptions() {
  PageRankOptions options;
  options.iterations = 20;  // the paper's web-graph runs use 20 supersteps
  return options;
}

const char* AnalyticName(AnalyticKind kind) {
  switch (kind) {
    case AnalyticKind::kPageRank:
      return "PageRank";
    case AnalyticKind::kSssp:
      return "SSSP";
    case AnalyticKind::kWcc:
      return "WCC";
  }
  return "?";
}

VertexId CaptureSource(AnalyticKind kind, const Graph& graph) {
  // Paper §6.1: highest-degree vertex for PageRank and WCC, the source
  // for SSSP — chosen as an upper bound on influenced-set size.
  (void)kind;
  return HighestDegreeVertex(graph);
}

double AptEpsilon(AnalyticKind kind) {
  switch (kind) {
    case AnalyticKind::kPageRank:
      return 0.01;  // paper §6.2.2
    case AnalyticKind::kSssp:
      return 0.1;
    case AnalyticKind::kWcc:
      return 1.0;
  }
  return 0.0;
}

namespace {

template <typename Fn>
Result<RunStats> Dispatch(AnalyticKind kind, const Graph& graph, Fn&& fn) {
  switch (kind) {
    case AnalyticKind::kPageRank: {
      PageRankProgram program(BenchPageRankOptions());
      return fn(program);
    }
    case AnalyticKind::kSssp: {
      SsspProgram program(CaptureSource(kind, graph));
      return fn(program);
    }
    case AnalyticKind::kWcc: {
      WccProgram program;
      return fn(program);
    }
  }
  return Status::Internal("unknown analytic");
}

}  // namespace

Result<RunStats> RunBaseline(AnalyticKind kind, const Graph& graph) {
  Session session(&graph);
  return Dispatch(kind, graph, [&](auto& program) {
    return session.RunBaseline(program);
  });
}

Result<RunStats> RunCapture(AnalyticKind kind, const Graph& graph,
                            const AnalyzedQuery& capture_query,
                            ProvenanceStore* store, int retention_window,
                            bool use_fast_capture) {
  Session session(&graph);
  return Dispatch(kind, graph, [&](auto& program) {
    return session.Capture(program, capture_query, store, retention_window,
                           nullptr, use_fast_capture);
  });
}

Result<OnlineRunResult> RunOnlineQuery(AnalyticKind kind, const Graph& graph,
                                       const AnalyzedQuery& query,
                                       int retention_window) {
  Session session(&graph);
  Result<OnlineRunResult> out = Status::Internal("not run");
  auto st = Dispatch(kind, graph, [&](auto& program) -> Result<RunStats> {
    out = session.RunOnline(program, query, retention_window);
    if (!out.ok()) return out.status();
    return out->engine_stats;
  });
  if (!st.ok()) return st.status();
  return out;
}

Status SpillToDisk(ProvenanceStore* store) {
  static int counter = 0;
  const std::string dir =
      "/tmp/ariadne_bench_spill_" + std::to_string(++counter);
  std::filesystem::create_directories(dir);
  return store->EnableSpill(dir, /*budget_bytes=*/0);
}

int BenchReps() {
  const char* env = std::getenv("ARIADNE_BENCH_REPS");
  if (env != nullptr) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 1;
}

double TimedSeconds(const std::function<void()>& fn) {
  const int reps = BenchReps();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  size_t begin = 0, end = samples.size();
  if (samples.size() >= 3) {
    ++begin;
    --end;
  }
  const double sum = std::accumulate(samples.begin() + static_cast<ptrdiff_t>(begin),
                                     samples.begin() + static_cast<ptrdiff_t>(end), 0.0);
  return sum / static_cast<double>(end - begin);
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line = "  ";
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      line += rows_[r][c];
      line.append(widths[c] - rows_[r][c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule = "  ";
      for (size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        rule.append(2, ' ');
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

void PrintBanner(const std::string& experiment,
                 const std::string& paper_says) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_says.c_str());
  std::printf("(reps per timing: %d; set ARIADNE_BENCH_REPS for more)\n\n",
              BenchReps());
}

std::string Ratio(double value, double baseline) {
  if (baseline <= 0) return "n/a";
  return FormatDouble(value / baseline, 2) + "x";
}

std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < *argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace ariadne::bench
