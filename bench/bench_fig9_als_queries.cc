// Reproduces paper Figure 9: runtime of the ALS monitoring queries
// (Query 7 range audit, Query 8 error-increase) evaluated online on the
// MovieLens stand-in with 5/10/15 latent features.
//
// Shape to check: online overhead stays a small multiple of the ALS
// baseline across feature counts (paper: <= 1.05x for Query 7, ~1.2x for
// Query 8) and the error-increase query flags a sizeable fraction of the
// vertices (paper: ~30% for a 0.5 threshold).

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Figure 9: ALS queries 7 and 8 (online)",
              "Query 7 adds ~5% overhead; Query 8 takes ~1.2x ALS; for a "
              "0.5 threshold ~30% of the vertices report error increases");

  TablePrinter table({"Dataset", "Query", "Base(s)", "Online", "Ratio",
                      "Flagged vertices"});
  for (int features : {5, 10, 15}) {
    auto ratings = GenerateBipartiteRatings(MlSynOptions());
    if (!ratings.ok()) return 1;
    const Graph& graph = ratings->graph;
    Session session(&graph);
    AlsOptions als_options;
    als_options.num_features = features;
    als_options.max_iterations = 4;
    als_options.tolerance = 0;
    const std::string name = "ML-SYN^" + std::to_string(features);

    const double base = TimedSeconds([&] {
      AlsProgram als(als_options, ratings->num_users);
      ARIADNE_CHECK(session.RunBaseline(als).ok());
    });

    struct Case {
      const char* label;
      std::string text;
      QueryParams params;
      const char* flag_table;
    };
    const std::vector<Case> cases = {
        {"Q7 range audit", queries::AlsRangeAudit(), {}, "algo-failed"},
        // The paper uses a 0.5 threshold on MovieLens-20M, where ALS fits
        // far worse than on our low-noise synthetic ratings; 0.02 flags a
        // comparable share of vertices here.
        {"Q8 error increase",
         queries::AlsErrorIncrease(),
         {{"eps", Value(0.02)}},
         "problem"},
    };
    for (const auto& c : cases) {
      auto query = session.PrepareOnline(c.text, c.params);
      if (!query.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.label,
                     query.status().ToString().c_str());
        return 1;
      }
      size_t flagged = 0;
      const double online = TimedSeconds([&] {
        AlsProgram als(als_options, ratings->num_users);
        auto run = session.RunOnline(als, *query, /*retention_window=*/4);
        ARIADNE_CHECK(run.ok());
        // Count distinct flagged vertices (column 0 of the flag table).
        const Relation* rel = run->query_result.Table(c.flag_table);
        if (rel != nullptr) {
          std::set<Value> vertices;
          for (size_t i = 0; i < rel->size(); ++i) {
            vertices.insert(rel->row_view(i).value(0));
          }
          flagged = vertices.size();
        }
      });
      table.AddRow({name, c.label, FormatDouble(base, 3),
                    FormatDouble(online, 3), Ratio(online, base),
                    FormatDouble(100.0 * static_cast<double>(flagged) /
                                     static_cast<double>(graph.num_vertices()),
                                 1) + "%"});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
