// Chaos micro-benchmark (DESIGN.md §2.8): what does resilience cost?
//
// Running with `--json out.json` skips google-benchmark and serves the
// same backward-lineage workload over one spilled SSSP capture three
// times: fault-free, under seeded 1% transient faults, and under 5%
// faults (serve-scan + spill page-read injection). Per level it reports
// aggregate QPS, the retry counters that healed the faults, and the
// throughput ratio against the fault-free pass — asserting that every
// served result stays byte-identical to the fault-free reference and
// that 1% transient faults cost less than 10% throughput (the
// checked-in BENCH_chaos.json bar, enforced by the chaos-soak CI job).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "core/ariadne.h"
#include "recovery/fault_injector.h"
#include "serve/server.h"

namespace ariadne {
namespace {

constexpr uint64_t kChaosSeed = 0xC0FFEE;
constexpr size_t kQueries = 96;
constexpr size_t kConcurrency = 32;
constexpr int kReps = 3;  // best-of, to keep the 10% bar noise-proof

/// One spilled SSSP capture shared by all passes: every cold layer scan
/// goes through spill page reads, i.e. through the retry ladder.
struct ChaosFixture {
  Graph graph;
  ProvenanceStore store;

  static ChaosFixture Build() {
    ChaosFixture f;
    auto g = GenerateRmat({.scale = 10, .avg_degree = 8, .seed = 42});
    ARIADNE_CHECK(g.ok());
    f.graph = std::move(*g);
    Session session(&f.graph);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    ARIADNE_CHECK(capture.ok());
    SsspProgram sssp(0);
    auto stats = session.Capture(sssp, *capture, &f.store);
    ARIADNE_CHECK(stats.ok());
    ARIADNE_CHECK(bench::SpillToDisk(&f.store).ok());
    return f;
  }

  serve::ServeRequest Request(size_t i) const {
    serve::ServeRequest request;
    request.name = "q" + std::to_string(i);
    request.text = queries::BackwardLineageFull();
    request.params = {
        {"alpha", Value(static_cast<int64_t>((i * 37) %
                                             graph.num_vertices()))},
        {"sigma", Value(static_cast<int64_t>(2 + i % 4))}};
    return request;
  }

  static std::vector<std::string> DumpTables(const QueryResult& result) {
    std::vector<std::string> dump;
    for (const std::string& name : result.TableNames()) {
      dump.push_back("== " + name);
      const auto rows = result.Table(name)->ToSortedStrings();
      dump.insert(dump.end(), rows.begin(), rows.end());
    }
    return dump;
  }
};

struct PassResult {
  double serve_seconds = 0;
  serve::ServerStats stats;
  uint64_t store_read_retries = 0;
  std::vector<std::vector<std::string>> dumps;

  double Qps() const {
    return static_cast<double>(kQueries) / serve_seconds;
  }
};

/// One serve pass over the whole workload; `scenario` empty = fault-free.
PassResult RunPass(const ChaosFixture& fixture, const std::string& scenario) {
  auto& injector = recovery::FaultInjector::Global();
  injector.Disarm();
  if (!scenario.empty()) {
    ARIADNE_CHECK(injector.Arm(scenario, kChaosSeed).ok());
  }
  const uint64_t reads_before = fixture.store.storage_stats().read_retries;

  PassResult out;
  auto state = serve::ServiceState::Create(&fixture.graph, &fixture.store);
  ARIADNE_CHECK(state.ok());
  std::unique_ptr<serve::ServiceState> service = state.MoveValue();
  serve::ServerOptions options;
  options.max_inflight = kConcurrency;
  options.queue_capacity = kQueries;
  serve::QueryServer server(service.get(), options);

  std::vector<std::future<serve::ServeResponse>> futures;
  futures.reserve(kQueries);
  WallTimer timer;
  for (size_t i = 0; i < kQueries; ++i) {
    futures.push_back(server.Submit(fixture.Request(i)));
  }
  for (auto& future : futures) {
    serve::ServeResponse response = future.get();
    ARIADNE_CHECK(response.ok());
    out.dumps.push_back(ChaosFixture::DumpTables(response.result));
  }
  out.serve_seconds = timer.ElapsedSeconds();
  out.stats = server.stats();
  out.store_read_retries =
      fixture.store.storage_stats().read_retries - reads_before;
  injector.Disarm();
  return out;
}

int RunChaosSweep(const std::string& json_path) {
  ChaosFixture fixture = ChaosFixture::Build();
  std::fprintf(stderr,
               "chaos sweep: %lld vertices, %d layers, %zu spilled layers, "
               "%zu queries x %d reps\n",
               static_cast<long long>(fixture.graph.num_vertices()),
               fixture.store.num_layers(),
               static_cast<size_t>(fixture.store.SpilledLayerCount()),
               kQueries, kReps);

  struct Level {
    const char* label;
    double rate;
    std::string scenario;
  };
  const std::vector<Level> levels = {
      {"fault-free", 0.0, ""},
      {"1% transient", 0.01, "serve-scan@0.01,page-read@0.01"},
      {"5% transient", 0.05, "serve-scan@0.05,page-read@0.05"},
  };

  std::vector<std::string> rows;
  std::vector<std::vector<std::string>> reference;
  double faultfree_qps = 0.0;
  double loss_at_1pct = 0.0;
  for (const Level& level : levels) {
    PassResult best;
    uint64_t retries = 0, scan_failures = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      PassResult pass = RunPass(fixture, level.scenario);
      if (reference.empty()) reference = pass.dumps;
      // Healed faults must never change a result.
      ARIADNE_CHECK(pass.dumps == reference);
      retries += pass.stats.step_retries + pass.store_read_retries;
      scan_failures += pass.stats.scan_failures;
      ARIADNE_CHECK(pass.stats.breaker_trips == 0);
      if (best.serve_seconds == 0 ||
          pass.serve_seconds < best.serve_seconds) {
        best = std::move(pass);
      }
    }
    if (level.rate == 0.0) faultfree_qps = best.Qps();
    const double ratio =
        faultfree_qps > 0 ? best.Qps() / faultfree_qps : 1.0;
    if (level.rate == 0.01) loss_at_1pct = 1.0 - ratio;
    std::fprintf(stderr,
                 "  %-12s %7.1f qps (%.2fx of fault-free)  "
                 "%llu retries healed, %llu scan failures\n",
                 level.label, best.Qps(), ratio,
                 static_cast<unsigned long long>(retries),
                 static_cast<unsigned long long>(scan_failures));
    bench::JsonObject row;
    row.Set("fault_rate", level.rate)
        .Set("scenario", level.scenario.empty() ? "none" : level.scenario)
        .Set("serve_seconds", best.serve_seconds)
        .Set("aggregate_qps", best.Qps())
        .Set("throughput_vs_faultfree", ratio)
        .Set("retries_healed_total", static_cast<int64_t>(retries))
        .Set("step_retries", static_cast<int64_t>(best.stats.step_retries))
        .Set("store_read_retries",
             static_cast<int64_t>(best.store_read_retries))
        .Set("scan_failures", static_cast<int64_t>(scan_failures))
        .Set("results_identical_to_faultfree", true);
    rows.push_back(row.Dump());
  }

  const bool meets_bar = loss_at_1pct < 0.10;
  std::fprintf(stderr,
               "throughput loss at 1%% faults: %.1f%% (bar: <10%%) %s\n",
               loss_at_1pct * 100.0, meets_bar ? "OK" : "FAIL");

  bench::JsonObject workload;
  workload.Set("graph", "rmat scale 10, avg degree 8, seed 42")
      .Set("analytic", "sssp")
      .Set("layers", fixture.store.num_layers())
      .Set("queries", static_cast<int64_t>(kQueries))
      .Set("concurrency", static_cast<int64_t>(kConcurrency))
      .Set("reps", static_cast<int64_t>(kReps))
      .Set("injector_seed", static_cast<int64_t>(kChaosSeed));
  bench::JsonObject top;
  top.Set("bench", "chaos_transient_fault_overhead")
      .SetRaw("workload", workload.Dump())
      .Set("throughput_loss_pct_at_1pct_faults", loss_at_1pct * 100.0)
      .Set("meets_sub_10pct_loss_bar", meets_bar)
      .SetRaw("results", bench::JsonArray(rows, 4));
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return meets_bar ? 0 : 1;
}

// ------------------------------------------------------------- gbench

void ServeBatch(const ChaosFixture& fixture, benchmark::State& state) {
  auto service =
      serve::ServiceState::Create(&fixture.graph, &fixture.store)
          .MoveValue();
  serve::ServerOptions options;
  options.max_inflight = 16;
  serve::QueryServer server(service.get(), options);
  for (auto _ : state) {
    std::vector<std::future<serve::ServeResponse>> futures;
    for (size_t i = 0; i < 16; ++i) {
      futures.push_back(server.Submit(fixture.Request(i)));
    }
    for (auto& f : futures) ARIADNE_CHECK(f.get().ok());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}

void BM_ServeBatchFaultFree(benchmark::State& state) {
  static ChaosFixture* fixture = new ChaosFixture(ChaosFixture::Build());
  recovery::FaultInjector::Global().Disarm();
  ServeBatch(*fixture, state);
}
BENCHMARK(BM_ServeBatchFaultFree);

void BM_ServeBatch1PctFaults(benchmark::State& state) {
  static ChaosFixture* fixture = new ChaosFixture(ChaosFixture::Build());
  ARIADNE_CHECK(recovery::FaultInjector::Global()
                    .Arm("serve-scan@0.01,page-read@0.01", kChaosSeed)
                    .ok());
  ServeBatch(*fixture, state);
  recovery::FaultInjector::Global().Disarm();
}
BENCHMARK(BM_ServeBatch1PctFaults);

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunChaosSweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
