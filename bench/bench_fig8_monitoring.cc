// Reproduces paper Figure 8: runtime of the execution-monitoring queries
// (Query 4 on PageRank; Queries 5 and 6 on SSSP and WCC) under the three
// evaluation modes, relative to the plain analytic.
//
// Shape to check: Online is by far the cheapest mode, Layered costs a
// multiple of it, Naive is the most expensive and only feasible on the
// two smallest datasets (paper: Online 1.1-1.3x, Layered 3-3.7x, Naive
// 4-4.7x; Naive "was not able to scale beyond the two smallest
// datasets"). Absolute ratios over the baseline are higher here because
// this C++ engine's baseline is orders of magnitude faster per message
// than Giraph's (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

struct QueryCase {
  const char* label;
  AnalyticKind analytic;
  std::string text;
};

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Figure 8: execution-monitoring queries (4, 5, 6)",
              "Online 1.1-1.3x baseline; Layered 3-3.7x; Naive 4-4.7x and "
              "does not scale past the two smallest datasets");

  const std::vector<QueryCase> cases = {
      {"Q4/PageRank", AnalyticKind::kPageRank,
       queries::PageRankInDegreeCheck()},
      {"Q5/SSSP", AnalyticKind::kSssp, queries::MonotoneUpdateCheck()},
      {"Q5/WCC", AnalyticKind::kWcc, queries::MonotoneUpdateCheck()},
      {"Q6/SSSP", AnalyticKind::kSssp, queries::NoMessageNoChangeCheck()},
      {"Q6/WCC", AnalyticKind::kWcc, queries::NoMessageNoChangeCheck()},
  };

  TablePrinter table({"Dataset", "Query", "Base(s)", "Online", "Layered",
                      "Naive", "Violations"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto capture_query = session.PrepareOnline(queries::CaptureFull());
    if (!capture_query.ok()) return 1;

    for (const auto& c : cases) {
      const double base = TimedSeconds([&] {
        ARIADNE_CHECK(RunBaseline(c.analytic, *graph).ok());
      });

      auto online_query = session.PrepareOnline(c.text);
      if (!online_query.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.label,
                     online_query.status().ToString().c_str());
        return 1;
      }
      size_t violations = 0;
      const double online = TimedSeconds([&] {
        auto run = RunOnlineQuery(c.analytic, *graph, *online_query);
        ARIADNE_CHECK(run.ok());
        violations = run->query_result.TupleCount("check-failed") +
                     run->query_result.TupleCount("problem");
      });

      // One capture per (dataset, analytic); offline modes query it.
      ProvenanceStore store;
      ARIADNE_CHECK(
          RunCapture(c.analytic, *graph, *capture_query, &store).ok());
      // The paper's provenance graph lives in HDFS; offline modes pay
      // storage reads that online evaluation never incurs.
      ARIADNE_CHECK(SpillToDisk(&store).ok());
      auto offline_query = session.PrepareOffline(c.text, store);
      if (!offline_query.ok()) return 1;

      const double layered = TimedSeconds([&] {
        auto run = session.RunOffline(&store, *offline_query,
                                      EvalMode::kLayered);
        ARIADNE_CHECK(run.ok());
      });
      std::string naive_cell = "(skipped)";
      if (dataset.naive_feasible) {
        const double naive = TimedSeconds([&] {
          auto run =
              session.RunOffline(&store, *offline_query, EvalMode::kNaive);
          ARIADNE_CHECK(run.ok());
        });
        naive_cell = Ratio(naive, base);
      }
      table.AddRow({dataset.short_name, c.label, FormatDouble(base, 3),
                    Ratio(online, base), Ratio(layered, base), naive_cell,
                    std::to_string(violations)});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
