// Micro-benchmarks (google-benchmark) of the substrates: engine message
// throughput, relation insert/probe, Value operations and PQL parsing.
// These calibrate the absolute numbers behind the relative overheads in
// the paper-table benches (see EXPERIMENTS.md on why our baseline is far
// faster per message than Giraph's).

#include <benchmark/benchmark.h>

#include "core/ariadne.h"

namespace ariadne {
namespace {

/// Floods all out-edges every superstep for a fixed number of rounds.
class FloodProgram final : public VertexProgram<double, double> {
 public:
  explicit FloodProgram(Superstep rounds) : rounds_(rounds) {}
  double InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override {
    double sum = 0;
    for (double m : messages) sum += m;
    ctx.SetValue(sum);
    if (ctx.superstep() < rounds_) {
      ctx.SendToAllOutNeighbors(1.0);
    } else {
      ctx.VoteToHalt();
    }
  }

 private:
  Superstep rounds_;
};

void BM_EngineMessageThroughput(benchmark::State& state) {
  auto graph = GenerateRmat({.scale = 10, .avg_degree = 16, .seed = 1});
  ARIADNE_CHECK(graph.ok());
  int64_t messages = 0;
  for (auto _ : state) {
    FloodProgram program(4);
    Engine<double, double> engine(&*graph);
    auto stats = engine.Run(program);
    ARIADNE_CHECK(stats.ok());
    messages += stats->total_messages;
  }
  state.SetItemsProcessed(messages);
}
BENCHMARK(BM_EngineMessageThroughput);

void BM_PageRankSuperstep(benchmark::State& state) {
  auto graph = GenerateRmat({.scale = 11, .avg_degree = 16, .seed = 2});
  ARIADNE_CHECK(graph.ok());
  for (auto _ : state) {
    PageRankProgram program({.iterations = 5});
    Engine<double, double> engine(&*graph);
    ARIADNE_CHECK(engine.Run(program).ok());
  }
  state.SetItemsProcessed(state.iterations() * 6 * graph->num_vertices());
}
BENCHMARK(BM_PageRankSuperstep);

void BM_RelationInsert(benchmark::State& state) {
  for (auto _ : state) {
    Relation rel(3);
    for (int64_t i = 0; i < 1000; ++i) {
      rel.Insert({Value(i % 64), Value(static_cast<double>(i)), Value(i)});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RelationInsert);

void BM_RelationProbe(benchmark::State& state) {
  Relation rel(3);
  for (int64_t i = 0; i < 10000; ++i) {
    rel.Insert({Value(i % 256), Value(static_cast<double>(i)), Value(i)});
  }
  int64_t probes = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(rel.Probe(0, Value(i)).size());
      ++probes;
    }
  }
  state.SetItemsProcessed(probes);
}
BENCHMARK(BM_RelationProbe);

void BM_ValueHashCompare(benchmark::State& state) {
  Value a(3.25), b(int64_t{42});
  size_t acc = 0;
  for (auto _ : state) {
    acc ^= a.Hash() ^ b.Hash();
    benchmark::DoNotOptimize(a == b);
    benchmark::DoNotOptimize(a.NumericCompare(b));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ValueHashCompare);

void BM_ParseAptQuery(benchmark::State& state) {
  const std::string text = queries::Apt();
  for (auto _ : state) {
    auto program = ParseProgram(text);
    ARIADNE_CHECK(program.ok());
    benchmark::DoNotOptimize(program->rules.size());
  }
}
BENCHMARK(BM_ParseAptQuery);

void BM_AnalyzeAptQuery(benchmark::State& state) {
  auto program = ParseProgram(queries::Apt());
  ARIADNE_CHECK(program.ok());
  ARIADNE_CHECK(program->BindParameters({{"eps", Value(0.01)}}).ok());
  for (auto _ : state) {
    auto query =
        Analyze(*program, Catalog::Default(), UdfRegistry::Default());
    ARIADNE_CHECK(query.ok());
    benchmark::DoNotOptimize(query->direction());
  }
}
BENCHMARK(BM_AnalyzeAptQuery);

}  // namespace
}  // namespace ariadne

BENCHMARK_MAIN();
