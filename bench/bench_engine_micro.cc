// Micro-benchmarks (google-benchmark) of the substrates: engine message
// throughput, relation insert/probe, Value operations and PQL parsing.
// These calibrate the absolute numbers behind the relative overheads in
// the paper-table benches (see EXPERIMENTS.md on why our baseline is far
// faster per message than Giraph's).

// Running with `--json out.json` skips google-benchmark and instead runs
// the baseline-vs-sharded routing sweep (1M-edge R-MAT, 1/2/4/8 threads,
// global-lock vs sharded owner-computes), writing one JSON record per
// configuration — the source of the checked-in BENCH_engine.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/ariadne.h"

namespace ariadne {
namespace {

/// Floods all out-edges every superstep for a fixed number of rounds.
class FloodProgram final : public VertexProgram<double, double> {
 public:
  explicit FloodProgram(Superstep rounds) : rounds_(rounds) {}
  double InitialValue(VertexId, const Graph&) const override { return 0; }
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override {
    double sum = 0;
    for (double m : messages) sum += m;
    ctx.SetValue(sum);
    if (ctx.superstep() < rounds_) {
      ctx.SendToAllOutNeighbors(1.0);
    } else {
      ctx.VoteToHalt();
    }
  }

 private:
  Superstep rounds_;
};

void BM_EngineMessageThroughput(benchmark::State& state) {
  auto graph = GenerateRmat({.scale = 10, .avg_degree = 16, .seed = 1});
  ARIADNE_CHECK(graph.ok());
  int64_t messages = 0;
  for (auto _ : state) {
    FloodProgram program(4);
    Engine<double, double> engine(&*graph);
    auto stats = engine.Run(program);
    ARIADNE_CHECK(stats.ok());
    messages += stats->total_messages;
  }
  state.SetItemsProcessed(messages);
}
BENCHMARK(BM_EngineMessageThroughput);

void BM_PageRankSuperstep(benchmark::State& state) {
  auto graph = GenerateRmat({.scale = 11, .avg_degree = 16, .seed = 2});
  ARIADNE_CHECK(graph.ok());
  for (auto _ : state) {
    PageRankProgram program({.iterations = 5});
    Engine<double, double> engine(&*graph);
    ARIADNE_CHECK(engine.Run(program).ok());
  }
  state.SetItemsProcessed(state.iterations() * 6 * graph->num_vertices());
}
BENCHMARK(BM_PageRankSuperstep);

void BM_RelationInsert(benchmark::State& state) {
  for (auto _ : state) {
    Relation rel(3);
    for (int64_t i = 0; i < 1000; ++i) {
      rel.Insert({Value(i % 64), Value(static_cast<double>(i)), Value(i)});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RelationInsert);

void BM_RelationProbe(benchmark::State& state) {
  Relation rel(3);
  for (int64_t i = 0; i < 10000; ++i) {
    rel.Insert({Value(i % 256), Value(static_cast<double>(i)), Value(i)});
  }
  int64_t probes = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(rel.Probe(0, Value(i)).size());
      ++probes;
    }
  }
  state.SetItemsProcessed(probes);
}
BENCHMARK(BM_RelationProbe);

void BM_ValueHashCompare(benchmark::State& state) {
  Value a(3.25), b(int64_t{42});
  size_t acc = 0;
  for (auto _ : state) {
    acc ^= a.Hash() ^ b.Hash();
    benchmark::DoNotOptimize(a == b);
    benchmark::DoNotOptimize(a.NumericCompare(b));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ValueHashCompare);

void BM_ParseAptQuery(benchmark::State& state) {
  const std::string text = queries::Apt();
  for (auto _ : state) {
    auto program = ParseProgram(text);
    ARIADNE_CHECK(program.ok());
    benchmark::DoNotOptimize(program->rules.size());
  }
}
BENCHMARK(BM_ParseAptQuery);

void BM_AnalyzeAptQuery(benchmark::State& state) {
  auto program = ParseProgram(queries::Apt());
  ARIADNE_CHECK(program.ok());
  ARIADNE_CHECK(program->BindParameters({{"eps", Value(0.01)}}).ok());
  for (auto _ : state) {
    auto query =
        Analyze(*program, Catalog::Default(), UdfRegistry::Default());
    ARIADNE_CHECK(query.ok());
    benchmark::DoNotOptimize(query->direction());
  }
}
BENCHMARK(BM_AnalyzeAptQuery);

// -------------------------------------------- --json routing sweep mode

/// One timed configuration of the routing sweep. `seconds` is the
/// trimmed-mean wall time over BenchReps() runs; the message counts and
/// phase breakdown come from the last run (they are identical across
/// runs — the engine is deterministic).
std::string SweepRow(const Graph& graph, const char* graph_name,
                     MessageRouting routing, size_t threads, int rounds) {
  EngineOptions options;
  options.num_threads = threads;
  options.routing = routing;
  RunStats stats;
  const double seconds = bench::TimedSeconds([&] {
    FloodProgram program(rounds);
    Engine<double, double> engine(&graph, options);
    auto result = engine.Run(program);
    ARIADNE_CHECK(result.ok());
    stats = std::move(*result);
  });
  const char* routing_name =
      routing == MessageRouting::kSharded ? "sharded" : "global-lock";
  std::fprintf(stderr, "  %-11s threads=%zu  %.3fs  %.3g msgs/s\n",
               routing_name, threads, seconds,
               static_cast<double>(stats.total_messages) / seconds);
  bench::JsonObject row;
  row.Set("graph", graph_name)
      .Set("routing", routing_name)
      .Set("threads", static_cast<int64_t>(threads))
      .Set("supersteps", static_cast<int64_t>(stats.supersteps))
      .Set("messages", stats.total_messages)
      .Set("seconds", seconds)
      .Set("msgs_per_sec", static_cast<double>(stats.total_messages) / seconds)
      .Set("rebuild_seconds", stats.rebuild_seconds)
      .Set("compute_seconds", stats.compute_seconds)
      .Set("merge_seconds", stats.merge_seconds)
      .Set("combine_hits", stats.combine_hits)
      .Set("dropped_messages", stats.dropped_messages);
  return row.Dump();
}

int RunRoutingSweep(const std::string& json_path) {
  // 2^16 vertices x avg degree 16 = ~1M edges.
  auto graph = GenerateRmat({.scale = 16, .avg_degree = 16, .seed = 1});
  ARIADNE_CHECK(graph.ok());
  const char* kGraphName = "rmat-s16-d16";
  const int kRounds = 4;
  std::fprintf(stderr,
               "engine routing sweep: %s (%lld vertices, %lld edges), "
               "%d flood rounds, reps=%d\n",
               kGraphName, static_cast<long long>(graph->num_vertices()),
               static_cast<long long>(graph->num_edges()), kRounds,
               bench::BenchReps());
  std::vector<std::string> rows;
  for (auto routing :
       {MessageRouting::kGlobalLock, MessageRouting::kSharded}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      rows.push_back(SweepRow(*graph, kGraphName, routing, threads, kRounds));
    }
  }
  bench::JsonObject top;
  bench::JsonObject graph_info;
  graph_info.Set("name", kGraphName)
      .Set("vertices", static_cast<int64_t>(graph->num_vertices()))
      .Set("edges", static_cast<int64_t>(graph->num_edges()));
  top.Set("bench", "engine_routing_sweep")
      .SetRaw("graph", graph_info.Dump())
      .Set("flood_rounds", kRounds)
      .Set("reps", bench::BenchReps())
      .Set("host_hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .SetRaw("results", bench::JsonArray(rows, 4));
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunRoutingSweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
