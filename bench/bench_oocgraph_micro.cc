// Micro-benchmarks of the out-of-core graph backend (DESIGN.md §2.7):
// paged CSR topology + paged vertex state vs the in-memory baseline.
//
// Running with `--json out.json` skips google-benchmark and instead runs
// the budget sweep — PageRank over a ~1M-edge R-MAT with the paged
// backend at 100% / 50% / 25% of the topology footprint (vertex state
// paged at the same fraction of its own footprint), 1 and 4 threads —
// writing one JSON record per configuration. Each paged run is checked
// byte-identical to the in-memory baseline before its row is emitted;
// the source of the checked-in BENCH_oocgraph.json.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/mem.h"
#include "core/ariadne.h"
#include "graph/paged_backend.h"

namespace ariadne {
namespace {

constexpr int kIterations = 8;

std::string SpillPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("bench_oocg_") + tag + "." +
           std::to_string(::getpid()) + ".agp"))
      .string();
}

std::vector<double> RunPr(const Graph& g, size_t threads, bool paged_vs,
                          size_t vs_budget, RunStats* stats_out = nullptr) {
  PageRankProgram program({.iterations = kIterations});
  EngineOptions options;
  options.num_threads = threads;
  if (paged_vs) {
    options.paged_vertex_state = true;
    options.vertex_state_budget_bytes = vs_budget;
    options.vertex_state_dir =
        std::filesystem::temp_directory_path().string();
  }
  Engine<double, double> engine(&g, options);
  auto stats = engine.Run(program);
  ARIADNE_CHECK(stats.ok());
  if (stats_out != nullptr) *stats_out = std::move(*stats);
  std::vector<double> values;
  ARIADNE_CHECK(engine.CopyValuesTo(&values).ok());
  return values;
}

// ---- google-benchmark mode ----

void BM_PageRankInMemory(benchmark::State& state) {
  auto graph = GenerateRmat({.scale = 12, .avg_degree = 16, .seed = 5});
  ARIADNE_CHECK(graph.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPr(*graph, 1, false, 0));
  }
  state.SetItemsProcessed(state.iterations() * (kIterations + 1) *
                          graph->num_vertices());
}
BENCHMARK(BM_PageRankInMemory);

void BM_PageRankPagedQuarterBudget(benchmark::State& state) {
  auto graph = GenerateRmat({.scale = 12, .avg_degree = 16, .seed = 5});
  ARIADNE_CHECK(graph.ok());
  const std::string path = SpillPath("bm");
  ARIADNE_CHECK(PagedBackend::CreateFrom(*graph, path).ok());
  auto probe = PagedBackend::Open(path);
  ARIADNE_CHECK(probe.ok());
  const uint64_t footprint = (*probe)->backend_stats().footprint_bytes;
  probe->reset();
  PagedBackendOptions options;
  options.budget_bytes = static_cast<size_t>(footprint / 4);
  auto paged = PagedBackend::Open(path, options);
  ARIADNE_CHECK(paged.ok());
  const size_t vs_budget =
      static_cast<size_t>(graph->num_vertices()) * sizeof(double) / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPr(**paged, 1, true, vs_budget));
  }
  state.SetItemsProcessed(state.iterations() * (kIterations + 1) *
                          graph->num_vertices());
  paged->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_PageRankPagedQuarterBudget);

// -------------------------------------------- --json budget sweep mode

std::string SweepRow(const Graph& g, const char* backend, double fraction,
                     size_t threads, size_t vs_budget,
                     const std::vector<double>& baseline,
                     double baseline_seconds,
                     double* slowdown_out = nullptr) {
  RunStats stats;
  std::vector<double> values;
  const bool paged_vs = fraction > 0.0;
  const double seconds = bench::TimedSeconds([&] {
    values = RunPr(g, threads, paged_vs, vs_budget, &stats);
  });
  const bool identical =
      values.size() == baseline.size() &&
      std::memcmp(values.data(), baseline.data(),
                  baseline.size() * sizeof(double)) == 0;
  ARIADNE_CHECK(identical);
  std::fprintf(stderr,
               "  %-7s budget=%3.0f%% threads=%zu  %.3fs  (%.2fx baseline)"
               "  faults=%llu prefetch=%llu evict=%llu\n",
               backend, fraction > 0 ? fraction * 100 : 100.0, threads,
               seconds, baseline_seconds > 0 ? seconds / baseline_seconds : 1.0,
               static_cast<unsigned long long>(
                   stats.graph_backend.partition_faults),
               static_cast<unsigned long long>(
                   stats.graph_backend.prefetch_loads),
               static_cast<unsigned long long>(stats.graph_backend.evictions +
                                               stats.vertex_state.evictions));
  if (slowdown_out != nullptr) {
    *slowdown_out =
        baseline_seconds > 0 ? seconds / baseline_seconds : 1.0;
  }
  bench::JsonObject row;
  row.Set("backend", backend)
      .Set("budget_fraction", fraction > 0 ? fraction : 1.0)
      .Set("threads", static_cast<int64_t>(threads))
      .Set("seconds", seconds)
      .Set("slowdown_vs_inmemory",
           baseline_seconds > 0 ? seconds / baseline_seconds : 1.0)
      .Set("byte_identical", identical)
      .Set("peak_rss_bytes", stats.peak_rss_bytes)
      .Set("graph_partition_faults", stats.graph_backend.partition_faults)
      .Set("graph_cache_hits", stats.graph_backend.cache_hits)
      .Set("graph_prefetch_loads", stats.graph_backend.prefetch_loads)
      .Set("graph_evictions", stats.graph_backend.evictions)
      .Set("graph_resident_bytes", stats.graph_backend.resident_bytes)
      .Set("graph_footprint_bytes", stats.graph_backend.footprint_bytes)
      .Set("vstate_page_faults", stats.vertex_state.page_faults)
      .Set("vstate_prefetch_loads", stats.vertex_state.prefetch_loads)
      .Set("vstate_evictions", stats.vertex_state.evictions)
      .Set("vstate_writebacks", stats.vertex_state.writebacks);
  return row.Dump();
}

int RunBudgetSweep(const std::string& json_path) {
  // 2^16 vertices x avg degree 16 = ~1M edges, same scale as the engine
  // routing sweep.
  auto graph = GenerateRmat({.scale = 16, .avg_degree = 16, .seed = 5});
  ARIADNE_CHECK(graph.ok());
  const char* kGraphName = "rmat-s16-d16";
  const std::string path = SpillPath("sweep");
  ARIADNE_CHECK(PagedBackend::CreateFrom(*graph, path).ok());
  auto probe = PagedBackend::Open(path);
  ARIADNE_CHECK(probe.ok());
  const uint64_t footprint = (*probe)->backend_stats().footprint_bytes;
  const int partitions = (*probe)->num_partitions();
  probe->reset();
  const size_t vs_footprint =
      static_cast<size_t>(graph->num_vertices()) * sizeof(double);
  std::fprintf(stderr,
               "ooc graph sweep: %s (%lld vertices, %lld edges), topology "
               "footprint %llu bytes in %d partitions, pagerank x%d, "
               "reps=%d\n",
               kGraphName, static_cast<long long>(graph->num_vertices()),
               static_cast<long long>(graph->num_edges()),
               static_cast<unsigned long long>(footprint), partitions,
               kIterations, bench::BenchReps());

  const std::vector<double> baseline_values = RunPr(*graph, 1, false, 0);
  std::vector<std::string> rows;
  double baseline_seconds[2] = {0, 0};
  const size_t kThreads[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    RunStats stats;
    std::vector<double> values;
    baseline_seconds[t] = bench::TimedSeconds([&] {
      values = RunPr(*graph, kThreads[t], false, 0, &stats);
    });
    std::fprintf(stderr, "  memory  budget=100%% threads=%zu  %.3fs\n",
                 kThreads[t], baseline_seconds[t]);
    bench::JsonObject row;
    row.Set("backend", "memory")
        .Set("budget_fraction", 1.0)
        .Set("threads", static_cast<int64_t>(kThreads[t]))
        .Set("seconds", baseline_seconds[t])
        .Set("slowdown_vs_inmemory", 1.0)
        .Set("byte_identical", true)
        .Set("peak_rss_bytes", stats.peak_rss_bytes);
    rows.push_back(row.Dump());
  }
  double quarter_budget_slowdown = 0;
  for (double fraction : {1.0, 0.5, 0.25}) {
    PagedBackendOptions options;
    options.budget_bytes =
        static_cast<size_t>(static_cast<double>(footprint) * fraction);
    auto paged = PagedBackend::Open(path, options);
    ARIADNE_CHECK(paged.ok());
    const size_t vs_budget = static_cast<size_t>(
        static_cast<double>(vs_footprint) * fraction);
    for (int t = 0; t < 2; ++t) {
      double slowdown = 0;
      rows.push_back(SweepRow(**paged, "paged", fraction, kThreads[t],
                              vs_budget, baseline_values,
                              baseline_seconds[t], &slowdown));
      if (fraction == 0.25 && kThreads[t] == 1) {
        quarter_budget_slowdown = slowdown;
      }
    }
    paged->reset();
  }
  std::filesystem::remove(path);

  bench::JsonObject top;
  bench::JsonObject graph_info;
  graph_info.Set("name", kGraphName)
      .Set("vertices", static_cast<int64_t>(graph->num_vertices()))
      .Set("edges", static_cast<int64_t>(graph->num_edges()))
      .Set("topology_footprint_bytes", footprint)
      .Set("vertex_state_footprint_bytes",
           static_cast<uint64_t>(vs_footprint))
      .Set("partitions", static_cast<int64_t>(partitions));
  top.Set("bench", "oocgraph_budget_sweep")
      .SetRaw("graph", graph_info.Dump())
      .Set("pagerank_iterations", kIterations)
      .Set("reps", bench::BenchReps())
      .Set("host_hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .SetRaw("results", bench::JsonArray(rows, 4));
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "%s\n", top.Dump().c_str());
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  // Acceptance bar (EXPERIMENTS.md): paging at a quarter of the topology
  // footprint must stay under 2x the in-memory wall clock.
  if (quarter_budget_slowdown >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: 25%%-budget slowdown %.2fx >= 2x in-memory bar\n",
                 quarter_budget_slowdown);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ariadne

int main(int argc, char** argv) {
  const std::string json_path = ariadne::bench::ConsumeJsonFlag(&argc, argv);
  if (!json_path.empty()) return ariadne::RunBudgetSweep(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
