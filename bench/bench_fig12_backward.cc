// Reproduces paper Figure 12: backward lineage tracing — Query 10 over
// the full provenance graph vs Query 12 over the Query-11 custom capture
// (no message payloads, no per-message destinations), both evaluated with
// descending layered evaluation.
//
// Shape to check: querying the custom provenance graph is several times
// faster than the full one (paper: Full 2.6-3.4x the analytic's runtime,
// Custom ~0.5x, i.e. a 5-7x gap), and both return the identical lineage.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

/// A vertex active in the last layer plus that superstep (the paper
/// starts the trace from a vertex that computed in the last superstep).
Result<std::pair<VertexId, Superstep>> TraceSeed(ProvenanceStore& store) {
  for (int step = store.num_layers() - 1; step >= 0; --step) {
    ARIADNE_ASSIGN_OR_RETURN(const Layer* layer, store.GetLayer(step));
    const int superstep_rel = store.RelId("superstep");
    for (const auto& slice : layer->slices) {
      if (slice.rel == superstep_rel && !slice.tuples.empty()) {
        return std::make_pair(slice.vertex, layer->step);
      }
    }
  }
  return Status::NotFound("no active vertex in any layer");
}

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner(
      "Figure 12: backward lineage, full (Q10) vs custom (Q11+Q12) capture",
      "layered backward tracing takes 2.6-3.4x the analytic on the full "
      "provenance graph but only ~0.5x on the custom graph; identical "
      "lineage either way");

  TablePrinter table({"Dataset", "Analytic", "Base(s)", "Full(s)",
                      "Full/Base", "Custom(s)", "Custom/Base", "Lineage",
                      "Match"});
  for (const auto& dataset : WebDatasets()) {
    auto base_graph = GenerateRmat(dataset.rmat);
    if (!base_graph.ok()) return 1;
    // WCC messages along BOTH edge directions; the paper's Query 11/12
    // custom-capture scheme presumes messages follow out-edges ("for
    // analytics where vertices send messages to all their outgoing
    // neighbors"), so WCC runs on a symmetrized copy, matching Giraph's
    // practice of symmetrizing input for connected components.
    GraphBuilder sym_builder;
    sym_builder.EnsureVertices(base_graph->num_vertices());
    for (VertexId v = 0; v < base_graph->num_vertices(); ++v) {
      auto nbrs = base_graph->OutNeighbors(v);
      auto weights = base_graph->OutWeights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        sym_builder.AddEdge(v, nbrs[i], weights[i]);
        sym_builder.AddEdge(nbrs[i], v, weights[i]);
      }
    }
    sym_builder.Dedup();
    auto sym_graph = sym_builder.Build();
    if (!sym_graph.ok()) return 1;

    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kSssp,
                              AnalyticKind::kWcc}) {
      const Graph* graph_ptr =
          kind == AnalyticKind::kWcc ? &*sym_graph : &*base_graph;
      const Graph& graph_ref = *graph_ptr;
      Session session(graph_ptr);
      auto full_capture = session.PrepareOnline(queries::CaptureFull());
      auto custom_capture =
          session.PrepareOnline(queries::CaptureCustomBackward());
      if (!full_capture.ok() || !custom_capture.ok()) return 1;
      const double base = TimedSeconds([&] {
        ARIADNE_CHECK(RunBaseline(kind, graph_ref).ok());
      });

      ProvenanceStore full_store, custom_store;
      ARIADNE_CHECK(RunCapture(kind, graph_ref, *full_capture, &full_store).ok());
      ARIADNE_CHECK(
          RunCapture(kind, graph_ref, *custom_capture, &custom_store).ok());
      auto seed_probe = TraceSeed(full_store);  // before spilling
      ARIADNE_CHECK(SpillToDisk(&full_store).ok());
      ARIADNE_CHECK(SpillToDisk(&custom_store).ok());

      auto& seed = seed_probe;
      if (!seed.ok()) {
        std::fprintf(stderr, "%s\n", seed.status().ToString().c_str());
        return 1;
      }
      const QueryParams params{
          {"alpha", Value(static_cast<int64_t>(seed->first))},
          {"sigma", Value(static_cast<int64_t>(seed->second))}};

      auto q10 = session.PrepareOffline(queries::BackwardLineageFull(),
                                        full_store, params);
      auto q12 = session.PrepareOffline(queries::BackwardLineageCustom(),
                                        custom_store, params);
      if (!q10.ok() || !q12.ok()) return 1;

      size_t full_lineage = 0, custom_lineage = 0;
      std::vector<std::string> full_rows, custom_rows;
      const double full_time = TimedSeconds([&] {
        auto run = session.RunOffline(&full_store, *q10, EvalMode::kLayered);
        ARIADNE_CHECK(run.ok());
        full_lineage = run->result.TupleCount("back-lineage");
        const Relation* rel = run->result.Table("back-lineage");
        full_rows = rel == nullptr ? std::vector<std::string>{}
                                   : rel->ToSortedStrings();
      });
      const double custom_time = TimedSeconds([&] {
        auto run =
            session.RunOffline(&custom_store, *q12, EvalMode::kLayered);
        ARIADNE_CHECK(run.ok());
        custom_lineage = run->result.TupleCount("back-lineage");
        const Relation* rel = run->result.Table("back-lineage");
        custom_rows = rel == nullptr ? std::vector<std::string>{}
                                     : rel->ToSortedStrings();
      });
      table.AddRow({dataset.short_name, AnalyticName(kind),
                    FormatDouble(base, 3), FormatDouble(full_time, 3),
                    Ratio(full_time, base), FormatDouble(custom_time, 3),
                    Ratio(custom_time, base), std::to_string(full_lineage),
                    full_rows == custom_rows ? "yes" : "NO"});
      (void)custom_lineage;
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
