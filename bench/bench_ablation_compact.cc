// Ablation (paper §3): the compact provenance representation — the input
// graph annotated with per-vertex relations — against the unfolded
// provenance graph with one materialized node per (vertex, superstep) and
// one edge object per message/evolution edge.
//
// Shape to check: the compact representation is several times smaller;
// the gap grows with superstep count (the unfolded graph pays per-node
// and per-edge object overheads that the compact tables amortize).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

namespace ariadne::bench {
namespace {

/// Cost model for the unfolded provenance graph, per paper §3: a node
/// object per (vertex, superstep) with its value, plus an edge object per
/// send/receive message edge (with payload) and per evolution edge.
/// Object sizes mirror our engine's in-memory costs: 48B per vertex
/// object (id, value slot, adjacency header), 24B per edge object.
size_t UnfoldedBytes(ProvenanceStore& store) {
  constexpr size_t kNodeBytes = 48;
  constexpr size_t kEdgeBytes = 24;
  const int superstep_rel = store.RelId("superstep");
  const int evolution_rel = store.RelId("evolution");
  const int send_rel = store.RelId("send-message");
  const int receive_rel = store.RelId("receive-message");
  size_t nodes = 0, edges = 0, payload = 0;
  for (int s = 0; s < store.num_layers(); ++s) {
    const Layer* layer = *store.GetLayer(s);
    for (const auto& slice : layer->slices) {
      if (slice.rel == superstep_rel) {
        nodes += slice.tuples.size();
      } else if (slice.rel == evolution_rel) {
        edges += slice.tuples.size();
      } else if (slice.rel == send_rel || slice.rel == receive_rel) {
        edges += slice.tuples.size();
        for (const Tuple& t : slice.tuples) payload += t[2].ByteSize();
      }
    }
  }
  return nodes * kNodeBytes + edges * kEdgeBytes + payload;
}

int Run() {
  SetLogLevel(LogLevel::kWarning);
  PrintBanner("Ablation: compact vs unfolded provenance representation",
              "the paper's compact format replaces n provenance nodes per "
              "vertex by one node with n-tuple annotations (\"much cheaper "
              "to represent n data items than vertex objects\")");

  TablePrinter table({"Dataset", "Analytic", "Compact", "Unfolded",
                      "Unfolded/Compact"});
  for (const auto& dataset : WebDatasets()) {
    auto graph = GenerateRmat(dataset.rmat);
    if (!graph.ok()) return 1;
    Session session(&*graph);
    auto capture = session.PrepareOnline(queries::CaptureFull());
    if (!capture.ok()) return 1;
    for (AnalyticKind kind : {AnalyticKind::kPageRank, AnalyticKind::kWcc}) {
      ProvenanceStore store;
      ARIADNE_CHECK(RunCapture(kind, *graph, *capture, &store).ok());
      const size_t compact = store.TotalBytes();
      const size_t unfolded = UnfoldedBytes(store);
      table.AddRow({dataset.short_name, AnalyticName(kind),
                    HumanBytes(compact), HumanBytes(unfolded),
                    Ratio(static_cast<double>(unfolded),
                          static_cast<double>(compact))});
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace ariadne::bench

int main() { return ariadne::bench::Run(); }
