# Empty compiler generated dependencies file for ariadne.
# This may be replaced when dependencies are built.
