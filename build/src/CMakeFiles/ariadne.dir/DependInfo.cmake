
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/als.cc" "src/CMakeFiles/ariadne.dir/analytics/als.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/als.cc.o.d"
  "/root/repo/src/analytics/bfs.cc" "src/CMakeFiles/ariadne.dir/analytics/bfs.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/bfs.cc.o.d"
  "/root/repo/src/analytics/label_propagation.cc" "src/CMakeFiles/ariadne.dir/analytics/label_propagation.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/label_propagation.cc.o.d"
  "/root/repo/src/analytics/linalg.cc" "src/CMakeFiles/ariadne.dir/analytics/linalg.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/linalg.cc.o.d"
  "/root/repo/src/analytics/pagerank.cc" "src/CMakeFiles/ariadne.dir/analytics/pagerank.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/pagerank.cc.o.d"
  "/root/repo/src/analytics/sssp.cc" "src/CMakeFiles/ariadne.dir/analytics/sssp.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/sssp.cc.o.d"
  "/root/repo/src/analytics/wcc.cc" "src/CMakeFiles/ariadne.dir/analytics/wcc.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/analytics/wcc.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ariadne.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/ariadne.dir/common/random.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/random.cc.o.d"
  "/root/repo/src/common/serialize.cc" "src/CMakeFiles/ariadne.dir/common/serialize.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/serialize.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ariadne.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/ariadne.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/ariadne.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/ariadne.dir/common/value.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/common/value.cc.o.d"
  "/root/repo/src/engine/aggregators.cc" "src/CMakeFiles/ariadne.dir/engine/aggregators.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/engine/aggregators.cc.o.d"
  "/root/repo/src/eval/common.cc" "src/CMakeFiles/ariadne.dir/eval/common.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/eval/common.cc.o.d"
  "/root/repo/src/eval/layered.cc" "src/CMakeFiles/ariadne.dir/eval/layered.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/eval/layered.cc.o.d"
  "/root/repo/src/eval/naive.cc" "src/CMakeFiles/ariadne.dir/eval/naive.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/eval/naive.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/ariadne.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/ariadne.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/ariadne.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/ariadne.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/graph/stats.cc.o.d"
  "/root/repo/src/pql/analysis.cc" "src/CMakeFiles/ariadne.dir/pql/analysis.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/analysis.cc.o.d"
  "/root/repo/src/pql/ast.cc" "src/CMakeFiles/ariadne.dir/pql/ast.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/ast.cc.o.d"
  "/root/repo/src/pql/catalog.cc" "src/CMakeFiles/ariadne.dir/pql/catalog.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/catalog.cc.o.d"
  "/root/repo/src/pql/evaluator.cc" "src/CMakeFiles/ariadne.dir/pql/evaluator.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/evaluator.cc.o.d"
  "/root/repo/src/pql/lexer.cc" "src/CMakeFiles/ariadne.dir/pql/lexer.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/lexer.cc.o.d"
  "/root/repo/src/pql/parser.cc" "src/CMakeFiles/ariadne.dir/pql/parser.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/parser.cc.o.d"
  "/root/repo/src/pql/queries.cc" "src/CMakeFiles/ariadne.dir/pql/queries.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/queries.cc.o.d"
  "/root/repo/src/pql/relation.cc" "src/CMakeFiles/ariadne.dir/pql/relation.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/relation.cc.o.d"
  "/root/repo/src/pql/udf.cc" "src/CMakeFiles/ariadne.dir/pql/udf.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/pql/udf.cc.o.d"
  "/root/repo/src/provenance/compact_view.cc" "src/CMakeFiles/ariadne.dir/provenance/compact_view.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/provenance/compact_view.cc.o.d"
  "/root/repo/src/provenance/store.cc" "src/CMakeFiles/ariadne.dir/provenance/store.cc.o" "gcc" "src/CMakeFiles/ariadne.dir/provenance/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
