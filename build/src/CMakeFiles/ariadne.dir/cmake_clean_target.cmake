file(REMOVE_RECURSE
  "libariadne.a"
)
