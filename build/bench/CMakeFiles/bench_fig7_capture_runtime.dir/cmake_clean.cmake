file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_capture_runtime.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig7_capture_runtime.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig7_capture_runtime.dir/bench_fig7_capture_runtime.cc.o"
  "CMakeFiles/bench_fig7_capture_runtime.dir/bench_fig7_capture_runtime.cc.o.d"
  "bench_fig7_capture_runtime"
  "bench_fig7_capture_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_capture_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
