# Empty compiler generated dependencies file for bench_fig7_capture_runtime.
# This may be replaced when dependencies are built.
