file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_als_queries.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig9_als_queries.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig9_als_queries.dir/bench_fig9_als_queries.cc.o"
  "CMakeFiles/bench_fig9_als_queries.dir/bench_fig9_als_queries.cc.o.d"
  "bench_fig9_als_queries"
  "bench_fig9_als_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_als_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
