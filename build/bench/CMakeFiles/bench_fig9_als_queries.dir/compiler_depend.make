# Empty compiler generated dependencies file for bench_fig9_als_queries.
# This may be replaced when dependencies are built.
