file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fastcapture.dir/bench_ablation_fastcapture.cc.o"
  "CMakeFiles/bench_ablation_fastcapture.dir/bench_ablation_fastcapture.cc.o.d"
  "CMakeFiles/bench_ablation_fastcapture.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_fastcapture.dir/bench_common.cc.o.d"
  "bench_ablation_fastcapture"
  "bench_ablation_fastcapture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fastcapture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
