# Empty compiler generated dependencies file for bench_ablation_fastcapture.
# This may be replaced when dependencies are built.
