# Empty dependencies file for bench_fig12_backward.
# This may be replaced when dependencies are built.
