file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_backward.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig12_backward.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig12_backward.dir/bench_fig12_backward.cc.o"
  "CMakeFiles/bench_fig12_backward.dir/bench_fig12_backward.cc.o.d"
  "bench_fig12_backward"
  "bench_fig12_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
