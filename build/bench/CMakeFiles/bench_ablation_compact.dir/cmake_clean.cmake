file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compact.dir/bench_ablation_compact.cc.o"
  "CMakeFiles/bench_ablation_compact.dir/bench_ablation_compact.cc.o.d"
  "CMakeFiles/bench_ablation_compact.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_compact.dir/bench_common.cc.o.d"
  "bench_ablation_compact"
  "bench_ablation_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
