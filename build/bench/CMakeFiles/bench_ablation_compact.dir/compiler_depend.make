# Empty compiler generated dependencies file for bench_ablation_compact.
# This may be replaced when dependencies are built.
