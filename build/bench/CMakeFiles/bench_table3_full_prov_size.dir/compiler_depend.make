# Empty compiler generated dependencies file for bench_table3_full_prov_size.
# This may be replaced when dependencies are built.
