file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_monitoring.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig8_monitoring.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig8_monitoring.dir/bench_fig8_monitoring.cc.o"
  "CMakeFiles/bench_fig8_monitoring.dir/bench_fig8_monitoring.cc.o.d"
  "bench_fig8_monitoring"
  "bench_fig8_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
