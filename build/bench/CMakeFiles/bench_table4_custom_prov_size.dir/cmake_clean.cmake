file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_custom_prov_size.dir/bench_common.cc.o"
  "CMakeFiles/bench_table4_custom_prov_size.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table4_custom_prov_size.dir/bench_table4_custom_prov_size.cc.o"
  "CMakeFiles/bench_table4_custom_prov_size.dir/bench_table4_custom_prov_size.cc.o.d"
  "bench_table4_custom_prov_size"
  "bench_table4_custom_prov_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_custom_prov_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
