# Empty dependencies file for bench_table4_custom_prov_size.
# This may be replaced when dependencies are built.
