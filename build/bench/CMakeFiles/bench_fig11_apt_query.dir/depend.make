# Empty dependencies file for bench_fig11_apt_query.
# This may be replaced when dependencies are built.
