file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_apt_query.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig11_apt_query.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig11_apt_query.dir/bench_fig11_apt_query.cc.o"
  "CMakeFiles/bench_fig11_apt_query.dir/bench_fig11_apt_query.cc.o.d"
  "bench_fig11_apt_query"
  "bench_fig11_apt_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_apt_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
