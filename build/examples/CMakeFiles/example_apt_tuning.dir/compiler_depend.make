# Empty compiler generated dependencies file for example_apt_tuning.
# This may be replaced when dependencies are built.
