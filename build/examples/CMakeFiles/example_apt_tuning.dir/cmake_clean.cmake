file(REMOVE_RECURSE
  "CMakeFiles/example_apt_tuning.dir/apt_tuning.cpp.o"
  "CMakeFiles/example_apt_tuning.dir/apt_tuning.cpp.o.d"
  "example_apt_tuning"
  "example_apt_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_apt_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
