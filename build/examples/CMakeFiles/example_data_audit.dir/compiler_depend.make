# Empty compiler generated dependencies file for example_data_audit.
# This may be replaced when dependencies are built.
