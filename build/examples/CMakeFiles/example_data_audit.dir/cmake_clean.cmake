file(REMOVE_RECURSE
  "CMakeFiles/example_data_audit.dir/data_audit.cpp.o"
  "CMakeFiles/example_data_audit.dir/data_audit.cpp.o.d"
  "example_data_audit"
  "example_data_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_data_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
