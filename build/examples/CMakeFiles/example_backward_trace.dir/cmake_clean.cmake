file(REMOVE_RECURSE
  "CMakeFiles/example_backward_trace.dir/backward_trace.cpp.o"
  "CMakeFiles/example_backward_trace.dir/backward_trace.cpp.o.d"
  "example_backward_trace"
  "example_backward_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backward_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
