# Empty compiler generated dependencies file for example_backward_trace.
# This may be replaced when dependencies are built.
