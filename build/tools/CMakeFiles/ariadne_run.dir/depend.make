# Empty dependencies file for ariadne_run.
# This may be replaced when dependencies are built.
