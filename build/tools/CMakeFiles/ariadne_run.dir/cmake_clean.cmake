file(REMOVE_RECURSE
  "CMakeFiles/ariadne_run.dir/ariadne_run.cc.o"
  "CMakeFiles/ariadne_run.dir/ariadne_run.cc.o.d"
  "ariadne_run"
  "ariadne_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ariadne_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
