file(REMOVE_RECURSE
  "CMakeFiles/pql_check.dir/pql_check.cc.o"
  "CMakeFiles/pql_check.dir/pql_check.cc.o.d"
  "pql_check"
  "pql_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
