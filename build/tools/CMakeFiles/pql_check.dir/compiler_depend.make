# Empty compiler generated dependencies file for pql_check.
# This may be replaced when dependencies are built.
