file(REMOVE_RECURSE
  "CMakeFiles/eval_common_test.dir/eval_common_test.cc.o"
  "CMakeFiles/eval_common_test.dir/eval_common_test.cc.o.d"
  "eval_common_test"
  "eval_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
