file(REMOVE_RECURSE
  "CMakeFiles/compact_view_test.dir/compact_view_test.cc.o"
  "CMakeFiles/compact_view_test.dir/compact_view_test.cc.o.d"
  "compact_view_test"
  "compact_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
