# Empty compiler generated dependencies file for compact_view_test.
# This may be replaced when dependencies are built.
