# Empty dependencies file for provenance_store_test.
# This may be replaced when dependencies are built.
