file(REMOVE_RECURSE
  "CMakeFiles/provenance_store_test.dir/provenance_store_test.cc.o"
  "CMakeFiles/provenance_store_test.dir/provenance_store_test.cc.o.d"
  "provenance_store_test"
  "provenance_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
