file(REMOVE_RECURSE
  "CMakeFiles/pql_queries_test.dir/pql_queries_test.cc.o"
  "CMakeFiles/pql_queries_test.dir/pql_queries_test.cc.o.d"
  "pql_queries_test"
  "pql_queries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
