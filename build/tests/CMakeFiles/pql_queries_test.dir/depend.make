# Empty dependencies file for pql_queries_test.
# This may be replaced when dependencies are built.
