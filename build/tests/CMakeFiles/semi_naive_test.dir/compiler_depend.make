# Empty compiler generated dependencies file for semi_naive_test.
# This may be replaced when dependencies are built.
