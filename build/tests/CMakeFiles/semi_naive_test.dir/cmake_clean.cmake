file(REMOVE_RECURSE
  "CMakeFiles/semi_naive_test.dir/semi_naive_test.cc.o"
  "CMakeFiles/semi_naive_test.dir/semi_naive_test.cc.o.d"
  "semi_naive_test"
  "semi_naive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semi_naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
