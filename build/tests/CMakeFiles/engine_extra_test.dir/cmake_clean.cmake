file(REMOVE_RECURSE
  "CMakeFiles/engine_extra_test.dir/engine_extra_test.cc.o"
  "CMakeFiles/engine_extra_test.dir/engine_extra_test.cc.o.d"
  "engine_extra_test"
  "engine_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
