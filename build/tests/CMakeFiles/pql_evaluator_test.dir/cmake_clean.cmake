file(REMOVE_RECURSE
  "CMakeFiles/pql_evaluator_test.dir/pql_evaluator_test.cc.o"
  "CMakeFiles/pql_evaluator_test.dir/pql_evaluator_test.cc.o.d"
  "pql_evaluator_test"
  "pql_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
