# Empty dependencies file for pql_evaluator_test.
# This may be replaced when dependencies are built.
