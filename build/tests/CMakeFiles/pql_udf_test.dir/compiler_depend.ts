# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pql_udf_test.
