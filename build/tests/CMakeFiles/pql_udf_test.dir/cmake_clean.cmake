file(REMOVE_RECURSE
  "CMakeFiles/pql_udf_test.dir/pql_udf_test.cc.o"
  "CMakeFiles/pql_udf_test.dir/pql_udf_test.cc.o.d"
  "pql_udf_test"
  "pql_udf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_udf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
