# Empty dependencies file for pql_udf_test.
# This may be replaced when dependencies are built.
