# Empty compiler generated dependencies file for pql_analysis_test.
# This may be replaced when dependencies are built.
