file(REMOVE_RECURSE
  "CMakeFiles/pql_analysis_test.dir/pql_analysis_test.cc.o"
  "CMakeFiles/pql_analysis_test.dir/pql_analysis_test.cc.o.d"
  "pql_analysis_test"
  "pql_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
