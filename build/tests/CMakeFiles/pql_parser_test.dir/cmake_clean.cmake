file(REMOVE_RECURSE
  "CMakeFiles/pql_parser_test.dir/pql_parser_test.cc.o"
  "CMakeFiles/pql_parser_test.dir/pql_parser_test.cc.o.d"
  "pql_parser_test"
  "pql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
