# Empty dependencies file for pql_parser_test.
# This may be replaced when dependencies are built.
