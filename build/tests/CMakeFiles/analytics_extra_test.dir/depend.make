# Empty dependencies file for analytics_extra_test.
# This may be replaced when dependencies are built.
