file(REMOVE_RECURSE
  "CMakeFiles/analytics_extra_test.dir/analytics_extra_test.cc.o"
  "CMakeFiles/analytics_extra_test.dir/analytics_extra_test.cc.o.d"
  "analytics_extra_test"
  "analytics_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
