file(REMOVE_RECURSE
  "CMakeFiles/pql_relation_test.dir/pql_relation_test.cc.o"
  "CMakeFiles/pql_relation_test.dir/pql_relation_test.cc.o.d"
  "pql_relation_test"
  "pql_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pql_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
