# Empty compiler generated dependencies file for pql_relation_test.
# This may be replaced when dependencies are built.
