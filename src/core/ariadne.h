#ifndef ARIADNE_CORE_ARIADNE_H_
#define ARIADNE_CORE_ARIADNE_H_

/// Umbrella header: the full public API of the Ariadne library.
///
/// Layers (bottom-up):
///   common/      Status/Result, runtime Value, serialization, RNG
///   graph/       CSR graphs, generators, I/O, stats
///   engine/      the vertex-centric BSP engine (Giraph stand-in)
///   analytics/   PageRank, SSSP, WCC, ALS (+ approximate variants)
///   pql/         the Datalog-based Provenance Query Language
///   provenance/  the captured provenance store (layers + spill)
///   eval/        online / layered / naive evaluation
///   core/        Session — the one-stop facade

#include "analytics/als.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/wcc.h"
#include "common/status.h"
#include "common/value.h"
#include "core/session.h"
#include "engine/engine.h"
#include "eval/common.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "pql/queries.h"
#include "provenance/store.h"

#endif  // ARIADNE_CORE_ARIADNE_H_
