#ifndef ARIADNE_CORE_SESSION_H_
#define ARIADNE_CORE_SESSION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "eval/common.h"
#include "eval/layered.h"
#include "eval/naive.h"
#include "eval/online.h"
#include "graph/graph.h"
#include "pql/analysis.h"
#include "pql/parser.h"
#include "provenance/store.h"

namespace ariadne {

/// Named query parameters ($eps, $alpha, ...).
using QueryParams = std::vector<std::pair<std::string, Value>>;

struct SessionOptions {
  EngineOptions engine;
  /// Cost-order join plans and pick probe columns by bucket cardinality
  /// (DESIGN.md §2.3). Results are bit-identical either way; disable to
  /// fall back to the legacy literal order (ariadne_run --no-plan).
  bool plan_joins = true;
};

/// Result of an online run: the analytic finished (its values live in the
/// engine; overhead in engine_stats) and the query's tables exist — both
/// at once, which is the paper's headline capability.
struct OnlineRunResult {
  RunStats engine_stats;
  QueryResult query_result;
  /// Transient provenance held in per-vertex databases at the end.
  size_t transient_bytes = 0;
  /// Per-rule evaluator counters, merged over vertices.
  EvalStats eval_stats;
};

/// The main entry point of the library: binds an input graph to the PQL
/// front-end and the three evaluation modes.
///
///   Session session(&graph);
///   auto query = session.PrepareOnline(queries::Apt(), {{"eps", 0.01}});
///   PageRankProgram pagerank;
///   auto run = session.RunOnline(pagerank, *query);
///   run->query_result.Table("safe");
///
/// See examples/ for full programs.
class Session {
 public:
  /// `graph` must outlive the session.
  explicit Session(const Graph* graph, SessionOptions options = {})
      : graph_(graph), options_(options) {}

  const Graph& graph() const { return *graph_; }

  /// Parses, binds and analyzes a query for online/capture evaluation
  /// (transient EDBs allowed).
  Result<AnalyzedQuery> PrepareOnline(const std::string& text,
                                      const QueryParams& params = {}) const {
    return Prepare(text, params, nullptr, /*allow_transient=*/true);
  }

  /// Parses, binds and analyzes a query for offline evaluation against a
  /// captured store's schema.
  Result<AnalyzedQuery> PrepareOffline(const std::string& text,
                                       const ProvenanceStore& store,
                                       const QueryParams& params = {}) const {
    const StoreSchema schema = store.ToStoreSchema();
    return Prepare(text, params, &schema, /*allow_transient=*/false);
  }

  /// Runs the analytic alone (the Giraph baseline of the experiments).
  /// `final_values`, when non-null, receives the vertex values.
  template <typename P>
  Result<RunStats> RunBaseline(
      P& analytic,
      std::vector<typename P::ValueType>* final_values = nullptr) const {
    Engine<typename P::ValueType, typename P::MessageType> engine(
        graph_, options_.engine);
    ARIADNE_ASSIGN_OR_RETURN(RunStats stats, engine.Run(analytic));
    if (final_values != nullptr) {
      // CopyValuesTo (not values()) so paged vertex state also works.
      ARIADNE_RETURN_NOT_OK(engine.CopyValuesTo(final_values));
    }
    return stats;
  }

  /// Online evaluation (paper Fig 2): evaluates `query` in lockstep with
  /// the unmodified `analytic`. `retention_window` caps per-vertex EDB
  /// history in supersteps (0 = unlimited; 2 is safe for all the paper's
  /// monitoring/apt queries).
  template <typename P>
  Result<OnlineRunResult> RunOnline(
      P& analytic, const AnalyzedQuery& query, int retention_window = 0,
      std::vector<typename P::ValueType>* final_values = nullptr) const {
    ARIADNE_RETURN_NOT_OK(ValidateMode(query, EvalMode::kOnline));
    OnlineOptions online_options;
    online_options.retention_window = retention_window;
    OnlineProgram<P> program(&analytic, &query, graph_, online_options);
    Engine<typename P::ValueType, OnlineMessage<typename P::MessageType>>
        engine(graph_, options_.engine);
    ARIADNE_ASSIGN_OR_RETURN(RunStats stats, engine.Run(program));
    ARIADNE_RETURN_NOT_OK(program.status());
    if (final_values != nullptr) {
      // CopyValuesTo (not values()) so paged vertex state also works.
      ARIADNE_RETURN_NOT_OK(engine.CopyValuesTo(final_values));
    }
    OnlineRunResult out;
    out.engine_stats = std::move(stats);
    out.query_result = program.CollectResult();
    out.transient_bytes = program.TransientBytes();
    out.eval_stats = program.CollectEvalStats();
    return out;
  }

  /// Declarative capture (paper Fig 1a): runs the analytic with
  /// `capture_query` evaluated online; derived relations are persisted
  /// into `store` layer by layer.
  template <typename P>
  Result<RunStats> Capture(
      P& analytic, const AnalyzedQuery& capture_query, ProvenanceStore* store,
      int retention_window = 0,
      std::vector<typename P::ValueType>* final_values = nullptr,
      bool use_fast_capture = true,
      CaptureDegradePolicy degrade_policy = CaptureDegradePolicy::kFail) const {
    ARIADNE_RETURN_NOT_OK(ValidateMode(capture_query, EvalMode::kOnline));
    if (store == nullptr) {
      return Status::InvalidArgument("capture requires a store");
    }
    OnlineOptions online_options;
    online_options.store = store;
    online_options.retention_window = retention_window;
    online_options.disable_fast_capture = !use_fast_capture;
    online_options.degrade_policy = degrade_policy;
    OnlineProgram<P> program(&analytic, &capture_query, graph_,
                             online_options);
    Engine<typename P::ValueType, OnlineMessage<typename P::MessageType>>
        engine(graph_, options_.engine);
    ARIADNE_ASSIGN_OR_RETURN(RunStats stats, engine.Run(program));
    ARIADNE_RETURN_NOT_OK(program.status());
    // Quiesce the write-behind flusher: spill files are durable and
    // spill counters are meaningful as soon as Capture returns. A
    // degraded store drains clean by design (layers stay resident).
    Status flushed = store->Flush();
    stats.capture_degraded = program.capture_degraded();
    stats.capture_degraded_at = program.capture_degraded_at();
    if (!flushed.ok()) {
      if (degrade_policy == CaptureDegradePolicy::kFail) return flushed;
      // The spill failure only surfaced after the last barrier. Nothing
      // is lost — a failed flush keeps its layer resident — so the
      // capture content is complete; stop spilling and keep it in
      // memory, loudly. (Queries stay answerable: MarkDegraded is only
      // for content that was actually dropped mid-run.)
      store->EnterStorageDegradedMode();
      stats.capture_degraded = true;
      if (stats.capture_degraded_at < 0) {
        stats.capture_degraded_at = stats.supersteps;
      }
      ARIADNE_LOG(Warning) << "capture spill failed after the run ("
                           << flushed.message()
                           << "); store kept fully in memory";
    }
    if (final_values != nullptr) {
      // CopyValuesTo (not values()) so paged vertex state also works.
      ARIADNE_RETURN_NOT_OK(engine.CopyValuesTo(final_values));
    }
    return stats;
  }

  /// Offline querying of a captured store (paper Fig 1b): layered
  /// (directed queries) or naive (any query). The store is only read —
  /// concurrent RunOffline calls over one store are safe (the serve
  /// subsystem relies on this; see DESIGN.md §2.6).
  Result<OfflineRun> RunOffline(const ProvenanceStore* store,
                                const AnalyzedQuery& query,
                                EvalMode mode) const {
    switch (mode) {
      case EvalMode::kLayered: {
        LayeredEvaluator evaluator(graph_, store, &query, options_.engine);
        return evaluator.Run();
      }
      case EvalMode::kNaive: {
        NaiveEvaluator evaluator(graph_, store, &query);
        return evaluator.Run();
      }
      case EvalMode::kOnline:
        return Status::InvalidArgument(
            "online evaluation runs with the analytic; use RunOnline");
    }
    return Status::Internal("unknown mode");
  }

 private:
  Result<AnalyzedQuery> Prepare(const std::string& text,
                                const QueryParams& params,
                                const StoreSchema* schema,
                                bool allow_transient) const {
    ARIADNE_ASSIGN_OR_RETURN(Program program, ParseProgram(text));
    if (!params.empty()) {
      ARIADNE_RETURN_NOT_OK(program.BindParameters(params));
    }
    AnalyzeOptions options;
    options.allow_transient = allow_transient;
    options.plan_joins = options_.plan_joins;
    return Analyze(program, Catalog::Default(), UdfRegistry::Default(),
                   schema, options);
  }

  const Graph* graph_;
  SessionOptions options_;
};

}  // namespace ariadne

#endif  // ARIADNE_CORE_SESSION_H_
