#include "eval/layered_step.h"

#include <algorithm>

#include "pql/evaluator.h"

namespace ariadne {

namespace {

void SortUnique(std::vector<VertexId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

// ---- LayerView ----

bool LayerView::HasRel(int rel) const {
  if (rels.empty()) return true;
  return std::binary_search(rels.begin(), rels.end(), rel);
}

bool LayerView::Covers(const std::vector<int>& needed) const {
  if (rels.empty()) return true;   // view holds every relation
  if (needed.empty()) return false;  // query reads all, view is partial
  return std::includes(rels.begin(), rels.end(), needed.begin(),
                       needed.end());
}

std::shared_ptr<const LayerView> BuildLayerView(
    std::shared_ptr<const Layer> layer, int step, int send_rel,
    int receive_rel, std::vector<int> rels) {
  auto view = std::make_shared<LayerView>();
  view->step = step;
  view->layer = std::move(layer);
  view->rels = std::move(rels);
  for (const auto& slice : view->layer->slices) {
    view->by_vertex[slice.vertex].push_back(&slice);
    // The layer's recorded message edges, for ship routing.
    if (slice.rel == send_rel) {
      auto& targets = view->route_out[slice.vertex];
      for (const Tuple& t : slice.tuples) {
        if (t.size() > 1 && t[1].is_int()) targets.push_back(t[1].AsInt());
      }
    } else if (slice.rel == receive_rel) {
      auto& sources = view->route_in[slice.vertex];
      for (const Tuple& t : slice.tuples) {
        if (t.size() > 1 && t[1].is_int()) sources.push_back(t[1].AsInt());
      }
    }
  }
  for (auto* index : {&view->route_out, &view->route_in}) {
    for (auto& [vertex, targets] : *index) SortUnique(targets);
  }
  return view;
}

// ---- AdjacencyCache ----

AdjacencyCache::AdjacencyCache(const Graph* graph) : graph_(graph) {
  planes_.assign(3, std::vector<std::vector<VertexId>>(
                        static_cast<size_t>(graph_->num_vertices())));
  filled_.assign(3, std::vector<uint8_t>(
                        static_cast<size_t>(graph_->num_vertices()), 0));
}

void AdjacencyCache::Precompute() {
  for (int plane = 0; plane < 3; ++plane) {
    for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
      // Sequential whole-graph sweep: with a paged graph backend this
      // hint overlaps the next partition's fault with this one's fills
      // (no-op for the in-memory backend).
      graph_->AdviseSequentialScan(v);
      Fill(plane, v);
    }
  }
  precomputed_ = true;
}

void AdjacencyCache::Fill(int plane, VertexId v) {
  std::vector<VertexId>& slot =
      planes_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
  uint8_t& filled =
      filled_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
  if (filled) return;
  if (plane != 2) {
    auto nbrs = graph_->OutNeighbors(v);
    slot.insert(slot.end(), nbrs.begin(), nbrs.end());
  }
  if (plane != 1) {
    auto nbrs = graph_->InNeighbors(v);
    slot.insert(slot.end(), nbrs.begin(), nbrs.end());
  }
  SortUnique(slot);
  filled = 1;
}

std::span<const VertexId> AdjacencyCache::Get(int plane, VertexId v) {
  if (!precomputed_) Fill(plane, v);
  return planes_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
}

size_t AdjacencyCache::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& plane : planes_) {
    for (const auto& slot : plane) bytes += slot.size() * sizeof(VertexId);
  }
  return bytes;
}

// ---- LayeredQueryRun ----

LayeredQueryRun::LayeredQueryRun(const Graph* graph,
                                 const ProvenanceStore* store,
                                 const AnalyzedQuery* query,
                                 AdjacencyCache* adjacency)
    : graph_(graph),
      store_(store),
      query_(query),
      evaluator_(query),
      adjacency_(adjacency) {
  descending_ = query_->direction() == Direction::kBackward;
  // Stored relation -> query predicate resolution (by name).
  rel_to_pred_.resize(store_->schema().size(), -1);
  for (size_t r = 0; r < store_->schema().size(); ++r) {
    rel_to_pred_[r] = query_->PredId(store_->schema()[r].name);
  }
  // Ship routing follows the *recorded* message edges of the store,
  // independent of whether the query itself reads them.
  send_rel_ = store_->RelId("send-message");
  receive_rel_ = store_->RelId("receive-message");
  // Relations this query actually touches (query predicates + the message
  // edges used for routing). Layer reads — and the "did this layer touch
  // v" gate below — are restricted to them, so a shared LayerView built
  // for a relation *superset* still evaluates exactly the vertices a
  // private needed-rels-only view would.
  for (size_t r = 0; r < rel_to_pred_.size(); ++r) {
    if (RelMatters(static_cast<int>(r))) {
      needed_rels_.push_back(static_cast<int>(r));
    }
  }
  if (needed_rels_.size() == rel_to_pred_.size()) {
    needed_rels_.clear();  // all relations: no point filtering
  }
}

bool LayeredQueryRun::RelMatters(int rel) const {
  return rel_to_pred_[static_cast<size_t>(rel)] >= 0 || rel == send_rel_ ||
         rel == receive_rel_;
}

Status LayeredQueryRun::Init() {
  ARIADNE_RETURN_NOT_OK(ValidateMode(*query_, EvalMode::kLayered));
  // A degraded capture (DESIGN.md §2.4) is missing history; refuse any
  // query that reads a relation outside the surviving set.
  ARIADNE_RETURN_NOT_OK(CheckDegradedCapture(*query_, *store_));
  if (store_->num_layers() == 0) {
    return Status::InvalidArgument("provenance store has no layers");
  }
  total_steps_ = store_->num_layers();
  processing_step_ = 0;
  if (adjacency_ == nullptr) {
    owned_adjacency_ = std::make_unique<AdjacencyCache>(graph_);
    adjacency_ = owned_adjacency_.get();
  }
  states_.clear();
  states_.resize(static_cast<size_t>(graph_->num_vertices()));
  // Index the static segment once.
  static_index_.clear();
  for (const auto& slice : store_->static_data().slices) {
    static_index_[slice.vertex].push_back(&slice);
  }
  inbox_.clear();
  next_inbox_.clear();
  peak_layer_bytes_ = 0;
  first_error_ = Status::OK();
  return Status::OK();
}

int LayeredQueryRun::NextLayerStep() const {
  if (done()) return -1;
  return descending_ ? total_steps_ - 1 - processing_step_ : processing_step_;
}

int LayeredQueryRun::LayerStepAfterNext() const {
  if (processing_step_ + 1 >= total_steps_) return -1;
  return descending_ ? total_steps_ - 2 - processing_step_
                     : processing_step_ + 1;
}

void LayeredQueryRun::InsertSlice(Database& db, const LayerSlice& slice) {
  const int pred = rel_to_pred_[static_cast<size_t>(slice.rel)];
  if (pred < 0) return;  // relation not referenced by this query
  Relation& rel = db.Rel(pred);
  for (const Tuple& t : slice.tuples) rel.Insert(t);
}

std::span<const VertexId> LayeredQueryRun::RoutingTargets(
    VertexId v, ShipRouting routing, const LayerView& view) {
  const bool along_messages = routing == ShipRouting::kAlongMessages ||
                              routing == ShipRouting::kAlongReverseMessages;
  if (along_messages) {
    const auto& index = routing == ShipRouting::kAlongMessages
                            ? view.route_out
                            : view.route_in;
    const int rel = routing == ShipRouting::kAlongMessages ? send_rel_
                                                           : receive_rel_;
    if (rel >= 0) {
      auto it = index.find(v);
      if (it == index.end()) return {};
      return it->second;
    }
    // Store lacks message records: conservative static fallback —
    // overshipping is safe (receivers merely hold extra copies),
    // undershipping is not.
    return adjacency_->Get(0, v);
  }
  return adjacency_->Get(routing == ShipRouting::kAlongOutEdges ? 1 : 2, v);
}

Status LayeredQueryRun::Step(const LayerView& view) {
  if (done()) return Status::InvalidArgument("layered run already finished");
  if (view.step != NextLayerStep()) {
    return Status::InvalidArgument("layered run fed layer " +
                                   std::to_string(view.step) + ", expected " +
                                   std::to_string(NextLayerStep()));
  }
  if (!view.Covers(needed_rels_)) {
    return Status::InvalidArgument(
        "layer view does not cover the query's relations");
  }
  const int step = processing_step_;
  peak_layer_bytes_ = std::max(peak_layer_bytes_, view.layer->byte_size);

  // Ships sent during the previous step arrive at this one's barrier.
  inbox_ = std::move(next_inbox_);
  next_inbox_.clear();

  // The BSP engine ran Compute for every vertex each superstep, but a
  // vertex that received nothing and has no new facts returned before
  // evaluating (after step 0). Processing exactly the touched set, in
  // ascending vertex order, reproduces the engine's schedule — including
  // its deterministic ship delivery order (senders merged ascending).
  std::vector<VertexId> active;
  if (step == 0) {
    active.resize(static_cast<size_t>(graph_->num_vertices()));
    for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
      active[static_cast<size_t>(v)] = v;
    }
  } else {
    for (const auto& [v, ships] : inbox_) active.push_back(v);
    for (const auto& [v, slices] : view.by_vertex) {
      // A shared superset view may hold slices of relations this query
      // never reads; they must not count as "touched".
      for (const LayerSlice* slice : slices) {
        if (RelMatters(slice->rel)) {
          active.push_back(v);
          break;
        }
      }
    }
    SortUnique(active);
  }

  for (VertexId v : active) {
    NodeQueryState& st = states_[static_cast<size_t>(v)];
    Database& db = st.EnsureDb(*query_);

    bool touched = false;
    if (auto it = inbox_.find(v); it != inbox_.end()) {
      for (const ShipBundlePtr& ships : it->second) {
        DeliverShips(db, *ships);
        touched = true;
      }
    }
    // Static facts on first activation.
    if (step == 0) {
      auto it = static_index_.find(v);
      if (it != static_index_.end()) {
        for (const LayerSlice* slice : it->second) InsertSlice(db, *slice);
        touched = true;
      }
    }
    // This layer's facts for v.
    if (auto it = view.by_vertex.find(v); it != view.by_vertex.end()) {
      for (const LayerSlice* slice : it->second) {
        if (!RelMatters(slice->rel)) continue;
        InsertSlice(db, *slice);
        touched = true;
      }
    }
    if (!touched && step > 0) continue;  // nothing new for v

    EvalContext ectx;
    ectx.db = &db;
    ectx.graph = graph_;
    ectx.local_vertex = v;
    auto evaluated = evaluator_.Evaluate(ectx);
    if (!evaluated.ok()) {
      if (first_error_.ok()) first_error_ = evaluated.status();
      continue;
    }

    // Route fresh ship deltas per routing class.
    if (query_->shipped_preds().empty()) continue;
    for (ShipRouting routing :
         {ShipRouting::kAlongMessages, ShipRouting::kAlongReverseMessages,
          ShipRouting::kAlongOutEdges, ShipRouting::kAlongInEdges}) {
      ShipBundlePtr bundle =
          CollectShipDeltaForRouting(*query_, st, v, routing);
      if (bundle == nullptr) continue;
      for (VertexId target : RoutingTargets(v, routing, view)) {
        next_inbox_[target].push_back(bundle);
      }
    }
  }

  ++processing_step_;
  return Status::OK();
}

Result<OfflineRun> LayeredQueryRun::Finish(double seconds) {
  if (!done()) {
    return Status::InvalidArgument("layered run has unprocessed layers");
  }
  ARIADNE_RETURN_NOT_OK(first_error_);

  OfflineRun run;
  size_t state_bytes = 0;
  for (const auto& state : states_) {
    if (state.db == nullptr) continue;
    run.result.Merge(*query_, *state.db);
    run.stats.eval.Merge(state.db->eval_stats());
    state_bytes += state.db->TotalBytes();
  }
  run.stats.seconds = seconds;
  run.stats.supersteps = total_steps_;
  run.stats.peak_layer_bytes = peak_layer_bytes_;
  run.stats.materialized_bytes = state_bytes + peak_layer_bytes_;
  run.stats.result_tuples = run.result.TotalTuples();
  return run;
}

}  // namespace ariadne
