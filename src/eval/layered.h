#ifndef ARIADNE_EVAL_LAYERED_H_
#define ARIADNE_EVAL_LAYERED_H_

#include "common/status.h"
#include "engine/types.h"
#include "eval/common.h"
#include "graph/graph.h"
#include "provenance/store.h"

namespace ariadne {

/// Layered offline evaluation (paper §5.1): the query runs as a vertex
/// program over the input graph, materializing one provenance-graph layer
/// per processing step — ascending for forward queries, descending for
/// backward queries — and shipping remote tables along the recorded
/// message edges (or static edges for edge-guarded queries). Memory stays
/// bounded by one layer plus the per-vertex evaluation state, unlike
/// naive evaluation.
///
/// This is the one-shot driver over the resumable LayeredQueryRun
/// (eval/layered_step.h): it builds a private LayerView per step with
/// direction-aware prefetch of the next layer. The serve scheduler drives
/// the same run type but shares each LayerView across concurrent queries.
class LayeredEvaluator {
 public:
  /// `query` must be analyzed offline (transient EDBs disallowed) against
  /// `store->ToStoreSchema()` and pass ValidateMode(kLayered).
  LayeredEvaluator(const Graph* graph, const ProvenanceStore* store,
                   const AnalyzedQuery* query, EngineOptions options = {});

  Result<OfflineRun> Run();

 private:
  const Graph* graph_;
  const ProvenanceStore* store_;
  const AnalyzedQuery* query_;
  EngineOptions options_;
};

}  // namespace ariadne

#endif  // ARIADNE_EVAL_LAYERED_H_
