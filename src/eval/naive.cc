#include "eval/naive.h"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/timer.h"
#include "engine/engine.h"
#include "pql/evaluator.h"

namespace ariadne {

namespace {

struct NaiveShipMessage {
  ShipBundlePtr ships;
};

/// The traditional evaluation strategy (paper §6.2 "Naive"): materialize
/// the ENTIRE provenance graph in the engine at once — every vertex holds
/// all of its layers' facts up front — then run the query vertex program
/// to fixpoint, exchanging remote tables along the recorded message edges
/// without any layer ordering. Memory scales with the whole provenance
/// graph, which is exactly why the paper's Naive "was not able to scale
/// beyond the two smallest datasets".
class NaiveProgram final : public VertexProgram<char, NaiveShipMessage> {
 public:
  NaiveProgram(const Graph* graph, const ProvenanceStore* store,
               const AnalyzedQuery* query)
      : graph_(graph), store_(store), query_(query), evaluator_(query) {
    rel_to_pred_.resize(store_->schema().size(), -1);
    for (size_t r = 0; r < store_->schema().size(); ++r) {
      rel_to_pred_[r] = query_->PredId(store_->schema()[r].name);
    }
    send_rel_ = store_->RelId("send-message");
    receive_rel_ = store_->RelId("receive-message");
  }

  /// Materializes every layer into the per-vertex databases.
  Status Prepare() {
    states_.clear();
    states_.resize(static_cast<size_t>(graph_->num_vertices()));
    // Adjacency fallback caches are filled lazily, each slot only by its
    // own vertex's Compute, so sizing them here keeps the fill race-free.
    adj_cache_.assign(3, std::vector<std::vector<VertexId>>(
                             static_cast<size_t>(graph_->num_vertices())));
    adj_filled_.assign(3, std::vector<uint8_t>(
                              static_cast<size_t>(graph_->num_vertices()), 0));
    auto load = [&](const Layer& layer) {
      for (const auto& slice : layer.slices) {
        // Routing indexes follow the recorded message edges even when the
        // query itself does not read send/receive-message.
        if (slice.rel == send_rel_) {
          auto& targets = route_out_[slice.vertex];
          for (const Tuple& t : slice.tuples) {
            if (t.size() > 1 && t[1].is_int()) targets.push_back(t[1].AsInt());
          }
        } else if (slice.rel == receive_rel_) {
          auto& sources = route_in_[slice.vertex];
          for (const Tuple& t : slice.tuples) {
            if (t.size() > 1 && t[1].is_int()) sources.push_back(t[1].AsInt());
          }
        }
        const int pred = rel_to_pred_[static_cast<size_t>(slice.rel)];
        if (pred < 0) continue;
        NodeQueryState& st = states_[static_cast<size_t>(slice.vertex)];
        Relation& rel = st.EnsureDb(*query_).Rel(pred);
        for (const Tuple& t : slice.tuples) rel.Insert(t);
      }
    };
    load(store_->static_data());
    for (int step = 0; step < store_->num_layers(); ++step) {
      // GetLayerRelations (not GetLayer) keeps the store const: the
      // returned shared_ptr owns the decoded layer until `load` copied
      // its tuples out, without touching the store's loaded-layer slot.
      ARIADNE_ASSIGN_OR_RETURN(std::shared_ptr<const Layer> layer,
                               store_->GetLayerRelations(step, {}));
      load(*layer);
    }
    for (auto* index : {&route_out_, &route_in_}) {
      for (auto& [vertex, targets] : *index) SortUnique(targets);
    }
    return Status::OK();
  }

  char InitialValue(VertexId, const Graph&) const override { return 0; }

  void RegisterAggregators(AggregatorRegistry& registry) override {
    registry.Register("naive.progress", AggregateOp::kSum);
  }

  void Compute(VertexContext<char, NaiveShipMessage>& ctx,
               std::span<const NaiveShipMessage> messages) override {
    const VertexId v = ctx.id();
    NodeQueryState& st = states_[static_cast<size_t>(v)];
    Database& db = st.EnsureDb(*query_);
    for (const auto& m : messages) {
      if (m.ships != nullptr) DeliverShips(db, *m.ships);
    }

    EvalContext ectx;
    ectx.db = &db;
    ectx.graph = graph_;
    ectx.local_vertex = v;
    // Strata are synchronized globally: negation may only read lower
    // strata once they are complete everywhere.
    ectx.max_stratum = current_stratum_;
    auto evaluated = evaluator_.Evaluate(ectx);
    if (!evaluated.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = evaluated.status();
      return;
    }
    bool progress = *evaluated;

    // Ship fresh deltas along all recorded message edges (no layer
    // ordering); the master advances the stratum after a quiet round.
    for (ShipRouting routing :
         {ShipRouting::kAlongMessages, ShipRouting::kAlongReverseMessages,
          ShipRouting::kAlongOutEdges, ShipRouting::kAlongInEdges}) {
      ShipBundlePtr bundle =
          CollectShipDeltaForRouting(*query_, st, v, routing);
      if (bundle == nullptr) continue;
      progress = true;
      for (VertexId target : RoutingTargets(v, routing)) {
        ctx.SendMessage(target, NaiveShipMessage{bundle});
      }
    }
    if (progress) ctx.AggregateDouble("naive.progress", 1.0);
    // Never vote to halt: every vertex stays active every round until the
    // master ends the run — the cost profile that makes Naive "naive".
  }

  void MasterCompute(MasterContext& master) override {
    if (master.aggregators->Get("naive.progress") == 0.0) {
      ++current_stratum_;
      if (current_stratum_ >= query_->num_strata()) master.halt = true;
    }
  }

  QueryResult CollectResult() const {
    QueryResult result;
    for (const auto& state : states_) {
      if (state.db != nullptr) result.Merge(*query_, *state.db);
    }
    return result;
  }

  size_t StateBytes() const {
    size_t bytes = 0;
    for (const auto& state : states_) {
      if (state.db != nullptr) bytes += state.db->TotalBytes();
    }
    return bytes;
  }

  EvalStats CollectEvalStats() const {
    EvalStats merged;
    for (const auto& state : states_) {
      if (state.db != nullptr) merged.Merge(state.db->eval_stats());
    }
    return merged;
  }

  const Status& status() const { return first_error_; }

 private:
  static void SortUnique(std::vector<VertexId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }

  /// Lazily materializes the sorted-unique adjacency list for `v` in
  /// cache plane `plane` (0 = both directions, 1 = out, 2 = in). Each
  /// slot is written only by its own vertex's Compute, never shared.
  std::span<const VertexId> CachedAdjacency(int plane, VertexId v) {
    std::vector<VertexId>& slot =
        adj_cache_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
    uint8_t& filled =
        adj_filled_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
    if (!filled) {
      // Hint the paged graph backend: naive eval fills adjacency in
      // ascending vertex order, so boundary crossings prefetch the next
      // partition (no-op for the in-memory backend).
      graph_->AdviseSequentialScan(v);
      if (plane != 2) {
        auto nbrs = graph_->OutNeighbors(v);
        slot.insert(slot.end(), nbrs.begin(), nbrs.end());
      }
      if (plane != 1) {
        auto nbrs = graph_->InNeighbors(v);
        slot.insert(slot.end(), nbrs.begin(), nbrs.end());
      }
      SortUnique(slot);
      filled = 1;
    }
    return slot;
  }

  /// All distinct peers over every superstep (the naive mode holds the
  /// whole unfolded graph, so ships fan out along all recorded edges).
  /// Falls back to static adjacency in both directions when the store did
  /// not capture message records (overshipping is safe). Route maps are
  /// built once in Prepare and never mutated, so spans stay valid.
  std::span<const VertexId> RoutingTargets(VertexId v, ShipRouting routing) {
    const bool along_messages = routing == ShipRouting::kAlongMessages ||
                                routing == ShipRouting::kAlongReverseMessages;
    if (along_messages) {
      const auto& index = routing == ShipRouting::kAlongMessages
                              ? route_out_
                              : route_in_;
      const int rel = routing == ShipRouting::kAlongMessages ? send_rel_
                                                             : receive_rel_;
      if (rel >= 0) {
        auto it = index.find(v);
        if (it == index.end()) return {};
        return it->second;
      }
      return CachedAdjacency(0, v);
    }
    return CachedAdjacency(routing == ShipRouting::kAlongOutEdges ? 1 : 2, v);
  }

  const Graph* graph_;
  const ProvenanceStore* store_;
  const AnalyzedQuery* query_;
  RuleEvaluator evaluator_;
  std::vector<int> rel_to_pred_;
  int send_rel_ = -1, receive_rel_ = -1;
  int current_stratum_ = 0;
  std::unordered_map<VertexId, std::vector<VertexId>> route_out_;
  std::unordered_map<VertexId, std::vector<VertexId>> route_in_;
  /// Lazy sorted-unique static-adjacency fallbacks, one plane per
  /// direction class (both / out / in), one slot per vertex.
  std::vector<std::vector<std::vector<VertexId>>> adj_cache_;
  std::vector<std::vector<uint8_t>> adj_filled_;
  std::vector<NodeQueryState> states_;
  std::mutex mu_;
  Status first_error_;
};

}  // namespace

Result<OfflineRun> NaiveEvaluator::Run() {
  ARIADNE_RETURN_NOT_OK(ValidateMode(*query_, EvalMode::kNaive));
  // Same refusal as layered eval: a degraded capture must never silently
  // answer a full-history query (DESIGN.md §2.4).
  ARIADNE_RETURN_NOT_OK(CheckDegradedCapture(*query_, *store_));
  if (store_->num_layers() == 0) {
    return Status::InvalidArgument("provenance store has no layers");
  }
  WallTimer timer;
  NaiveProgram program(graph_, store_, query_);
  ARIADNE_RETURN_NOT_OK(program.Prepare());
  const size_t loaded_bytes = program.StateBytes();

  EngineOptions engine_options;
  // Each stratum needs at most one round per layer plus a quiet round;
  // undirected queries may bounce ships both ways, hence the factor.
  engine_options.max_supersteps =
      query_->num_strata() * (2 * store_->num_layers() + 4);
  Engine<char, NaiveShipMessage> engine(graph_, engine_options);
  ARIADNE_ASSIGN_OR_RETURN(RunStats stats, engine.Run(program));
  ARIADNE_RETURN_NOT_OK(program.status());

  OfflineRun run;
  run.result = program.CollectResult();
  run.stats.seconds = timer.ElapsedSeconds();
  run.stats.supersteps = stats.supersteps;
  run.stats.peak_layer_bytes = loaded_bytes;
  run.stats.materialized_bytes = program.StateBytes();
  run.stats.result_tuples = run.result.TotalTuples();
  run.stats.eval = program.CollectEvalStats();
  return run;
}

}  // namespace ariadne
