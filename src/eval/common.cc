#include "eval/common.h"

#include <algorithm>

#include "provenance/store.h"

namespace ariadne {

const char* CaptureDegradePolicyToString(CaptureDegradePolicy policy) {
  switch (policy) {
    case CaptureDegradePolicy::kFail:
      return "fail";
    case CaptureDegradePolicy::kCaptureOff:
      return "capture-off";
    case CaptureDegradePolicy::kForwardLineage:
      return "forward-lineage";
  }
  return "?";
}

Status CheckDegradedCapture(const AnalyzedQuery& query,
                            const ProvenanceStore& store) {
  if (!store.degraded()) return Status::OK();
  const std::vector<int>& surviving = store.surviving_relations();
  for (size_t r = 0; r < store.schema().size(); ++r) {
    if (query.PredId(store.schema()[r].name) < 0) continue;  // not read
    if (std::find(surviving.begin(), surviving.end(), static_cast<int>(r)) !=
        surviving.end()) {
      continue;
    }
    return Status::Unsupported(
        "cannot evaluate over a degraded capture: relation '" +
        store.schema()[r].name + "' stopped being captured at superstep " +
        std::to_string(store.degraded_at()) +
        (store.degraded_reason().empty()
             ? std::string()
             : " (" + store.degraded_reason() + ")") +
        "; re-run capture or restrict the query to surviving relations");
  }
  return Status::OK();
}

void DeliverShips(Database& db, const ShipBundle& bundle) {
  for (const auto& [pred, tuples] : bundle) {
    Relation& rel = db.Rel(pred);
    for (const Tuple& t : tuples) rel.Insert(t);
  }
}

namespace {

ShipBundlePtr CollectImpl(const AnalyzedQuery& query, NodeQueryState& state,
                          VertexId self, const ShipRouting* routing_filter) {
  const auto& shipped = query.shipped_preds();
  if (shipped.empty() || state.db == nullptr) return nullptr;
  const Value self_loc(static_cast<int64_t>(self));
  ShipBundle bundle;
  for (size_t k = 0; k < shipped.size(); ++k) {
    const int pred = shipped[k];
    if (routing_filter != nullptr &&
        query.pred(pred).routing != *routing_filter) {
      continue;
    }
    const Relation* rel = state.db->RelIfExists(pred);
    const size_t size = rel == nullptr ? 0 : rel->size();
    size_t& watermark = state.ship_watermarks[k];
    if (size > watermark) {
      std::vector<Tuple> tuples;
      tuples.reserve(size - watermark);
      for (size_t i = watermark; i < size; ++i) {
        const Relation::RowView row = rel->row_view(i);
        if (row.size() > 0 && row.Equals(0, self_loc)) {
          tuples.push_back(row.ToTuple());
        }
      }
      watermark = size;
      if (!tuples.empty()) bundle.emplace_back(pred, std::move(tuples));
    }
  }
  if (bundle.empty()) return nullptr;
  return std::make_shared<const ShipBundle>(std::move(bundle));
}

}  // namespace

ShipBundlePtr CollectShipDelta(const AnalyzedQuery& query,
                               NodeQueryState& state, VertexId self) {
  return CollectImpl(query, state, self, nullptr);
}

ShipBundlePtr CollectShipDeltaForRouting(const AnalyzedQuery& query,
                                         NodeQueryState& state, VertexId self,
                                         ShipRouting routing) {
  return CollectImpl(query, state, self, &routing);
}

void ApplyRetention(const AnalyzedQuery& query, Database& db,
                    Superstep current, int window) {
  if (window <= 0) return;
  const Superstep cutoff = current - window;
  if (cutoff < 0) return;
  for (int p = 0; p < query.num_preds(); ++p) {
    const PredicateInfo& info = query.pred(p);
    if (info.is_idb() || IsStaticEdb(info.edb) || IsTransientEdb(info.edb)) {
      continue;
    }
    const auto step_col = EdbStepColumn(info.edb);
    if (!step_col.has_value()) continue;
    Relation* rel = db.MutableRelIfExists(p);
    if (rel == nullptr || rel->empty()) continue;
    const int col = *step_col;
    rel->RemoveIf([col, cutoff](const Tuple& t) {
      const Value& v = t[static_cast<size_t>(col)];
      return v.is_int() && v.AsInt() < cutoff;
    });
  }
}

const char* EvalModeToString(EvalMode mode) {
  switch (mode) {
    case EvalMode::kOnline:
      return "online";
    case EvalMode::kLayered:
      return "layered";
    case EvalMode::kNaive:
      return "naive";
  }
  return "?";
}

Status ValidateMode(const AnalyzedQuery& query, EvalMode mode) {
  switch (mode) {
    case EvalMode::kOnline:
      if (!query.vc_compatible() ||
          (query.direction() != Direction::kForward &&
           query.direction() != Direction::kLocal)) {
        return Status::InvalidArgument(
            "online evaluation requires a forward (or local) VC-compatible "
            "query; this query is " +
            std::string(DirectionToString(query.direction())));
      }
      return Status::OK();
    case EvalMode::kLayered:
      if (!query.vc_compatible() ||
          query.direction() == Direction::kUndirected) {
        return Status::InvalidArgument(
            "layered evaluation requires a directed VC-compatible query; "
            "this query is " +
            std::string(DirectionToString(query.direction())));
      }
      return Status::OK();
    case EvalMode::kNaive:
      return Status::OK();
  }
  return Status::Internal("unknown mode");
}

}  // namespace ariadne
