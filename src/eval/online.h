#ifndef ARIADNE_EVAL_ONLINE_H_
#define ARIADNE_EVAL_ONLINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analytics/value_traits.h"
#include "common/logging.h"
#include "engine/vertex_program.h"
#include "eval/common.h"
#include "provenance/store.h"
#include "recovery/checkpoint.h"
#include "storage/page.h"

namespace ariadne {

/// Envelope around an analytic's message during online/capture runs:
/// the sender id (needed by the receive-message provenance relation) and
/// an optional bundle of query tables riding along (paper §5.2).
template <typename M>
struct OnlineMessage {
  VertexId src = 0;
  M payload{};
  ShipBundlePtr ships;  ///< shared by all messages of one scatter
};

namespace recovery {

/// Checkpoint serialization of in-flight online messages, so capture runs
/// are engine-checkpointable. Ships serialize by content; on restore each
/// message owns its own bundle (sharing is a memory optimization, not a
/// semantic property). In the checkpoint-supported fast-capture path
/// ships are always null anyway.
template <typename M>
  requires Checkpointable<M>
struct CheckpointTraits<OnlineMessage<M>> {
  static void Write(BinaryWriter& w, const OnlineMessage<M>& m) {
    w.WriteI64(m.src);
    CheckpointTraits<M>::Write(w, m.payload);
    const ShipBundle* ships = m.ships.get();
    w.WriteU64(ships == nullptr ? 0 : ships->size());
    if (ships == nullptr) return;
    for (const auto& [pred, tuples] : *ships) {
      w.WriteI64(pred);
      w.WriteU64(tuples.size());
      for (const Tuple& t : tuples) {
        w.WriteU64(t.size());
        for (const Value& value : t) w.WriteValue(value);
      }
    }
  }

  static Result<OnlineMessage<M>> Read(BinaryReader& r) {
    OnlineMessage<M> m;
    ARIADNE_ASSIGN_OR_RETURN(int64_t src, r.ReadI64());
    m.src = static_cast<VertexId>(src);
    ARIADNE_ASSIGN_OR_RETURN(m.payload, CheckpointTraits<M>::Read(r));
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_rels, r.ReadU64());
    if (n_rels == 0) return m;
    if (n_rels > r.remaining() / 16) {
      return Status::ParseError("ship bundle relation count " +
                                std::to_string(n_rels) +
                                " exceeds remaining checkpoint bytes");
    }
    ShipBundle bundle;
    bundle.reserve(n_rels);
    for (uint64_t k = 0; k < n_rels; ++k) {
      ARIADNE_ASSIGN_OR_RETURN(int64_t pred, r.ReadI64());
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n_tuples, r.ReadU64());
      if (n_tuples > r.remaining() / 8) {
        return Status::ParseError("ship bundle tuple count " +
                                  std::to_string(n_tuples) +
                                  " exceeds remaining checkpoint bytes");
      }
      std::vector<Tuple> tuples;
      tuples.reserve(n_tuples);
      for (uint64_t i = 0; i < n_tuples; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(uint64_t arity, r.ReadU64());
        if (arity > r.remaining()) {
          return Status::ParseError(
              "ship tuple arity " + std::to_string(arity) +
              " exceeds remaining checkpoint bytes");
        }
        Tuple t;
        t.reserve(arity);
        for (uint64_t c = 0; c < arity; ++c) {
          ARIADNE_ASSIGN_OR_RETURN(Value value, r.ReadValue());
          t.push_back(std::move(value));
        }
        tuples.push_back(std::move(t));
      }
      bundle.emplace_back(static_cast<int>(pred), std::move(tuples));
    }
    m.ships = std::make_shared<const ShipBundle>(std::move(bundle));
    return m;
  }
};

}  // namespace recovery

struct OnlineOptions {
  /// Persist derived relations (plus the superstep/evolution skeleton)
  /// into `store`, layer by layer — this is capture mode (paper Fig 1a).
  /// With a null store the run is pure online querying (paper Fig 2).
  ProvenanceStore* store = nullptr;
  /// EDB history window in supersteps (0 = keep everything). Safe for
  /// queries that only join the previous activation (evolution / i-1).
  int retention_window = 0;
  /// Disable the compiled projection fast path for capture queries and
  /// interpret them like any other query (ablation / fair comparisons).
  bool disable_fast_capture = false;
  /// What to do when the store reports an unrecoverable append/spill
  /// failure mid-run (DESIGN.md §2.4). Anything but kFail keeps the
  /// analytic alive and degrades the capture instead.
  CaptureDegradePolicy degrade_policy = CaptureDegradePolicy::kFail;
};

/// Wraps an unmodified analytic `P` and evaluates a forward PQL query in
/// lockstep with it (paper §5.2, Theorem 5.4). The wrapper is itself an
/// ordinary vertex program: the engine is untouched, the analytic is
/// untouched, and query tables ride on the analytic's own messages.
///
/// The same wrapper implements declarative capture (paper Fig 1a): with a
/// ProvenanceStore attached, the query's derived tuples are persisted per
/// layer. Projection-only capture queries (paper Queries 2 and 11) take a
/// compiled fast path that bypasses Datalog evaluation entirely.
template <typename P>
class OnlineProgram final
    : public VertexProgram<typename P::ValueType,
                           OnlineMessage<typename P::MessageType>> {
 public:
  using V = typename P::ValueType;
  using M = typename P::MessageType;
  using WrappedMessage = OnlineMessage<M>;

  /// All pointers must outlive the program. `query` must be analyzed with
  /// transient EDBs allowed and must pass ValidateMode for kOnline.
  OnlineProgram(P* analytic, const AnalyzedQuery* query, const Graph* graph,
                OnlineOptions options = {})
      : analytic_(analytic),
        query_(query),
        graph_(graph),
        options_(options),
        evaluator_(query) {
    value_pred_ = query_->PredId("value");
    vertex_value_now_pred_ = query_->PredId("vertex-value");
    superstep_pred_ = query_->PredId("superstep");
    evolution_pred_ = query_->PredId("evolution");
    send_pred_ = query_->PredId("send-message");
    send_now_pred_ = query_->PredId("send");
    receive_pred_ = query_->PredId("receive-message");
    receive_now_pred_ = query_->PredId("receive");
    if (options_.store != nullptr) {
      for (int pred : query_->output_preds()) {
        capture_rels_.push_back(options_.store->AddRelation(
            query_->pred(pred).name, query_->pred(pred).arity));
      }
      skeleton_superstep_rel_ = options_.store->AddRelation("superstep", 2);
      skeleton_evolution_rel_ = options_.store->AddRelation("evolution", 3);
    }
  }

  // ---- VertexProgram interface (transparent delegation) ----

  V InitialValue(VertexId id, const Graph& graph) const override {
    return analytic_->InitialValue(id, graph);
  }

  void RegisterAggregators(AggregatorRegistry& registry) override {
    analytic_->RegisterAggregators(registry);
    // Run start: reset wrapper state.
    states_.clear();
    states_.resize(static_cast<size_t>(graph_->num_vertices()));
    last_active_.assign(static_cast<size_t>(graph_->num_vertices()), -1);
    current_layer_ = Layer{};
    first_error_ = Status::OK();
    capture_degraded_ = false;
    capture_degraded_at_ = -1;
    capture_off_ = false;
    forward_lineage_only_ = false;
    checkpointed_layers_ = 0;
    segments_valid_bytes_ = 0;
    if (options_.store != nullptr) ProjectStaticCapture();
  }

  void MasterCompute(MasterContext& master) override {
    analytic_->MasterCompute(master);
    if (options_.store != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      Layer sealed = std::move(current_layer_);
      sealed.step = master.superstep;
      current_layer_ = Layer{};
      // Slices arrive in worker-scheduling order under multi-threaded
      // capture; canonicalize so the sealed layer (and everything
      // serialized from it) is identical for any engine thread count. The
      // slices themselves are already deterministic because the engine
      // guarantees serial-order message delivery (DESIGN.md §2).
      sealed.Canonicalize();
      if (capture_off_) return;  // degraded, policy = capture-off
      if (forward_lineage_only_) StripToSkeletonLocked(&sealed);
      Status s = options_.store->AppendLayer(std::move(sealed));
      if (s.ok() && !capture_degraded_) {
        // Append succeeds while the write-behind flusher still has
        // allowance, so also poll the sticky flush error here: the
        // barrier is where the degrade ladder can act on it.
        s = options_.store->storage_flush_error();
      }
      if (!s.ok()) HandleAppendFailureLocked(master.superstep, s);
    }
  }

  void Compute(VertexContext<V, WrappedMessage>& ctx,
               std::span<const WrappedMessage> messages) override {
    const VertexId v = ctx.id();
    const Superstep step = ctx.superstep();

    // 1. Run the analytic against an adapter that buffers its sends.
    Adapter adapter(&ctx);
    std::vector<M> payloads;
    payloads.reserve(messages.size());
    for (const auto& m : messages) payloads.push_back(m.payload);
    analytic_->Compute(adapter, payloads);

    // 2. Evaluate the query over the transient provenance of this step.
    ShipBundlePtr outgoing_ships;
    if (query_->fast_capture().has_value() && options_.store != nullptr &&
        !options_.disable_fast_capture) {
      FastCapture(ctx, adapter, messages);
    } else {
      outgoing_ships = GenericEvaluate(ctx, adapter, messages);
    }
    last_active_[static_cast<size_t>(v)] = step;

    // 3. Release the analytic's messages, with query tables attached.
    //    Ships only ride analytic messages (Theorem 5.4 part ii).
    for (auto& [target, payload] : adapter.sends) {
      ctx.SendMessage(target,
                      WrappedMessage{v, std::move(payload), outgoing_ships});
    }
    if (adapter.voted_halt) ctx.VoteToHalt();
  }

  // ---- Results ----

  /// Union of the query's derived tables across all vertices.
  QueryResult CollectResult() const {
    QueryResult result;
    for (const auto& state : states_) {
      if (state.db != nullptr) result.Merge(*query_, *state.db);
    }
    return result;
  }

  /// Per-rule evaluator counters, merged across all vertices.
  EvalStats CollectEvalStats() const {
    EvalStats merged;
    for (const auto& state : states_) {
      if (state.db != nullptr) merged.Merge(state.db->eval_stats());
    }
    return merged;
  }

  /// First evaluation error encountered (OK when the run was clean).
  const Status& status() const { return first_error_; }

  /// True when a storage failure downgraded the capture mid-run (the
  /// analytic itself completed exactly; only the store is partial).
  bool capture_degraded() const { return capture_degraded_; }
  Superstep capture_degraded_at() const { return capture_degraded_at_; }

  /// Bytes held by per-vertex query databases (transient provenance).
  size_t TransientBytes() const {
    size_t bytes = 0;
    for (const auto& state : states_) {
      if (state.db != nullptr) bytes += state.db->TotalBytes();
    }
    return bytes;
  }

  // ---- Checkpoint hooks (engine barrier; no worker concurrency) ----

  /// Only capture runs on the compiled fast path checkpoint: the generic
  /// path keeps per-vertex Datalog databases with no serialization.
  bool checkpoint_supported(std::string* why) const override {
    if (!analytic_->checkpoint_supported(why)) return false;
    if (options_.store == nullptr) {
      if (why != nullptr) {
        *why = "online query evaluation keeps per-vertex Datalog state "
               "that does not serialize; checkpointing supports capture "
               "runs only";
      }
      return false;
    }
    if (!query_->fast_capture().has_value() || options_.disable_fast_capture) {
      if (why != nullptr) {
        *why = "capture via the generic evaluation path keeps per-vertex "
               "Datalog state; only projection-only (fast-capture) queries "
               "support checkpointing";
      }
      return false;
    }
    return true;
  }

  /// Body layout: analytic state, last-active vector, degradation
  /// flags (+ reason and surviving relations when degraded), the store
  /// schema, then a watermark into the segments sidecar. The layers
  /// themselves go to the sidecar incrementally — only layers sealed
  /// since the previous checkpoint are encoded, so per-checkpoint cost
  /// is O(new layers), not O(whole store). The static layer is not
  /// checkpointed: RegisterAggregators re-projects it deterministically
  /// on resume.
  Status SaveCheckpointState(BinaryWriter& w,
                             const CheckpointIo& io) override {
    ARIADNE_RETURN_NOT_OK(analytic_->SaveCheckpointState(w, io));
    w.WriteU64(last_active_.size());
    for (Superstep s : last_active_) w.WriteI64(s);
    w.WriteU8(capture_degraded_ ? 1 : 0);
    w.WriteI64(capture_degraded_at_);
    if (capture_degraded_) {
      w.WriteString(options_.store->degraded_reason());
      const std::vector<int>& surviving =
          options_.store->surviving_relations();
      w.WriteU64(surviving.size());
      for (int rel : surviving) w.WriteI64(rel);
    }
    const auto& schema = options_.store->schema();
    w.WriteU64(schema.size());
    for (const auto& rel : schema) {
      w.WriteString(rel.name);
      w.WriteU32(static_cast<uint32_t>(rel.arity));
    }
    const int n_layers = options_.store->num_layers();
    if (n_layers > checkpointed_layers_) {
      BinaryWriter segment;
      segment.WriteU64(static_cast<uint64_t>(n_layers - checkpointed_layers_));
      for (int step = checkpointed_layers_; step < n_layers; ++step) {
        auto layer = options_.store->GetLayer(step);
        if (!layer.ok()) {
          return layer.status().WithContext("checkpointing layer " +
                                            std::to_string(step));
        }
        // Same per-layer encoding as the APV2 image (default page size),
        // so resumed stores re-serialize byte-identically.
        const std::vector<storage::Page> pages =
            storage::EncodeLayer(**layer, storage::kDefaultPageSize);
        std::string blob;
        for (const storage::Page& page : pages) {
          storage::SerializePage(page, &blob);
        }
        segment.WriteI64((*layer)->step);
        segment.WriteU64(pages.size());
        segment.WriteString(blob);
      }
      ARIADNE_ASSIGN_OR_RETURN(
          segments_valid_bytes_,
          recovery::AppendSegmentFile(recovery::SegmentsPath(io.dir),
                                      segments_valid_bytes_,
                                      segment.data()));
      checkpointed_layers_ = n_layers;
    }
    w.WriteI64(checkpointed_layers_);
    w.WriteU64(segments_valid_bytes_);
    return Status::OK();
  }

  Status LoadCheckpointState(BinaryReader& r,
                             const CheckpointIo& io) override {
    ARIADNE_RETURN_NOT_OK(analytic_->LoadCheckpointState(r, io));
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
    if (n != last_active_.size()) {
      return Status::ParseError(
          "checkpointed last-active vector covers " + std::to_string(n) +
          " vertices, graph has " + std::to_string(last_active_.size()));
    }
    for (size_t i = 0; i < last_active_.size(); ++i) {
      ARIADNE_ASSIGN_OR_RETURN(int64_t s, r.ReadI64());
      last_active_[i] = static_cast<Superstep>(s);
    }
    ARIADNE_ASSIGN_OR_RETURN(uint8_t degraded, r.ReadU8());
    ARIADNE_ASSIGN_OR_RETURN(int64_t degraded_at, r.ReadI64());
    std::string degraded_reason;
    std::vector<int> surviving;
    if (degraded != 0) {
      ARIADNE_ASSIGN_OR_RETURN(degraded_reason, r.ReadString());
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n_surviving, r.ReadU64());
      if (n_surviving > r.remaining() / 8) {
        return Status::ParseError(
            "surviving-relation count " + std::to_string(n_surviving) +
            " exceeds remaining checkpoint bytes");
      }
      for (uint64_t i = 0; i < n_surviving; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(int64_t rel, r.ReadI64());
        surviving.push_back(static_cast<int>(rel));
      }
    }
    // The ctor already registered this run's schema in the live store;
    // a mismatch means the checkpoint belongs to a different query.
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_rels, r.ReadU64());
    if (n_rels != options_.store->schema().size()) {
      return Status::ParseError(
          "checkpointed store schema has " + std::to_string(n_rels) +
          " relations, expected " +
          std::to_string(options_.store->schema().size()));
    }
    for (uint64_t i = 0; i < n_rels; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      ARIADNE_ASSIGN_OR_RETURN(uint32_t arity, r.ReadU32());
      const auto& live = options_.store->schema()[i];
      if (name != live.name || static_cast<int>(arity) != live.arity) {
        return Status::ParseError(
            "checkpointed store relation " + std::to_string(i) + " is '" +
            name + "/" + std::to_string(arity) + "', expected '" + live.name +
            "/" + std::to_string(live.arity) + "'");
      }
    }
    ARIADNE_ASSIGN_OR_RETURN(int64_t n_ckpt_layers, r.ReadI64());
    ARIADNE_ASSIGN_OR_RETURN(uint64_t valid_bytes, r.ReadU64());
    if (options_.store->num_layers() != 0) {
      return Status::InvalidArgument(
          "resume requires an empty provenance store (it already holds " +
          std::to_string(options_.store->num_layers()) + " layer(s))");
    }
    // Re-applying degradation before the appends keeps the replay
    // resident-only, exactly like the degraded original.
    capture_degraded_ = degraded != 0;
    capture_degraded_at_ = static_cast<Superstep>(degraded_at);
    capture_off_ = capture_degraded_ &&
                   options_.degrade_policy == CaptureDegradePolicy::kCaptureOff;
    forward_lineage_only_ =
        capture_degraded_ &&
        options_.degrade_policy == CaptureDegradePolicy::kForwardLineage;
    if (capture_degraded_) {
      options_.store->EnterStorageDegradedMode();
      options_.store->MarkDegraded(capture_degraded_at_, std::move(surviving),
                                   std::move(degraded_reason));
    }
    const std::string segments_path = recovery::SegmentsPath(io.dir);
    ARIADNE_ASSIGN_OR_RETURN(
        std::vector<std::string> segments,
        recovery::ReadSegmentsFile(segments_path, valid_bytes));
    int64_t appended = 0;
    for (size_t seg = 0; seg < segments.size(); ++seg) {
      BinaryReader sr(std::move(segments[seg]));
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n_seg_layers, sr.ReadU64());
      // A layer costs >= 24 bytes (step + page count + blob length).
      if (n_seg_layers > sr.remaining() / 24) {
        return Status::ParseError(
            "layer count " + std::to_string(n_seg_layers) +
            " exceeds segment " + std::to_string(seg) + " of " +
            segments_path);
      }
      for (uint64_t i = 0; i < n_seg_layers; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(int64_t step, sr.ReadI64());
        ARIADNE_ASSIGN_OR_RETURN(uint64_t n_pages, sr.ReadU64());
        ARIADNE_ASSIGN_OR_RETURN(std::string blob, sr.ReadString());
        if (n_pages > blob.size() / storage::kPageWireHeaderBytes) {
          return Status::ParseError(
              "page count " + std::to_string(n_pages) +
              " exceeds layer blob in segment " + std::to_string(seg) +
              " of " + segments_path);
        }
        Layer layer;
        layer.step = static_cast<Superstep>(step);
        size_t offset = 0;
        for (uint64_t p = 0; p < n_pages; ++p) {
          auto page = storage::ParsePage(blob, &offset);
          if (!page.ok()) {
            return page.status().WithContext(segments_path + " (segment " +
                                             std::to_string(seg) + ")");
          }
          Status decoded = storage::DecodePage(*page, &layer);
          if (!decoded.ok()) {
            return decoded.WithContext(segments_path + " (segment " +
                                       std::to_string(seg) + ", page " +
                                       std::to_string(p) + ")");
          }
        }
        if (layer.step != appended) {
          return Status::ParseError(
              "segment " + std::to_string(seg) + " of " + segments_path +
              " holds layer for superstep " + std::to_string(layer.step) +
              ", expected " + std::to_string(appended));
        }
        ARIADNE_RETURN_NOT_OK(options_.store->AppendLayer(std::move(layer)));
        ++appended;
      }
    }
    if (appended != n_ckpt_layers) {
      return Status::ParseError(
          "checkpoint references " + std::to_string(n_ckpt_layers) +
          " layer(s) but " + segments_path + " holds " +
          std::to_string(appended));
    }
    checkpointed_layers_ = static_cast<int>(appended);
    segments_valid_bytes_ = valid_bytes;
    return Status::OK();
  }

 private:
  /// Presents the plain VertexContext<V, M> face to the analytic while
  /// buffering its sends for ship attachment.
  class Adapter final : public VertexContext<V, M> {
   public:
    explicit Adapter(VertexContext<V, WrappedMessage>* real) : real_(real) {}

    VertexId id() const override { return real_->id(); }
    Superstep superstep() const override { return real_->superstep(); }
    const Graph& graph() const override { return real_->graph(); }
    const V& value() const override { return real_->value(); }
    void SetValue(V value) override { real_->SetValue(std::move(value)); }
    void SendMessage(VertexId target, M message) override {
      sends.emplace_back(target, std::move(message));
    }
    void VoteToHalt() override { voted_halt = true; }
    void AggregateDouble(const std::string& name, double v) override {
      real_->AggregateDouble(name, v);
    }
    double GetAggregate(const std::string& name) const override {
      return real_->GetAggregate(name);
    }

    std::vector<std::pair<VertexId, M>> sends;
    bool voted_halt = false;

   private:
    VertexContext<V, WrappedMessage>* real_;
  };

  NodeQueryState& state(VertexId v) {
    return states_[static_cast<size_t>(v)];
  }

  /// Generic path: materialize this step's EDB facts, deliver arrived
  /// ships, run the stratified evaluator, collect ship deltas, persist
  /// capture deltas.
  ShipBundlePtr GenericEvaluate(VertexContext<V, WrappedMessage>& ctx,
                                Adapter& adapter,
                                std::span<const WrappedMessage> messages) {
    const VertexId v = ctx.id();
    const Superstep step = ctx.superstep();
    NodeQueryState& st = state(v);
    Database& db = st.EnsureDb(*query_);
    const Value loc(static_cast<int64_t>(v));
    const Value step_v(static_cast<int64_t>(step));

    // Transient views describe only the current superstep. The superstep
    // relation is also current-activation-only during online evaluation:
    // past activations are reachable via evolution and the step columns
    // of value/send-message/receive-message (see catalog.h).
    for (int pred : {vertex_value_now_pred_, send_now_pred_, receive_now_pred_,
                     superstep_pred_}) {
      if (pred < 0) continue;
      Relation* rel = db.MutableRelIfExists(pred);
      if (rel != nullptr && !rel->empty()) rel->Clear();
    }

    // Arrived ships + receive facts.
    for (const auto& m : messages) {
      if (m.ships != nullptr) DeliverShips(db, *m.ships);
      if (receive_pred_ >= 0 || receive_now_pred_ >= 0) {
        Value payload = ValueTraits<M>::ToValue(m.payload);
        if (receive_pred_ >= 0) {
          db.Rel(receive_pred_)
              .Insert({loc, Value(static_cast<int64_t>(m.src)), payload,
                       step_v});
        }
        if (receive_now_pred_ >= 0) {
          db.Rel(receive_now_pred_)
              .Insert({loc, Value(static_cast<int64_t>(m.src)),
                       std::move(payload)});
        }
      }
    }

    // Post-compute vertex state.
    if (value_pred_ >= 0) {
      db.Rel(value_pred_)
          .Insert({loc, ValueTraits<V>::ToValue(ctx.value()), step_v});
    }
    if (vertex_value_now_pred_ >= 0) {
      db.Rel(vertex_value_now_pred_)
          .Insert({loc, ValueTraits<V>::ToValue(ctx.value())});
    }
    if (superstep_pred_ >= 0) {
      db.Rel(superstep_pred_).Insert({loc, step_v});
    }
    const Superstep prev = last_active_[static_cast<size_t>(v)];
    if (evolution_pred_ >= 0 && prev >= 0) {
      db.Rel(evolution_pred_)
          .Insert({loc, Value(static_cast<int64_t>(prev)), step_v});
    }
    for (const auto& [target, payload] : adapter.sends) {
      if (send_pred_ < 0 && send_now_pred_ < 0) break;
      Value pv = ValueTraits<M>::ToValue(payload);
      if (send_pred_ >= 0) {
        db.Rel(send_pred_)
            .Insert({loc, Value(static_cast<int64_t>(target)), pv, step_v});
      }
      if (send_now_pred_ >= 0) {
        db.Rel(send_now_pred_)
            .Insert({loc, Value(static_cast<int64_t>(target)),
                     std::move(pv)});
      }
    }

    // Stratified fixpoint over this node's database.
    EvalContext ectx;
    ectx.db = &db;
    ectx.graph = graph_;
    ectx.local_vertex = v;
    auto evaluated = evaluator_.Evaluate(ectx);
    if (!evaluated.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = evaluated.status();
    }

    // Ship deltas leave only when the analytic actually sends (the
    // receive-message guard means nobody can reference them otherwise).
    ShipBundlePtr ships;
    if (!adapter.sends.empty()) {
      ships = CollectShipDelta(*query_, st, v);
    }

    if (options_.store != nullptr) PersistCaptureDeltas(st, v, prev, step);

    // Retention rebuilds relations (resetting semi-naive watermarks), so
    // amortize it: trim every 2*window steps, keeping at most 3*window of
    // history — still O(window) memory, without per-step rebuild costs.
    if (options_.retention_window > 0 &&
        step - st.last_retention >= 2 * options_.retention_window) {
      ApplyRetention(*query_, db, step, options_.retention_window);
      st.last_retention = step;
    }
    return ships;
  }

  /// Appends newly derived output tuples (and the superstep/evolution
  /// skeleton) of vertex `v` to the current layer. Only tuples located at
  /// `v` are persisted: tuples that arrived via ships belong to their own
  /// vertex's layer slices (persisting copies would multiply the store by
  /// the average degree).
  void PersistCaptureDeltas(NodeQueryState& st, VertexId v, Superstep prev,
                            Superstep step) {
    const auto& outputs = query_->output_preds();
    const Value self_loc(static_cast<int64_t>(v));
    std::vector<std::pair<int, std::vector<Tuple>>> deltas;
    for (size_t k = 0; k < outputs.size(); ++k) {
      const Relation* rel = st.db->RelIfExists(outputs[k]);
      const size_t size = rel == nullptr ? 0 : rel->size();
      size_t& watermark = st.capture_watermarks[k];
      if (size > watermark) {
        std::vector<Tuple> local;
        local.reserve(size - watermark);
        for (size_t i = watermark; i < size; ++i) {
          const Relation::RowView row = rel->row_view(i);
          if (row.size() > 0 && row.Equals(0, self_loc)) {
            local.push_back(row.ToTuple());
          }
        }
        watermark = size;
        if (!local.empty()) {
          deltas.emplace_back(static_cast<int>(k), std::move(local));
        }
      }
    }
    if (deltas.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [k, tuples] : deltas) {
      current_layer_.Add(capture_rels_[static_cast<size_t>(k)], v,
                         std::move(tuples));
    }
    AppendSkeletonLocked(v, prev, step);
  }

  /// Reduces a sealed layer to the forward-lineage skeleton (superstep +
  /// evolution relations) for the kForwardLineage degraded mode.
  void StripToSkeletonLocked(Layer* sealed) {
    Layer skeleton;
    skeleton.step = sealed->step;
    for (auto& slice : sealed->slices) {
      if (slice.rel == skeleton_superstep_rel_ ||
          slice.rel == skeleton_evolution_rel_) {
        skeleton.Add(slice.rel, slice.vertex, std::move(slice.tuples));
      }
    }
    *sealed = std::move(skeleton);
  }

  /// The degradation ladder (DESIGN.md §2.4). The failed layer itself is
  /// never lost: AppendLayer registers the entry before reporting a flush
  /// error, so the store still holds complete layers up to and including
  /// `step` — only later supersteps are degraded.
  void HandleAppendFailureLocked(Superstep step, const Status& s) {
    if (options_.degrade_policy == CaptureDegradePolicy::kFail ||
        capture_degraded_) {
      if (first_error_.ok()) first_error_ = s;
      return;
    }
    capture_degraded_ = true;
    capture_degraded_at_ = step;
    options_.store->EnterStorageDegradedMode();
    std::vector<int> surviving;
    if (options_.degrade_policy == CaptureDegradePolicy::kForwardLineage) {
      forward_lineage_only_ = true;
      surviving = {skeleton_superstep_rel_, skeleton_evolution_rel_};
    } else {
      capture_off_ = true;
    }
    options_.store->MarkDegraded(step, surviving, s.message());
    ARIADNE_LOG(Warning)
        << "capture degraded at superstep " << step << " (policy "
        << CaptureDegradePolicyToString(options_.degrade_policy)
        << "): " << s.message();
  }

  void AppendSkeletonLocked(VertexId v, Superstep prev, Superstep step) {
    const Value loc(static_cast<int64_t>(v));
    current_layer_.Add(skeleton_superstep_rel_, v,
                       {{loc, Value(static_cast<int64_t>(step))}});
    if (prev >= 0) {
      current_layer_.Add(skeleton_evolution_rel_, v,
                         {{loc, Value(static_cast<int64_t>(prev)),
                           Value(static_cast<int64_t>(step))}});
    }
  }

  /// Fast path for projection-only capture queries: no per-vertex
  /// database, records project straight into the layer.
  void FastCapture(VertexContext<V, WrappedMessage>& ctx, Adapter& adapter,
                   std::span<const WrappedMessage> messages) {
    const VertexId v = ctx.id();
    const Superstep step = ctx.superstep();
    const Value loc(static_cast<int64_t>(v));
    const Value step_v(static_cast<int64_t>(step));
    const auto& plan = *query_->fast_capture();

    std::vector<std::pair<int, std::vector<Tuple>>> out;
    // Provenance relations are sets: duplicate identical events (e.g. a
    // WCC vertex messaging a reciprocal neighbor via both adjacency
    // directions) must collapse, exactly as the interpreted path dedups.
    std::unordered_set<Tuple, TupleHash> seen;
    auto project = [&](const FastCaptureProjection& projection,
                       const Tuple& source, std::vector<Tuple>& sink) {
      Tuple t;
      t.reserve(projection.columns.size());
      for (int col : projection.columns) {
        t.push_back(col == -1 ? step_v : source[static_cast<size_t>(col)]);
      }
      if (seen.insert(t).second) sink.push_back(std::move(t));
    };

    for (size_t pi = 0; pi < plan.projections.size(); ++pi) {
      const auto& projection = plan.projections[pi];
      const int store_rel = FastCaptureRel(pi);
      seen.clear();
      std::vector<Tuple> tuples;
      switch (projection.source) {
        case EdbKind::kVertexValueNow:
          project(projection, {loc, ValueTraits<V>::ToValue(ctx.value())},
                  tuples);
          break;
        case EdbKind::kValue:
          project(projection,
                  {loc, ValueTraits<V>::ToValue(ctx.value()), step_v},
                  tuples);
          break;
        case EdbKind::kSendNow:
        case EdbKind::kSendMessage:
          for (const auto& [target, payload] : adapter.sends) {
            project(projection,
                    {loc, Value(static_cast<int64_t>(target)),
                     ValueTraits<M>::ToValue(payload), step_v},
                    tuples);
          }
          break;
        case EdbKind::kReceiveNow:
        case EdbKind::kReceiveMessage:
          for (const auto& m : messages) {
            project(projection,
                    {loc, Value(static_cast<int64_t>(m.src)),
                     ValueTraits<M>::ToValue(m.payload), step_v},
                    tuples);
          }
          break;
        case EdbKind::kEdge:
          break;  // static, projected once in ProjectStaticCapture
        default:
          break;
      }
      if (!tuples.empty()) out.emplace_back(store_rel, std::move(tuples));
    }
    if (out.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [rel, tuples] : out) {
      current_layer_.Add(rel, v, std::move(tuples));
    }
    AppendSkeletonLocked(v, last_active_[static_cast<size_t>(v)], step);
  }

  /// Store relation id for fast-capture projection `pi` (its head pred's
  /// position among the query outputs).
  int FastCaptureRel(size_t pi) const {
    const int head = (*query_->fast_capture()).projections[pi].head_pred;
    const auto& outputs = query_->output_preds();
    for (size_t k = 0; k < outputs.size(); ++k) {
      if (outputs[k] == head) return capture_rels_[k];
    }
    ARIADNE_CHECK(false);
    return -1;
  }

  /// Projects static (edge-sourced) capture rules into the store's static
  /// segment, once per run.
  void ProjectStaticCapture() {
    if (!query_->fast_capture().has_value()) return;
    const auto& plan = *query_->fast_capture();
    for (size_t pi = 0; pi < plan.projections.size(); ++pi) {
      const auto& projection = plan.projections[pi];
      if (projection.source != EdbKind::kEdge) continue;
      const int store_rel = FastCaptureRel(pi);
      for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
        std::vector<Tuple> tuples;
        const Value loc(static_cast<int64_t>(v));
        for (VertexId u : graph_->OutNeighbors(v)) {
          Tuple source{loc, Value(static_cast<int64_t>(u))};
          Tuple t;
          t.reserve(projection.columns.size());
          for (int col : projection.columns) {
            ARIADNE_CHECK(col >= 0);
            t.push_back(source[static_cast<size_t>(col)]);
          }
          tuples.push_back(std::move(t));
        }
        options_.store->static_layer().Add(store_rel, v, std::move(tuples));
      }
    }
  }

  P* analytic_;
  const AnalyzedQuery* query_;
  const Graph* graph_;
  OnlineOptions options_;
  RuleEvaluator evaluator_;

  int value_pred_ = -1, vertex_value_now_pred_ = -1;
  int superstep_pred_ = -1, evolution_pred_ = -1;
  int send_pred_ = -1, send_now_pred_ = -1;
  int receive_pred_ = -1, receive_now_pred_ = -1;

  std::vector<NodeQueryState> states_;
  std::vector<Superstep> last_active_;
  std::vector<int> capture_rels_;  ///< store rel per output pred position
  int skeleton_superstep_rel_ = -1;
  int skeleton_evolution_rel_ = -1;

  std::mutex mu_;
  Layer current_layer_;
  Status first_error_;
  bool capture_degraded_ = false;
  Superstep capture_degraded_at_ = -1;
  bool capture_off_ = false;          ///< degraded, kCaptureOff
  bool forward_lineage_only_ = false;  ///< degraded, kForwardLineage
  /// Incremental-checkpoint watermark: layers [0, checkpointed_layers_)
  /// are durable in the segments sidecar, whose valid prefix is
  /// segments_valid_bytes_ long (DESIGN.md §2.4).
  int checkpointed_layers_ = 0;
  uint64_t segments_valid_bytes_ = 0;
};

}  // namespace ariadne

#endif  // ARIADNE_EVAL_ONLINE_H_
