#ifndef ARIADNE_EVAL_ONLINE_H_
#define ARIADNE_EVAL_ONLINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analytics/value_traits.h"
#include "common/logging.h"
#include "engine/vertex_program.h"
#include "eval/common.h"
#include "provenance/store.h"

namespace ariadne {

/// Envelope around an analytic's message during online/capture runs:
/// the sender id (needed by the receive-message provenance relation) and
/// an optional bundle of query tables riding along (paper §5.2).
template <typename M>
struct OnlineMessage {
  VertexId src = 0;
  M payload{};
  ShipBundlePtr ships;  ///< shared by all messages of one scatter
};

struct OnlineOptions {
  /// Persist derived relations (plus the superstep/evolution skeleton)
  /// into `store`, layer by layer — this is capture mode (paper Fig 1a).
  /// With a null store the run is pure online querying (paper Fig 2).
  ProvenanceStore* store = nullptr;
  /// EDB history window in supersteps (0 = keep everything). Safe for
  /// queries that only join the previous activation (evolution / i-1).
  int retention_window = 0;
  /// Disable the compiled projection fast path for capture queries and
  /// interpret them like any other query (ablation / fair comparisons).
  bool disable_fast_capture = false;
};

/// Wraps an unmodified analytic `P` and evaluates a forward PQL query in
/// lockstep with it (paper §5.2, Theorem 5.4). The wrapper is itself an
/// ordinary vertex program: the engine is untouched, the analytic is
/// untouched, and query tables ride on the analytic's own messages.
///
/// The same wrapper implements declarative capture (paper Fig 1a): with a
/// ProvenanceStore attached, the query's derived tuples are persisted per
/// layer. Projection-only capture queries (paper Queries 2 and 11) take a
/// compiled fast path that bypasses Datalog evaluation entirely.
template <typename P>
class OnlineProgram final
    : public VertexProgram<typename P::ValueType,
                           OnlineMessage<typename P::MessageType>> {
 public:
  using V = typename P::ValueType;
  using M = typename P::MessageType;
  using WrappedMessage = OnlineMessage<M>;

  /// All pointers must outlive the program. `query` must be analyzed with
  /// transient EDBs allowed and must pass ValidateMode for kOnline.
  OnlineProgram(P* analytic, const AnalyzedQuery* query, const Graph* graph,
                OnlineOptions options = {})
      : analytic_(analytic),
        query_(query),
        graph_(graph),
        options_(options),
        evaluator_(query) {
    value_pred_ = query_->PredId("value");
    vertex_value_now_pred_ = query_->PredId("vertex-value");
    superstep_pred_ = query_->PredId("superstep");
    evolution_pred_ = query_->PredId("evolution");
    send_pred_ = query_->PredId("send-message");
    send_now_pred_ = query_->PredId("send");
    receive_pred_ = query_->PredId("receive-message");
    receive_now_pred_ = query_->PredId("receive");
    if (options_.store != nullptr) {
      for (int pred : query_->output_preds()) {
        capture_rels_.push_back(options_.store->AddRelation(
            query_->pred(pred).name, query_->pred(pred).arity));
      }
      skeleton_superstep_rel_ = options_.store->AddRelation("superstep", 2);
      skeleton_evolution_rel_ = options_.store->AddRelation("evolution", 3);
    }
  }

  // ---- VertexProgram interface (transparent delegation) ----

  V InitialValue(VertexId id, const Graph& graph) const override {
    return analytic_->InitialValue(id, graph);
  }

  void RegisterAggregators(AggregatorRegistry& registry) override {
    analytic_->RegisterAggregators(registry);
    // Run start: reset wrapper state.
    states_.clear();
    states_.resize(static_cast<size_t>(graph_->num_vertices()));
    last_active_.assign(static_cast<size_t>(graph_->num_vertices()), -1);
    current_layer_ = Layer{};
    first_error_ = Status::OK();
    if (options_.store != nullptr) ProjectStaticCapture();
  }

  void MasterCompute(MasterContext& master) override {
    analytic_->MasterCompute(master);
    if (options_.store != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      Layer sealed = std::move(current_layer_);
      sealed.step = master.superstep;
      current_layer_ = Layer{};
      // Slices arrive in worker-scheduling order under multi-threaded
      // capture; canonicalize so the sealed layer (and everything
      // serialized from it) is identical for any engine thread count. The
      // slices themselves are already deterministic because the engine
      // guarantees serial-order message delivery (DESIGN.md §2).
      sealed.Canonicalize();
      Status s = options_.store->AppendLayer(std::move(sealed));
      if (!s.ok() && first_error_.ok()) first_error_ = s;
    }
  }

  void Compute(VertexContext<V, WrappedMessage>& ctx,
               std::span<const WrappedMessage> messages) override {
    const VertexId v = ctx.id();
    const Superstep step = ctx.superstep();

    // 1. Run the analytic against an adapter that buffers its sends.
    Adapter adapter(&ctx);
    std::vector<M> payloads;
    payloads.reserve(messages.size());
    for (const auto& m : messages) payloads.push_back(m.payload);
    analytic_->Compute(adapter, payloads);

    // 2. Evaluate the query over the transient provenance of this step.
    ShipBundlePtr outgoing_ships;
    if (query_->fast_capture().has_value() && options_.store != nullptr &&
        !options_.disable_fast_capture) {
      FastCapture(ctx, adapter, messages);
    } else {
      outgoing_ships = GenericEvaluate(ctx, adapter, messages);
    }
    last_active_[static_cast<size_t>(v)] = step;

    // 3. Release the analytic's messages, with query tables attached.
    //    Ships only ride analytic messages (Theorem 5.4 part ii).
    for (auto& [target, payload] : adapter.sends) {
      ctx.SendMessage(target,
                      WrappedMessage{v, std::move(payload), outgoing_ships});
    }
    if (adapter.voted_halt) ctx.VoteToHalt();
  }

  // ---- Results ----

  /// Union of the query's derived tables across all vertices.
  QueryResult CollectResult() const {
    QueryResult result;
    for (const auto& state : states_) {
      if (state.db != nullptr) result.Merge(*query_, *state.db);
    }
    return result;
  }

  /// Per-rule evaluator counters, merged across all vertices.
  EvalStats CollectEvalStats() const {
    EvalStats merged;
    for (const auto& state : states_) {
      if (state.db != nullptr) merged.Merge(state.db->eval_stats());
    }
    return merged;
  }

  /// First evaluation error encountered (OK when the run was clean).
  const Status& status() const { return first_error_; }

  /// Bytes held by per-vertex query databases (transient provenance).
  size_t TransientBytes() const {
    size_t bytes = 0;
    for (const auto& state : states_) {
      if (state.db != nullptr) bytes += state.db->TotalBytes();
    }
    return bytes;
  }

 private:
  /// Presents the plain VertexContext<V, M> face to the analytic while
  /// buffering its sends for ship attachment.
  class Adapter final : public VertexContext<V, M> {
   public:
    explicit Adapter(VertexContext<V, WrappedMessage>* real) : real_(real) {}

    VertexId id() const override { return real_->id(); }
    Superstep superstep() const override { return real_->superstep(); }
    const Graph& graph() const override { return real_->graph(); }
    const V& value() const override { return real_->value(); }
    void SetValue(V value) override { real_->SetValue(std::move(value)); }
    void SendMessage(VertexId target, M message) override {
      sends.emplace_back(target, std::move(message));
    }
    void VoteToHalt() override { voted_halt = true; }
    void AggregateDouble(const std::string& name, double v) override {
      real_->AggregateDouble(name, v);
    }
    double GetAggregate(const std::string& name) const override {
      return real_->GetAggregate(name);
    }

    std::vector<std::pair<VertexId, M>> sends;
    bool voted_halt = false;

   private:
    VertexContext<V, WrappedMessage>* real_;
  };

  NodeQueryState& state(VertexId v) {
    return states_[static_cast<size_t>(v)];
  }

  /// Generic path: materialize this step's EDB facts, deliver arrived
  /// ships, run the stratified evaluator, collect ship deltas, persist
  /// capture deltas.
  ShipBundlePtr GenericEvaluate(VertexContext<V, WrappedMessage>& ctx,
                                Adapter& adapter,
                                std::span<const WrappedMessage> messages) {
    const VertexId v = ctx.id();
    const Superstep step = ctx.superstep();
    NodeQueryState& st = state(v);
    Database& db = st.EnsureDb(*query_);
    const Value loc(static_cast<int64_t>(v));
    const Value step_v(static_cast<int64_t>(step));

    // Transient views describe only the current superstep. The superstep
    // relation is also current-activation-only during online evaluation:
    // past activations are reachable via evolution and the step columns
    // of value/send-message/receive-message (see catalog.h).
    for (int pred : {vertex_value_now_pred_, send_now_pred_, receive_now_pred_,
                     superstep_pred_}) {
      if (pred < 0) continue;
      Relation* rel = db.MutableRelIfExists(pred);
      if (rel != nullptr && !rel->empty()) rel->Clear();
    }

    // Arrived ships + receive facts.
    for (const auto& m : messages) {
      if (m.ships != nullptr) DeliverShips(db, *m.ships);
      if (receive_pred_ >= 0 || receive_now_pred_ >= 0) {
        Value payload = ValueTraits<M>::ToValue(m.payload);
        if (receive_pred_ >= 0) {
          db.Rel(receive_pred_)
              .Insert({loc, Value(static_cast<int64_t>(m.src)), payload,
                       step_v});
        }
        if (receive_now_pred_ >= 0) {
          db.Rel(receive_now_pred_)
              .Insert({loc, Value(static_cast<int64_t>(m.src)),
                       std::move(payload)});
        }
      }
    }

    // Post-compute vertex state.
    if (value_pred_ >= 0) {
      db.Rel(value_pred_)
          .Insert({loc, ValueTraits<V>::ToValue(ctx.value()), step_v});
    }
    if (vertex_value_now_pred_ >= 0) {
      db.Rel(vertex_value_now_pred_)
          .Insert({loc, ValueTraits<V>::ToValue(ctx.value())});
    }
    if (superstep_pred_ >= 0) {
      db.Rel(superstep_pred_).Insert({loc, step_v});
    }
    const Superstep prev = last_active_[static_cast<size_t>(v)];
    if (evolution_pred_ >= 0 && prev >= 0) {
      db.Rel(evolution_pred_)
          .Insert({loc, Value(static_cast<int64_t>(prev)), step_v});
    }
    for (const auto& [target, payload] : adapter.sends) {
      if (send_pred_ < 0 && send_now_pred_ < 0) break;
      Value pv = ValueTraits<M>::ToValue(payload);
      if (send_pred_ >= 0) {
        db.Rel(send_pred_)
            .Insert({loc, Value(static_cast<int64_t>(target)), pv, step_v});
      }
      if (send_now_pred_ >= 0) {
        db.Rel(send_now_pred_)
            .Insert({loc, Value(static_cast<int64_t>(target)),
                     std::move(pv)});
      }
    }

    // Stratified fixpoint over this node's database.
    EvalContext ectx;
    ectx.db = &db;
    ectx.graph = graph_;
    ectx.local_vertex = v;
    auto evaluated = evaluator_.Evaluate(ectx);
    if (!evaluated.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = evaluated.status();
    }

    // Ship deltas leave only when the analytic actually sends (the
    // receive-message guard means nobody can reference them otherwise).
    ShipBundlePtr ships;
    if (!adapter.sends.empty()) {
      ships = CollectShipDelta(*query_, st, v);
    }

    if (options_.store != nullptr) PersistCaptureDeltas(st, v, prev, step);

    // Retention rebuilds relations (resetting semi-naive watermarks), so
    // amortize it: trim every 2*window steps, keeping at most 3*window of
    // history — still O(window) memory, without per-step rebuild costs.
    if (options_.retention_window > 0 &&
        step - st.last_retention >= 2 * options_.retention_window) {
      ApplyRetention(*query_, db, step, options_.retention_window);
      st.last_retention = step;
    }
    return ships;
  }

  /// Appends newly derived output tuples (and the superstep/evolution
  /// skeleton) of vertex `v` to the current layer. Only tuples located at
  /// `v` are persisted: tuples that arrived via ships belong to their own
  /// vertex's layer slices (persisting copies would multiply the store by
  /// the average degree).
  void PersistCaptureDeltas(NodeQueryState& st, VertexId v, Superstep prev,
                            Superstep step) {
    const auto& outputs = query_->output_preds();
    const Value self_loc(static_cast<int64_t>(v));
    std::vector<std::pair<int, std::vector<Tuple>>> deltas;
    for (size_t k = 0; k < outputs.size(); ++k) {
      const Relation* rel = st.db->RelIfExists(outputs[k]);
      const size_t size = rel == nullptr ? 0 : rel->size();
      size_t& watermark = st.capture_watermarks[k];
      if (size > watermark) {
        std::vector<Tuple> local;
        local.reserve(size - watermark);
        for (size_t i = watermark; i < size; ++i) {
          const Relation::RowView row = rel->row_view(i);
          if (row.size() > 0 && row.Equals(0, self_loc)) {
            local.push_back(row.ToTuple());
          }
        }
        watermark = size;
        if (!local.empty()) {
          deltas.emplace_back(static_cast<int>(k), std::move(local));
        }
      }
    }
    if (deltas.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [k, tuples] : deltas) {
      current_layer_.Add(capture_rels_[static_cast<size_t>(k)], v,
                         std::move(tuples));
    }
    AppendSkeletonLocked(v, prev, step);
  }

  void AppendSkeletonLocked(VertexId v, Superstep prev, Superstep step) {
    const Value loc(static_cast<int64_t>(v));
    current_layer_.Add(skeleton_superstep_rel_, v,
                       {{loc, Value(static_cast<int64_t>(step))}});
    if (prev >= 0) {
      current_layer_.Add(skeleton_evolution_rel_, v,
                         {{loc, Value(static_cast<int64_t>(prev)),
                           Value(static_cast<int64_t>(step))}});
    }
  }

  /// Fast path for projection-only capture queries: no per-vertex
  /// database, records project straight into the layer.
  void FastCapture(VertexContext<V, WrappedMessage>& ctx, Adapter& adapter,
                   std::span<const WrappedMessage> messages) {
    const VertexId v = ctx.id();
    const Superstep step = ctx.superstep();
    const Value loc(static_cast<int64_t>(v));
    const Value step_v(static_cast<int64_t>(step));
    const auto& plan = *query_->fast_capture();

    std::vector<std::pair<int, std::vector<Tuple>>> out;
    // Provenance relations are sets: duplicate identical events (e.g. a
    // WCC vertex messaging a reciprocal neighbor via both adjacency
    // directions) must collapse, exactly as the interpreted path dedups.
    std::unordered_set<Tuple, TupleHash> seen;
    auto project = [&](const FastCaptureProjection& projection,
                       const Tuple& source, std::vector<Tuple>& sink) {
      Tuple t;
      t.reserve(projection.columns.size());
      for (int col : projection.columns) {
        t.push_back(col == -1 ? step_v : source[static_cast<size_t>(col)]);
      }
      if (seen.insert(t).second) sink.push_back(std::move(t));
    };

    for (size_t pi = 0; pi < plan.projections.size(); ++pi) {
      const auto& projection = plan.projections[pi];
      const int store_rel = FastCaptureRel(pi);
      seen.clear();
      std::vector<Tuple> tuples;
      switch (projection.source) {
        case EdbKind::kVertexValueNow:
          project(projection, {loc, ValueTraits<V>::ToValue(ctx.value())},
                  tuples);
          break;
        case EdbKind::kValue:
          project(projection,
                  {loc, ValueTraits<V>::ToValue(ctx.value()), step_v},
                  tuples);
          break;
        case EdbKind::kSendNow:
        case EdbKind::kSendMessage:
          for (const auto& [target, payload] : adapter.sends) {
            project(projection,
                    {loc, Value(static_cast<int64_t>(target)),
                     ValueTraits<M>::ToValue(payload), step_v},
                    tuples);
          }
          break;
        case EdbKind::kReceiveNow:
        case EdbKind::kReceiveMessage:
          for (const auto& m : messages) {
            project(projection,
                    {loc, Value(static_cast<int64_t>(m.src)),
                     ValueTraits<M>::ToValue(m.payload), step_v},
                    tuples);
          }
          break;
        case EdbKind::kEdge:
          break;  // static, projected once in ProjectStaticCapture
        default:
          break;
      }
      if (!tuples.empty()) out.emplace_back(store_rel, std::move(tuples));
    }
    if (out.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [rel, tuples] : out) {
      current_layer_.Add(rel, v, std::move(tuples));
    }
    AppendSkeletonLocked(v, last_active_[static_cast<size_t>(v)], step);
  }

  /// Store relation id for fast-capture projection `pi` (its head pred's
  /// position among the query outputs).
  int FastCaptureRel(size_t pi) const {
    const int head = (*query_->fast_capture()).projections[pi].head_pred;
    const auto& outputs = query_->output_preds();
    for (size_t k = 0; k < outputs.size(); ++k) {
      if (outputs[k] == head) return capture_rels_[k];
    }
    ARIADNE_CHECK(false);
    return -1;
  }

  /// Projects static (edge-sourced) capture rules into the store's static
  /// segment, once per run.
  void ProjectStaticCapture() {
    if (!query_->fast_capture().has_value()) return;
    const auto& plan = *query_->fast_capture();
    for (size_t pi = 0; pi < plan.projections.size(); ++pi) {
      const auto& projection = plan.projections[pi];
      if (projection.source != EdbKind::kEdge) continue;
      const int store_rel = FastCaptureRel(pi);
      for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
        std::vector<Tuple> tuples;
        const Value loc(static_cast<int64_t>(v));
        for (VertexId u : graph_->OutNeighbors(v)) {
          Tuple source{loc, Value(static_cast<int64_t>(u))};
          Tuple t;
          t.reserve(projection.columns.size());
          for (int col : projection.columns) {
            ARIADNE_CHECK(col >= 0);
            t.push_back(source[static_cast<size_t>(col)]);
          }
          tuples.push_back(std::move(t));
        }
        options_.store->static_layer().Add(store_rel, v, std::move(tuples));
      }
    }
  }

  P* analytic_;
  const AnalyzedQuery* query_;
  const Graph* graph_;
  OnlineOptions options_;
  RuleEvaluator evaluator_;

  int value_pred_ = -1, vertex_value_now_pred_ = -1;
  int superstep_pred_ = -1, evolution_pred_ = -1;
  int send_pred_ = -1, send_now_pred_ = -1;
  int receive_pred_ = -1, receive_now_pred_ = -1;

  std::vector<NodeQueryState> states_;
  std::vector<Superstep> last_active_;
  std::vector<int> capture_rels_;  ///< store rel per output pred position
  int skeleton_superstep_rel_ = -1;
  int skeleton_evolution_rel_ = -1;

  std::mutex mu_;
  Layer current_layer_;
  Status first_error_;
};

}  // namespace ariadne

#endif  // ARIADNE_EVAL_ONLINE_H_
