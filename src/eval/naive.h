#ifndef ARIADNE_EVAL_NAIVE_H_
#define ARIADNE_EVAL_NAIVE_H_

#include "common/status.h"
#include "eval/common.h"
#include "graph/graph.h"
#include "provenance/store.h"

namespace ariadne {

/// The traditional baseline (paper §6.2 "Naive"): materialize the entire
/// provenance graph into one database and run stratified semi-naive
/// evaluation to fixpoint. Correct for every query class, but memory
/// scales with the whole provenance graph — this is the mode that "was
/// not able to scale beyond the two smallest datasets" in the paper.
class NaiveEvaluator {
 public:
  /// `query` must be analyzed offline against `store->ToStoreSchema()`.
  NaiveEvaluator(const Graph* graph, const ProvenanceStore* store,
                 const AnalyzedQuery* query)
      : graph_(graph), store_(store), query_(query) {}

  Result<OfflineRun> Run();

 private:
  const Graph* graph_;
  const ProvenanceStore* store_;
  const AnalyzedQuery* query_;
};

}  // namespace ariadne

#endif  // ARIADNE_EVAL_NAIVE_H_
