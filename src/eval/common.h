#ifndef ARIADNE_EVAL_COMMON_H_
#define ARIADNE_EVAL_COMMON_H_

#include <memory>
#include <vector>

#include "engine/types.h"
#include "pql/analysis.h"
#include "pql/evaluator.h"
#include "pql/relation.h"

namespace ariadne {

/// Tuples of shipped relations travelling between provenance nodes,
/// grouped by predicate id. Attached to analytic messages during online
/// evaluation (paper §5.2: "appends the query tables to the messages")
/// and carried by dedicated ship messages during layered evaluation.
using ShipBundle = std::vector<std::pair<int, std::vector<Tuple>>>;
using ShipBundlePtr = std::shared_ptr<const ShipBundle>;

/// Per-provenance-node evaluation state shared by the online wrapper and
/// the layered query program.
struct NodeQueryState {
  std::unique_ptr<Database> db;
  Superstep last_active = -1;
  Superstep last_retention = 0;
  /// Per query->shipped_preds() position: rows already shipped.
  std::vector<size_t> ship_watermarks;
  /// Per query->output_preds() position: rows already persisted (capture).
  std::vector<size_t> capture_watermarks;

  Database& EnsureDb(const AnalyzedQuery& query) {
    if (db == nullptr) {
      db = std::make_unique<Database>(&query);
      ship_watermarks.assign(query.shipped_preds().size(), 0);
      capture_watermarks.assign(query.output_preds().size(), 0);
    }
    return *db;
  }
};

/// Inserts a bundle's tuples into `db`.
void DeliverShips(Database& db, const ShipBundle& bundle);

/// Collects tuples of shipped relations inserted since the node's ship
/// watermarks, advancing the watermarks. Only tuples *located at* `self`
/// (column 0) are shipped: remote tuples that arrived via earlier ships
/// are someone else's partition and must not be re-shipped (distributed
/// semantics, and the difference between O(E) and epidemic flooding).
/// Returns nullptr when nothing new.
ShipBundlePtr CollectShipDelta(const AnalyzedQuery& query,
                               NodeQueryState& state, VertexId self);

/// Like CollectShipDelta, but restricted to shipped predicates with the
/// given routing (used by layered evaluation, where different routings
/// target different neighbors).
ShipBundlePtr CollectShipDeltaForRouting(const AnalyzedQuery& query,
                                         NodeQueryState& state, VertexId self,
                                         ShipRouting routing);

/// Drops EDB history older than `window` supersteps from `db` (relations
/// whose EDB kind has a superstep column). Keeps IDB results intact.
void ApplyRetention(const AnalyzedQuery& query, Database& db,
                    Superstep current, int window);

/// Statistics of an offline (layered / naive) query evaluation.
struct OfflineEvalStats {
  double seconds = 0.0;
  Superstep supersteps = 0;       ///< processing steps (layered)
  size_t peak_layer_bytes = 0;    ///< largest single materialized layer
  size_t materialized_bytes = 0;  ///< evaluation-state bytes at the end
  size_t result_tuples = 0;
  EvalStats eval;  ///< per-rule evaluator counters, merged over vertices
};

struct OfflineRun {
  QueryResult result;
  OfflineEvalStats stats;
};

/// How a query is evaluated (paper §5 / §6.2): online alongside the
/// analytic, layered over a captured store, or naively over the fully
/// materialized provenance graph.
enum class EvalMode { kOnline, kLayered, kNaive };

const char* EvalModeToString(EvalMode mode);

/// Checks the (query class, mode) compatibility rules of Definition 5.2:
/// online needs a forward (or purely local) VC-compatible query; layered
/// needs a directed VC-compatible query; naive accepts anything.
Status ValidateMode(const AnalyzedQuery& query, EvalMode mode);

/// What capture does when spilling fails unrecoverably mid-run — the
/// degradation ladder of DESIGN.md §2.4. The analytic's output is exact
/// under every policy; only the captured provenance differs.
enum class CaptureDegradePolicy {
  /// Surface the storage error as the capture run's error (pre-recovery
  /// behavior, and the default).
  kFail,
  /// Stop capturing entirely: no further layers are appended, the store
  /// is marked degraded, RunStats::capture_degraded is set.
  kCaptureOff,
  /// Keep capturing only the forward-lineage skeleton (the superstep and
  /// evolution relations) in memory; derived relations stop at the
  /// degradation point.
  kForwardLineage,
};

const char* CaptureDegradePolicyToString(CaptureDegradePolicy policy);

/// Refusal gate for offline evaluation over a degraded capture: OK when
/// the store is complete, or when every store relation the query reads is
/// in the store's surviving set. Otherwise a clear Unsupported error
/// naming the missing relation and the degradation point — a degraded
/// store must never silently answer a full-history query.
class ProvenanceStore;  // fwd (provenance/store.h includes this header)
Status CheckDegradedCapture(const AnalyzedQuery& query,
                            const ProvenanceStore& store);

}  // namespace ariadne

#endif  // ARIADNE_EVAL_COMMON_H_
