#include "eval/layered.h"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/timer.h"
#include "engine/engine.h"

namespace ariadne {

namespace {

/// Dedicated ship message for offline layered evaluation.
struct ShipMessage {
  ShipBundlePtr ships;
};

/// The query-as-vertex-program (paper §2: "translates provenance query
/// evaluation to ordinary vertex programs"). Superstep t processes layer
/// t (forward) or layer n-1-t (backward).
class LayeredProgram final : public VertexProgram<char, ShipMessage> {
 public:
  LayeredProgram(const Graph* graph, ProvenanceStore* store,
                 const AnalyzedQuery* query)
      : graph_(graph), store_(store), query_(query), evaluator_(query) {
    descending_ = query_->direction() == Direction::kBackward;
    // Stored relation -> query predicate resolution (by name).
    rel_to_pred_.resize(store_->schema().size(), -1);
    for (size_t r = 0; r < store_->schema().size(); ++r) {
      rel_to_pred_[r] = query_->PredId(store_->schema()[r].name);
    }
    // Ship routing follows the *recorded* message edges of the store,
    // independent of whether the query itself reads them.
    send_rel_ = store_->RelId("send-message");
    receive_rel_ = store_->RelId("receive-message");
    // Relations this query actually touches (query predicates + the
    // message edges used for routing). Layer reads are restricted to
    // them, so e.g. a query over send-message never decompresses
    // vertex-value pages.
    for (size_t r = 0; r < rel_to_pred_.size(); ++r) {
      if (rel_to_pred_[r] >= 0 || static_cast<int>(r) == send_rel_ ||
          static_cast<int>(r) == receive_rel_) {
        needed_rels_.push_back(static_cast<int>(r));
      }
    }
    if (needed_rels_.size() == rel_to_pred_.size()) {
      needed_rels_.clear();  // all relations: no point filtering
    }
  }

  Status Prepare() {
    states_.clear();
    states_.resize(static_cast<size_t>(graph_->num_vertices()));
    // Adjacency fallback caches are filled lazily, each slot only by its
    // own vertex's Compute, so sizing them here keeps the fill race-free.
    adj_cache_.assign(3, std::vector<std::vector<VertexId>>(
                             static_cast<size_t>(graph_->num_vertices())));
    adj_filled_.assign(3, std::vector<uint8_t>(
                              static_cast<size_t>(graph_->num_vertices()), 0));
    // Index the static segment once.
    static_index_.clear();
    for (const auto& slice : store_->static_data().slices) {
      static_index_[slice.vertex].push_back(&slice);
    }
    return LoadLayerForProcessingStep(0);
  }

  char InitialValue(VertexId, const Graph&) const override { return 0; }

  void Compute(VertexContext<char, ShipMessage>& ctx,
               std::span<const ShipMessage> messages) override {
    const VertexId v = ctx.id();
    NodeQueryState& st = states_[static_cast<size_t>(v)];
    Database& db = st.EnsureDb(*query_);

    bool touched = false;
    for (const auto& m : messages) {
      if (m.ships != nullptr) {
        DeliverShips(db, *m.ships);
        touched = true;
      }
    }
    // Static facts on first activation.
    if (ctx.superstep() == 0) {
      auto it = static_index_.find(v);
      if (it != static_index_.end()) {
        for (const LayerSlice* slice : it->second) {
          InsertSlice(db, *slice);
        }
        touched = true;
      }
    }
    // This layer's facts for v.
    auto it = layer_index_.find(v);
    if (it != layer_index_.end()) {
      for (const LayerSlice* slice : it->second) InsertSlice(db, *slice);
      touched = true;
    }
    if (!touched && ctx.superstep() > 0) return;  // nothing new for v

    EvalContext ectx;
    ectx.db = &db;
    ectx.graph = graph_;
    ectx.local_vertex = v;
    auto evaluated = evaluator_.Evaluate(ectx);
    if (!evaluated.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = evaluated.status();
      return;
    }

    // Route fresh ship deltas per routing class.
    if (query_->shipped_preds().empty()) return;
    for (ShipRouting routing :
         {ShipRouting::kAlongMessages, ShipRouting::kAlongReverseMessages,
          ShipRouting::kAlongOutEdges, ShipRouting::kAlongInEdges}) {
      ShipBundlePtr bundle =
          CollectShipDeltaForRouting(*query_, st, v, routing);
      if (bundle == nullptr) continue;
      for (VertexId target : RoutingTargets(v, routing)) {
        ctx.SendMessage(target, ShipMessage{bundle});
      }
    }
    // Vertices never vote to halt: the driver halts after the last layer.
  }

  void MasterCompute(MasterContext& master) override {
    peak_layer_bytes_ = std::max(peak_layer_bytes_, current_layer_bytes_);
    const Superstep next = master.superstep + 1;
    if (next >= static_cast<Superstep>(store_->num_layers())) {
      master.halt = true;
      return;
    }
    Status s = LoadLayerForProcessingStep(next);
    if (!s.ok() && first_error_.ok()) first_error_ = s;
  }

  QueryResult CollectResult() const {
    QueryResult result;
    for (const auto& state : states_) {
      if (state.db != nullptr) result.Merge(*query_, *state.db);
    }
    return result;
  }

  size_t StateBytes() const {
    size_t bytes = 0;
    for (const auto& state : states_) {
      if (state.db != nullptr) bytes += state.db->TotalBytes();
    }
    return bytes;
  }

  EvalStats CollectEvalStats() const {
    EvalStats merged;
    for (const auto& state : states_) {
      if (state.db != nullptr) merged.Merge(state.db->eval_stats());
    }
    return merged;
  }

  size_t peak_layer_bytes() const { return peak_layer_bytes_; }
  const Status& status() const { return first_error_; }

 private:
  void InsertSlice(Database& db, const LayerSlice& slice) {
    const int pred = rel_to_pred_[static_cast<size_t>(slice.rel)];
    if (pred < 0) return;  // relation not referenced by this query
    Relation& rel = db.Rel(pred);
    for (const Tuple& t : slice.tuples) rel.Insert(t);
  }

  Status LoadLayerForProcessingStep(Superstep processing_step) {
    const int n = store_->num_layers();
    const int layer_step = descending_
                               ? n - 1 - static_cast<int>(processing_step)
                               : static_cast<int>(processing_step);
    ARIADNE_ASSIGN_OR_RETURN(current_layer_,
                             store_->GetLayerRelations(layer_step,
                                                       needed_rels_));
    // Direction-aware prefetch: warm the pages of the layer the *next*
    // superstep will read (ascending forward, descending backward) while
    // this one computes.
    const int next_step = descending_ ? layer_step - 1 : layer_step + 1;
    if (next_step >= 0 && next_step < n) {
      store_->PrefetchLayer(next_step, needed_rels_);
    }
    const Layer* layer = current_layer_.get();
    layer_index_.clear();
    route_out_.clear();
    route_in_.clear();
    for (const auto& slice : layer->slices) {
      layer_index_[slice.vertex].push_back(&slice);
      // This layer's message edges, for ship routing.
      if (slice.rel == send_rel_) {
        auto& targets = route_out_[slice.vertex];
        for (const Tuple& t : slice.tuples) {
          if (t.size() > 1 && t[1].is_int()) targets.push_back(t[1].AsInt());
        }
      } else if (slice.rel == receive_rel_) {
        auto& sources = route_in_[slice.vertex];
        for (const Tuple& t : slice.tuples) {
          if (t.size() > 1 && t[1].is_int()) sources.push_back(t[1].AsInt());
        }
      }
    }
    for (auto* index : {&route_out_, &route_in_}) {
      for (auto& [vertex, targets] : *index) SortUnique(targets);
    }
    current_layer_step_ = layer->step;
    current_layer_bytes_ = layer->byte_size;
    return Status::OK();
  }

  static void SortUnique(std::vector<VertexId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }

  /// Lazily materializes the sorted-unique adjacency list for `v` in
  /// cache plane `plane` (0 = both directions, 1 = out, 2 = in). Each
  /// slot is written only by its own vertex's Compute, never shared.
  std::span<const VertexId> CachedAdjacency(int plane, VertexId v) {
    std::vector<VertexId>& slot =
        adj_cache_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
    uint8_t& filled =
        adj_filled_[static_cast<size_t>(plane)][static_cast<size_t>(v)];
    if (!filled) {
      if (plane != 2) {
        auto nbrs = graph_->OutNeighbors(v);
        slot.insert(slot.end(), nbrs.begin(), nbrs.end());
      }
      if (plane != 1) {
        auto nbrs = graph_->InNeighbors(v);
        slot.insert(slot.end(), nbrs.begin(), nbrs.end());
      }
      SortUnique(slot);
      filled = 1;
    }
    return slot;
  }

  /// Neighbors a ship from `v` travels to under `routing`. Message-edge
  /// routings follow the recorded send/receive records of the current
  /// layer; when the store did not capture them (custom captures), fall
  /// back to static adjacency in BOTH directions — overshipping is safe
  /// (receivers merely hold extra copies), undershipping is not. The
  /// returned span stays valid for the rest of the superstep (route maps
  /// are rebuilt only between layers, adjacency caches are per vertex).
  std::span<const VertexId> RoutingTargets(VertexId v, ShipRouting routing) {
    const bool along_messages = routing == ShipRouting::kAlongMessages ||
                                routing == ShipRouting::kAlongReverseMessages;
    if (along_messages) {
      const auto& index = routing == ShipRouting::kAlongMessages
                              ? route_out_
                              : route_in_;
      const int rel = routing == ShipRouting::kAlongMessages ? send_rel_
                                                             : receive_rel_;
      if (rel >= 0) {
        auto it = index.find(v);
        if (it == index.end()) return {};
        return it->second;
      }
      // Store lacks message records: conservative static fallback.
      return CachedAdjacency(0, v);
    }
    return CachedAdjacency(routing == ShipRouting::kAlongOutEdges ? 1 : 2, v);
  }

  const Graph* graph_;
  ProvenanceStore* store_;
  const AnalyzedQuery* query_;
  RuleEvaluator evaluator_;
  bool descending_ = false;

  std::vector<int> rel_to_pred_;
  int send_rel_ = -1, receive_rel_ = -1;
  /// Store relations the query reads (empty = all).
  std::vector<int> needed_rels_;
  /// Keeps the slices behind layer_index_ alive across store evictions.
  std::shared_ptr<const Layer> current_layer_;

  std::vector<NodeQueryState> states_;
  std::unordered_map<VertexId, std::vector<const LayerSlice*>> static_index_;
  std::unordered_map<VertexId, std::vector<const LayerSlice*>> layer_index_;
  std::unordered_map<VertexId, std::vector<VertexId>> route_out_;
  std::unordered_map<VertexId, std::vector<VertexId>> route_in_;
  /// Lazy sorted-unique static-adjacency fallbacks, one plane per
  /// direction class (both / out / in), one slot per vertex.
  std::vector<std::vector<std::vector<VertexId>>> adj_cache_;
  std::vector<std::vector<uint8_t>> adj_filled_;
  Superstep current_layer_step_ = 0;
  size_t current_layer_bytes_ = 0;
  size_t peak_layer_bytes_ = 0;

  std::mutex mu_;
  Status first_error_;
};

}  // namespace

LayeredEvaluator::LayeredEvaluator(const Graph* graph, ProvenanceStore* store,
                                   const AnalyzedQuery* query,
                                   EngineOptions options)
    : graph_(graph), store_(store), query_(query), options_(options) {}

Result<OfflineRun> LayeredEvaluator::Run() {
  ARIADNE_RETURN_NOT_OK(ValidateMode(*query_, EvalMode::kLayered));
  // A degraded capture (DESIGN.md §2.4) is missing history; refuse any
  // query that reads a relation outside the surviving set.
  ARIADNE_RETURN_NOT_OK(CheckDegradedCapture(*query_, *store_));
  if (store_->num_layers() == 0) {
    return Status::InvalidArgument("provenance store has no layers");
  }
  WallTimer timer;
  LayeredProgram program(graph_, store_, query_);
  ARIADNE_RETURN_NOT_OK(program.Prepare());
  EngineOptions engine_options = options_;
  // Lemma 5.3: evaluation needs at most n supersteps (the driver halts
  // after the last layer regardless).
  engine_options.max_supersteps = store_->num_layers() + 1;
  Engine<char, ShipMessage> engine(graph_, engine_options);
  ARIADNE_ASSIGN_OR_RETURN(RunStats stats, engine.Run(program));
  ARIADNE_RETURN_NOT_OK(program.status());

  OfflineRun run;
  run.result = program.CollectResult();
  run.stats.seconds = timer.ElapsedSeconds();
  run.stats.supersteps = stats.supersteps;
  run.stats.peak_layer_bytes = program.peak_layer_bytes();
  run.stats.materialized_bytes =
      program.StateBytes() + program.peak_layer_bytes();
  run.stats.result_tuples = run.result.TotalTuples();
  run.stats.eval = program.CollectEvalStats();
  return run;
}

}  // namespace ariadne
