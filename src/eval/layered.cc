#include "eval/layered.h"

#include "common/timer.h"
#include "eval/layered_step.h"

namespace ariadne {

LayeredEvaluator::LayeredEvaluator(const Graph* graph,
                                   const ProvenanceStore* store,
                                   const AnalyzedQuery* query,
                                   EngineOptions options)
    : graph_(graph), store_(store), query_(query), options_(options) {}

Result<OfflineRun> LayeredEvaluator::Run() {
  WallTimer timer;
  LayeredQueryRun run(graph_, store_, query_);
  ARIADNE_RETURN_NOT_OK(run.Init());
  const int send_rel = store_->RelId("send-message");
  const int receive_rel = store_->RelId("receive-message");
  while (!run.done()) {
    const int step = run.NextLayerStep();
    ARIADNE_ASSIGN_OR_RETURN(
        std::shared_ptr<const Layer> layer,
        store_->GetLayerRelations(step, run.needed_rels()));
    // Direction-aware prefetch: warm the pages of the layer the *next*
    // step will read (ascending forward, descending backward) while this
    // one computes.
    const int after = run.LayerStepAfterNext();
    if (after >= 0) store_->PrefetchLayer(after, run.needed_rels());
    auto view = BuildLayerView(std::move(layer), step, send_rel, receive_rel,
                               run.needed_rels());
    ARIADNE_RETURN_NOT_OK(run.Step(*view));
  }
  return run.Finish(timer.ElapsedSeconds());
}

}  // namespace ariadne
