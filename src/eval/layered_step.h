#ifndef ARIADNE_EVAL_LAYERED_STEP_H_
#define ARIADNE_EVAL_LAYERED_STEP_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/types.h"
#include "eval/common.h"
#include "graph/graph.h"
#include "provenance/store.h"

namespace ariadne {

/// Query-independent derived view of one provenance layer: the decoded
/// layer plus the per-vertex slice index and the ship-routing maps along
/// the recorded message edges. Building one of these is the expensive
/// part of a layered processing step (page read + decompress + index);
/// it depends only on (layer, relation subset), never on the query, so
/// the serve scheduler builds it ONCE per layer group and fans the same
/// immutable view out to every subscribed query (Quegel-style
/// superstep-sharing, DESIGN.md §2.6).
struct LayerView {
  /// Store layer index this view was built from.
  int step = 0;
  /// Keeps the decoded slices alive independent of store eviction.
  std::shared_ptr<const Layer> layer;
  /// Relations materialized in this view, sorted (empty = all). A view
  /// may safely serve any query whose needed relations are a subset.
  std::vector<int> rels;
  /// vertex -> its slices in this layer (pointers into `layer`).
  std::unordered_map<VertexId, std::vector<const LayerSlice*>> by_vertex;
  /// This layer's recorded message edges, sorted-unique per vertex:
  /// send-message targets / receive-message sources, for ship routing.
  std::unordered_map<VertexId, std::vector<VertexId>> route_out;
  std::unordered_map<VertexId, std::vector<VertexId>> route_in;

  /// True when the view materializes `rel` (empty rels = all).
  bool HasRel(int rel) const;
  /// True when a view over `rels` can serve a query needing `needed`
  /// (needed empty = the query reads every relation).
  bool Covers(const std::vector<int>& needed) const;
};

/// Builds the derived indexes for `layer` (materialized with relation
/// subset `rels`, sorted; empty = all). `send_rel`/`receive_rel` are the
/// store's message-edge relation ids (-1 when not captured).
std::shared_ptr<const LayerView> BuildLayerView(
    std::shared_ptr<const Layer> layer, int step, int send_rel,
    int receive_rel, std::vector<int> rels);

/// Sorted-unique static-adjacency lists, one plane per direction class
/// (0 = both, 1 = out, 2 = in), one slot per vertex — the fallback ship
/// routing when a (custom) capture lacks message records, and the
/// routing for edge-guarded queries.
///
/// Two modes:
///  - lazily filled (one-shot evaluation): Get() fills the slot on first
///    use; each slot must then be touched by a single thread at a time
///    (the serial step loop guarantees this).
///  - Precompute()d (the serve path): all planes are built eagerly, the
///    structure is immutable afterwards and Get() is safe from any
///    number of concurrent query steps.
class AdjacencyCache {
 public:
  explicit AdjacencyCache(const Graph* graph);

  /// Eagerly fills every plane; afterwards the cache is read-only and
  /// shareable across threads.
  void Precompute();
  bool precomputed() const { return precomputed_; }

  std::span<const VertexId> Get(int plane, VertexId v);

  /// Resident bytes of the materialized lists (serve stats).
  size_t MemoryBytes() const;

 private:
  void Fill(int plane, VertexId v);

  const Graph* graph_;
  bool precomputed_ = false;
  std::vector<std::vector<std::vector<VertexId>>> planes_;
  std::vector<std::vector<uint8_t>> filled_;
};

/// One query's layered evaluation, resumable in layer-sized steps — the
/// refactor of the old engine-driven LayeredProgram that makes
/// superstep-sharing possible. The caller (LayeredEvaluator for one-shot
/// runs, the serve scheduler for batched runs) owns the loop:
///
///   LayeredQueryRun run(graph, store, query, adjacency);
///   run.Init();
///   while (!run.done()) {
///     view = ... build/acquire LayerView for run.NextLayerStep() ...
///     run.Step(*view);
///   }
///   OfflineRun out = run.Finish();
///
/// Step processes exactly one provenance layer for every vertex the
/// layer or pending ships touch, in ascending vertex order, and buffers
/// outgoing ships for the next step — the same schedule the BSP engine
/// produced (all vertices active, ships delivered at the barrier in
/// sender order), so results and EvalStats are identical to the
/// pre-refactor evaluator and to a sequential one-shot run.
class LayeredQueryRun {
 public:
  /// `adjacency` may be shared across concurrent runs only when
  /// precomputed; pass nullptr to let the run own a lazy private cache.
  /// All pointers must outlive the run.
  LayeredQueryRun(const Graph* graph, const ProvenanceStore* store,
                  const AnalyzedQuery* query,
                  AdjacencyCache* adjacency = nullptr);

  /// Validates (mode, degraded-capture) and prepares per-vertex state.
  Status Init();

  bool done() const { return processing_step_ >= total_steps_; }
  /// The store layer index the next Step must be fed, or -1 when done.
  int NextLayerStep() const;
  /// The store layer the step after the next one needs (prefetch hint),
  /// or -1.
  int LayerStepAfterNext() const;

  /// Store relations this query reads (sorted; empty = all) — the
  /// relation subset a serving LayerView must cover.
  const std::vector<int>& needed_rels() const { return needed_rels_; }

  /// Processes one layer. `view.step` must equal NextLayerStep() and
  /// `view` must Cover(needed_rels()). Only this query's private state
  /// is mutated — concurrent Steps of different runs over one shared
  /// view are race-free.
  Status Step(const LayerView& view);

  /// Collects the result and statistics. `seconds` is the caller-timed
  /// wall time (queueing excluded for served queries).
  Result<OfflineRun> Finish(double seconds);

 private:
  bool RelMatters(int rel) const;
  void InsertSlice(Database& db, const LayerSlice& slice);
  std::span<const VertexId> RoutingTargets(VertexId v, ShipRouting routing,
                                           const LayerView& view);

  const Graph* graph_;
  const ProvenanceStore* store_;
  const AnalyzedQuery* query_;
  RuleEvaluator evaluator_;
  bool descending_ = false;
  int total_steps_ = 0;
  int processing_step_ = 0;

  std::vector<int> rel_to_pred_;
  int send_rel_ = -1, receive_rel_ = -1;
  std::vector<int> needed_rels_;

  std::vector<NodeQueryState> states_;
  std::unordered_map<VertexId, std::vector<const LayerSlice*>> static_index_;
  /// Ships delivered at the next step's barrier, per target, in sender
  /// order (the engine's deterministic delivery order).
  std::unordered_map<VertexId, std::vector<ShipBundlePtr>> inbox_;
  std::unordered_map<VertexId, std::vector<ShipBundlePtr>> next_inbox_;

  AdjacencyCache* adjacency_;
  std::unique_ptr<AdjacencyCache> owned_adjacency_;

  size_t peak_layer_bytes_ = 0;
  Status first_error_;
};

}  // namespace ariadne

#endif  // ARIADNE_EVAL_LAYERED_STEP_H_
