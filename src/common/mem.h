#ifndef ARIADNE_COMMON_MEM_H_
#define ARIADNE_COMMON_MEM_H_

#include <cstdint>

namespace ariadne {

/// Peak resident set size of this process in bytes (Linux VmHWM, with a
/// getrusage fallback), or 0 when the platform offers no reading. The
/// out-of-core experiments report this next to the cache budgets
/// (RunStats::peak_rss_bytes, DESIGN.md §2.7).
uint64_t PeakRssBytes();

/// Current resident set size in bytes (Linux VmRSS), or 0 if unknown.
uint64_t CurrentRssBytes();

}  // namespace ariadne

#endif  // ARIADNE_COMMON_MEM_H_
