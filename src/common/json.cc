#include "common/json.h"

#include <cstdio>

namespace ariadne::json {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

JsonObject& JsonObject::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::SetRaw(const std::string& key, std::string raw_json) {
  fields_.emplace_back(key, std::move(raw_json));
  return *this;
}

std::string JsonObject::Dump() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
  }
  return out + "}";
}

std::string JsonArray(const std::vector<std::string>& elements, int indent) {
  if (elements.empty()) return "[]";
  if (indent <= 0) {
    std::string out = "[";
    for (size_t i = 0; i < elements.size(); ++i) {
      if (i > 0) out += ", ";
      out += elements[i];
    }
    return out + "]";
  }
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "[\n";
  for (size_t i = 0; i < elements.size(); ++i) {
    out += pad + elements[i];
    out += (i + 1 < elements.size()) ? ",\n" : "\n";
  }
  out += std::string(static_cast<size_t>(indent > 2 ? indent - 2 : 0), ' ');
  return out + "]";
}

}  // namespace ariadne::json
