#include "common/mem.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

namespace ariadne {

namespace {

/// Reads a "<key>:   <n> kB" line from /proc/self/status; 0 if absent.
uint64_t ProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      std::sscanf(line + key_len + 1, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

uint64_t PeakRssBytes() {
  const uint64_t kb = ProcStatusKb("VmHWM");
  if (kb > 0) return kb * 1024;
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    // ru_maxrss is KiB on Linux.
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
  }
  return 0;
}

uint64_t CurrentRssBytes() { return ProcStatusKb("VmRSS") * 1024; }

}  // namespace ariadne
