#include "common/serialize.h"

#include <cstdio>
#include <fstream>

namespace ariadne {

void BinaryWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt:
      WriteI64(v.AsInt());
      break;
    case Value::Kind::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case Value::Kind::kString:
      WriteString(v.AsString());
      break;
    case Value::Kind::kDoubleVector: {
      const auto& vec = v.AsDoubleVector();
      WriteU64(vec.size());
      for (double d : vec) WriteDouble(d);
      break;
    }
  }
}

Status BinaryReader::ReadRaw(void* p, size_t n) {
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("binary read past end of buffer");
  }
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  double v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("string read past end of buffer");
  }
  std::string s = buf_.substr(pos_, n);
  pos_ += n;
  return s;
}

Result<Value> BinaryReader::ReadValue() {
  ARIADNE_ASSIGN_OR_RETURN(uint8_t kind, ReadU8());
  switch (static_cast<Value::Kind>(kind)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kInt: {
      ARIADNE_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case Value::Kind::kDouble: {
      ARIADNE_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value(v);
    }
    case Value::Kind::kString: {
      ARIADNE_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
    case Value::Kind::kDoubleVector: {
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
      if (n > remaining() / sizeof(double)) {
        return Status::OutOfRange("vector length exceeds buffer");
      }
      std::vector<double> vec(n);
      for (uint64_t i = 0; i < n; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(vec[i], ReadDouble());
      }
      return Value(std::move(vec));
    }
  }
  return Status::ParseError("unknown Value kind tag " + std::to_string(kind));
}

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace ariadne
