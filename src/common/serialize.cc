#include "common/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "recovery/fault_injector.h"

namespace ariadne {

void BinaryWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt:
      WriteI64(v.AsInt());
      break;
    case Value::Kind::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case Value::Kind::kString:
      WriteString(v.AsString());
      break;
    case Value::Kind::kDoubleVector: {
      const auto& vec = v.AsDoubleVector();
      WriteU64(vec.size());
      for (double d : vec) WriteDouble(d);
      break;
    }
  }
}

Status BinaryReader::ReadRaw(void* p, size_t n) {
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("binary read past end of buffer");
  }
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  double v;
  ARIADNE_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("string read past end of buffer");
  }
  std::string s = buf_.substr(pos_, n);
  pos_ += n;
  return s;
}

Result<Value> BinaryReader::ReadValue() {
  ARIADNE_ASSIGN_OR_RETURN(uint8_t kind, ReadU8());
  switch (static_cast<Value::Kind>(kind)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kInt: {
      ARIADNE_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case Value::Kind::kDouble: {
      ARIADNE_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value(v);
    }
    case Value::Kind::kString: {
      ARIADNE_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
    case Value::Kind::kDoubleVector: {
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
      if (n > remaining() / sizeof(double)) {
        return Status::OutOfRange("vector length exceeds buffer");
      }
      std::vector<double> vec(n);
      for (uint64_t i = 0; i < n; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(vec[i], ReadDouble());
      }
      return Value(std::move(vec));
    }
  }
  return Status::ParseError("unknown Value kind tag " + std::to_string(kind));
}

namespace {

/// write(2) loop handling short writes and EINTR.
bool WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable (a crash after rename cannot resurrect the old file).
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Status WriteFile(const std::string& path, const std::string& data) {
  ARIADNE_RETURN_NOT_OK(recovery::CheckFaultPoint("file-write"));
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  auto fail = [&](const char* what) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError(std::string(what) + ": " + tmp + ": " +
                           std::strerror(saved));
  };
  const size_t half = data.size() / 2;
  if (!WriteAll(fd, data.data(), half)) return fail("write failed");
  {
    // A kCrash rule here exits mid-write, leaving a torn *temp* file:
    // the destination is untouched, which is the whole point.
    Status mid = recovery::CheckFaultPoint("file-write-mid");
    if (!mid.ok()) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return mid.WithContext("writing " + path);
    }
  }
  if (!WriteAll(fd, data.data() + half, data.size() - half)) {
    return fail("write failed");
  }
  if (::fsync(fd) != 0) return fail("fsync failed");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("close failed: " + tmp + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path + ": " +
                           std::strerror(saved));
  }
  SyncParentDir(path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace ariadne
