#ifndef ARIADNE_COMMON_STRING_UTIL_H_
#define ARIADNE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ariadne {

/// Splits `s` on `sep`, dropping empty pieces when `skip_empty`.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool skip_empty = true);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// "4.10 GB", "23.4 MB", "512 B" — used by the provenance-size benches.
std::string HumanBytes(size_t bytes);

/// Fixed-precision double formatting ("1.34").
std::string FormatDouble(double v, int precision = 2);

}  // namespace ariadne

#endif  // ARIADNE_COMMON_STRING_UTIL_H_
