#include "common/retry.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace ariadne {

uint64_t RetryThreadSalt() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t salt = [] {
    // One splitmix64 step spreads the small dense counter over 64 bits.
    Rng mix(next.fetch_add(1, std::memory_order_relaxed));
    return mix.Next();
  }();
  return salt;
}

void BackoffSleep(int attempt, double base_ms, Rng& jitter) {
  const double delay_ms = base_ms *
                          static_cast<double>(1u << (attempt - 1)) *
                          (1.0 + jitter.NextDouble());
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay_ms));
}

}  // namespace ariadne
