#ifndef ARIADNE_COMMON_RANDOM_H_
#define ARIADNE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ariadne {

/// Deterministic 64-bit PRNG (splitmix64). All generators and benchmarks
/// seed explicitly so every experiment in EXPERIMENTS.md is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextUInt(uint64_t n) { return Next() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} via precomputed
/// cumulative weights. Used by the bipartite rating generator to give
/// items a realistic popularity skew.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ariadne

#endif  // ARIADNE_COMMON_RANDOM_H_
