#ifndef ARIADNE_COMMON_RETRY_H_
#define ARIADNE_COMMON_RETRY_H_

#include <cstdint>
#include <utility>

#include "common/random.h"
#include "common/status.h"

namespace ariadne {

/// Shared transient-I/O retry policy (DESIGN.md §2.8), extracted from the
/// LayerStore flush/read ladder and applied to every paged read path
/// (storage pages, graph partitions, vertex-state pages, checkpoint
/// loads, serve scans). An op gets `max_attempts` tries; attempts beyond
/// the first back off exponentially from `backoff_base_ms` with up to
/// 100% seeded jitter.
struct RetryPolicy {
  /// Attempts before the op counts as failed; <= 1 disables retry.
  int max_attempts = 3;
  /// Backoff before the 2nd attempt, in ms; doubles per attempt.
  double backoff_base_ms = 1.0;
  /// Jitter seed. Per call site it is mixed with a caller salt AND a
  /// per-thread salt (RetryThreadSalt), so concurrent retriers never
  /// back off in lockstep even when they share a policy.
  uint64_t seed = 0x41524941;  // "ARIA"

  static RetryPolicy Disabled() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Retryable-status classification: transient errors are I/O hiccups
/// (EIO, short read, injected faults) that a retry or an fd reopen can
/// heal. Corruption (ParseError) and logic errors are permanent — the
/// bytes will not improve on a second read.
inline bool IsTransientError(const Status& status) {
  return status.code() == StatusCode::kIOError;
}

/// Process-unique salt of the calling thread (lazily assigned, stable for
/// the thread's lifetime). Mixed into every retry jitter stream so
/// threads retrying the same object fan out instead of thundering in
/// lockstep.
uint64_t RetryThreadSalt();

/// Jitter-stream seed for one retrying call site: policy seed x caller
/// salt (layer/page/partition id) x per-thread salt.
inline uint64_t MixRetrySeed(uint64_t seed, uint64_t salt) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1)) ^
         (0xbf58476d1ce4e5b9ULL * RetryThreadSalt());
}

/// Sleeps before retry attempt `attempt` (1-based count of attempts made
/// so far): exponential backoff from `base_ms`, doubling per attempt,
/// plus up to 100% jitter drawn from `jitter`.
void BackoffSleep(int attempt, double base_ms, Rng& jitter);

/// Result of a retried op: the final status plus how many attempts ran.
struct RetryOutcome {
  Status status;
  int attempts = 1;
  /// Attempts beyond the first — what the per-component retry counters
  /// accumulate.
  int retries() const { return attempts - 1; }
};

/// Runs `op` (returning Status) up to `policy.max_attempts` times,
/// sleeping between attempts, while the error stays transient
/// (IsTransientError). Permanent errors return immediately. `salt`
/// decorrelates this call site's jitter from concurrent ones.
template <typename Fn>
RetryOutcome RetryTransient(const RetryPolicy& policy, uint64_t salt,
                            Fn&& op) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Rng jitter(MixRetrySeed(policy.seed, salt));
  RetryOutcome out;
  for (int attempt = 1;; ++attempt) {
    out.status = op();
    out.attempts = attempt;
    if (out.status.ok() || attempt == max_attempts ||
        !IsTransientError(out.status)) {
      return out;
    }
    BackoffSleep(attempt, policy.backoff_base_ms, jitter);
  }
}

}  // namespace ariadne

#endif  // ARIADNE_COMMON_RETRY_H_
