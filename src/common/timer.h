#ifndef ARIADNE_COMMON_TIMER_H_
#define ARIADNE_COMMON_TIMER_H_

#include <chrono>

namespace ariadne {

/// Monotonic wall-clock stopwatch used by engine stats and benches.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ariadne

#endif  // ARIADNE_COMMON_TIMER_H_
