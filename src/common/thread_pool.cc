#include "common/thread_pool.h"

#include <atomic>

namespace ariadne {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty()) {
    fn(0, n);
    return;
  }
  const size_t num_chunks = threads_.size() * 4;
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::atomic<size_t> pending{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(begin + chunk, n);
    pending.fetch_add(1);
    Submit([&, begin, end] {
      fn(begin, end);
      if (pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending.load() == 0; });
}

}  // namespace ariadne
