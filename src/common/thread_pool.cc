#include "common/thread_pool.h"

#include <algorithm>

namespace ariadne {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  // The caller participates as worker 0, so spawn one fewer thread than
  // the requested concurrency.
  threads_.reserve(num_threads - 1);
  for (size_t i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkOn(Job& job, size_t worker) {
  for (;;) {
    const size_t chunk = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) return;
    const size_t begin = chunk * job.chunk_size;
    const size_t end = std::min(begin + job.chunk_size, job.n);
    job.fn(job.ctx, worker, chunk, begin, end);
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = job_generation_;
      job = job_;
    }
    WorkOn(*job, worker);
    // The caller frees the job only after every pool thread has exited it,
    // so this fetch_add is the last touch this worker makes.
    if (job->workers_exited.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        threads_.size()) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::RunJob(size_t n, size_t chunk_size, ChunkFn fn, void* ctx) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  if (threads_.empty() || num_chunks == 1) {
    // Inline: same chunk boundaries, worker 0 throughout.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t begin = chunk * chunk_size;
      fn(ctx, 0, chunk, begin, std::min(begin + chunk_size, n));
    }
    return;
  }

  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.n = n;
  job.chunk_size = chunk_size;
  job.num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_generation_;
  }
  job_cv_.notify_all();
  WorkOn(job, /*worker=*/0);
  // All chunks are claimed; wait until every pool thread has left the job
  // (it lives on this stack frame) before returning.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job.workers_exited.load(std::memory_order_acquire) ==
           threads_.size();
  });
  job_ = nullptr;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::max<size_t>(1, num_workers() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  ParallelForChunked(n, chunk,
                     [&fn](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                           size_t end) { fn(begin, end); });
}

}  // namespace ariadne
