#ifndef ARIADNE_COMMON_VALUE_H_
#define ARIADNE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace ariadne {

/// Runtime-typed value used throughout provenance capture and PQL
/// evaluation. Analytics remain statically typed; `ValueTraits<T>`
/// (analytics/value_traits.h) converts their vertex/message types into
/// `Value`s when provenance is recorded.
///
/// Supported kinds mirror what vertex-centric analytics exchange in
/// practice: 64-bit integers (ids, labels, supersteps), doubles (ranks,
/// distances, errors), strings (labels/diagnostics) and double vectors
/// (ALS feature vectors).
class Value {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kInt = 1,
    kDouble = 2,
    kString = 3,
    kDoubleVector = 4,
  };

  Value() = default;
  Value(int64_t v) : rep_(v) {}                       // NOLINT(runtime/explicit)
  Value(int v) : rep_(static_cast<int64_t>(v)) {}     // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}                        // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}        // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}      // NOLINT(runtime/explicit)
  Value(std::vector<double> v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_double_vector() const { return kind() == Kind::kDoubleVector; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Precondition: matching kind (asserted in debug builds).
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const std::vector<double>& AsDoubleVector() const {
    return std::get<std::vector<double>>(rep_);
  }

  /// Numeric coercion: ints widen to double; errors on non-numeric kinds.
  Result<double> ToDouble() const;
  /// Integer view; errors on non-integers (doubles are not truncated).
  Result<int64_t> ToInt() const;

  /// Strict structural equality (kind and payload). Note: Value(1) !=
  /// Value(1.0); use NumericCompare for coercing comparison predicates.
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: first by kind, then by payload. Gives deterministic
  /// sorting of heterogeneous tuples (relation dumps, test golden output).
  bool operator<(const Value& other) const;

  /// Three-way numeric/lexicographic comparison used by PQL comparison
  /// predicates (θ ∈ {=,≠,<,≤,>,≥}). Numeric kinds coerce (1 == 1.0);
  /// strings compare lexicographically; errors on incompatible kinds.
  Result<int> NumericCompare(const Value& other) const;

  /// Arithmetic for PQL terms (i - 1, s / d, ...). Int op int stays int
  /// except division, which always yields double. Double vectors support
  /// elementwise + and - (used by UDFs like euclidean distance).
  Result<Value> Add(const Value& other) const;
  Result<Value> Sub(const Value& other) const;
  Result<Value> Mul(const Value& other) const;
  Result<Value> Div(const Value& other) const;

  /// Hash consistent with operator==.
  size_t Hash() const;

  std::string ToString() const;

  /// Approximate heap + inline footprint in bytes; used for provenance
  /// size accounting (paper Tables 3 and 4).
  size_t ByteSize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string,
               std::vector<double>>
      rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ariadne

#endif  // ARIADNE_COMMON_VALUE_H_
