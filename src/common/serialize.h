#ifndef ARIADNE_COMMON_SERIALIZE_H_
#define ARIADNE_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace ariadne {

/// Append-only little-endian binary encoder. Used by the provenance store
/// spill path (the stand-in for the paper's HDFS offload) and graph
/// binary I/O.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    buf_.append(s);
  }
  void WriteValue(const Value& v);

  const std::string& data() const { return buf_; }
  std::string MoveData() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void WriteRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked decoder over a byte buffer produced by BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : buf_(std::move(data)) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Value> ReadValue();

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }
  /// Current byte offset — used by storage error messages to point at
  /// the corrupt position of a spill or store file.
  size_t pos() const { return pos_; }

 private:
  Status ReadRaw(void* p, size_t n);
  std::string buf_;
  size_t pos_ = 0;
};

/// Writes `data` to `path` atomically: write to a temp file in the same
/// directory, fsync, rename over `path`, fsync the directory. A crash at
/// any instant leaves either the old complete file or the new complete
/// file — never a torn one (crash_recovery_test proves this under
/// injected kills). Used by every durable artifact: spill files, APV2
/// store images, checkpoints. Fault points: "file-write" (before any
/// byte), "file-write-mid" (halfway through the temp file).
Status WriteFile(const std::string& path, const std::string& data);
/// Reads the whole file at `path`.
Result<std::string> ReadFile(const std::string& path);

}  // namespace ariadne

#endif  // ARIADNE_COMMON_SERIALIZE_H_
