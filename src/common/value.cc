#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace ariadne {

namespace {

size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

Result<double> Value::ToDouble() const {
  switch (kind()) {
    case Kind::kInt:
      return static_cast<double>(AsInt());
    case Kind::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument("cannot coerce " + ToString() +
                                     " to double");
  }
}

Result<int64_t> Value::ToInt() const {
  if (is_int()) return AsInt();
  return Status::InvalidArgument("cannot coerce " + ToString() + " to int");
}

bool Value::operator<(const Value& other) const {
  if (kind() != other.kind()) return kind() < other.kind();
  return rep_ < other.rep_;
}

Result<int> Value::NumericCompare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    const double a = is_int() ? static_cast<double>(AsInt()) : AsDouble();
    const double b =
        other.is_int() ? static_cast<double>(other.AsInt()) : other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_null() && other.is_null()) return 0;
  return Status::InvalidArgument("incomparable values: " + ToString() +
                                 " vs " + other.ToString());
}

namespace {

Result<Value> NumericBinary(const Value& a, const Value& b, char op) {
  if (a.is_int() && b.is_int() && op != '/') {
    const int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case '+':
        return Value(x + y);
      case '-':
        return Value(x - y);
      case '*':
        return Value(x * y);
    }
  }
  if (a.is_double_vector() && b.is_double_vector() &&
      (op == '+' || op == '-')) {
    const auto& x = a.AsDoubleVector();
    const auto& y = b.AsDoubleVector();
    if (x.size() != y.size()) {
      return Status::InvalidArgument("vector arity mismatch in arithmetic");
    }
    std::vector<double> out(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      out[i] = op == '+' ? x[i] + y[i] : x[i] - y[i];
    }
    return Value(std::move(out));
  }
  ARIADNE_ASSIGN_OR_RETURN(double x, a.ToDouble());
  ARIADNE_ASSIGN_OR_RETURN(double y, b.ToDouble());
  switch (op) {
    case '+':
      return Value(x + y);
    case '-':
      return Value(x - y);
    case '*':
      return Value(x * y);
    case '/':
      if (y == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      return Value(x / y);
  }
  return Status::Internal("unknown arithmetic operator");
}

}  // namespace

Result<Value> Value::Add(const Value& other) const {
  return NumericBinary(*this, other, '+');
}
Result<Value> Value::Sub(const Value& other) const {
  return NumericBinary(*this, other, '-');
}
Result<Value> Value::Mul(const Value& other) const {
  return NumericBinary(*this, other, '*');
}
Result<Value> Value::Div(const Value& other) const {
  return NumericBinary(*this, other, '/');
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind());
  switch (kind()) {
    case Kind::kNull:
      return HashCombine(seed, 0);
    case Kind::kInt:
      return HashCombine(seed, std::hash<int64_t>()(AsInt()));
    case Kind::kDouble:
      return HashCombine(seed, std::hash<double>()(AsDouble()));
    case Kind::kString:
      return HashCombine(seed, std::hash<std::string>()(AsString()));
    case Kind::kDoubleVector: {
      for (double d : AsDoubleVector()) {
        seed = HashCombine(seed, std::hash<double>()(d));
      }
      return seed;
    }
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case Kind::kString:
      return "\"" + AsString() + "\"";
    case Kind::kDoubleVector: {
      std::ostringstream os;
      os << "[";
      const auto& v = AsDoubleVector();
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) os << ",";
        os << v[i];
      }
      os << "]";
      return os.str();
    }
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (kind()) {
    case Kind::kNull:
      return 1;
    case Kind::kInt:
      return sizeof(int64_t);
    case Kind::kDouble:
      return sizeof(double);
    case Kind::kString:
      return sizeof(size_t) + AsString().size();
    case Kind::kDoubleVector:
      return sizeof(size_t) + AsDoubleVector().size() * sizeof(double);
  }
  return 0;
}

}  // namespace ariadne
