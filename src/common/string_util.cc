#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace ariadne {

std::vector<std::string> Split(std::string_view s, char sep, bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start || !skip_empty) {
        out.emplace_back(s.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanBytes(size_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace ariadne
