#include "common/status.h"

namespace ariadne {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace ariadne
