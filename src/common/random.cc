#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace ariadne {

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace ariadne
