#ifndef ARIADNE_COMMON_JSON_H_
#define ARIADNE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ariadne::json {

// Minimal JSON emission shared by the bench harness (`--json out.json`
// sweeps), `ariadne_run --stats-json`, and `ariadne_serve`; avoids an
// external JSON dependency.

/// Escapes `s` for a JSON string literal (surrounding quotes not added).
std::string JsonEscape(const std::string& s);

/// Order-preserving object builder producing compact one-line JSON.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value);
  JsonObject& Set(const std::string& key, const char* value);
  JsonObject& Set(const std::string& key, double value);
  JsonObject& Set(const std::string& key, int64_t value);
  JsonObject& Set(const std::string& key, uint64_t value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JsonObject& Set(const std::string& key, int value) {
    return Set(key, static_cast<int64_t>(value));
  }
  JsonObject& Set(const std::string& key, bool value);
  /// Splices `raw_json` in verbatim (nested objects/arrays).
  JsonObject& SetRaw(const std::string& key, std::string raw_json);
  std::string Dump() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Renders `[e1, e2, ...]` from already-serialized elements; when
/// `indent > 0` each element sits on its own line at that indentation.
std::string JsonArray(const std::vector<std::string>& elements,
                      int indent = 0);

}  // namespace ariadne::json

#endif  // ARIADNE_COMMON_JSON_H_
