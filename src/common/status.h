#ifndef ARIADNE_COMMON_STATUS_H_
#define ARIADNE_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace ariadne {

/// Error categories used across the library. Modeled after the Arrow /
/// RocksDB convention of returning a rich status object instead of throwing.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kParseError = 6,
  kAnalysisError = 7,   ///< PQL semantic analysis failure (safety, stratification).
  kUnsupported = 8,     ///< Valid input, but a mode/feature we do not implement.
  kInternal = 9,
  kUnavailable = 10,    ///< Degraded/overloaded service; retry later.
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (a null pointer); errors carry a
/// heap-allocated payload. Functions that can fail return `Status` or
/// `Result<T>` and never throw.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsAnalysisError() const { return code() == StatusCode::kAnalysisError; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with `context` (no-op on OK statuses).
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // null == OK
};

/// Either a value of type `T` or an error `Status`. Analogous to
/// `arrow::Result<T>`.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Aborts (in debug) if `status` is OK:
  /// an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out; precondition: ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ariadne

/// Propagates a non-OK Status from an expression evaluating to Status.
#define ARIADNE_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::ariadne::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define ARIADNE_CONCAT_IMPL(x, y) x##y
#define ARIADNE_CONCAT(x, y) ARIADNE_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating its error or binding the
/// value to `lhs`. Usage: ARIADNE_ASSIGN_OR_RETURN(auto g, Graph::Load(p));
#define ARIADNE_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  ARIADNE_ASSIGN_OR_RETURN_IMPL(                                   \
      ARIADNE_CONCAT(_ariadne_result_, __LINE__), lhs, rexpr)

#define ARIADNE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // ARIADNE_COMMON_STATUS_H_
