#ifndef ARIADNE_COMMON_THREAD_POOL_H_
#define ARIADNE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ariadne {

/// Fixed-size worker pool used by the BSP engine to run per-partition
/// vertex compute within a superstep. With `num_threads == 0` (or 1) work
/// executes inline on the caller thread, which keeps single-core runs and
/// unit tests deterministic.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Partitions [0, n) into chunks and runs `fn(begin, end)` per chunk,
  /// blocking until all chunks finish. Exceptions in `fn` are not
  /// supported (the library does not throw on hot paths).
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ariadne

#endif  // ARIADNE_COMMON_THREAD_POOL_H_
