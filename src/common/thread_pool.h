#ifndef ARIADNE_COMMON_THREAD_POOL_H_
#define ARIADNE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ariadne {

/// Fixed-size worker pool used by the BSP engine to run per-partition
/// vertex compute within a superstep. With `num_threads == 0` (or 1) work
/// executes inline on the caller thread, which keeps single-core runs and
/// unit tests deterministic.
///
/// Dispatch is job-based: a parallel-for publishes one job descriptor and
/// workers claim fixed-size chunks from an atomic cursor, so no per-chunk
/// `std::function` (or any other heap object) is allocated. The caller
/// participates as worker 0. One job runs at a time; nested parallel-for
/// from inside a chunk callback is not supported.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size() + 1; }

  /// Workers that can execute chunks concurrently: the pool threads plus
  /// the calling thread. Always >= 1; equals 1 in inline mode.
  size_t num_workers() const { return threads_.size() + 1; }

  /// Partitions [0, n) into chunks of `chunk_size` and runs
  /// `fn(worker, chunk, begin, end)` once per chunk, blocking until all
  /// chunks finish. `worker` is in [0, num_workers()) and is stable for
  /// the duration of one chunk (chunks claimed by the same thread share
  /// it); `chunk == begin / chunk_size`. Chunk *boundaries* depend only on
  /// `n` and `chunk_size`, never on the number of threads, which is what
  /// lets the engine keep results bit-identical across thread counts.
  /// Exceptions in `fn` are not supported (the library does not throw on
  /// hot paths).
  template <typename F>
  void ParallelForChunked(size_t n, size_t chunk_size, F&& fn) {
    RunJob(n, chunk_size, &InvokeChunkFn<std::remove_reference_t<F>>,
           const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Back-compat shape: splits [0, n) into ~4 chunks per worker and runs
  /// `fn(begin, end)` per chunk. Prefer ParallelForChunked for hot paths
  /// (fixed chunking, worker ids, no std::function).
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Maps chunks of [0, n) through `map(begin, end) -> T` in parallel and
  /// folds the per-chunk results with `reduce(acc, partial)` *in chunk
  /// order* on the calling thread, so the fold tree is deterministic for
  /// any thread count. Returns `identity` when n == 0.
  template <typename T, typename MapFn, typename ReduceFn>
  T ParallelReduce(size_t n, size_t chunk_size, T identity, MapFn&& map,
                   ReduceFn&& reduce) {
    if (n == 0) return identity;
    const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
    // A raw array, not std::vector<T>: vector<bool> packs elements into
    // shared words, which would both fail to bind references and race
    // across chunks.
    std::unique_ptr<T[]> partials(new T[num_chunks]);
    for (size_t c = 0; c < num_chunks; ++c) partials[c] = identity;
    ParallelForChunked(n, chunk_size,
                       [&](size_t /*worker*/, size_t chunk, size_t begin,
                           size_t end) { partials[chunk] = map(begin, end); });
    T acc = std::move(identity);
    for (size_t c = 0; c < num_chunks; ++c) {
      acc = reduce(std::move(acc), std::move(partials[c]));
    }
    return acc;
  }

 private:
  using ChunkFn = void (*)(void* ctx, size_t worker, size_t chunk,
                           size_t begin, size_t end);

  template <typename F>
  static void InvokeChunkFn(void* ctx, size_t worker, size_t chunk,
                            size_t begin, size_t end) {
    (*static_cast<F*>(ctx))(worker, chunk, begin, end);
  }

  /// One published parallel-for; lives on the caller's stack for the
  /// duration of RunJob.
  struct Job {
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    size_t n = 0;
    size_t chunk_size = 0;
    size_t num_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> workers_exited{0};
  };

  void RunJob(size_t n, size_t chunk_size, ChunkFn fn, void* ctx);
  void WorkOn(Job& job, size_t worker);
  void WorkerLoop(size_t worker);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable job_cv_;   ///< workers wait here for a new job
  std::condition_variable done_cv_;  ///< the caller waits here for drain
  Job* job_ = nullptr;
  uint64_t job_generation_ = 0;
  bool stop_ = false;
};

}  // namespace ariadne

#endif  // ARIADNE_COMMON_THREAD_POOL_H_
