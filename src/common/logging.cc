#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace ariadne {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace ariadne
