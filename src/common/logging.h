#ifndef ARIADNE_COMMON_LOGGING_H_
#define ARIADNE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ariadne {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Benches set
/// this to kWarning so timing output stays clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log statement; flushes on destruction. Use via the
/// ARIADNE_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ariadne

#define ARIADNE_LOG(level)                                            \
  ::ariadne::internal::LogMessage(::ariadne::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// Invariant check that survives NDEBUG: aborts with a message. Reserved
/// for programming errors, not data errors (those return Status).
#define ARIADNE_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__     \
                << ": " #cond << std::endl;                              \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // ARIADNE_COMMON_LOGGING_H_
