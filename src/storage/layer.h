#ifndef ARIADNE_STORAGE_LAYER_H_
#define ARIADNE_STORAGE_LAYER_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "engine/types.h"
#include "pql/relation.h"

namespace ariadne {

/// Schema entry of a stored provenance relation.
struct StoredRelation {
  std::string name;
  int arity = 0;
};

/// All tuples one vertex contributed to one relation within a layer.
struct LayerSlice {
  int rel = 0;  ///< index into ProvenanceStore schema
  VertexId vertex = 0;
  std::vector<Tuple> tuples;
};

/// One layer of the provenance graph (Definition 5.1): everything captured
/// during one superstep, in the compact per-vertex representation. Also
/// the unit of storage: the page codec (storage/page.h) encodes one layer
/// into fixed-size compressed pages, and the layer store spills/reloads
/// whole layers or per-relation subsets of them.
struct Layer {
  Superstep step = 0;
  std::vector<LayerSlice> slices;
  size_t byte_size = 0;

  void Add(int rel, VertexId vertex, std::vector<Tuple> tuples);

  /// Sorts slices into (rel, vertex) order. Capture wrappers call this
  /// before sealing a layer: multi-threaded capture appends slices in
  /// scheduling order, and canonicalizing makes the stored provenance —
  /// and its serialized bytes — identical for any engine thread count.
  void Canonicalize();
};

/// Row-major layer serialization — the legacy ("APV1") wire format, kept
/// for on-disk compatibility and as the uncompressed baseline that the
/// storage stats' compression ratio is measured against. New spill files
/// and store images use the page codec (storage/page.h) instead.
void SerializeLayer(const Layer& layer, BinaryWriter& writer);
Result<Layer> DeserializeLayer(BinaryReader& reader);

}  // namespace ariadne

#endif  // ARIADNE_STORAGE_LAYER_H_
