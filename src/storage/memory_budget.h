#ifndef ARIADNE_STORAGE_MEMORY_BUDGET_H_
#define ARIADNE_STORAGE_MEMORY_BUDGET_H_

#include <cstddef>
#include <string>

namespace ariadne::storage {

/// How one total memory budget (`--mem-budget-mb`) is split across the
/// three caches of an out-of-core run (DESIGN.md §2.7):
///
///   provenance page cache   = total * (1 - graph_fraction)
///   graph topology cache    = total * graph_fraction * 2/3
///   paged vertex state      = total * graph_fraction * 1/3
///
/// With the in-memory graph backend the graph needs no cache and the
/// provenance store keeps the whole budget — exactly the pre-§2.7
/// behavior of --mem-budget-mb.
struct BudgetSplit {
  size_t total = 0;
  size_t provenance = 0;
  size_t graph_topology = 0;
  size_t vertex_state = 0;
};

/// Default share of the total budget given to graph data (topology +
/// vertex state) when the paged backend is active.
inline constexpr double kDefaultGraphBudgetFraction = 0.5;

/// Of the graph share, the slice held by topology fragments; the rest is
/// the paged vertex-state budget. Topology dominates (ids + weights, both
/// directions) so it gets the larger slice.
inline constexpr double kTopologySliceOfGraphShare = 2.0 / 3.0;

/// Splits `total_bytes` for a run. `graph_paged` false returns everything
/// to provenance. `graph_fraction` outside (0, 1) falls back to the
/// default.
BudgetSplit ResolveBudgetSplit(size_t total_bytes, bool graph_paged,
                               double graph_fraction);

/// Human-readable "prov=64MiB topo=21MiB vstate=10MiB" summary for logs
/// and --stats-json provenance.
std::string DescribeBudgetSplit(const BudgetSplit& split);

}  // namespace ariadne::storage

#endif  // ARIADNE_STORAGE_MEMORY_BUDGET_H_
