#include "storage/page_cache.h"

#include "recovery/fault_injector.h"

namespace ariadne::storage {

namespace {
/// Per-thread attribution sink (see ScopedCacheAttribution). A plain
/// thread_local pointer: attributed counters are single-writer by
/// construction (only this thread bumps its own sink).
thread_local PageCacheStats* t_attribution_sink = nullptr;
}  // namespace

ScopedCacheAttribution::ScopedCacheAttribution(PageCacheStats* sink)
    : previous_(t_attribution_sink) {
  t_attribution_sink = sink;
}

ScopedCacheAttribution::~ScopedCacheAttribution() {
  t_attribution_sink = previous_;
}

PageCacheStats* ScopedCacheAttribution::Current() {
  return t_attribution_sink;
}

std::shared_ptr<const Page> PageCache::Lookup(const PageKey& key) {
  // Fault point "cache-drop": the fired lookup behaves as if the entry
  // was just evicted — it is removed (unless pinned) and reported as a
  // miss, forcing the caller down the disk path.
  if (recovery::InjectionArmed() &&
      !recovery::FaultInjector::Global().Hit("cache-drop").ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second->pin_count == 0) {
      stats_.bytes_cached -= it->second->bytes;
      ++stats_.evictions;
      lru_.erase(it->second);
      map_.erase(it);
    }
    ++stats_.misses;
    if (t_attribution_sink != nullptr) ++t_attribution_sink->misses;
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    if (t_attribution_sink != nullptr) ++t_attribution_sink->misses;
    return nullptr;
  }
  ++stats_.hits;
  if (t_attribution_sink != nullptr) ++t_attribution_sink->hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->page;
}

bool PageCache::Contains(const PageKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.count(key) != 0;
}

void PageCache::Insert(const PageKey& key, std::shared_ptr<const Page> page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: identical content is the common case (a re-read after
    // eviction); swap the payload and move to the front either way.
    stats_.bytes_cached -= it->second->bytes;
    it->second->bytes = PageBytes(*page);
    it->second->page = std::move(page);
    stats_.bytes_cached += it->second->bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    Entry entry;
    entry.key = key;
    entry.bytes = PageBytes(*page);
    entry.page = std::move(page);
    stats_.bytes_cached += entry.bytes;
    ++stats_.insertions;
    if (t_attribution_sink != nullptr) ++t_attribution_sink->insertions;
    lru_.push_front(std::move(entry));
    map_[key] = lru_.begin();
  }
  EvictLocked();
}

void PageCache::Pin(const PageKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) ++it->second->pin_count;
}

void PageCache::Unpin(const PageKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end() && it->second->pin_count > 0) --it->second->pin_count;
}

void PageCache::EvictLocked() {
  if (stats_.bytes_cached <= budget_) return;
  for (auto it = std::prev(lru_.end());;) {
    const bool at_front = it == lru_.begin();
    auto prev = at_front ? it : std::prev(it);
    if (it->pin_count == 0) {
      stats_.bytes_cached -= it->bytes;
      ++stats_.evictions;
      // Evictions are attributed to the inserting thread: its insert is
      // what pushed the cache over budget.
      if (t_attribution_sink != nullptr) ++t_attribution_sink->evictions;
      map_.erase(it->key);
      lru_.erase(it);
    }
    if (at_front || stats_.bytes_cached <= budget_) break;
    it = prev;
  }
}

PageCacheStats PageCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ariadne::storage
