#ifndef ARIADNE_STORAGE_PAGE_CACHE_H_
#define ARIADNE_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/page.h"

namespace ariadne::storage {

/// Identity of one encoded page: (layer step, page index within layer).
struct PageKey {
  int32_t step = 0;
  uint32_t index = 0;
  bool operator==(const PageKey& other) const {
    return step == other.step && index == other.index;
  }
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    return (static_cast<size_t>(static_cast<uint32_t>(k.step)) << 32) ^
           k.index;
  }
};

/// Cache counters; all monotonically increasing except `bytes_cached`.
struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t bytes_cached = 0;  ///< current payload bytes resident

  /// Counter movement since `before` (a Snapshot taken earlier);
  /// `bytes_cached` carries the current value, not a difference. The
  /// snapshot/delta pair is how `bench_serve_micro` and the serve stats
  /// attribute cache activity to one phase without racing concurrent
  /// readers or the background flusher: both ends are internally
  /// consistent copies taken under the cache lock.
  PageCacheStats Delta(const PageCacheStats& before) const {
    PageCacheStats d;
    d.hits = hits - before.hits;
    d.misses = misses - before.misses;
    d.evictions = evictions - before.evictions;
    d.insertions = insertions - before.insertions;
    d.bytes_cached = bytes_cached;
    return d;
  }

  void Merge(const PageCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    insertions += o.insertions;
    bytes_cached = o.bytes_cached;
  }
};

/// Attributes page-cache activity on the *current thread* to `sink` for
/// the scope's lifetime: every hit/miss/eviction/insertion the thread
/// causes is added to the sink as well as to the cache's global stats.
/// The serve shared-scan executor wraps each store read in one of these,
/// so per-query cache attribution costs nothing on unattributed paths
/// (background flush/prefetch threads never set a sink). Scopes nest;
/// the previous sink is restored on destruction.
class ScopedCacheAttribution {
 public:
  explicit ScopedCacheAttribution(PageCacheStats* sink);
  ~ScopedCacheAttribution();

  ScopedCacheAttribution(const ScopedCacheAttribution&) = delete;
  ScopedCacheAttribution& operator=(const ScopedCacheAttribution&) = delete;

  /// The current thread's sink, or nullptr (internal, used by PageCache).
  static PageCacheStats* Current();

 private:
  PageCacheStats* previous_;
};

/// Thread-safe LRU cache of encoded (compressed) pages under a byte
/// budget. Entries hand out shared_ptrs, so a reader is never invalidated
/// by a concurrent eviction — eviction merely drops the cache's own
/// reference. Pinned pages are exempt from eviction (used while a layer's
/// page set is being decoded or prefetched), which is what makes the
/// budget a soft bound: pins can transiently exceed it.
class PageCache {
 public:
  explicit PageCache(size_t budget_bytes) : budget_(budget_bytes) {}

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Returns the cached page or nullptr, counting a hit or miss and
  /// refreshing LRU order on hit.
  std::shared_ptr<const Page> Lookup(const PageKey& key);

  /// Stat-neutral presence probe (prefetchers use this so speculative
  /// checks never skew the hit rate).
  bool Contains(const PageKey& key) const;

  /// Inserts (or refreshes) `page`, evicting least-recently-used unpinned
  /// entries until the budget holds. With a zero budget the insert is a
  /// no-op unless the page is pinned.
  void Insert(const PageKey& key, std::shared_ptr<const Page> page);

  /// Marks a cached page ineligible for eviction / re-eligible. Pins
  /// nest; unpinning an uncached or unpinned key is a no-op.
  void Pin(const PageKey& key);
  void Unpin(const PageKey& key);

  PageCacheStats stats() const;
  /// Internally-consistent copy of the counters (taken under the cache
  /// lock — safe against concurrent readers and the flusher). Pair two
  /// snapshots with PageCacheStats::Delta for phase attribution.
  PageCacheStats Snapshot() const { return stats(); }
  size_t budget() const { return budget_; }

 private:
  struct Entry {
    PageKey key;
    std::shared_ptr<const Page> page;
    size_t bytes = 0;
    int pin_count = 0;
  };

  void EvictLocked();
  static size_t PageBytes(const Page& page) {
    return kPageWireHeaderBytes + page.payload.size();
  }

  const size_t budget_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<PageKey, std::list<Entry>::iterator, PageKeyHash> map_;
  PageCacheStats stats_;
};

}  // namespace ariadne::storage

#endif  // ARIADNE_STORAGE_PAGE_CACHE_H_
