#include "storage/page.h"

#include <cstring>

namespace ariadne::storage {

namespace {

/// Column encodings. Provenance columns are dominated by vertex ids and
/// superstep counters (small, slowly varying ints) and by payload doubles;
/// the tags below cover those hot shapes and fall back to a tagged
/// per-value encoding for anything else.
enum ColumnTag : uint8_t {
  kColConst = 0,     ///< every row holds the same value (e.g. step columns)
  kColIntDelta = 1,  ///< all ints: zigzag start + zigzag deltas
  kColDouble = 2,    ///< all doubles: raw 8-byte little-endian
  kColMixed = 3,     ///< per-value kind tag + payload
};

enum SliceFormat : uint8_t {
  kSliceColumnar = 0,  ///< uniform arity, column-major runs
  kSliceRowMajor = 1,  ///< mixed arity fallback, row-major tagged values
};

void AppendDoubleRaw(std::string* out, double d) {
  char buf[sizeof(double)];
  std::memcpy(buf, &d, sizeof(double));
  out->append(buf, sizeof(double));
}

void AppendValueTagged(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt:
      AppendZigzag(out, v.AsInt());
      break;
    case Value::Kind::kDouble:
      AppendDoubleRaw(out, v.AsDouble());
      break;
    case Value::Kind::kString: {
      const std::string& s = v.AsString();
      AppendVarint(out, s.size());
      out->append(s);
      break;
    }
    case Value::Kind::kDoubleVector: {
      const auto& vec = v.AsDoubleVector();
      AppendVarint(out, vec.size());
      for (double d : vec) AppendDoubleRaw(out, d);
      break;
    }
  }
}

void AppendColumn(std::string* out, const std::vector<Tuple>& tuples,
                  size_t col) {
  const Value& first = tuples[0][col];
  bool all_equal = true;
  bool all_int = first.is_int();
  bool all_double = first.is_double();
  for (const Tuple& t : tuples) {
    const Value& v = t[col];
    if (all_equal && v != first) all_equal = false;
    if (all_int && !v.is_int()) all_int = false;
    if (all_double && !v.is_double()) all_double = false;
  }
  if (all_equal) {
    out->push_back(static_cast<char>(kColConst));
    AppendValueTagged(out, first);
    return;
  }
  if (all_int) {
    out->push_back(static_cast<char>(kColIntDelta));
    int64_t prev = 0;
    for (const Tuple& t : tuples) {
      const int64_t v = t[col].AsInt();
      AppendZigzag(out, v - prev);
      prev = v;
    }
    return;
  }
  if (all_double) {
    out->push_back(static_cast<char>(kColDouble));
    for (const Tuple& t : tuples) AppendDoubleRaw(out, t[col].AsDouble());
    return;
  }
  out->push_back(static_cast<char>(kColMixed));
  for (const Tuple& t : tuples) AppendValueTagged(out, t[col]);
}

void AppendSlice(std::string* out, const LayerSlice& slice,
                 VertexId prev_vertex) {
  AppendZigzag(out, slice.vertex - prev_vertex);
  AppendVarint(out, slice.tuples.size());
  const size_t arity = slice.tuples[0].size();
  bool uniform = true;
  for (const Tuple& t : slice.tuples) {
    if (t.size() != arity) {
      uniform = false;
      break;
    }
  }
  if (!uniform || arity == 0) {
    out->push_back(static_cast<char>(kSliceRowMajor));
    for (const Tuple& t : slice.tuples) {
      AppendVarint(out, t.size());
      for (const Value& v : t) AppendValueTagged(out, v);
    }
    return;
  }
  out->push_back(static_cast<char>(kSliceColumnar));
  AppendVarint(out, arity);
  for (size_t col = 0; col < arity; ++col) {
    AppendColumn(out, slice.tuples, col);
  }
}

Result<double> ReadDoubleRaw(ByteReader& reader) {
  double d;
  ARIADNE_RETURN_NOT_OK(reader.ReadRaw(&d, sizeof(double)));
  return d;
}

Result<Value> ReadValueTagged(ByteReader& reader) {
  ARIADNE_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadByte());
  switch (static_cast<Value::Kind>(kind)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kInt: {
      ARIADNE_ASSIGN_OR_RETURN(int64_t v, reader.ReadZigzag());
      return Value(v);
    }
    case Value::Kind::kDouble: {
      ARIADNE_ASSIGN_OR_RETURN(double v, ReadDoubleRaw(reader));
      return Value(v);
    }
    case Value::Kind::kString: {
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
      if (n > reader.remaining()) {
        return Status::OutOfRange("string length " + std::to_string(n) +
                                  " exceeds payload");
      }
      std::string s(n, '\0');
      ARIADNE_RETURN_NOT_OK(reader.ReadRaw(s.data(), n));
      return Value(std::move(s));
    }
    case Value::Kind::kDoubleVector: {
      ARIADNE_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
      if (n > reader.remaining() / sizeof(double)) {
        return Status::OutOfRange("vector length " + std::to_string(n) +
                                  " exceeds payload");
      }
      std::vector<double> vec(n);
      for (uint64_t i = 0; i < n; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(vec[i], ReadDoubleRaw(reader));
      }
      return Value(std::move(vec));
    }
  }
  return Status::ParseError("unknown value kind tag " + std::to_string(kind));
}

Status ReadColumn(ByteReader& reader, std::vector<Tuple>& tuples,
                  size_t col) {
  ARIADNE_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadByte());
  const size_t n = tuples.size();
  switch (tag) {
    case kColConst: {
      ARIADNE_ASSIGN_OR_RETURN(Value v, ReadValueTagged(reader));
      for (size_t i = 0; i + 1 < n; ++i) tuples[i][col] = v;
      tuples[n - 1][col] = std::move(v);
      return Status::OK();
    }
    case kColIntDelta: {
      int64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(int64_t delta, reader.ReadZigzag());
        prev += delta;
        tuples[i][col] = Value(prev);
      }
      return Status::OK();
    }
    case kColDouble: {
      for (size_t i = 0; i < n; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(double d, ReadDoubleRaw(reader));
        tuples[i][col] = Value(d);
      }
      return Status::OK();
    }
    case kColMixed: {
      for (size_t i = 0; i < n; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(tuples[i][col], ReadValueTagged(reader));
      }
      return Status::OK();
    }
    default:
      return Status::ParseError("unknown column tag " + std::to_string(tag));
  }
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendZigzag(std::string* out, int64_t v) {
  AppendVarint(out, (static_cast<uint64_t>(v) << 1) ^
                        static_cast<uint64_t>(v >> 63));
}

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Checksum64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull ^ (data.size() * 0x9e3779b97f4a7c15ull);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001b3ull;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = (h ^ w) * 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

void AppendCheckedFrame(std::string_view payload, std::string* out) {
  const uint64_t len = payload.size();
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(payload);
  const uint64_t sum = Checksum64(payload);
  out->append(reinterpret_cast<const char*>(&sum), sizeof(sum));
}

Result<std::string_view> ParseCheckedFrame(std::string_view data,
                                           size_t* offset) {
  const size_t start = *offset;
  if (start > data.size() ||
      data.size() - start < kCheckedFrameOverhead) {
    return Status::ParseError("truncated frame header at byte " +
                              std::to_string(start));
  }
  uint64_t len;
  std::memcpy(&len, data.data() + start, sizeof(len));
  if (len > data.size() - start - kCheckedFrameOverhead) {
    return Status::ParseError("frame length " + std::to_string(len) +
                              " at byte " + std::to_string(start) +
                              " exceeds remaining bytes");
  }
  const std::string_view payload = data.substr(start + 8, len);
  uint64_t want;
  std::memcpy(&want, data.data() + start + 8 + len, sizeof(want));
  if (Checksum64(payload) != want) {
    return Status::ParseError("frame checksum mismatch at byte " +
                              std::to_string(start));
  }
  *offset = start + kCheckedFrameOverhead + len;
  return payload;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= size_) {
      return Status::OutOfRange("varint runs past end of payload");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::ParseError("varint longer than 10 bytes");
}

Result<int64_t> ByteReader::ReadZigzag() {
  ARIADNE_ASSIGN_OR_RETURN(uint64_t v, ReadVarint());
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

Result<uint8_t> ByteReader::ReadByte() {
  if (pos_ >= size_) return Status::OutOfRange("read past end of payload");
  return static_cast<uint8_t>(data_[pos_++]);
}

Status ByteReader::ReadRaw(void* p, size_t n) {
  if (n > remaining()) {
    return Status::OutOfRange("raw read past end of payload");
  }
  std::memcpy(p, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

std::vector<Page> EncodeLayer(const Layer& layer, size_t page_size) {
  std::vector<Page> pages;
  Page* open = nullptr;
  for (const LayerSlice& slice : layer.slices) {
    if (slice.tuples.empty()) continue;
    const uint32_t rel = static_cast<uint32_t>(slice.rel);
    if (open == nullptr || open->header.rel != rel ||
        open->payload.size() >= page_size) {
      pages.emplace_back();
      open = &pages.back();
      open->header.rel = rel;
      open->header.first_vertex = slice.vertex;
      open->header.last_vertex = slice.vertex;
    }
    // Vertex ids delta-encode against the previous slice of the page;
    // canonical layers are sorted per relation, so deltas stay tiny.
    const VertexId prev =
        open->header.slice_count == 0 ? 0 : open->header.last_vertex;
    AppendSlice(&open->payload, slice, prev);
    open->header.last_vertex = slice.vertex;
    ++open->header.slice_count;
    for (const Tuple& t : slice.tuples) {
      open->header.raw_bytes += TupleByteSize(t);
    }
  }
  return pages;
}

Status DecodePage(const Page& page, Layer* layer) {
  ByteReader reader(page.payload);
  VertexId prev_vertex = 0;
  for (uint32_t s = 0; s < page.header.slice_count; ++s) {
    ARIADNE_ASSIGN_OR_RETURN(int64_t delta, reader.ReadZigzag());
    const VertexId vertex = prev_vertex + delta;
    prev_vertex = vertex;
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_tuples, reader.ReadVarint());
    // Distinct tuples need at least one varying column, so a tuple costs
    // ~1 payload byte; the x64 slack covers const-heavy slices while
    // still rejecting corrupt counts before they drive allocations.
    if (n_tuples == 0 || n_tuples / 64 > reader.remaining()) {
      return Status::ParseError("slice tuple count " +
                                std::to_string(n_tuples) +
                                " exceeds payload at offset " +
                                std::to_string(reader.pos()));
    }
    ARIADNE_ASSIGN_OR_RETURN(uint8_t format, reader.ReadByte());
    std::vector<Tuple> tuples;
    if (format == kSliceRowMajor) {
      tuples.reserve(n_tuples);
      for (uint64_t i = 0; i < n_tuples; ++i) {
        ARIADNE_ASSIGN_OR_RETURN(uint64_t arity, reader.ReadVarint());
        if (arity > reader.remaining()) {
          return Status::ParseError("tuple arity exceeds payload");
        }
        Tuple t;
        t.reserve(arity);
        for (uint64_t a = 0; a < arity; ++a) {
          ARIADNE_ASSIGN_OR_RETURN(Value v, ReadValueTagged(reader));
          t.push_back(std::move(v));
        }
        tuples.push_back(std::move(t));
      }
    } else if (format == kSliceColumnar) {
      ARIADNE_ASSIGN_OR_RETURN(uint64_t arity, reader.ReadVarint());
      if (arity > reader.remaining() ||
          (arity != 0 && n_tuples > (uint64_t{1} << 31) / arity)) {
        return Status::ParseError("slice arity " + std::to_string(arity) +
                                  " exceeds payload at offset " +
                                  std::to_string(reader.pos()));
      }
      tuples.assign(n_tuples, Tuple(arity));
      for (uint64_t col = 0; col < arity; ++col) {
        ARIADNE_RETURN_NOT_OK(ReadColumn(reader, tuples, col));
      }
    } else {
      return Status::ParseError("unknown slice format " +
                                std::to_string(format) + " at offset " +
                                std::to_string(reader.pos()));
    }
    layer->Add(static_cast<int>(page.header.rel), vertex, std::move(tuples));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError(
        std::to_string(reader.remaining()) +
        " trailing byte(s) after last slice of page payload");
  }
  return Status::OK();
}

void SerializePage(const Page& page, std::string* out) {
  AppendU32(out, kPageMagic);
  AppendU32(out, page.header.rel);
  AppendI64(out, page.header.first_vertex);
  AppendI64(out, page.header.last_vertex);
  AppendU32(out, page.header.slice_count);
  AppendU32(out, static_cast<uint32_t>(page.payload.size()));
  AppendU64(out, page.header.raw_bytes);
  AppendU64(out, Fnv1a(page.payload));
  out->append(page.payload);
}

Result<Page> ParsePage(std::string_view data, size_t* offset) {
  const size_t start = *offset;
  auto at = [&](const char* what) {
    return Status::ParseError(std::string(what) + " at offset " +
                              std::to_string(start));
  };
  if (data.size() - start < kPageWireHeaderBytes) {
    return at("truncated page header");
  }
  ByteReader reader(data.data() + start, data.size() - start);
  uint32_t magic, rel, slice_count, payload_bytes;
  int64_t first_vertex, last_vertex;
  uint64_t raw_bytes, checksum;
  (void)reader.ReadRaw(&magic, sizeof(magic));
  (void)reader.ReadRaw(&rel, sizeof(rel));
  (void)reader.ReadRaw(&first_vertex, sizeof(first_vertex));
  (void)reader.ReadRaw(&last_vertex, sizeof(last_vertex));
  (void)reader.ReadRaw(&slice_count, sizeof(slice_count));
  (void)reader.ReadRaw(&payload_bytes, sizeof(payload_bytes));
  (void)reader.ReadRaw(&raw_bytes, sizeof(raw_bytes));
  (void)reader.ReadRaw(&checksum, sizeof(checksum));
  if (magic != kPageMagic) return at("bad page magic");
  if (payload_bytes > reader.remaining()) return at("truncated page payload");
  std::string_view payload(data.data() + start + kPageWireHeaderBytes,
                           payload_bytes);
  if (Fnv1a(payload) != checksum) return at("page checksum mismatch");
  Page page;
  page.header.rel = rel;
  page.header.first_vertex = first_vertex;
  page.header.last_vertex = last_vertex;
  page.header.slice_count = slice_count;
  page.header.raw_bytes = raw_bytes;
  page.payload.assign(payload);
  *offset = start + kPageWireHeaderBytes + payload_bytes;
  return page;
}

}  // namespace ariadne::storage
