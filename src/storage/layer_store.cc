#include "storage/layer_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/retry.h"
#include "recovery/fault_injector.h"

namespace ariadne::storage {

namespace {

/// Magic of a spill file ("ALF1"): one flushed layer = one file.
constexpr uint32_t kLayerFileMagic = 0x31464C41;

/// Reads `bytes` bytes at `offset` of `path` without mapping the whole
/// file — the read path touches only the pages a query needs.
Result<std::string> ReadRegion(const std::string& path, uint64_t offset,
                               uint32_t bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open spill file " + path);
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::string buf(bytes, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(bytes));
  if (!in || static_cast<size_t>(in.gcount()) != bytes) {
    return Status::IOError("short read of " + std::to_string(bytes) +
                           " bytes in " + path + " at offset " +
                           std::to_string(offset));
  }
  return buf;
}

int64_t CountTuples(const Layer& layer) {
  int64_t n = 0;
  for (const auto& slice : layer.slices) {
    n += static_cast<int64_t>(slice.tuples.size());
  }
  return n;
}

}  // namespace

LayerStore::~LayerStore() {
  // Background tasks capture `this`; quiesce them before members die.
  if (flusher_) flusher_->Drain();
}

bool LayerStore::spill_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return configured_;
}

Status LayerStore::Configure(LayerStoreOptions options) {
  std::unique_lock<std::mutex> lock(mu_);
  if (configured_) {
    return Status::InvalidArgument(
        "layer store spill already configured (dir=" + options_.dir + ")");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("spill directory must not be empty");
  }
  if (options.page_size == 0) options.page_size = kDefaultPageSize;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);  // flush reports failures
  options_ = std::move(options);
  cache_ = std::make_unique<PageCache>(options_.mem_budget_bytes / 4);
  flusher_ = std::make_unique<BackgroundFlusher>(options_.flush_threads);
  configured_ = true;
  for (auto& entry : entries_) {
    if (!entry->flushed) SubmitFlushLocked(entry.get());
  }
  lock.unlock();
  // Callers (and existing tests) treat EnableSpill as synchronous: the
  // store is under budget when it returns.
  flusher_->Drain();
  lock.lock();
  EvictResidentsLocked();
  return first_flush_error_;
}

Status LayerStore::Append(std::shared_ptr<const Layer> layer) {
  if (!layer) return Status::InvalidArgument("null layer");
  std::unique_lock<std::mutex> lock(mu_);
  if (layer->step != static_cast<Superstep>(entries_.size())) {
    return Status::InvalidArgument(
        "layer step " + std::to_string(layer->step) +
        " appended out of order (expected " +
        std::to_string(entries_.size()) + ")");
  }
  auto entry = std::make_unique<Entry>();
  entry->step = layer->step;
  entry->byte_size = layer->byte_size;
  entry->tuple_count = CountTuples(*layer);
  entry->resident = std::move(layer);
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  // Degraded mode: the store is a plain in-memory store for new layers —
  // no spilling, no backpressure, no sticky error.
  if (!configured_ || degraded_) return Status::OK();
  SubmitFlushLocked(raw);
  // Write-behind with bounded lag: the barrier only waits when the
  // flusher has fallen `max_unflushed_bytes` behind.
  backpressure_cv_.wait(lock, [&] {
    return unflushed_bytes_ <= options_.max_unflushed_bytes ||
           !first_flush_error_.ok() || degraded_;
  });
  return degraded_ ? Status::OK() : first_flush_error_;
}

void LayerStore::SubmitFlushLocked(Entry* entry) {
  entry->flush_pending = true;
  unflushed_bytes_ += entry->byte_size;
  flusher_->Submit([this, entry] { FlushEntry(entry); });
}

void LayerStore::FlushEntry(Entry* entry) {
  const auto start = std::chrono::steady_clock::now();
  // `resident` is set before the task is submitted and only cleared by
  // eviction, which requires `flushed` — safe to read without the lock.
  std::shared_ptr<const Layer> layer = entry->resident;
  std::vector<Page> pages;
  std::vector<Entry::PageRef> refs;
  std::string buf;
  size_t page_bytes = 0;
  {
    pages = EncodeLayer(*layer, options_.page_size);
    BinaryWriter header;
    header.WriteU32(kLayerFileMagic);
    header.WriteU32(static_cast<uint32_t>(pages.size()));
    header.WriteI64(layer->step);
    buf = header.MoveData();
    refs.reserve(pages.size());
    for (const Page& page : pages) {
      Entry::PageRef ref;
      ref.rel = page.header.rel;
      ref.offset = buf.size();
      SerializePage(page, &buf);
      ref.bytes = static_cast<uint32_t>(buf.size() - ref.offset);
      page_bytes += ref.bytes;
      refs.push_back(ref);
    }
  }
  BinaryWriter raw;
  SerializeLayer(*layer, raw);
  const std::string path =
      options_.dir + "/layer_" + std::to_string(layer->step) + ".apg";
  // Bounded retry with exponential backoff + jitter (common/retry.h):
  // transient I/O errors (fault point "flusher-write", or a real failed
  // write) are retried io_max_attempts times before the flush counts as
  // exhausted. The jitter mixes a per-thread salt, so concurrent flusher
  // threads retrying the same sick disk fan out instead of thundering.
  const int max_attempts = std::max(1, options_.io_max_attempts);
  const RetryOutcome flushed = RetryTransient(
      options_.IoRetryPolicy(), static_cast<uint64_t>(layer->step), [&] {
        Status attempt = recovery::CheckFaultPoint("flusher-write");
        if (attempt.ok()) attempt = WriteFile(path, buf);
        return attempt;
      });
  Status st = flushed.status;
  if (flushed.retries() > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.flush_retries += static_cast<uint64_t>(flushed.retries());
    flush_retries_by_thread_[std::this_thread::get_id()] +=
        static_cast<uint64_t>(flushed.retries());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  bool requeue = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->flush_pending = false;
    unflushed_bytes_ -= entry->byte_size;
    if (st.ok()) {
      entry->file = path;
      entry->pages = std::move(refs);
      entry->flushed = true;
      ++stats_.layers_flushed;
      stats_.pages_written += pages.size();
      stats_.compressed_bytes += page_bytes;
      stats_.raw_serialized_bytes += raw.size();
      stats_.flush_seconds += seconds;
      EvictResidentsLocked();
    } else if (!degraded_ && entry->quarantines == 0) {
      // Quarantine-and-requeue: the poisoned layer goes back on the queue
      // once (behind any healthy flushes). Its data stays resident, so
      // nothing is lost either way.
      entry->quarantines = 1;
      ++stats_.layers_quarantined;
      entry->flush_pending = true;
      unflushed_bytes_ += entry->byte_size;
      requeue = true;
    } else if (first_flush_error_.ok()) {
      first_flush_error_ =
          st.WithContext("flushing layer " + std::to_string(layer->step) +
                         " (after " + std::to_string(max_attempts) +
                         " attempts and 1 quarantine)");
    }
  }
  backpressure_cv_.notify_all();
  // Resubmitted outside the lock: in inline-flusher mode Submit runs the
  // task on this stack, which would self-deadlock on mu_ otherwise.
  if (requeue) {
    flusher_->Submit([this, entry] { FlushEntry(entry); });
  }
}

size_t LayerStore::DecodedBudget() const {
  // The page cache holds a quarter of the budget; decoded layers the rest.
  return options_.mem_budget_bytes - options_.mem_budget_bytes / 4;
}

void LayerStore::EvictResidentsLocked() const {
  const size_t target = DecodedBudget();
  size_t decoded = 0;
  for (const auto& entry : entries_) {
    if (entry->resident) decoded += entry->byte_size;
  }
  while (decoded > target) {
    Entry* victim = nullptr;
    for (const auto& entry : entries_) {
      // Only flushed layers may drop their decoded copy; a pending or
      // failed flush keeps the data resident (nothing is ever lost).
      if (entry->resident && entry->flushed && !entry->flush_pending &&
          (victim == nullptr || entry->last_use < victim->last_use)) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) break;
    victim->resident.reset();
    decoded -= victim->byte_size;
  }
}

int LayerStore::num_layers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

Result<std::shared_ptr<const Layer>> LayerStore::Read(int step) const {
  return ReadImpl(step, {});
}

Result<std::shared_ptr<const Layer>> LayerStore::ReadRelations(
    int step, const std::vector<int>& rels) const {
  return ReadImpl(step, rels);
}

Result<std::shared_ptr<const Page>> LayerStore::FetchPage(
    const Entry& entry, uint32_t index) const {
  const PageKey key{static_cast<int32_t>(entry.step), index};
  if (cache_) {
    if (auto page = cache_->Lookup(key)) return page;
  }
  const Entry::PageRef& ref = entry.pages[index];
  // Same bounded-retry policy as the flush path (fault point "page-read").
  Result<std::string> region = std::string();
  const RetryOutcome read = RetryTransient(
      options_.IoRetryPolicy(),
      (static_cast<uint64_t>(entry.step) << 20) + index, [&] {
        Status injected = recovery::CheckFaultPoint("page-read");
        region = injected.ok()
                     ? ReadRegion(entry.file, ref.offset, ref.bytes)
                     : Result<std::string>(injected);
        return region.ok() ? Status::OK() : region.status();
      });
  if (read.retries() > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.read_retries += static_cast<uint64_t>(read.retries());
  }
  if (!region.ok()) return region.status();
  size_t offset = 0;
  auto parsed = ParsePage(*region, &offset);
  if (!parsed.ok()) {
    // Re-anchor the in-buffer offset of the parse error to the file.
    return parsed.status().WithContext(
        entry.file + " (page " + std::to_string(index) + " at file offset " +
        std::to_string(ref.offset) + ")");
  }
  auto page = std::make_shared<const Page>(std::move(parsed).value());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.pages_read;
  }
  if (cache_) cache_->Insert(key, page);
  return page;
}

Result<std::shared_ptr<const Layer>> LayerStore::ReadImpl(
    int step, const std::vector<int>& rels) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (step < 0 || step >= static_cast<int>(entries_.size())) {
    return Status::OutOfRange("layer " + std::to_string(step) +
                              " out of range (store has " +
                              std::to_string(entries_.size()) + " layers)");
  }
  Entry* entry = entries_[static_cast<size_t>(step)].get();
  entry->last_use = ++use_tick_;
  if (entry->resident) {
    // Already decoded: returning the full layer is strictly cheaper than
    // filtering it, and callers tolerate a relation superset.
    return entry->resident;
  }
  if (!entry->flushed) {
    return first_flush_error_.ok()
               ? Status::Internal("layer " + std::to_string(step) +
                                  " neither resident nor flushed")
               : first_flush_error_;
  }
  const size_t n_pages = entry->pages.size();
  lock.unlock();

  const std::unordered_set<int> wanted(rels.begin(), rels.end());
  auto layer = std::make_shared<Layer>();
  layer->step = static_cast<Superstep>(step);
  std::vector<PageKey> pinned;
  pinned.reserve(n_pages);
  Status status;
  for (uint32_t i = 0; i < n_pages; ++i) {
    if (!wanted.empty() &&
        wanted.count(static_cast<int>(entry->pages[i].rel)) == 0) {
      continue;
    }
    auto page = FetchPage(*entry, i);
    if (!page.ok()) {
      status = page.status();
      break;
    }
    if (cache_) {
      // Pin for the rest of the layer decode so a later page's insert
      // cannot evict an earlier one mid-read.
      const PageKey key{static_cast<int32_t>(entry->step), i};
      cache_->Pin(key);
      pinned.push_back(key);
    }
    status = DecodePage(**page, layer.get());
    if (!status.ok()) {
      status = status.WithContext(entry->file);
      break;
    }
  }
  if (cache_) {
    for (const PageKey& key : pinned) cache_->Unpin(key);
  }
  ARIADNE_RETURN_NOT_OK(status);

  if (wanted.empty()) {
    // A full decode re-admits the layer as resident (LRU within budget),
    // so repeated layered passes do not re-decode every time.
    lock.lock();
    if (!entry->resident) entry->resident = layer;
    EvictResidentsLocked();
  }
  return std::static_pointer_cast<const Layer>(layer);
}

void LayerStore::Prefetch(int step, const std::vector<int>& rels) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (!configured_ || step < 0 ||
      step >= static_cast<int>(entries_.size())) {
    return;
  }
  Entry* entry = entries_[static_cast<size_t>(step)].get();
  if (!entry->flushed || entry->resident) return;
  ++stats_.prefetch_requests;
  const size_t n_pages = entry->pages.size();
  lock.unlock();
  if (cache_->budget() == 0) return;  // nowhere to warm pages into

  std::vector<uint32_t> indices;
  const std::unordered_set<int> wanted(rels.begin(), rels.end());
  for (uint32_t i = 0; i < n_pages; ++i) {
    if (wanted.empty() ||
        wanted.count(static_cast<int>(entry->pages[i].rel)) != 0) {
      indices.push_back(i);
    }
  }
  if (indices.empty()) return;
  flusher_->Submit([this, entry, indices = std::move(indices)] {
    uint64_t loaded = 0;
    for (uint32_t i : indices) {
      const PageKey key{static_cast<int32_t>(entry->step), i};
      if (cache_->Contains(key)) continue;
      // Best-effort: a failed prefetch is silent, the subsequent Read
      // reports it with full context.
      auto page = FetchPage(*entry, i);
      if (!page.ok()) break;
      ++loaded;
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.prefetch_pages += loaded;
  });
}

Status LayerStore::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!configured_) return Status::OK();
  }
  flusher_->Drain();
  std::lock_guard<std::mutex> lock(mu_);
  EvictResidentsLocked();
  return degraded_ ? Status::OK() : first_flush_error_;
}

void LayerStore::EnterDegradedMode() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (degraded_) return;
    degraded_ = true;
    stats_.degraded = true;
  }
  // Unblock any Append stuck on backpressure; new Appends skip the
  // flusher entirely, so every layer from here on stays resident.
  backpressure_cv_.notify_all();
}

bool LayerStore::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

Status LayerStore::flush_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_flush_error_;
}

size_t LayerStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& entry : entries_) total += entry->byte_size;
  return total;
}

size_t LayerStore::InMemoryBytes() const {
  size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : entries_) {
      if (entry->resident) total += entry->byte_size;
    }
  }
  if (cache_) total += cache_->stats().bytes_cached;
  return total;
}

int64_t LayerStore::TotalTuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& entry : entries_) total += entry->tuple_count;
  return total;
}

int LayerStore::SpilledCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& entry : entries_) {
    if (!entry->resident) ++n;
  }
  return n;
}

StorageStats LayerStore::stats() const {
  StorageStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.degraded = degraded_;
    out.flush_retries_by_thread.reserve(flush_retries_by_thread_.size());
    for (const auto& [tid, n] : flush_retries_by_thread_) {
      out.flush_retries_by_thread.push_back(n);
    }
    std::sort(out.flush_retries_by_thread.begin(),
              out.flush_retries_by_thread.end(), std::greater<uint64_t>());
  }
  if (cache_) {
    const PageCacheStats cs = cache_->stats();
    out.cache_hits = cs.hits;
    out.cache_misses = cs.misses;
    out.cache_evictions = cs.evictions;
    out.cache_bytes = cs.bytes_cached;
  }
  return out;
}

}  // namespace ariadne::storage
