#include "storage/memory_budget.h"

#include <cmath>
#include <cstdio>

namespace ariadne::storage {

BudgetSplit ResolveBudgetSplit(size_t total_bytes, bool graph_paged,
                               double graph_fraction) {
  BudgetSplit split;
  split.total = total_bytes;
  if (!graph_paged) {
    split.provenance = total_bytes;
    return split;
  }
  if (!(graph_fraction > 0.0) || !(graph_fraction < 1.0)) {
    graph_fraction = kDefaultGraphBudgetFraction;
  }
  const double graph_share =
      static_cast<double>(total_bytes) * graph_fraction;
  split.graph_topology =
      static_cast<size_t>(graph_share * kTopologySliceOfGraphShare);
  split.vertex_state = static_cast<size_t>(graph_share) -
                       split.graph_topology;
  split.provenance = total_bytes - split.graph_topology - split.vertex_state;
  return split;
}

std::string DescribeBudgetSplit(const BudgetSplit& split) {
  auto mib = [](size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "prov=%.1fMiB topo=%.1fMiB vstate=%.1fMiB",
                mib(split.provenance), mib(split.graph_topology),
                mib(split.vertex_state));
  return buf;
}

}  // namespace ariadne::storage
