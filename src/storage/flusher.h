#ifndef ARIADNE_STORAGE_FLUSHER_H_
#define ARIADNE_STORAGE_FLUSHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ariadne::storage {

/// Dedicated background-I/O worker pool of the layer store: write-behind
/// of sealed layers and prefetch reads run here so `AppendLayer` returns
/// to the superstep barrier immediately (the stand-in for the paper's
/// asynchronous HDFS offload thread). Distinct from common/ThreadPool,
/// which is a chunk-parallel compute pool: this one queues independent
/// FIFO tasks and supports draining to a quiescent point.
class BackgroundFlusher {
 public:
  /// `num_threads <= 0` runs every task inline in Submit (deterministic,
  /// used by tests and by stores that were never configured for spill).
  explicit BackgroundFlusher(int num_threads);
  ~BackgroundFlusher();  ///< drains, then joins

  BackgroundFlusher(const BackgroundFlusher&) = delete;
  BackgroundFlusher& operator=(const BackgroundFlusher&) = delete;

  /// Enqueues `task`; tasks start in FIFO order across the pool. Tasks
  /// must not throw and must not Submit/Drain recursively.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Drain();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  uint64_t tasks_executed() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for tasks
  std::condition_variable drain_cv_;  ///< Drain waits for quiescence
  std::deque<std::function<void()>> queue_;
  int running_ = 0;  ///< tasks currently executing
  uint64_t executed_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ariadne::storage

#endif  // ARIADNE_STORAGE_FLUSHER_H_
