#ifndef ARIADNE_STORAGE_PAGE_H_
#define ARIADNE_STORAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/layer.h"

namespace ariadne::storage {

/// Target payload size of one page. Pages never mix relations; a slice
/// larger than the target produces one oversized page rather than being
/// split (jumbo pages keep the decode path trivial).
inline constexpr size_t kDefaultPageSize = 64 * 1024;

/// Serialized page magic ("APG1").
inline constexpr uint32_t kPageMagic = 0x31475041;

/// Fixed (decoded) header of one page. A page holds the columnar,
/// varint/delta-compressed tuple runs of ONE relation over a contiguous
/// vertex range of one layer — per-relation reads and vertex-range
/// pruning never touch other relations' pages.
struct PageHeader {
  uint32_t rel = 0;           ///< store relation id of every run in the page
  VertexId first_vertex = 0;  ///< vertex of the first slice
  VertexId last_vertex = 0;   ///< vertex of the last slice
  uint32_t slice_count = 0;
  uint64_t raw_bytes = 0;  ///< logical (TupleByteSize) bytes covered
};

/// One encoded page: header + compressed payload.
struct Page {
  PageHeader header;
  std::string payload;
};

/// Size of the serialized page header (see SerializePage).
inline constexpr size_t kPageWireHeaderBytes =
    4 + 4 + 8 + 8 + 4 + 4 + 8 + 8;

// ---- Varint primitives (LEB128 + zigzag) ----

void AppendVarint(std::string* out, uint64_t v);
void AppendZigzag(std::string* out, int64_t v);

/// FNV-1a checksum used to detect spill-file corruption.
uint64_t Fnv1a(std::string_view data);

/// Word-wise FNV-1a variant: folds 8 bytes per multiply instead of one.
/// ~8x faster than Fnv1a at equivalent corruption-detection strength
/// (any single-bit flip changes the digest); used for the graph backend's
/// raw page frames, whose decode path is a memcpy and must not be
/// bottlenecked by the checksum (DESIGN.md §2.7). Not interchangeable
/// with Fnv1a — the provenance page format keeps the byte-wise digest.
uint64_t Checksum64(std::string_view data);

// ---- Raw checked frames (graph backend page format, DESIGN.md §2.7) ----
//
// A checked frame is [payload_len u64][payload][Checksum64(payload) u64],
// all little-endian. The paged graph backend lays its partition payloads
// out as a sequence of fixed-size checked frames ("graph pages"), so a
// bit flip or truncation anywhere in a spill file surfaces as a Status
// error at read time, mirroring the provenance page format.

/// Serialized overhead of one checked frame (length + checksum words).
inline constexpr size_t kCheckedFrameOverhead = 16;

/// Appends one checked frame holding `payload` to `out`.
void AppendCheckedFrame(std::string_view payload, std::string* out);

/// Parses the checked frame starting at `*offset` in `data`, advancing
/// `*offset` past it. Bounds and checksum failures name the byte offset.
Result<std::string_view> ParseCheckedFrame(std::string_view data,
                                           size_t* offset);

/// Bounds-checked cursor over an encoded payload. All reads fail with
/// OutOfRange instead of walking past the end; `pos()` feeds the
/// offset-bearing error messages of the layer store.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view data)
      : ByteReader(data.data(), data.size()) {}

  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadZigzag();
  Result<uint8_t> ReadByte();
  Status ReadRaw(void* p, size_t n);

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---- Layer <-> pages ----

/// Encodes `layer` into pages of ~`page_size` payload bytes, walking the
/// slices in order and starting a new page whenever the relation changes
/// or the payload target is reached. Deterministic: the same layer and
/// page size always produce the same bytes (the byte-identical-save
/// guarantee of the provenance store rests on this).
std::vector<Page> EncodeLayer(const Layer& layer, size_t page_size);

/// Appends the slices of `page` to `layer` in encoded order, validating
/// every count against the remaining payload bytes.
Status DecodePage(const Page& page, Layer* layer);

// ---- Page wire format ----

/// Appends [magic, rel, first_vertex, last_vertex, slice_count,
/// payload_bytes, raw_bytes, fnv1a(payload), payload] to `out`.
void SerializePage(const Page& page, std::string* out);

/// Parses one serialized page starting at `*offset` in `data`, advancing
/// `*offset` past it. Checks the magic, bounds and payload checksum;
/// errors mention the byte offset of the failure.
Result<Page> ParsePage(std::string_view data, size_t* offset);

}  // namespace ariadne::storage

#endif  // ARIADNE_STORAGE_PAGE_H_
