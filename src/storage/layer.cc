#include "storage/layer.h"

#include <algorithm>

namespace ariadne {

void Layer::Add(int rel, VertexId vertex, std::vector<Tuple> tuples) {
  if (tuples.empty()) return;
  LayerSlice slice;
  slice.rel = rel;
  slice.vertex = vertex;
  slice.tuples = std::move(tuples);
  for (const Tuple& t : slice.tuples) byte_size += TupleByteSize(t);
  slices.push_back(std::move(slice));
}

void Layer::Canonicalize() {
  std::stable_sort(slices.begin(), slices.end(),
                   [](const LayerSlice& a, const LayerSlice& b) {
                     if (a.rel != b.rel) return a.rel < b.rel;
                     return a.vertex < b.vertex;
                   });
}

void SerializeLayer(const Layer& layer, BinaryWriter& writer) {
  writer.WriteI64(layer.step);
  writer.WriteU64(layer.slices.size());
  for (const auto& slice : layer.slices) {
    writer.WriteU32(static_cast<uint32_t>(slice.rel));
    writer.WriteI64(slice.vertex);
    writer.WriteU64(slice.tuples.size());
    for (const Tuple& t : slice.tuples) {
      writer.WriteU32(static_cast<uint32_t>(t.size()));
      for (const Value& v : t) writer.WriteValue(v);
    }
  }
}

Result<Layer> DeserializeLayer(BinaryReader& reader) {
  Layer layer;
  ARIADNE_ASSIGN_OR_RETURN(int64_t step, reader.ReadI64());
  layer.step = static_cast<Superstep>(step);
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_slices, reader.ReadU64());
  // Sanity-bound every count against the bytes that could possibly back
  // it, so a corrupt length never drives a multi-gigabyte reserve before
  // the per-element reads fail (a slice costs >= 20 bytes, a tuple >= 4,
  // a value >= 1).
  if (n_slices > reader.remaining() / 20) {
    return Status::ParseError("layer slice count " +
                              std::to_string(n_slices) +
                              " exceeds remaining bytes at offset " +
                              std::to_string(reader.pos()));
  }
  for (uint64_t s = 0; s < n_slices; ++s) {
    ARIADNE_ASSIGN_OR_RETURN(uint32_t rel, reader.ReadU32());
    ARIADNE_ASSIGN_OR_RETURN(int64_t vertex, reader.ReadI64());
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_tuples, reader.ReadU64());
    if (n_tuples > reader.remaining() / 4) {
      return Status::ParseError("slice tuple count " +
                                std::to_string(n_tuples) +
                                " exceeds remaining bytes at offset " +
                                std::to_string(reader.pos()));
    }
    std::vector<Tuple> tuples;
    tuples.reserve(n_tuples);
    for (uint64_t i = 0; i < n_tuples; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
      if (arity > reader.remaining()) {
        return Status::ParseError("tuple arity " + std::to_string(arity) +
                                  " exceeds remaining bytes at offset " +
                                  std::to_string(reader.pos()));
      }
      Tuple t;
      t.reserve(arity);
      for (uint32_t a = 0; a < arity; ++a) {
        ARIADNE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
        t.push_back(std::move(v));
      }
      tuples.push_back(std::move(t));
    }
    layer.Add(static_cast<int>(rel), vertex, std::move(tuples));
  }
  return layer;
}

}  // namespace ariadne
