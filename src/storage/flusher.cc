#include "storage/flusher.h"

namespace ariadne::storage {

BackgroundFlusher::BackgroundFlusher(int num_threads) {
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

BackgroundFlusher::~BackgroundFlusher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Inline mode has no threads and an always-empty queue; with threads,
  // workers drain the remaining queue before exiting (see WorkerLoop).
}

void BackgroundFlusher::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    std::lock_guard<std::mutex> lock(mu_);
    ++executed_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void BackgroundFlusher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

uint64_t BackgroundFlusher::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

void BackgroundFlusher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    ++executed_;
    if (queue_.empty() && running_ == 0) drain_cv_.notify_all();
  }
}

}  // namespace ariadne::storage
