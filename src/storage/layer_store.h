#ifndef ARIADNE_STORAGE_LAYER_STORE_H_
#define ARIADNE_STORAGE_LAYER_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "storage/flusher.h"
#include "storage/layer.h"
#include "storage/page.h"
#include "storage/page_cache.h"

namespace ariadne::storage {

struct LayerStoreOptions {
  /// Spill directory (must exist). Empty = invalid for Configure.
  std::string dir;
  /// Byte budget for decoded resident layers + the compressed page cache
  /// (the cache gets a quarter, decoded layers the rest). 0 = everything
  /// spills and nothing is cached — every read pays disk + decode.
  size_t mem_budget_bytes = 0;
  /// Background write-behind/prefetch threads; <= 0 flushes inline
  /// (deterministic, but Append then blocks on the write).
  int flush_threads = 1;
  /// Target payload bytes per page.
  size_t page_size = kDefaultPageSize;
  /// Backpressure bound: Append blocks only once the decoded bytes
  /// awaiting flush exceed this (write-behind stays bounded without
  /// stalling the superstep barrier in steady state).
  size_t max_unflushed_bytes = size_t{256} << 20;

  // -- Transient-I/O retry policy (DESIGN.md §2.4) --

  /// Attempts per flush write / page read before the op counts as failed;
  /// attempts beyond the first back off exponentially.
  int io_max_attempts = 3;
  /// Backoff before the 2nd attempt, in ms; doubles per attempt, plus a
  /// seeded jitter in [0, 100%) of the delay.
  double io_backoff_base_ms = 1.0;
  /// Jitter seed. Each retrying call site mixes in a per-layer/page salt
  /// AND a per-thread salt (common/retry.h), so concurrent flush threads
  /// never back off in lockstep.
  uint64_t io_retry_seed = 0x41524941;  // "ARIA"

  /// The three knobs above as the shared RetryPolicy (common/retry.h).
  RetryPolicy IoRetryPolicy() const {
    RetryPolicy p;
    p.max_attempts = io_max_attempts;
    p.backoff_base_ms = io_backoff_base_ms;
    p.seed = io_retry_seed;
    return p;
  }
};

/// Aggregate counters of the storage subsystem (flusher + page cache +
/// read path), surfaced by `ariadne_run` and `bench_store_micro`.
struct StorageStats {
  uint64_t layers_flushed = 0;
  uint64_t pages_written = 0;
  /// Page wire bytes written to spill files.
  uint64_t compressed_bytes = 0;
  /// SerializeLayer (row-major uncompressed) bytes of the same layers —
  /// the denominator of the compression ratio.
  uint64_t raw_serialized_bytes = 0;
  uint64_t pages_read = 0;  ///< pages parsed from disk (incl. prefetch)
  uint64_t prefetch_requests = 0;
  uint64_t prefetch_pages = 0;
  double flush_seconds = 0.0;  ///< cumulative wall time in flush tasks
  /// Recovery counters (DESIGN.md §2.4): retried flush writes / page
  /// reads (attempts beyond the first), flush-exhausted layers that were
  /// quarantined and requeued once, and whether spilling was abandoned.
  uint64_t flush_retries = 0;
  uint64_t read_retries = 0;
  uint64_t layers_quarantined = 0;
  bool degraded = false;
  /// flush_retries broken down by flusher thread (descending; the sum
  /// equals flush_retries). Skewed entries betray a thread stuck on a
  /// bad region; lockstep backoff would show as equal entries retried at
  /// the same instants (the bug the per-thread jitter salt fixes).
  std::vector<uint64_t> flush_retries_by_thread;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes = 0;  ///< current

  double CompressionRatio() const {
    return raw_serialized_bytes == 0
               ? 1.0
               : static_cast<double>(compressed_bytes) /
                     static_cast<double>(raw_serialized_bytes);
  }
  /// Counter movement since `before` (an earlier stats() snapshot);
  /// current-value fields (`cache_bytes`, `degraded`) carry the current
  /// value. Both snapshots are internally consistent (taken under the
  /// store/cache locks), so deltas never race the background flusher.
  StorageStats Delta(const StorageStats& before) const {
    StorageStats d = *this;
    d.flush_retries_by_thread.clear();  // breakdown is cumulative-only
    d.layers_flushed -= before.layers_flushed;
    d.pages_written -= before.pages_written;
    d.compressed_bytes -= before.compressed_bytes;
    d.raw_serialized_bytes -= before.raw_serialized_bytes;
    d.pages_read -= before.pages_read;
    d.prefetch_requests -= before.prefetch_requests;
    d.prefetch_pages -= before.prefetch_pages;
    d.flush_seconds -= before.flush_seconds;
    d.flush_retries -= before.flush_retries;
    d.read_retries -= before.read_retries;
    d.layers_quarantined -= before.layers_quarantined;
    d.cache_hits -= before.cache_hits;
    d.cache_misses -= before.cache_misses;
    d.cache_evictions -= before.cache_evictions;
    return d;
  }

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// Buffer-managed columnar store of provenance layers: the subsystem
/// behind ProvenanceStore (which keeps the schema and static segment).
///
/// Unconfigured, it is a plain in-memory vector of layers. After
/// Configure() it becomes a spilling store: Append hands the sealed layer
/// to the BackgroundFlusher, which encodes it into compressed pages
/// (storage/page.h), writes `layer_<step>.apg` into the spill directory
/// and then drops the decoded copy if the memory budget demands it.
/// Reads serve from decoded residents, then the compressed PageCache,
/// then disk — optionally restricted to a relation subset so a query
/// over `send-message` never decompresses `vertex-value` pages.
///
/// Held by ProvenanceStore through a unique_ptr: background tasks hold
/// `this`, so the object must not move (ProvenanceStore stays movable).
class LayerStore {
 public:
  LayerStore() = default;
  ~LayerStore();

  LayerStore(const LayerStore&) = delete;
  LayerStore& operator=(const LayerStore&) = delete;

  /// Enables spilling. Existing layers are flushed synchronously (the
  /// call returns with the store under budget); later Appends write
  /// behind. Reconfiguring an already-configured store is an error.
  Status Configure(LayerStoreOptions options);
  bool spill_enabled() const;

  /// Appends the sealed layer for superstep `num_layers()`. With spill
  /// enabled the encode+write happens on the flusher; this call only
  /// blocks when `max_unflushed_bytes` of write-behind is outstanding.
  Status Append(std::shared_ptr<const Layer> layer);

  int num_layers() const;

  /// The full layer for superstep `step`: the decoded resident copy when
  /// there is one, otherwise decoded from (cached or on-disk) pages.
  ///
  /// The whole read path (Read/ReadRelations/Prefetch) is logically
  /// const and thread-safe: any number of concurrent readers may call it
  /// on one store (the serve scheduler and its worker threads do), all
  /// internal mutation (LRU ticks, stats, cache admission, resident
  /// re-admission) happens under `mu_` or inside the internally-locked
  /// PageCache.
  Result<std::shared_ptr<const Layer>> Read(int step) const;

  /// Like Read, but materializes only the slices of the relations in
  /// `rels` (empty = all). Only matching pages are touched/decoded.
  Result<std::shared_ptr<const Layer>> ReadRelations(
      int step, const std::vector<int>& rels) const;

  /// Asynchronous hint: load the pages of `step` restricted to `rels`
  /// into the page cache. Layered evaluation issues these
  /// direction-aware (step+1 ascending, step-1 descending). Best-effort;
  /// errors surface on the subsequent Read.
  void Prefetch(int step, const std::vector<int>& rels) const;

  /// Waits for all background writes, enforces the budget, and returns
  /// the first flush error (sticky). The spill files are durable (each
  /// write ends in a flush) once this returns. In degraded mode there is
  /// nothing outstanding and Drain returns OK.
  Status Drain();

  /// Degradation escape hatch (DESIGN.md §2.4): permanently stop
  /// spilling and keep every unflushed layer resident. Append and Drain
  /// succeed again afterwards (the store is a plain in-memory store for
  /// new layers); layers already on disk stay readable. Irreversible.
  void EnterDegradedMode();
  bool degraded() const;

  /// The sticky error of the first exhausted flush; OK while the spill
  /// path is healthy. Preserved across EnterDegradedMode so callers can
  /// report *why* capture degraded.
  Status flush_error() const;

  size_t TotalBytes() const;     ///< logical bytes, resident or spilled
  size_t InMemoryBytes() const;  ///< decoded residents + cached pages
  int64_t TotalTuples() const;
  int SpilledCount() const;  ///< layers with no decoded resident copy
  StorageStats stats() const;

 private:
  struct Entry {
    Superstep step = 0;
    size_t byte_size = 0;
    int64_t tuple_count = 0;
    std::shared_ptr<const Layer> resident;
    bool flush_pending = false;
    bool flushed = false;
    /// Times this entry's flush exhausted its retries and was requeued;
    /// a second exhaustion makes the error sticky instead.
    int quarantines = 0;
    std::string file;
    /// Wire location + relation of each page, in page-index order.
    struct PageRef {
      uint32_t rel = 0;
      uint64_t offset = 0;
      uint32_t bytes = 0;
    };
    std::vector<PageRef> pages;
    uint64_t last_use = 0;
  };

  void SubmitFlushLocked(Entry* entry);
  void FlushEntry(Entry* entry);
  void EvictResidentsLocked() const;
  size_t DecodedBudget() const;
  Result<std::shared_ptr<const Page>> FetchPage(const Entry& entry,
                                                uint32_t index) const;
  Result<std::shared_ptr<const Layer>> ReadImpl(
      int step, const std::vector<int>& rels) const;

  mutable std::mutex mu_;
  std::condition_variable backpressure_cv_;
  std::vector<std::unique_ptr<Entry>> entries_;
  LayerStoreOptions options_;
  bool configured_ = false;
  bool degraded_ = false;
  size_t unflushed_bytes_ = 0;
  /// Sticky first exhausted-flush error (see flush_error()).
  Status first_flush_error_;
  /// LRU clock and counters are advanced by the (const) read path under
  /// mu_ — bookkeeping, not logical state, hence mutable.
  mutable uint64_t use_tick_ = 0;
  mutable StorageStats stats_;  ///< cache_* fields filled from cache_ on read
  /// Per-flusher-thread retry counts (stats surface; guarded by mu_).
  std::unordered_map<std::thread::id, uint64_t> flush_retries_by_thread_;
  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<BackgroundFlusher> flusher_;
};

}  // namespace ariadne::storage

#endif  // ARIADNE_STORAGE_LAYER_STORE_H_
