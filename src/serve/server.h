#ifndef ARIADNE_SERVE_SERVER_H_
#define ARIADNE_SERVE_SERVER_H_

#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "eval/layered_step.h"
#include "serve/service_state.h"
#include "serve/shared_scan.h"
#include "storage/page_cache.h"

namespace ariadne::serve {

struct ServerOptions {
  /// Queries being stepped concurrently; further admissions wait queued.
  size_t max_inflight = 32;
  /// Bound of the admission queue; Submit beyond it is rejected
  /// immediately (OutOfRange) rather than buffered without limit.
  size_t queue_capacity = 256;
  /// Per-query wall-clock budget from admission, checked between layer
  /// steps (a step is never interrupted). 0 = unlimited.
  double default_deadline_ms = 0.0;
  /// Worker threads fanning one layer group out across its subscribed
  /// queries; 0/1 steps inline on the scheduler thread.
  size_t step_threads = 0;
  /// LayerViews retained by the shared-scan executor.
  size_t view_cache_capacity = 4;

  // -- Resilience (DESIGN.md §2.8) --

  /// Attempts per shared layer scan before the group step counts as
  /// failed; transient (I/O) errors only — corruption fails immediately.
  /// The scan is the retryable half of a layer step: a run's compute half
  /// mutates query state and cannot be replayed.
  int step_retry_attempts = 3;
  /// Backoff before the 2nd scan attempt, in ms; doubles per attempt,
  /// plus seeded jitter (common/retry.h).
  double step_retry_backoff_ms = 1.0;
  uint64_t retry_seed = 0x41524941;  // "ARIA"
  /// Consecutive exhausted scan failures that trip the circuit breaker;
  /// <= 0 disables the breaker.
  int breaker_threshold = 3;
  /// Open -> half-open cooldown: how long new queries are bounced before
  /// one probe is let through.
  double breaker_cooldown_ms = 250.0;
  /// Shed at admission when the estimated queue wait (EWMA of completed
  /// exec times x queued waves) already exceeds the request's deadline.
  bool shed_on_deadline = true;
};

/// One query submitted to the server.
struct ServeRequest {
  std::string name;  ///< client tag, echoed in the response
  std::string text;  ///< PQL program
  QueryParams params;
  /// Overrides ServerOptions::default_deadline_ms; < 0 = use the default,
  /// 0 = unlimited.
  double deadline_ms = -1.0;
};

struct ServeResponse {
  std::string name;
  /// Admission, parse/analysis, evaluation or deadline error.
  Status status;
  QueryResult result;
  OfflineEvalStats stats;
  /// Page-cache activity of the shared scans this query subscribed to
  /// (each subscriber of a group observes that group's whole scan).
  storage::PageCacheStats cache;
  double queue_seconds = 0.0;  ///< submit -> admission
  double exec_seconds = 0.0;   ///< admission -> completion

  bool ok() const { return status.ok(); }
};

struct ServerStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;  ///< bounced at admission (queue full / stopping)
  /// Bounced at admission for health reasons: breaker open/probing, or
  /// the estimated queue wait already exceeded the deadline.
  uint64_t shed = 0;
  uint64_t admitted = 0;
  /// Requests that attached to an identical in-flight query (same text +
  /// params) instead of evaluating — each still yields its own response.
  uint64_t coalesced = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;   ///< prepare/eval errors
  uint64_t expired = 0;  ///< deadline exceeded
  uint64_t group_steps = 0;  ///< scheduler iterations (one shared view each)
  uint64_t query_steps = 0;  ///< per-query layer steps executed
  uint64_t max_group_size = 0;
  uint64_t step_retries = 0;   ///< transient shared-scan retries
  uint64_t scan_failures = 0;  ///< scans that exhausted their retries
  uint64_t breaker_trips = 0;  ///< transitions to the open state
  uint64_t breaker_probes = 0;  ///< probe queries admitted while half-open
  SharedScanStats scan;

  /// Mean queries fed per shared view — the sharing factor.
  double MeanGroupSize() const {
    return group_steps == 0 ? 0.0
                            : static_cast<double>(query_steps) /
                                  static_cast<double>(group_steps);
  }
};

/// Circuit-breaker state (DESIGN.md §2.8). Closed = healthy; open =
/// consecutive store-read failures exceeded the threshold and new queries
/// are bounced with Unavailable until the cooldown elapses; half-open =
/// cooldown elapsed, one probe query is admitted — its scan outcome
/// closes or re-opens the breaker.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// Point-in-time health of the server (QueryServer::health(), the
/// `health` stdin command of ariadne_serve).
struct HealthSnapshot {
  bool accepting = true;  ///< false once Shutdown began
  BreakerState breaker = BreakerState::kClosed;
  int consecutive_scan_failures = 0;
  double retry_after_ms = 0.0;  ///< > 0 while the breaker is open
  size_t queue_depth = 0;
  size_t inflight = 0;
  double est_query_ms = 0.0;  ///< EWMA of completed-query exec time
  uint64_t shed = 0;
  uint64_t step_retries = 0;
  uint64_t breaker_trips = 0;

  std::string ToString() const;
};

/// The multi-tenant provenance query server (DESIGN.md §2.6): one loaded
/// capture, many concurrent PQL queries, Quegel-style superstep-sharing.
///
/// Three stages:
///  1. Admission — Submit() bounds the waiting queue and stamps the
///     deadline; the scheduler admits up to max_inflight resumable
///     LayeredQueryRuns (eval/layered_step.h).
///  2. Scheduler — groups in-flight runs by the provenance layer each
///     needs next and picks the largest group (ties: lowest layer, so
///     co-admitted same-direction queries stay in lockstep).
///  3. Shared-scan executor — one page-read + decompress + index pass for
///     the group's (layer, relation-union), fanned out to every
///     subscribed query; the group then steps in parallel on the pool.
///
/// Every query's result is identical to a one-shot Session::RunOffline
/// of the same program (see serve_concurrent_test).
class QueryServer {
 public:
  /// `state` must outlive the server.
  QueryServer(const ServiceState* state, ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues a query; the future resolves when it completes, fails or
  /// expires. Bounced immediately instead of queued when: the queue is
  /// full (OutOfRange), the server is stopping (Unavailable), the circuit
  /// breaker is open / probing (Unavailable with a retry-after hint), or
  /// the estimated queue wait already exceeds the deadline (Unavailable).
  /// Every Submit yields a resolved future — promises are never dropped,
  /// even when Submit races Shutdown. Thread-safe.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Submit + future.get().
  ServeResponse SubmitAndWait(ServeRequest request);

  /// Stops the scheduler. New Submits are bounced (Unavailable) from the
  /// moment this is called. With drain_timeout_ms < 0 (the default, and
  /// what the destructor uses) the queue and all in-flight queries drain
  /// to completion; otherwise queries still waiting or running when the
  /// timeout elapses fail fast with Unavailable. Idempotent.
  void Shutdown(double drain_timeout_ms = -1.0);

  ServerStats stats() const;

  /// Point-in-time health: breaker state, queue depth, shed/retry
  /// counters. Thread-safe; never blocks on in-flight work.
  HealthSnapshot health() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// A submitted-but-not-admitted query.
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    WallTimer queued;
  };

  /// The mutable per-query half of a running evaluation (the counterpart
  /// of the shared ServiceState): analyzed program, resumable run,
  /// deadline, timers and attributed cache counters. Owned by the
  /// scheduler; never moved after the run is constructed (the run holds
  /// a pointer to `query`).
  struct QueryContext {
    std::string name;
    std::promise<ServeResponse> promise;
    std::unique_ptr<AnalyzedQuery> query;
    std::optional<LayeredQueryRun> run;
    Clock::time_point deadline = Clock::time_point::max();
    double queue_seconds = 0.0;
    WallTimer exec;
    storage::PageCacheStats cache;
    Status step_status;
    /// Coalescing key (program text + sorted params) and the requests
    /// riding this evaluation: identical queries over the immutable
    /// store yield identical results, so concurrent duplicates attach
    /// here instead of evaluating — LayeredQueryRun::Finish is
    /// re-callable and deterministic, so each follower gets its own
    /// (byte-identical) result. Followers share this query's deadline.
    std::string key;
    struct Follower {
      std::string name;
      std::promise<ServeResponse> promise;
      double queue_seconds = 0.0;
    };
    std::vector<Follower> followers;
  };

  void SchedulerLoop();
  void Admit(Pending pending);
  /// One scheduler iteration over the largest layer group.
  void RunGroup();
  void Respond(std::unique_ptr<QueryContext> ctx, Status status,
               Result<OfflineRun>&& run);

  /// Open -> half-open once the cooldown has elapsed. mu_ held.
  void MaybeHalfOpenLocked();
  /// Remaining open-state cooldown in ms (0 unless open). mu_ held.
  double RetryAfterMsLocked() const;
  /// EWMA exec time x full waves of (queued + inflight) ahead of a new
  /// admission. mu_ held.
  double EstimatedQueueWaitMsLocked() const;
  /// Breaker bookkeeping after a shared scan succeeded / exhausted its
  /// retries. Called from RunGroup, takes mu_.
  void NoteScanOutcome(bool ok);
  /// Refreshes the mu_-guarded mirror of inflight_.size() for health().
  void SyncInflightCount();

  const ServiceState* state_;
  const ServerOptions options_;
  SharedScanExecutor executor_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  ServerStats stats_;

  // Breaker + shedding state (all guarded by mu_).
  BreakerState breaker_ = BreakerState::kClosed;
  int consecutive_scan_failures_ = 0;
  Clock::time_point breaker_open_until_{};
  /// A half-open probe is queued or running; further admissions bounce
  /// until its scan verdict (or its completion) comes back.
  bool probe_inflight_ = false;
  /// EWMA (alpha 0.2) of completed-query exec seconds, for the
  /// deadline-aware admission shed.
  double ewma_exec_seconds_ = 0.0;
  /// Mirror of inflight_.size() so health() need not touch the
  /// scheduler-private vector.
  size_t inflight_count_ = 0;
  /// Fail-fast drain deadline set by Shutdown(timeout >= 0).
  Clock::time_point drain_deadline_ = Clock::time_point::max();

  /// Scheduler-private (only SchedulerLoop touches it).
  std::vector<std::unique_ptr<QueryContext>> inflight_;

  std::thread scheduler_;
};

}  // namespace ariadne::serve

#endif  // ARIADNE_SERVE_SERVER_H_
