#include "serve/shared_scan.h"

#include <algorithm>

#include "recovery/fault_injector.h"

namespace ariadne::serve {

std::vector<int> UnionNeededRels(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  if (a.empty() || b.empty()) return {};  // empty = all relations
  std::vector<int> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

SharedScanExecutor::SharedScanExecutor(const ProvenanceStore* store,
                                       int send_rel, int receive_rel,
                                       size_t capacity)
    : store_(store),
      send_rel_(send_rel),
      receive_rel_(receive_rel),
      capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::shared_ptr<const LayerView>> SharedScanExecutor::Acquire(
    int step, const std::vector<int>& needed, size_t subscribers) {
  std::vector<int> build_rels = needed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.subscribers += subscribers;
    for (auto it = views_.begin(); it != views_.end(); ++it) {
      if ((*it)->step != step) continue;
      if ((*it)->Covers(needed)) {
        views_.splice(views_.begin(), views_, it);  // refresh LRU
        stats_.shared_hits += subscribers;
        return views_.front();
      }
      // Same layer, insufficient relations: rebuild over the union so the
      // replacement serves both this group and the evicted view's users.
      build_rels = UnionNeededRels((*it)->rels, needed);
      views_.erase(it);
      break;
    }
  }

  // One store pass: page read + decompress + per-vertex/route indexing.
  // Done outside the lock — the store's read path is concurrency-safe and
  // a slow cold scan must not block unrelated Acquires.
  // Fault point sits here, after the cache check: injected failures hit
  // only cold scans, exactly like a real store read error would.
  ARIADNE_RETURN_NOT_OK(recovery::CheckFaultPoint("serve-scan"));
  ARIADNE_ASSIGN_OR_RETURN(std::shared_ptr<const Layer> layer,
                           store_->GetLayerRelations(step, build_rels));
  std::shared_ptr<const LayerView> view = BuildLayerView(
      std::move(layer), step, send_rel_, receive_rel_, std::move(build_rels));

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.scans;
  // Everyone beyond the first subscriber rides the single pass.
  if (subscribers > 0) stats_.shared_hits += subscribers - 1;
  views_.push_front(view);
  while (views_.size() > capacity_) {
    views_.pop_back();
    ++stats_.view_evictions;
  }
  return view;
}

void SharedScanExecutor::Prefetch(int step,
                                  const std::vector<int>& needed) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& view : views_) {
      if (view->step == step && view->Covers(needed)) return;
    }
  }
  store_->PrefetchLayer(step, needed);
}

SharedScanStats SharedScanExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ariadne::serve
