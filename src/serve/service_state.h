#ifndef ARIADNE_SERVE_SERVICE_STATE_H_
#define ARIADNE_SERVE_SERVICE_STATE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/session.h"
#include "eval/layered_step.h"
#include "graph/graph.h"
#include "provenance/store.h"

namespace ariadne::serve {

struct ServiceStateOptions {
  /// Cost-ordered join planning for prepared queries (DESIGN.md §2.3).
  bool plan_joins = true;
  /// Eagerly materialize all static-adjacency planes at startup so the
  /// shared AdjacencyCache is immutable while queries run. Disable only
  /// for tiny short-lived servers where startup latency dominates.
  bool precompute_adjacency = true;
};

/// The immutable half of a query server: everything that is shared,
/// read-only, across every in-flight query — the input graph, the capture
/// (const read path), its schema view, and the precomputed static
/// adjacency planes. This is the refactor boundary forced by
/// superstep-sharing: SessionOptions-style per-call state moved into the
/// per-query QueryContext (serve/server.h); what remains here must be
/// const-correct and safe for any number of concurrent readers.
class ServiceState {
 public:
  /// `graph` and `store` must outlive the state. Validates the store has
  /// layers to serve.
  static Result<std::unique_ptr<ServiceState>> Create(
      const Graph* graph, const ProvenanceStore* store,
      ServiceStateOptions options = {});

  const Graph& graph() const { return *graph_; }
  const ProvenanceStore& store() const { return *store_; }
  int send_rel() const { return send_rel_; }
  int receive_rel() const { return receive_rel_; }

  /// Parses, binds and analyzes a PQL program for offline evaluation
  /// against the store's schema. Pure (thread-safe): concurrent Prepare
  /// calls share nothing mutable.
  Result<AnalyzedQuery> Prepare(const std::string& text,
                                const QueryParams& params = {}) const;

  /// The shared adjacency planes; precomputed (hence immutable and safe
  /// to hand to concurrent LayeredQueryRuns) unless configured otherwise.
  AdjacencyCache* adjacency() const { return adjacency_.get(); }

  /// Resident bytes of the shared adjacency planes.
  size_t AdjacencyBytes() const { return adjacency_->MemoryBytes(); }

 private:
  ServiceState(const Graph* graph, const ProvenanceStore* store,
               ServiceStateOptions options);

  const Graph* graph_;
  const ProvenanceStore* store_;
  ServiceStateOptions options_;
  Session session_;
  int send_rel_ = -1;
  int receive_rel_ = -1;
  /// unique_ptr because LayeredQueryRun takes a mutable pointer (lazy
  /// fill in one-shot mode); precomputed here, so sharing is race-free.
  std::unique_ptr<AdjacencyCache> adjacency_;
};

}  // namespace ariadne::serve

#endif  // ARIADNE_SERVE_SERVICE_STATE_H_
