#ifndef ARIADNE_SERVE_SHARED_SCAN_H_
#define ARIADNE_SERVE_SHARED_SCAN_H_

#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "eval/layered_step.h"
#include "provenance/store.h"

namespace ariadne::serve {

/// Counters of the shared-scan executor. `subscribers` counts query-steps
/// served; `scans` counts actual page-read + decompress + index passes.
/// The headline serve metric is the share of query-steps that did NOT pay
/// a scan: with 64 concurrent queries on the same workload the hit rate
/// approaches 63/64 per group, which is where the aggregate-QPS win over
/// sequential one-shot evaluation comes from.
struct SharedScanStats {
  uint64_t scans = 0;        ///< layer views built (one store pass each)
  uint64_t subscribers = 0;  ///< query-steps fed by any view
  uint64_t shared_hits = 0;  ///< query-steps that reused an existing pass
  uint64_t view_evictions = 0;

  double HitRate() const {
    return subscribers == 0
               ? 0.0
               : static_cast<double>(shared_hits) /
                     static_cast<double>(subscribers);
  }
};

/// The shared-scan half of superstep-sharing: performs one page-read +
/// decompress + index pass per (layer, relation-set) and fans the
/// resulting immutable LayerView out to every query subscribed to that
/// layer. A small LRU of recent views bridges consecutive scheduler
/// groups (e.g. forward and backward queries crossing the same layer from
/// opposite ends, or stragglers admitted one group late).
///
/// Thread-safe; in the server only the scheduler thread calls Acquire,
/// but tests drive it concurrently.
class SharedScanExecutor {
 public:
  /// `store` must outlive the executor. `send_rel`/`receive_rel` are the
  /// store's message-edge relations (LayerView routing). `capacity` is
  /// the number of views retained (>= 1).
  SharedScanExecutor(const ProvenanceStore* store, int send_rel,
                     int receive_rel, size_t capacity = 4);

  /// A view of layer `step` covering the relations in `needed` (sorted;
  /// empty = all), built by one store pass or reused from a previous one.
  /// `subscribers` is the number of queries this view is about to feed
  /// (stats only). When a retained view for `step` does not cover
  /// `needed`, the replacement is built over the union of both relation
  /// sets, so alternating relation subsets converge instead of thrashing.
  Result<std::shared_ptr<const LayerView>> Acquire(
      int step, const std::vector<int>& needed, size_t subscribers);

  /// Best-effort page-cache warmup for an upcoming Acquire.
  void Prefetch(int step, const std::vector<int>& needed) const;

  SharedScanStats stats() const;

 private:
  const ProvenanceStore* store_;
  const int send_rel_;
  const int receive_rel_;
  const size_t capacity_;

  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<std::shared_ptr<const LayerView>> views_;
  SharedScanStats stats_;
};

/// Union of two sorted needed-relation sets, where empty means "all".
std::vector<int> UnionNeededRels(const std::vector<int>& a,
                                 const std::vector<int>& b);

}  // namespace ariadne::serve

#endif  // ARIADNE_SERVE_SHARED_SCAN_H_
