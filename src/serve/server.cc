#include "serve/server.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/retry.h"

namespace ariadne::serve {

namespace {

/// Canonical coalescing key: program text plus name-sorted params.
/// Two requests with equal keys ask the same question of the same
/// (immutable) store and may share one evaluation.
std::string RequestKey(const std::string& text, const QueryParams& params) {
  std::vector<std::pair<std::string, std::string>> sorted;
  sorted.reserve(params.size());
  for (const auto& [name, value] : params) {
    sorted.emplace_back(name, value.ToString());
  }
  std::sort(sorted.begin(), sorted.end());
  std::string key = text;
  for (const auto& [name, value] : sorted) {
    key += '\x1f';
    key += name;
    key += '=';
    key += value;
  }
  return key;
}

std::chrono::steady_clock::duration MillisDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

std::string HealthSnapshot::ToString() const {
  std::ostringstream out;
  out << "state=" << (accepting ? "accepting" : "draining")
      << " breaker=" << BreakerStateName(breaker)
      << " consecutive_scan_failures=" << consecutive_scan_failures;
  if (retry_after_ms > 0.0) out << " retry_after_ms=" << retry_after_ms;
  out << " queue_depth=" << queue_depth << " inflight=" << inflight
      << " est_query_ms=" << est_query_ms << " shed=" << shed
      << " step_retries=" << step_retries
      << " breaker_trips=" << breaker_trips;
  return out.str();
}

QueryServer::QueryServer(const ServiceState* state, ServerOptions options)
    : state_(state),
      options_(options),
      executor_(&state->store(), state->send_rel(), state->receive_rel(),
                options.view_cache_capacity),
      pool_(options.step_threads) {
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

QueryServer::~QueryServer() { Shutdown(); }

std::future<ServeResponse> QueryServer::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  Status bounce;
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stop_) {
      // Submit racing Shutdown: resolve the promise (Unavailable), never
      // drop it — callers blocked on future.get() must always wake.
      ++stats_.rejected;
      bounce = Status::Unavailable("server is shutting down");
    } else if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      bounce = Status::OutOfRange(
          "admission queue full (" + std::to_string(options_.queue_capacity) +
          " queries waiting)");
    } else {
      MaybeHalfOpenLocked();
      if (breaker_ == BreakerState::kOpen) {
        ++stats_.shed;
        bounce = Status::Unavailable(
            "circuit breaker open after " +
            std::to_string(consecutive_scan_failures_) +
            " consecutive store read failures; retry after " +
            std::to_string(RetryAfterMsLocked()) + " ms");
      } else if (breaker_ == BreakerState::kHalfOpen && probe_inflight_) {
        ++stats_.shed;
        bounce = Status::Unavailable(
            "circuit breaker half-open, probe in flight; retry after " +
            std::to_string(options_.breaker_cooldown_ms) + " ms");
      } else {
        const double deadline_ms = request.deadline_ms >= 0.0
                                       ? request.deadline_ms
                                       : options_.default_deadline_ms;
        const double est_wait_ms = EstimatedQueueWaitMsLocked();
        if (options_.shed_on_deadline && deadline_ms > 0.0 &&
            est_wait_ms > deadline_ms) {
          // The query would expire in the queue anyway; shedding it now
          // costs nothing and keeps the backlog honest.
          ++stats_.shed;
          bounce = Status::Unavailable(
              "estimated queue wait " + std::to_string(est_wait_ms) +
              " ms exceeds the " + std::to_string(deadline_ms) +
              " ms deadline; retry after the backlog drains");
        }
      }
      if (bounce.ok()) {
        if (breaker_ == BreakerState::kHalfOpen) {
          probe_inflight_ = true;
          ++stats_.breaker_probes;
        }
        queue_.push_back(Pending{std::move(request), std::move(promise), {}});
        queued = true;
      }
    }
  }
  if (!queued) {
    ServeResponse response;
    response.name = request.name;
    response.status = std::move(bounce);
    promise.set_value(std::move(response));
    return future;
  }
  cv_.notify_one();
  return future;
}

ServeResponse QueryServer::SubmitAndWait(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void QueryServer::Shutdown(double drain_timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !scheduler_.joinable()) return;
    stop_ = true;
    if (drain_timeout_ms >= 0.0) {
      drain_deadline_ = Clock::now() + MillisDuration(drain_timeout_ms);
    }
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.scan = executor_.stats();
  return out;
}

HealthSnapshot QueryServer::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthSnapshot snapshot;
  snapshot.accepting = !stop_;
  snapshot.breaker = breaker_;
  snapshot.consecutive_scan_failures = consecutive_scan_failures_;
  snapshot.retry_after_ms = RetryAfterMsLocked();
  snapshot.queue_depth = queue_.size();
  snapshot.inflight = inflight_count_;
  snapshot.est_query_ms = ewma_exec_seconds_ * 1000.0;
  snapshot.shed = stats_.shed;
  snapshot.step_retries = stats_.step_retries;
  snapshot.breaker_trips = stats_.breaker_trips;
  return snapshot;
}

void QueryServer::MaybeHalfOpenLocked() {
  if (breaker_ == BreakerState::kOpen && Clock::now() >= breaker_open_until_) {
    breaker_ = BreakerState::kHalfOpen;
    probe_inflight_ = false;
  }
}

double QueryServer::RetryAfterMsLocked() const {
  if (breaker_ != BreakerState::kOpen) return 0.0;
  const auto left = breaker_open_until_ - Clock::now();
  return std::max(0.0,
                  std::chrono::duration<double, std::milli>(left).count());
}

double QueryServer::EstimatedQueueWaitMsLocked() const {
  if (ewma_exec_seconds_ <= 0.0) return 0.0;
  // Queries drain max_inflight at a time; a new admission waits roughly
  // one EWMA exec time per full wave already ahead of it.
  const size_t slots = std::max<size_t>(1, options_.max_inflight);
  const size_t waves = (queue_.size() + inflight_count_) / slots;
  return static_cast<double>(waves) * ewma_exec_seconds_ * 1000.0;
}

void QueryServer::NoteScanOutcome(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    consecutive_scan_failures_ = 0;
    if (breaker_ == BreakerState::kHalfOpen) {
      breaker_ = BreakerState::kClosed;
      probe_inflight_ = false;
    }
    return;
  }
  ++stats_.scan_failures;
  ++consecutive_scan_failures_;
  // A failed half-open probe re-opens immediately; otherwise the breaker
  // trips once the consecutive-failure threshold is crossed.
  const bool probe_failed = breaker_ == BreakerState::kHalfOpen;
  if (options_.breaker_threshold > 0 && breaker_ != BreakerState::kOpen &&
      (probe_failed ||
       consecutive_scan_failures_ >= options_.breaker_threshold)) {
    breaker_ = BreakerState::kOpen;
    breaker_open_until_ =
        Clock::now() + MillisDuration(options_.breaker_cooldown_ms);
    probe_inflight_ = false;
    ++stats_.breaker_trips;
  }
}

void QueryServer::SyncInflightCount() {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_count_ = inflight_.size();
}

void QueryServer::Respond(std::unique_ptr<QueryContext> ctx, Status status,
                          Result<OfflineRun>&& run) {
  const Status outcome =
      status.ok() ? (run.ok() ? Status::OK() : run.status()) : status;
  const double exec_seconds = ctx->exec.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t responses = 1 + ctx->followers.size();
    if (outcome.ok()) {
      stats_.completed += responses;
    } else if (outcome.code() == StatusCode::kOutOfRange) {
      stats_.expired += responses;
    } else {
      stats_.failed += responses;
    }
    // EWMA of exec time feeds the deadline-aware admission shed.
    ewma_exec_seconds_ = ewma_exec_seconds_ <= 0.0
                             ? exec_seconds
                             : 0.8 * ewma_exec_seconds_ + 0.2 * exec_seconds;
    // Any completion while half-open frees the probe slot: even a probe
    // that never reached a fresh scan (coalesced, expired, cached view)
    // must not wedge admissions waiting for a verdict that never comes.
    if (breaker_ == BreakerState::kHalfOpen) probe_inflight_ = false;
  }

  // Coalesced duplicates first: each gets its own result, re-derived
  // from the run's final state (Finish is deterministic and
  // re-callable), so followers and leader are byte-identical.
  for (QueryContext::Follower& follower : ctx->followers) {
    ServeResponse response;
    response.name = follower.name;
    response.queue_seconds = follower.queue_seconds;
    response.exec_seconds = exec_seconds;
    response.cache = ctx->cache;
    if (outcome.ok()) {
      Result<OfflineRun> again = ctx->run->Finish(exec_seconds);
      if (again.ok()) {
        OfflineRun finished = again.MoveValue();
        response.stats = finished.stats;
        response.result = std::move(finished.result);
      } else {
        response.status = again.status();
      }
    } else {
      response.status = outcome;
    }
    follower.promise.set_value(std::move(response));
  }

  ServeResponse response;
  response.name = ctx->name;
  response.queue_seconds = ctx->queue_seconds;
  response.exec_seconds = exec_seconds;
  response.cache = ctx->cache;
  if (outcome.ok()) {
    OfflineRun finished = run.MoveValue();
    response.stats = finished.stats;
    response.result = std::move(finished.result);
  } else {
    response.status = outcome;
  }
  ctx->promise.set_value(std::move(response));
}

void QueryServer::Admit(Pending pending) {
  // Identical in-flight query (same text + params over the immutable
  // store)? Ride its evaluation instead of starting another.
  const std::string key =
      RequestKey(pending.request.text, pending.request.params);
  for (const auto& inflight : inflight_) {
    if (inflight->key != key) continue;
    QueryContext::Follower follower;
    follower.name = pending.request.name;
    follower.promise = std::move(pending.promise);
    follower.queue_seconds = pending.queued.ElapsedSeconds();
    inflight->followers.push_back(std::move(follower));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.coalesced;
    return;
  }

  auto ctx = std::make_unique<QueryContext>();
  ctx->name = pending.request.name;
  ctx->key = key;
  ctx->promise = std::move(pending.promise);
  ctx->queue_seconds = pending.queued.ElapsedSeconds();
  const double deadline_ms = pending.request.deadline_ms >= 0.0
                                 ? pending.request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    ctx->deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double, std::milli>(
                                           deadline_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.admitted;
  }

  auto prepared =
      state_->Prepare(pending.request.text, pending.request.params);
  if (!prepared.ok()) {
    Respond(std::move(ctx), prepared.status(), prepared.status());
    return;
  }
  ctx->query = std::make_unique<AnalyzedQuery>(prepared.MoveValue());
  // A lazily-filled adjacency cache is not shareable across concurrent
  // runs; only hand out the precomputed (immutable) one.
  AdjacencyCache* adjacency = state_->adjacency()->precomputed()
                                  ? state_->adjacency()
                                  : nullptr;
  ctx->run.emplace(&state_->graph(), &state_->store(), ctx->query.get(),
                   adjacency);
  Status init = ctx->run->Init();
  if (!init.ok()) {
    Respond(std::move(ctx), init, init);
    return;
  }
  inflight_.push_back(std::move(ctx));
}

void QueryServer::RunGroup() {
  const Clock::time_point now = Clock::now();
  // Expire before grouping so a dead query never forces a scan.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (now < (*it)->deadline) {
      ++it;
      continue;
    }
    std::unique_ptr<QueryContext> ctx = std::move(*it);
    it = inflight_.erase(it);
    Status expired = Status::OutOfRange(
        "deadline exceeded after " +
        std::to_string(ctx->exec.ElapsedMillis()) + " ms (layer " +
        std::to_string(ctx->run->NextLayerStep()) + " pending)");
    Respond(std::move(ctx), expired, expired);
  }
  if (inflight_.empty()) return;

  // Group by the layer each run needs next; serve the largest group
  // (ties: lowest layer) from one shared scan.
  std::map<int, std::vector<QueryContext*>> groups;
  for (const auto& ctx : inflight_) {
    groups[ctx->run->NextLayerStep()].push_back(ctx.get());
  }
  auto best = groups.begin();
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    if (it->second.size() > best->second.size()) best = it;
  }
  const int step = best->first;
  std::vector<QueryContext*>& group = best->second;

  std::vector<int> needed;  // starts as the first member's set
  needed = group.front()->run->needed_rels();
  for (size_t i = 1; i < group.size(); ++i) {
    needed = UnionNeededRels(needed, group[i]->run->needed_rels());
  }

  // One pass over (layer, relation-union); every group member rides it.
  // The pass's page-cache activity is attributed to each subscriber.
  // The scan is the retryable half of a layer step — it only reads the
  // immutable store — so transient I/O errors get the retry ladder here;
  // Step() below mutates query state and is never replayed.
  storage::PageCacheStats scan_cache;
  RetryPolicy policy;
  policy.max_attempts = options_.step_retry_attempts;
  policy.backoff_base_ms = options_.step_retry_backoff_ms;
  policy.seed = options_.retry_seed;
  Result<std::shared_ptr<const LayerView>> view =
      std::shared_ptr<const LayerView>();
  const RetryOutcome scanned =
      RetryTransient(policy, static_cast<uint64_t>(step), [&] {
        storage::ScopedCacheAttribution attribution(&scan_cache);
        view = executor_.Acquire(step, needed, group.size());
        return view.ok() ? Status::OK() : view.status();
      });
  if (scanned.retries() > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.step_retries += scanned.retries();
  }
  NoteScanOutcome(view.ok());
  if (!view.ok()) {
    // The layer is unreadable (I/O error past retries): fail the whole
    // group — no member can make progress without it.
    for (QueryContext* member : group) {
      auto it = std::find_if(
          inflight_.begin(), inflight_.end(),
          [member](const auto& c) { return c.get() == member; });
      std::unique_ptr<QueryContext> ctx = std::move(*it);
      inflight_.erase(it);
      Respond(std::move(ctx), view.status(), view.status());
    }
    return;
  }

  // Warm the next layer(s) this group will need while it computes.
  std::vector<int> prefetched;
  for (QueryContext* member : group) {
    const int after = member->run->LayerStepAfterNext();
    if (after < 0) continue;
    if (std::find(prefetched.begin(), prefetched.end(), after) !=
        prefetched.end()) {
      continue;
    }
    prefetched.push_back(after);
    executor_.Prefetch(after, needed);
  }

  // Fan the shared view out: each run mutates only its own state, the
  // view and adjacency planes are immutable — race-free by construction
  // (serve_concurrent_test runs this under tsan).
  const LayerView& shared = **view;
  pool_.ParallelFor(group.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      group[i]->step_status = group[i]->run->Step(shared);
    }
  });

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.group_steps;
    stats_.query_steps += group.size();
    stats_.max_group_size =
        std::max<uint64_t>(stats_.max_group_size, group.size());
  }

  for (QueryContext* member : group) {
    member->cache.Merge(scan_cache);
    const bool errored = !member->step_status.ok();
    if (!errored && !member->run->done()) continue;
    auto it = std::find_if(
        inflight_.begin(), inflight_.end(),
        [member](const auto& c) { return c.get() == member; });
    std::unique_ptr<QueryContext> ctx = std::move(*it);
    inflight_.erase(it);
    if (errored) {
      Status failed = ctx->step_status;
      Respond(std::move(ctx), failed, failed);
    } else {
      Result<OfflineRun> finished =
          ctx->run->Finish(ctx->exec.ElapsedSeconds());
      Respond(std::move(ctx), Status::OK(), std::move(finished));
    }
  }
}

void QueryServer::SchedulerLoop() {
  while (true) {
    std::vector<Pending> admissions;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (inflight_.empty()) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) break;
      }
      // Fail-fast drain: past the Shutdown timeout, stop stepping and
      // resolve everything still pending below.
      if (stop_ && Clock::now() >= drain_deadline_) break;
      while (!queue_.empty() &&
             inflight_.size() + admissions.size() < options_.max_inflight) {
        admissions.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    for (Pending& pending : admissions) Admit(std::move(pending));
    SyncInflightCount();
    if (!inflight_.empty()) RunGroup();
    SyncInflightCount();
  }

  // Resolve every promise still outstanding with Unavailable so
  // submitted == completed + failed + expired + rejected + shed holds
  // even through a timed-out drain — promises are never dropped.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
    stats_.rejected += leftovers.size();
  }
  for (Pending& pending : leftovers) {
    ServeResponse response;
    response.name = pending.request.name;
    response.status =
        Status::Unavailable("server shut down before this query was admitted");
    response.queue_seconds = pending.queued.ElapsedSeconds();
    pending.promise.set_value(std::move(response));
  }
  while (!inflight_.empty()) {
    std::unique_ptr<QueryContext> ctx = std::move(inflight_.back());
    inflight_.pop_back();
    Status abandoned = Status::Unavailable(
        "shutdown drain timeout: query abandoned at layer " +
        std::to_string(ctx->run ? ctx->run->NextLayerStep() : -1));
    Respond(std::move(ctx), abandoned, abandoned);
  }
  SyncInflightCount();
}

}  // namespace ariadne::serve
