#include "serve/server.h"

#include <algorithm>
#include <map>

namespace ariadne::serve {

namespace {

/// Canonical coalescing key: program text plus name-sorted params.
/// Two requests with equal keys ask the same question of the same
/// (immutable) store and may share one evaluation.
std::string RequestKey(const std::string& text, const QueryParams& params) {
  std::vector<std::pair<std::string, std::string>> sorted;
  sorted.reserve(params.size());
  for (const auto& [name, value] : params) {
    sorted.emplace_back(name, value.ToString());
  }
  std::sort(sorted.begin(), sorted.end());
  std::string key = text;
  for (const auto& [name, value] : sorted) {
    key += '\x1f';
    key += name;
    key += '=';
    key += value;
  }
  return key;
}

}  // namespace

QueryServer::QueryServer(const ServiceState* state, ServerOptions options)
    : state_(state),
      options_(options),
      executor_(&state->store(), state->send_rel(), state->receive_rel(),
                options.view_cache_capacity),
      pool_(options.step_threads) {
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

QueryServer::~QueryServer() { Shutdown(); }

std::future<ServeResponse> QueryServer::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stop_) {
      ++stats_.rejected;
      ServeResponse response;
      response.name = request.name;
      response.status = Status::OutOfRange("server is shutting down");
      promise.set_value(std::move(response));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      ServeResponse response;
      response.name = request.name;
      response.status = Status::OutOfRange(
          "admission queue full (" +
          std::to_string(options_.queue_capacity) + " queries waiting)");
      promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(Pending{std::move(request), std::move(promise), {}});
  }
  cv_.notify_one();
  return future;
}

ServeResponse QueryServer::SubmitAndWait(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !scheduler_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.scan = executor_.stats();
  return out;
}

void QueryServer::Respond(std::unique_ptr<QueryContext> ctx, Status status,
                          Result<OfflineRun>&& run) {
  const Status outcome =
      status.ok() ? (run.ok() ? Status::OK() : run.status()) : status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t responses = 1 + ctx->followers.size();
    if (outcome.ok()) {
      stats_.completed += responses;
    } else if (outcome.code() == StatusCode::kOutOfRange) {
      stats_.expired += responses;
    } else {
      stats_.failed += responses;
    }
  }
  const double exec_seconds = ctx->exec.ElapsedSeconds();

  // Coalesced duplicates first: each gets its own result, re-derived
  // from the run's final state (Finish is deterministic and
  // re-callable), so followers and leader are byte-identical.
  for (QueryContext::Follower& follower : ctx->followers) {
    ServeResponse response;
    response.name = follower.name;
    response.queue_seconds = follower.queue_seconds;
    response.exec_seconds = exec_seconds;
    response.cache = ctx->cache;
    if (outcome.ok()) {
      Result<OfflineRun> again = ctx->run->Finish(exec_seconds);
      if (again.ok()) {
        OfflineRun finished = again.MoveValue();
        response.stats = finished.stats;
        response.result = std::move(finished.result);
      } else {
        response.status = again.status();
      }
    } else {
      response.status = outcome;
    }
    follower.promise.set_value(std::move(response));
  }

  ServeResponse response;
  response.name = ctx->name;
  response.queue_seconds = ctx->queue_seconds;
  response.exec_seconds = exec_seconds;
  response.cache = ctx->cache;
  if (outcome.ok()) {
    OfflineRun finished = run.MoveValue();
    response.stats = finished.stats;
    response.result = std::move(finished.result);
  } else {
    response.status = outcome;
  }
  ctx->promise.set_value(std::move(response));
}

void QueryServer::Admit(Pending pending) {
  // Identical in-flight query (same text + params over the immutable
  // store)? Ride its evaluation instead of starting another.
  const std::string key =
      RequestKey(pending.request.text, pending.request.params);
  for (const auto& inflight : inflight_) {
    if (inflight->key != key) continue;
    QueryContext::Follower follower;
    follower.name = pending.request.name;
    follower.promise = std::move(pending.promise);
    follower.queue_seconds = pending.queued.ElapsedSeconds();
    inflight->followers.push_back(std::move(follower));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.coalesced;
    return;
  }

  auto ctx = std::make_unique<QueryContext>();
  ctx->name = pending.request.name;
  ctx->key = key;
  ctx->promise = std::move(pending.promise);
  ctx->queue_seconds = pending.queued.ElapsedSeconds();
  const double deadline_ms = pending.request.deadline_ms >= 0.0
                                 ? pending.request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    ctx->deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double, std::milli>(
                                           deadline_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.admitted;
  }

  auto prepared =
      state_->Prepare(pending.request.text, pending.request.params);
  if (!prepared.ok()) {
    Respond(std::move(ctx), prepared.status(), prepared.status());
    return;
  }
  ctx->query = std::make_unique<AnalyzedQuery>(prepared.MoveValue());
  // A lazily-filled adjacency cache is not shareable across concurrent
  // runs; only hand out the precomputed (immutable) one.
  AdjacencyCache* adjacency = state_->adjacency()->precomputed()
                                  ? state_->adjacency()
                                  : nullptr;
  ctx->run.emplace(&state_->graph(), &state_->store(), ctx->query.get(),
                   adjacency);
  Status init = ctx->run->Init();
  if (!init.ok()) {
    Respond(std::move(ctx), init, init);
    return;
  }
  inflight_.push_back(std::move(ctx));
}

void QueryServer::RunGroup() {
  const Clock::time_point now = Clock::now();
  // Expire before grouping so a dead query never forces a scan.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (now < (*it)->deadline) {
      ++it;
      continue;
    }
    std::unique_ptr<QueryContext> ctx = std::move(*it);
    it = inflight_.erase(it);
    Status expired = Status::OutOfRange(
        "deadline exceeded after " +
        std::to_string(ctx->exec.ElapsedMillis()) + " ms (layer " +
        std::to_string(ctx->run->NextLayerStep()) + " pending)");
    Respond(std::move(ctx), expired, expired);
  }
  if (inflight_.empty()) return;

  // Group by the layer each run needs next; serve the largest group
  // (ties: lowest layer) from one shared scan.
  std::map<int, std::vector<QueryContext*>> groups;
  for (const auto& ctx : inflight_) {
    groups[ctx->run->NextLayerStep()].push_back(ctx.get());
  }
  auto best = groups.begin();
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    if (it->second.size() > best->second.size()) best = it;
  }
  const int step = best->first;
  std::vector<QueryContext*>& group = best->second;

  std::vector<int> needed;  // starts as the first member's set
  needed = group.front()->run->needed_rels();
  for (size_t i = 1; i < group.size(); ++i) {
    needed = UnionNeededRels(needed, group[i]->run->needed_rels());
  }

  // One pass over (layer, relation-union); every group member rides it.
  // The pass's page-cache activity is attributed to each subscriber.
  storage::PageCacheStats scan_cache;
  Result<std::shared_ptr<const LayerView>> view = [&] {
    storage::ScopedCacheAttribution attribution(&scan_cache);
    return executor_.Acquire(step, needed, group.size());
  }();
  if (!view.ok()) {
    // The layer is unreadable (I/O error past retries): fail the whole
    // group — no member can make progress without it.
    for (QueryContext* member : group) {
      auto it = std::find_if(
          inflight_.begin(), inflight_.end(),
          [member](const auto& c) { return c.get() == member; });
      std::unique_ptr<QueryContext> ctx = std::move(*it);
      inflight_.erase(it);
      Respond(std::move(ctx), view.status(), view.status());
    }
    return;
  }

  // Warm the next layer(s) this group will need while it computes.
  std::vector<int> prefetched;
  for (QueryContext* member : group) {
    const int after = member->run->LayerStepAfterNext();
    if (after < 0) continue;
    if (std::find(prefetched.begin(), prefetched.end(), after) !=
        prefetched.end()) {
      continue;
    }
    prefetched.push_back(after);
    executor_.Prefetch(after, needed);
  }

  // Fan the shared view out: each run mutates only its own state, the
  // view and adjacency planes are immutable — race-free by construction
  // (serve_concurrent_test runs this under tsan).
  const LayerView& shared = **view;
  pool_.ParallelFor(group.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      group[i]->step_status = group[i]->run->Step(shared);
    }
  });

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.group_steps;
    stats_.query_steps += group.size();
    stats_.max_group_size =
        std::max<uint64_t>(stats_.max_group_size, group.size());
  }

  for (QueryContext* member : group) {
    member->cache.Merge(scan_cache);
    const bool errored = !member->step_status.ok();
    if (!errored && !member->run->done()) continue;
    auto it = std::find_if(
        inflight_.begin(), inflight_.end(),
        [member](const auto& c) { return c.get() == member; });
    std::unique_ptr<QueryContext> ctx = std::move(*it);
    inflight_.erase(it);
    if (errored) {
      Status failed = ctx->step_status;
      Respond(std::move(ctx), failed, failed);
    } else {
      Result<OfflineRun> finished =
          ctx->run->Finish(ctx->exec.ElapsedSeconds());
      Respond(std::move(ctx), Status::OK(), std::move(finished));
    }
  }
}

void QueryServer::SchedulerLoop() {
  while (true) {
    std::vector<Pending> admissions;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (inflight_.empty()) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) break;
      }
      while (!queue_.empty() &&
             inflight_.size() + admissions.size() < options_.max_inflight) {
        admissions.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    for (Pending& pending : admissions) Admit(std::move(pending));
    if (!inflight_.empty()) RunGroup();
  }
}

}  // namespace ariadne::serve
