#include "serve/service_state.h"

namespace ariadne::serve {

ServiceState::ServiceState(const Graph* graph, const ProvenanceStore* store,
                           ServiceStateOptions options)
    : graph_(graph),
      store_(store),
      options_(options),
      session_(graph, SessionOptions{.engine = {},
                                     .plan_joins = options.plan_joins}),
      send_rel_(store->RelId("send-message")),
      receive_rel_(store->RelId("receive-message")),
      adjacency_(std::make_unique<AdjacencyCache>(graph)) {}

Result<std::unique_ptr<ServiceState>> ServiceState::Create(
    const Graph* graph, const ProvenanceStore* store,
    ServiceStateOptions options) {
  if (graph == nullptr || store == nullptr) {
    return Status::InvalidArgument("serve requires a graph and a store");
  }
  if (store->num_layers() == 0) {
    return Status::InvalidArgument(
        "provenance store has no layers to serve");
  }
  std::unique_ptr<ServiceState> state(
      new ServiceState(graph, store, options));
  if (options.precompute_adjacency) state->adjacency_->Precompute();
  return state;
}

Result<AnalyzedQuery> ServiceState::Prepare(const std::string& text,
                                            const QueryParams& params) const {
  return session_.PrepareOffline(text, *store_, params);
}

}  // namespace ariadne::serve
