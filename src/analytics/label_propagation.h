#ifndef ARIADNE_ANALYTICS_LABEL_PROPAGATION_H_
#define ARIADNE_ANALYTICS_LABEL_PROPAGATION_H_

#include <cstdint>

#include "engine/vertex_program.h"

namespace ariadne {

/// Synchronous label propagation for community detection: every superstep
/// each vertex adopts the most frequent label among its (undirected)
/// neighbors, with deterministic smallest-label tie-breaking, for a fixed
/// number of rounds. Unlike the min-propagation analytics its values can
/// oscillate, which makes it an interesting subject for the paper's
/// monitoring queries (Query 6 flags value changes without messages —
/// never here — and the apt query finds few safe vertices).
class LabelPropagationProgram final
    : public VertexProgram<int64_t, int64_t> {
 public:
  explicit LabelPropagationProgram(int rounds) : rounds_(rounds) {}

  int64_t InitialValue(VertexId id, const Graph& graph) const override;
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override;

 private:
  int rounds_;
};

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_LABEL_PROPAGATION_H_
