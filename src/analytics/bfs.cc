#include "analytics/bfs.h"

namespace ariadne {

int64_t BfsProgram::InitialValue(VertexId /*id*/,
                                 const Graph& /*graph*/) const {
  return kUnreachedHops;
}

void BfsProgram::Compute(VertexContext<int64_t, int64_t>& ctx,
                         std::span<const int64_t> messages) {
  if (ctx.superstep() == 0) {
    if (ctx.id() == source_) {
      ctx.SetValue(0);
      ctx.SendToAllOutNeighbors(1);
    }
  } else if (ctx.value() == kUnreachedHops && !messages.empty()) {
    int64_t hops = messages[0];
    for (int64_t m : messages) hops = std::min(hops, m);
    ctx.SetValue(hops);
    ctx.SendToAllOutNeighbors(hops + 1);
  }
  ctx.VoteToHalt();
}

}  // namespace ariadne
