#ifndef ARIADNE_ANALYTICS_LINALG_H_
#define ARIADNE_ANALYTICS_LINALG_H_

#include <vector>

#include "common/status.h"

namespace ariadne {

/// Dense f×f linear solve (Gaussian elimination, partial pivoting) for the
/// ALS normal equations. `a` is row-major f×f and is modified in place;
/// returns the solution of a·x = b. Errors on singular systems.
Result<std::vector<double>> SolveLinear(std::vector<double> a,
                                        std::vector<double> b);

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

/// Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& x,
                         const std::vector<double>& y);

/// L_p norm of v (p >= 1).
double LpNorm(const std::vector<double>& v, double p);

/// Normalized relative error ||a - b||_p / ||a||_p — the error measure the
/// paper borrows from [26] for Tables 5 and 6.
double RelativeError(const std::vector<double>& a,
                     const std::vector<double>& b, double p);

/// Median of v (copies and partially sorts).
double Median(std::vector<double> v);

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_LINALG_H_
