#include "analytics/sssp.h"

#include <algorithm>

namespace ariadne {

double SsspProgram::InitialValue(VertexId /*id*/,
                                 const Graph& /*graph*/) const {
  return kInfiniteDistance;
}

void SsspProgram::Compute(VertexContext<double, double>& ctx,
                          std::span<const double> messages) {
  double min_dist = ctx.id() == source_ ? 0.0 : kInfiniteDistance;
  for (double m : messages) min_dist = std::min(min_dist, m);
  if (min_dist < ctx.value()) {
    ctx.SetValue(min_dist);
    auto neighbors = ctx.out_neighbors();
    auto weights = ctx.out_weights();
    for (size_t i = 0; i < neighbors.size(); ++i) {
      ctx.SendMessage(neighbors[i], min_dist + weights[i]);
    }
  }
  ctx.VoteToHalt();
}

void ApproxSsspProgram::Compute(VertexContext<double, double>& ctx,
                                std::span<const double> messages) {
  double min_dist = ctx.id() == source_ ? 0.0 : kInfiniteDistance;
  for (double m : messages) min_dist = std::min(min_dist, m);
  // Require an improvement of more than epsilon before adopting and
  // re-broadcasting (first discovery, from infinity, always qualifies).
  if (min_dist < ctx.value() &&
      (ctx.value() == kInfiniteDistance || ctx.value() - min_dist > epsilon_)) {
    ctx.SetValue(min_dist);
    auto neighbors = ctx.out_neighbors();
    auto weights = ctx.out_weights();
    for (size_t i = 0; i < neighbors.size(); ++i) {
      ctx.SendMessage(neighbors[i], min_dist + weights[i]);
    }
  }
  ctx.VoteToHalt();
}

}  // namespace ariadne
