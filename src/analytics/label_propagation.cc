#include "analytics/label_propagation.h"

#include <unordered_map>

namespace ariadne {

namespace {

void BroadcastBothWays(VertexContext<int64_t, int64_t>& ctx, int64_t label) {
  for (VertexId v : ctx.graph().OutNeighbors(ctx.id())) {
    ctx.SendMessage(v, label);
  }
  for (VertexId v : ctx.graph().InNeighbors(ctx.id())) {
    ctx.SendMessage(v, label);
  }
}

}  // namespace

int64_t LabelPropagationProgram::InitialValue(VertexId id,
                                              const Graph& /*graph*/) const {
  return id;
}

void LabelPropagationProgram::Compute(VertexContext<int64_t, int64_t>& ctx,
                                      std::span<const int64_t> messages) {
  if (ctx.superstep() == 0) {
    BroadcastBothWays(ctx, ctx.value());
    return;  // stay active for the fixed schedule
  }
  if (!messages.empty()) {
    std::unordered_map<int64_t, int> counts;
    for (int64_t m : messages) ++counts[m];
    int64_t best = ctx.value();
    int best_count = 0;
    for (const auto& [label, count] : counts) {
      if (count > best_count || (count == best_count && label < best)) {
        best = label;
        best_count = count;
      }
    }
    ctx.SetValue(best);
  }
  if (ctx.superstep() < rounds_) {
    BroadcastBothWays(ctx, ctx.value());
  } else {
    ctx.VoteToHalt();
  }
}

}  // namespace ariadne
