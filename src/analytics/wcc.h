#ifndef ARIADNE_ANALYTICS_WCC_H_
#define ARIADNE_ANALYTICS_WCC_H_

#include <cstdint>

#include "engine/vertex_program.h"

namespace ariadne {

/// Weakly connected components by min-label propagation. Labels propagate
/// along both edge directions (weak connectivity); a vertex re-broadcasts
/// only when its label improves. The final value of each vertex is the
/// smallest vertex id in its weakly connected component.
class WccProgram : public VertexProgram<int64_t, int64_t> {
 public:
  WccProgram() = default;

  int64_t InitialValue(VertexId id, const Graph& graph) const override;
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override;
};

/// The paper's apt "optimization" applied to WCC (§6.2.2): suppress
/// re-broadcasts whose label improvement is <= epsilon (paper threshold:
/// 1). The apt query proves this is never safe for WCC — all no-execute
/// vertices land in `unsafe` — and indeed this program converges to wrong
/// components (normalized error ~0.9 in the paper). It exists to
/// reproduce that negative result.
class ApproxWccProgram final : public WccProgram {
 public:
  explicit ApproxWccProgram(int64_t epsilon) : epsilon_(epsilon) {}

  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override;

 private:
  int64_t epsilon_;
};

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_WCC_H_
