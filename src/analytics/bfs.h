#ifndef ARIADNE_ANALYTICS_BFS_H_
#define ARIADNE_ANALYTICS_BFS_H_

#include <cstdint>

#include "engine/vertex_program.h"

namespace ariadne {

/// Hop distance assigned to vertices not reached from the source.
inline constexpr int64_t kUnreachedHops = -1;

/// Breadth-first search: vertex value = hop count from the source
/// (unweighted shortest paths). A frontier analytic with sharply sparse
/// per-superstep activity — a useful contrast to PageRank in provenance
/// experiments, since its provenance graph has one thin layer per hop.
class BfsProgram final : public VertexProgram<int64_t, int64_t> {
 public:
  explicit BfsProgram(VertexId source) : source_(source) {}

  int64_t InitialValue(VertexId id, const Graph& graph) const override;
  void Compute(VertexContext<int64_t, int64_t>& ctx,
               std::span<const int64_t> messages) override;

  VertexId source() const { return source_; }

 private:
  VertexId source_;
};

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_BFS_H_
