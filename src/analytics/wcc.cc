#include "analytics/wcc.h"

#include <algorithm>

namespace ariadne {

namespace {

/// Broadcast `label` along both directions (weak connectivity).
void SendToAllUndirected(VertexContext<int64_t, int64_t>& ctx, int64_t label) {
  for (VertexId v : ctx.graph().OutNeighbors(ctx.id())) {
    ctx.SendMessage(v, label);
  }
  for (VertexId v : ctx.graph().InNeighbors(ctx.id())) {
    ctx.SendMessage(v, label);
  }
}

}  // namespace

int64_t WccProgram::InitialValue(VertexId id, const Graph& /*graph*/) const {
  return id;
}

void WccProgram::Compute(VertexContext<int64_t, int64_t>& ctx,
                         std::span<const int64_t> messages) {
  int64_t label = ctx.value();
  for (int64_t m : messages) label = std::min(label, m);
  if (ctx.superstep() == 0) {
    SendToAllUndirected(ctx, label);
  } else if (label < ctx.value()) {
    ctx.SetValue(label);
    SendToAllUndirected(ctx, label);
  }
  ctx.VoteToHalt();
}

void ApproxWccProgram::Compute(VertexContext<int64_t, int64_t>& ctx,
                               std::span<const int64_t> messages) {
  int64_t label = ctx.value();
  for (int64_t m : messages) label = std::min(label, m);
  if (ctx.superstep() == 0) {
    SendToAllUndirected(ctx, label);
  } else if (label < ctx.value()) {
    const bool large_update = ctx.value() - label > epsilon_;
    ctx.SetValue(label);
    // Suppressing small-improvement broadcasts is what breaks WCC: the
    // improved label never reaches the rest of the component.
    if (large_update) SendToAllUndirected(ctx, label);
  }
  ctx.VoteToHalt();
}

}  // namespace ariadne
