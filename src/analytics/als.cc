#include "analytics/als.h"

#include <cmath>

#include "analytics/linalg.h"
#include "common/logging.h"
#include "common/random.h"

namespace ariadne {

namespace {
constexpr char kSqErrorAggregator[] = "als.sq_error";
constexpr char kCountAggregator[] = "als.count";
}  // namespace

std::vector<double> AlsProgram::InitialValue(VertexId id,
                                             const Graph& /*graph*/) const {
  Rng rng(options_.seed ^ static_cast<uint64_t>(id) * 0x9e3779b9ULL);
  std::vector<double> f(static_cast<size_t>(options_.num_features));
  for (auto& x : f) x = rng.NextDouble(0.1, 1.0);
  return f;
}

void AlsProgram::RegisterAggregators(AggregatorRegistry& registry) {
  registry.Register(kSqErrorAggregator, AggregateOp::kSum);
  registry.Register(kCountAggregator, AggregateOp::kSum);
  last_rmse_ = -1.0;
  prev_rmse_ = -1.0;
}

void AlsProgram::Compute(
    VertexContext<std::vector<double>, std::vector<double>>& ctx,
    std::span<const std::vector<double>> messages) {
  const size_t f = static_cast<size_t>(options_.num_features);
  const bool is_user = ctx.id() < num_users_;

  auto broadcast = [&] {
    auto neighbors = ctx.out_neighbors();
    auto ratings = ctx.out_weights();
    for (size_t i = 0; i < neighbors.size(); ++i) {
      std::vector<double> msg = ctx.value();
      msg.push_back(ratings[i]);
      ctx.SendMessage(neighbors[i], std::move(msg));
    }
  };

  if (ctx.superstep() == 0) {
    // Items seed the alternation; users stay quiet until woken by mail.
    if (!is_user) broadcast();
    ctx.VoteToHalt();
    return;
  }

  if (messages.empty()) {
    ctx.VoteToHalt();
    return;
  }

  // Normal equations: (sum f_n f_n^T + lambda * n * I) w = sum r_n f_n.
  std::vector<double> a(f * f, 0.0);
  std::vector<double> b(f, 0.0);
  for (const auto& msg : messages) {
    ARIADNE_CHECK(msg.size() == f + 1);
    const double rating = msg[f];
    for (size_t i = 0; i < f; ++i) {
      b[i] += rating * msg[i];
      for (size_t j = 0; j < f; ++j) {
        a[i * f + j] += msg[i] * msg[j];
      }
    }
  }
  const double reg = options_.lambda * static_cast<double>(messages.size());
  for (size_t i = 0; i < f; ++i) a[i * f + i] += reg;

  auto solved = SolveLinear(std::move(a), std::move(b));
  if (solved.ok()) {
    ctx.SetValue(std::move(solved).value());
  }
  // else: keep previous features (singular system from degenerate input).

  // Local training error against the (stale) neighbor features received.
  double sq_error = 0.0;
  for (const auto& msg : messages) {
    std::vector<double> nbr(msg.begin(), msg.end() - 1);
    const double pred = Dot(ctx.value(), nbr);
    const double err = msg[f] - pred;
    sq_error += err * err;
  }
  ctx.AggregateDouble(kSqErrorAggregator, sq_error);
  ctx.AggregateDouble(kCountAggregator, static_cast<double>(messages.size()));

  broadcast();
  ctx.VoteToHalt();
}

void AlsProgram::MasterCompute(MasterContext& master) {
  const double count = master.aggregators->Get(kCountAggregator);
  if (count <= 0) return;
  const double rmse =
      std::sqrt(master.aggregators->Get(kSqErrorAggregator) / count);
  prev_rmse_ = last_rmse_;
  last_rmse_ = rmse;
  const Superstep solve_rounds = master.superstep;  // rounds completed
  if (solve_rounds >= 2 * options_.max_iterations) {
    master.halt = true;
  } else if (prev_rmse_ >= 0 &&
             std::fabs(prev_rmse_ - rmse) < options_.tolerance) {
    master.halt = true;
  }
}

double AlsRmse(const Graph& graph, VertexId num_users,
               std::span<const std::vector<double>> values) {
  double sq = 0.0;
  int64_t count = 0;
  for (VertexId u = 0; u < num_users; ++u) {
    auto neighbors = graph.OutNeighbors(u);
    auto ratings = graph.OutWeights(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const double pred = Dot(values[static_cast<size_t>(u)],
                              values[static_cast<size_t>(neighbors[i])]);
      const double err = ratings[i] - pred;
      sq += err * err;
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::sqrt(sq / static_cast<double>(count));
}

}  // namespace ariadne
