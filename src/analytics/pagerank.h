#ifndef ARIADNE_ANALYTICS_PAGERANK_H_
#define ARIADNE_ANALYTICS_PAGERANK_H_

#include "engine/vertex_program.h"

namespace ariadne {

/// Configuration shared by the exact and approximate PageRank programs.
struct PageRankOptions {
  double damping = 0.85;
  /// Number of rank-update iterations. The run takes `iterations + 1`
  /// supersteps (superstep 0 only seeds and scatters the initial ranks),
  /// matching the Giraph SimplePageRank the paper benchmarks.
  int iterations = 20;
  /// Fold dangling-vertex mass back in (keeps total rank mass at 1).
  bool redistribute_dangling = false;
};

/// Exact push-style PageRank. Vertex value = current rank; message =
/// sender_rank / sender_out_degree.
class PageRankProgram final : public VertexProgram<double, double> {
 public:
  explicit PageRankProgram(PageRankOptions options = {})
      : options_(options) {}

  double InitialValue(VertexId id, const Graph& graph) const override;
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override;
  void RegisterAggregators(AggregatorRegistry& registry) override;

 private:
  PageRankOptions options_;
};

/// Vertex state of the approximate PageRank (the paper's §2.2
/// optimization: message neighbors only on large updates).
struct ApproxPageRankState {
  double rank = 0.0;
  /// Running sum of in-contributions; messages carry contribution deltas,
  /// so receivers reuse stale contributions from quiet neighbors.
  double in_sum = 0.0;
  /// Rank as of the last time this vertex messaged its neighbors.
  double last_sent = 0.0;
};

/// Approximate PageRank: a vertex re-broadcasts only when its rank moved
/// more than `epsilon` since its last broadcast; quiet vertices stop
/// executing entirely (the engine never wakes them), which is where the
/// paper's ~1.4x speedup comes from (Fig 10, Table 5).
class ApproxPageRankProgram final
    : public VertexProgram<ApproxPageRankState, double> {
 public:
  ApproxPageRankProgram(PageRankOptions options, double epsilon)
      : options_(options), epsilon_(epsilon) {}

  ApproxPageRankState InitialValue(VertexId id,
                                   const Graph& graph) const override;
  void Compute(VertexContext<ApproxPageRankState, double>& ctx,
               std::span<const double> messages) override;

 private:
  PageRankOptions options_;
  double epsilon_;
};

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_PAGERANK_H_
