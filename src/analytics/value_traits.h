#ifndef ARIADNE_ANALYTICS_VALUE_TRAITS_H_
#define ARIADNE_ANALYTICS_VALUE_TRAITS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/pagerank.h"
#include "common/value.h"

namespace ariadne {

/// Bridges an analytic's statically-typed vertex values and messages to
/// the runtime `Value`s stored in provenance tables. This is the only
/// analytic-type-specific piece of the provenance machinery; analytics
/// themselves never see it (the capture/online wrappers apply it), which
/// preserves the paper's "unchanged analytic" property.
///
/// Specialize for custom vertex-value structs (see ApproxPageRankState
/// below for an example that projects the provenance-relevant field).
template <typename T>
struct ValueTraits;

template <>
struct ValueTraits<double> {
  static Value ToValue(double v) { return Value(v); }
};

template <>
struct ValueTraits<int64_t> {
  static Value ToValue(int64_t v) { return Value(v); }
};

template <>
struct ValueTraits<std::string> {
  static Value ToValue(const std::string& v) { return Value(v); }
};

template <>
struct ValueTraits<std::vector<double>> {
  static Value ToValue(const std::vector<double>& v) { return Value(v); }
};

template <>
struct ValueTraits<ApproxPageRankState> {
  static Value ToValue(const ApproxPageRankState& v) { return Value(v.rank); }
};

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_VALUE_TRAITS_H_
