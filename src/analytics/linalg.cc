#include "analytics/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ariadne {

Result<std::vector<double>> SolveLinear(std::vector<double> a,
                                        std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n * n) {
    return Status::InvalidArgument("matrix/vector dimension mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      return Status::InvalidArgument("singular matrix in SolveLinear");
    }
    if (pivot != col) {
      for (size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * x[k];
    x[i] = sum / a[i * n + i];
  }
  return x;
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  ARIADNE_CHECK(x.size() == y.size());
  double sum = 0;
  for (size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double EuclideanDistance(const std::vector<double>& x,
                         const std::vector<double>& y) {
  ARIADNE_CHECK(x.size() == y.size());
  double sum = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double LpNorm(const std::vector<double>& v, double p) {
  ARIADNE_CHECK(p >= 1.0);
  double sum = 0;
  for (double x : v) sum += std::pow(std::fabs(x), p);
  return std::pow(sum, 1.0 / p);
}

double RelativeError(const std::vector<double>& a,
                     const std::vector<double>& b, double p) {
  ARIADNE_CHECK(a.size() == b.size());
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double denom = LpNorm(a, p);
  if (denom == 0.0) return LpNorm(diff, p) == 0.0 ? 0.0 : 1.0;
  return LpNorm(diff, p) / denom;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid) - 1,
                     v.end());
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

}  // namespace ariadne
