#include "analytics/pagerank.h"

#include <cmath>

namespace ariadne {

namespace {
constexpr char kDanglingAggregator[] = "pagerank.dangling";
}  // namespace

// Ranks follow the unnormalized Giraph convention: initial value 1.0 and
// p(v) = (1-d) + d * sum(in-contributions), so total mass is N and vertex
// values are O(1). This matches the paper's Table 5 medians (~0.2) and
// makes its epsilon = 0.01 threshold meaningful.

double PageRankProgram::InitialValue(VertexId /*id*/,
                                     const Graph& /*graph*/) const {
  return 1.0;
}

void PageRankProgram::RegisterAggregators(AggregatorRegistry& registry) {
  if (options_.redistribute_dangling) {
    registry.Register(kDanglingAggregator, AggregateOp::kSum);
  }
}

void PageRankProgram::Compute(VertexContext<double, double>& ctx,
                              std::span<const double> messages) {
  const double n = static_cast<double>(ctx.num_vertices());
  const Superstep step = ctx.superstep();
  if (step > 0) {
    double sum = 0.0;
    for (double m : messages) sum += m;
    if (options_.redistribute_dangling) {
      sum += ctx.GetAggregate(kDanglingAggregator) / n;
    }
    ctx.SetValue((1.0 - options_.damping) + options_.damping * sum);
  }
  if (step < options_.iterations) {
    const int64_t degree = ctx.out_degree();
    if (degree > 0) {
      ctx.SendToAllOutNeighbors(ctx.value() / static_cast<double>(degree));
    } else if (options_.redistribute_dangling) {
      ctx.AggregateDouble(kDanglingAggregator, ctx.value());
    }
  } else {
    ctx.VoteToHalt();
  }
}

ApproxPageRankState ApproxPageRankProgram::InitialValue(
    VertexId /*id*/, const Graph& /*graph*/) const {
  ApproxPageRankState state;
  state.rank = 1.0;
  return state;
}

void ApproxPageRankProgram::Compute(
    VertexContext<ApproxPageRankState, double>& ctx,
    std::span<const double> messages) {
  ApproxPageRankState state = ctx.value();
  if (ctx.superstep() == 0) {
    // Re-base to the zero-inflow fixpoint *before* scattering: a vertex
    // that never receives mail must already have broadcast its final
    // contribution, because nothing will ever wake it to send a
    // correction. (Starting the power iteration from (1-d) instead of 1.0
    // reaches the same fixpoint.)
    state.rank = 1.0 - options_.damping;
    if (ctx.out_degree() > 0) {
      ctx.SendToAllOutNeighbors(state.rank /
                                static_cast<double>(ctx.out_degree()));
      state.last_sent = state.rank;
    }
    ctx.SetValue(state);
    ctx.VoteToHalt();
    return;
  }
  // Messages carry contribution *deltas*: receivers keep the stale
  // contribution of quiet neighbors, which is what makes skipping sends
  // an approximation rather than dropping rank mass.
  for (double delta : messages) state.in_sum += delta;
  state.rank = (1.0 - options_.damping) + options_.damping * state.in_sum;
  const bool cap_reached = ctx.superstep() >= options_.iterations;
  const bool large_update =
      std::fabs(state.rank - state.last_sent) > epsilon_;
  if (!cap_reached && large_update && ctx.out_degree() > 0) {
    const double delta_contribution =
        (state.rank - state.last_sent) / static_cast<double>(ctx.out_degree());
    ctx.SendToAllOutNeighbors(delta_contribution);
    state.last_sent = state.rank;
  }
  ctx.SetValue(state);
  ctx.VoteToHalt();  // reawakened only by incoming deltas
}

}  // namespace ariadne
