#ifndef ARIADNE_ANALYTICS_ALS_H_
#define ARIADNE_ANALYTICS_ALS_H_

#include <vector>

#include "engine/vertex_program.h"

namespace ariadne {

/// Configuration of the ALS recommender (paper §6, ML-20 experiments).
struct AlsOptions {
  int num_features = 5;       ///< latent factor dimensionality (paper: 5-15)
  double lambda = 0.05;       ///< Tikhonov regularization (ALS-WR style)
  int max_iterations = 6;     ///< user+item solve rounds
  double tolerance = 1e-4;    ///< halt when RMSE improves less than this
  uint64_t seed = 123;        ///< deterministic feature initialization
};

/// Alternating Least Squares on a bipartite ratings graph (users are
/// vertices [0, num_users), items the rest; every rating is an edge in
/// both directions whose weight is the rating).
///
/// Vertex value: latent feature vector. Message: sender's features with
/// the edge rating appended (size num_features + 1), so the receiver can
/// form its normal equations without per-edge state.
///
/// Schedule: items broadcast at superstep 0; users solve at odd
/// supersteps, items at even ones — "only one side of the bipartite graph
/// computes" per iteration, exactly as the paper describes. Convergence is
/// detected in MasterCompute from a global squared-error aggregator.
class AlsProgram final
    : public VertexProgram<std::vector<double>, std::vector<double>> {
 public:
  AlsProgram(AlsOptions options, VertexId num_users)
      : options_(options), num_users_(num_users) {}

  std::vector<double> InitialValue(VertexId id,
                                   const Graph& graph) const override;
  void Compute(VertexContext<std::vector<double>, std::vector<double>>& ctx,
               std::span<const std::vector<double>> messages) override;
  void RegisterAggregators(AggregatorRegistry& registry) override;
  void MasterCompute(MasterContext& master) override;

  /// Training RMSE observed at the last completed solve superstep.
  double last_rmse() const { return last_rmse_; }

 private:
  AlsOptions options_;
  VertexId num_users_;
  double last_rmse_ = -1.0;
  double prev_rmse_ = -1.0;
};

/// Root-mean-square rating prediction error of trained `user_features` /
/// `item_features` (vertex values of a finished AlsProgram run) over all
/// user->item edges. Used by tests and the Fig 9 bench.
double AlsRmse(const Graph& graph, VertexId num_users,
               std::span<const std::vector<double>> values);

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_ALS_H_
