#ifndef ARIADNE_ANALYTICS_SSSP_H_
#define ARIADNE_ANALYTICS_SSSP_H_

#include <limits>

#include "engine/vertex_program.h"

namespace ariadne {

/// Distance assigned to vertices not (yet) reached from the source.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::max();

/// Single-source shortest paths over non-negative edge weights, following
/// the paper's Appendix A pseudo-code: a vertex relaxes its distance from
/// incoming messages and, on improvement, offers `dist + weight` to each
/// out-neighbor. Terminates by quiescence.
class SsspProgram : public VertexProgram<double, double> {
 public:
  explicit SsspProgram(VertexId source, bool use_combiner = false)
      : source_(source), use_combiner_(use_combiner) {}

  double InitialValue(VertexId id, const Graph& graph) const override;
  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override;
  const MessageCombiner<double>* combiner() const override {
    return use_combiner_ ? &min_combiner_ : nullptr;
  }

  VertexId source() const { return source_; }

 protected:
  VertexId source_;

 private:
  bool use_combiner_;
  MinCombiner<double> min_combiner_;
};

/// Approximate SSSP (paper §2.2 / Fig 10 / Table 6): improvements smaller
/// than `epsilon` are absorbed without re-broadcasting, so convergence
/// tails are cut at the cost of distances up to ~epsilon-per-hop too large.
class ApproxSsspProgram final : public SsspProgram {
 public:
  ApproxSsspProgram(VertexId source, double epsilon)
      : SsspProgram(source), epsilon_(epsilon) {}

  void Compute(VertexContext<double, double>& ctx,
               std::span<const double> messages) override;

 private:
  double epsilon_;
};

}  // namespace ariadne

#endif  // ARIADNE_ANALYTICS_SSSP_H_
