#include "recovery/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/retry.h"
#include "recovery/fault_injector.h"
#include "storage/page.h"

namespace ariadne::recovery {

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.bin";
}

Status WriteCheckpointFile(const std::string& dir, std::string body) {
  ARIADNE_RETURN_NOT_OK(CheckFaultPoint("checkpoint-write"));
  BinaryWriter out;
  out.WriteU32(kCheckpointMagic);
  out.WriteU32(kCheckpointVersion);
  out.WriteU64(storage::Fnv1a(body));
  std::string file = out.MoveData();
  file += body;
  // WriteFile is atomic (temp + fsync + rename): a crash mid-write leaves
  // the previous checkpoint intact, never a torn file.
  return WriteFile(CheckpointPath(dir), file);
}

namespace {

/// Retry ladder of the resume read path (fault point "checkpoint-read").
/// Checkpoint loads happen once per restart, so the defaults are not
/// worth a knob; transient errors get the standard three attempts.
Result<std::string> ReadFileWithRetry(const std::string& path) {
  Result<std::string> data = std::string();
  RetryTransient(RetryPolicy{}, storage::Fnv1a(path), [&] {
    Status attempt = CheckFaultPoint("checkpoint-read");
    data = attempt.ok() ? ReadFile(path) : Result<std::string>(attempt);
    return data.ok() ? Status::OK() : data.status();
  });
  return data;
}

}  // namespace

Result<BinaryReader> OpenCheckpointFile(const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  std::string data;
  {
    auto read = ReadFileWithRetry(path);
    if (!read.ok()) {
      // Surface "no checkpoint yet" as NotFound so resume can fall back
      // to a fresh start; any other I/O problem propagates as-is.
      if (read.status().IsIOError()) {
        return Status::NotFound("no checkpoint at " + path);
      }
      return read.status();
    }
    data = std::move(read).value();
  }
  if (data.size() < kCheckpointHeaderBytes) {
    return Status::ParseError("truncated checkpoint header in " + path +
                              " (" + std::to_string(data.size()) +
                              " bytes at offset 0)");
  }
  uint32_t magic, version;
  uint64_t checksum;
  std::memcpy(&magic, data.data(), sizeof(magic));
  std::memcpy(&version, data.data() + 4, sizeof(version));
  std::memcpy(&checksum, data.data() + 8, sizeof(checksum));
  if (magic != kCheckpointMagic) {
    return Status::ParseError("bad checkpoint magic in " + path +
                              " at offset 0");
  }
  if (version != kCheckpointVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version) + " in " + path +
                              " at offset 4");
  }
  const uint64_t actual =
      storage::Fnv1a(std::string_view(data).substr(kCheckpointHeaderBytes));
  if (actual != checksum) {
    return Status::ParseError(
        "checkpoint checksum mismatch in " + path + " (body at offset " +
        std::to_string(kCheckpointHeaderBytes) + ".." +
        std::to_string(data.size()) + " does not match header)");
  }
  BinaryReader reader(std::move(data));
  (void)reader.ReadU32();  // magic
  (void)reader.ReadU32();  // version
  (void)reader.ReadU64();  // checksum, just verified
  return reader;
}

std::string SegmentsPath(const std::string& dir) {
  return dir + "/store-segments.bin";
}

namespace {

constexpr size_t kSegmentFrameBytes = 8 + 8;  ///< payload length + fnv1a

Status WriteAllAt(int fd, const char* data, size_t size, uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> AppendSegmentFile(const std::string& path, uint64_t offset,
                                   const std::string& payload) {
  ARIADNE_RETURN_NOT_OK(CheckFaultPoint("segment-write"));
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  Status status = Status::OK();
  // Drop any orphaned tail (a torn append, or segments written for a
  // checkpoint.bin replacement that never happened) before appending.
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
    status = Status::IOError("ftruncate " + path + ": " +
                             std::string(std::strerror(errno)));
  }
  char frame[kSegmentFrameBytes];
  const uint64_t payload_bytes = payload.size();
  const uint64_t checksum = storage::Fnv1a(payload);
  std::memcpy(frame, &payload_bytes, sizeof(payload_bytes));
  std::memcpy(frame + 8, &checksum, sizeof(checksum));
  if (status.ok()) {
    status = WriteAllAt(fd, frame, sizeof(frame), offset);
  }
  if (status.ok()) {
    status =
        WriteAllAt(fd, payload.data(), payload.size(), offset + sizeof(frame));
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IOError("fsync " + path + ": " +
                             std::string(std::strerror(errno)));
  }
  ::close(fd);
  if (!status.ok()) return status.WithContext("appending segment to " + path);
  return offset + sizeof(frame) + payload_bytes;
}

Result<std::vector<std::string>> ReadSegmentsFile(const std::string& path,
                                                  uint64_t valid_bytes) {
  std::vector<std::string> segments;
  if (valid_bytes == 0) return segments;
  ARIADNE_ASSIGN_OR_RETURN(std::string data, ReadFileWithRetry(path));
  if (data.size() < valid_bytes) {
    return Status::ParseError(
        "checkpoint references " + std::to_string(valid_bytes) +
        " bytes of " + path + " but the file has only " +
        std::to_string(data.size()));
  }
  uint64_t pos = 0;
  while (pos < valid_bytes) {
    if (valid_bytes - pos < kSegmentFrameBytes) {
      return Status::ParseError("truncated segment frame in " + path +
                                " at offset " + std::to_string(pos));
    }
    uint64_t payload_bytes, checksum;
    std::memcpy(&payload_bytes, data.data() + pos, sizeof(payload_bytes));
    std::memcpy(&checksum, data.data() + pos + 8, sizeof(checksum));
    pos += kSegmentFrameBytes;
    if (payload_bytes > valid_bytes - pos) {
      return Status::ParseError(
          "segment of " + std::to_string(payload_bytes) + " bytes in " +
          path + " at offset " + std::to_string(pos - kSegmentFrameBytes) +
          " exceeds the checkpoint's valid prefix");
    }
    std::string payload = data.substr(pos, payload_bytes);
    if (storage::Fnv1a(payload) != checksum) {
      return Status::ParseError("segment checksum mismatch in " + path +
                                " at offset " +
                                std::to_string(pos - kSegmentFrameBytes));
    }
    segments.push_back(std::move(payload));
    pos += payload_bytes;
  }
  return segments;
}

}  // namespace ariadne::recovery
