#ifndef ARIADNE_RECOVERY_FAULT_INJECTOR_H_
#define ARIADNE_RECOVERY_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ariadne::recovery {

/// What happens when a scripted occurrence of a fault point fires.
enum class FaultKind {
  kError,  ///< the hook returns Status::IOError (transient-I/O stand-in)
  kCrash,  ///< the process exits immediately with kCrashExitCode (kill -9
           ///< stand-in; nothing is flushed, nothing unwinds)
  kThrow,  ///< the hook throws std::runtime_error (vertex-program bug
           ///< stand-in; only meaningful at points that document it)
};

/// One armed rule of a fault scenario. Deterministic rules fire on the
/// `occurrence`-th hit of `point` (plus every later hit when
/// `persistent`). Probabilistic rules fire each hit with probability
/// `rate` (drawn from the scenario seed), then fail `burst` consecutive
/// hits before healing — the transient-flake model the chaos soak drives.
struct FaultRule {
  std::string point;
  uint64_t occurrence = 1;   ///< 1-based hit index that triggers
  bool persistent = false;   ///< also fire on every hit after `occurrence`
  FaultKind kind = FaultKind::kError;
  bool probabilistic = false;  ///< `point@rate[:k]` form
  double rate = 0.0;           ///< per-hit trigger probability
  uint64_t burst = 1;          ///< consecutive hits failed once triggered
};

/// Deterministic, scenario-scriptable fault injection (DESIGN.md §2.4).
///
/// Fault *points* are named hooks compiled into the engine and storage
/// stack (see the table in DESIGN.md §2.4); each call to Hit() increments
/// the point's hit counter and fires when an armed rule matches. Counters
/// are global and monotone within one armed scenario, so a scenario like
/// "fail the 3rd flusher write" replays identically run after run (under
/// one I/O thread; with several, hit order follows task scheduling).
///
/// Scenario DSL (`ariadne_run --inject`, comma-separated rules):
///
///   rule  := point ':' N ['+'] [':' kind]        deterministic
///          | point '@' rate [':' k] [':' kind]   probabilistic
///   kind  := 'error' (default) | 'crash' | 'throw'
///
///   flusher-write:3          fail the 3rd spill-file write once (EIO)
///   page-read:1+             every page read fails from the 1st on
///   superstep:5:crash        _Exit at the start of superstep 4 (0-based)
///   shard-drop:2             drop one merge shard's outbox, 2nd superstep
///   page-read@0.01           each page read flakes with p=1% (heals next hit)
///   vstate-page-read@0.05:2  p=5% per hit; once triggered, fail 2 hits in a
///                            row then heal (a transient brownout burst)
///
/// Probabilistic draws come from `Arm`'s seed (one independent stream per
/// rule), so a scenario replays identically for a fixed seed and per-point
/// hit order.
///
/// The injector is process-global (a crashed process cannot be scoped) and
/// disarmed by default; every hook first checks a relaxed atomic, so the
/// cost on production paths is one predictable branch.
class FaultInjector {
 public:
  /// Exit code of kCrash rules, asserted by the crash-matrix tests.
  static constexpr int kCrashExitCode = 42;

  static FaultInjector& Global();

  /// Parses and arms `scenario` (see DSL above), resetting all counters.
  /// `seed` drives probabilistic rules (and is recorded for
  /// reproducibility either way).
  Status Arm(const std::string& scenario, uint64_t seed = 0);

  /// Disarms and clears all rules and counters.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Fault hook: records one hit of `point` and returns the injected
  /// error when an armed rule fires (kCrash exits the process instead,
  /// kThrow throws). Returns OK when disarmed or no rule matches.
  Status Hit(const char* point);

  /// Total rules fired since Arm() (kError/kThrow only — kCrash never
  /// returns).
  uint64_t fired_count() const;

  /// Hits recorded for `point` since Arm().
  uint64_t HitCount(const std::string& point) const;

 private:
  FaultInjector() = default;

  /// Runtime state of one probabilistic rule: its private RNG stream
  /// (state advances only on hits of its point) and the remainder of a
  /// triggered burst.
  struct RuleState {
    uint64_t rng_state = 0;
    uint64_t burst_left = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  std::vector<RuleState> rule_state_;  ///< parallel to rules_
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t fired_ = 0;
  uint64_t seed_ = 0;
};

/// Hot-path guard: one relaxed atomic load when disarmed.
inline bool InjectionArmed() { return FaultInjector::Global().armed(); }

/// Checks the fault point `point` iff the injector is armed.
inline Status CheckFaultPoint(const char* point) {
  if (!InjectionArmed()) return Status::OK();
  return FaultInjector::Global().Hit(point);
}

}  // namespace ariadne::recovery

#endif  // ARIADNE_RECOVERY_FAULT_INJECTOR_H_
