#ifndef ARIADNE_RECOVERY_CHECKPOINT_H_
#define ARIADNE_RECOVERY_CHECKPOINT_H_

#include <concepts>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace ariadne::recovery {

/// Superstep-checkpoint file framing (DESIGN.md §2.4).
///
/// A checkpoint is one file, `<dir>/checkpoint.bin`, atomically replaced
/// at every checkpointed barrier (write-to-temp + fsync + rename), so a
/// crash at any instant leaves either the previous complete checkpoint or
/// the new complete checkpoint — never a torn one. Layout:
///
///   [u32 magic "ACP1"][u32 version][u64 fnv1a(body)][body]
///
/// The body is written by the engine (Engine::WriteCheckpoint): config
/// fingerprint, next superstep, vertex values, halted bitmap, in-flight
/// inboxes, aggregator state, and an opaque program-state blob (for
/// capture runs: the provenance store image + activation history, i.e.
/// the store's durable-layer watermark travels inside the image).
/// Loading verifies magic, version and the body checksum before any field
/// is parsed; every parse error names the file and byte offset.
///
/// Checkpoints are storage-backend-neutral: vertex values are framed as a
/// flat [id-ordered] array regardless of whether the run held them in the
/// flat vector or the paged VertexState (DESIGN.md §2.7), so a checkpoint
/// written by an in-memory run resumes under --graph-backend paged (and
/// vice versa) with byte-identical state.

inline constexpr uint32_t kCheckpointMagic = 0x31504341;  ///< "ACP1"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr size_t kCheckpointHeaderBytes = 4 + 4 + 8;

/// The checkpoint file of `dir`.
std::string CheckpointPath(const std::string& dir);

/// Frames `body` (header + checksum) and atomically replaces the
/// checkpoint file of `dir`. Fault point: "checkpoint-write".
Status WriteCheckpointFile(const std::string& dir, std::string body);

/// Opens and verifies the checkpoint of `dir`: NotFound when no
/// checkpoint exists (callers start from superstep 0), ParseError naming
/// file + offset on any corruption. On success the reader is positioned
/// at the body.
Result<BinaryReader> OpenCheckpointFile(const std::string& dir);

/// The incremental program-state sidecar of `dir` (DESIGN.md §2.4).
///
/// Append-only file of self-framed segments, one per checkpointed
/// barrier: [u64 payload bytes][u64 fnv1a(payload)][payload]. A
/// checkpoint body references the file by valid-prefix length, so the
/// write order (truncate to the referenced prefix, append, fsync, THEN
/// atomically replace checkpoint.bin) makes every referenced prefix
/// durable and every orphaned tail — from a crash or a failed
/// checkpoint — harmlessly overwritten by the next append.
std::string SegmentsPath(const std::string& dir);

/// Truncates the segments file to `offset` bytes, appends one framed
/// segment and fsyncs. Returns the new end offset (the valid-prefix
/// length for the checkpoint body that references this segment).
Result<uint64_t> AppendSegmentFile(const std::string& path, uint64_t offset,
                                   const std::string& payload);

/// Reads and verifies the first `valid_bytes` of the segments file,
/// returning the segment payloads in append order. ParseError naming
/// file + offset on truncation or checksum mismatch.
Result<std::vector<std::string>> ReadSegmentsFile(const std::string& path,
                                                  uint64_t valid_bytes);

/// Serialization of engine state types into checkpoint bodies. The
/// engine checkpoints runs whose vertex-value and message types have a
/// specialization; others report Unsupported at run time (see
/// Checkpointable below). Raw little-endian bytes, so restored doubles
/// are bit-exact and resumed runs stay byte-identical.
template <typename T>
struct CheckpointTraits;

template <>
struct CheckpointTraits<double> {
  static void Write(BinaryWriter& w, const double& v) { w.WriteDouble(v); }
  static Result<double> Read(BinaryReader& r) { return r.ReadDouble(); }
};

template <>
struct CheckpointTraits<int64_t> {
  static void Write(BinaryWriter& w, const int64_t& v) { w.WriteI64(v); }
  static Result<int64_t> Read(BinaryReader& r) { return r.ReadI64(); }
};

template <>
struct CheckpointTraits<std::string> {
  static void Write(BinaryWriter& w, const std::string& v) {
    w.WriteString(v);
  }
  static Result<std::string> Read(BinaryReader& r) { return r.ReadString(); }
};

template <>
struct CheckpointTraits<std::vector<double>> {
  static void Write(BinaryWriter& w, const std::vector<double>& v) {
    w.WriteU64(v.size());
    for (double d : v) w.WriteDouble(d);
  }
  static Result<std::vector<double>> Read(BinaryReader& r) {
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
    if (n > r.remaining() / sizeof(double)) {
      return Status::ParseError("vector length " + std::to_string(n) +
                                " exceeds remaining checkpoint bytes");
    }
    std::vector<double> v(n);
    for (uint64_t i = 0; i < n; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(v[i], r.ReadDouble());
    }
    return v;
  }
};

/// True when `T` round-trips through CheckpointTraits — the compile-time
/// gate for the engine's checkpoint path.
template <typename T>
concept Checkpointable = requires(BinaryWriter& w, BinaryReader& r,
                                  const T& t) {
  CheckpointTraits<T>::Write(w, t);
  { CheckpointTraits<T>::Read(r) } -> std::same_as<Result<T>>;
};

}  // namespace ariadne::recovery

#endif  // ARIADNE_RECOVERY_CHECKPOINT_H_
