#include "recovery/fault_injector.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace ariadne::recovery {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

namespace {

Status ParseKind(const std::string& text, const std::string& rule_text,
                 FaultKind* kind) {
  if (text == "error") {
    *kind = FaultKind::kError;
  } else if (text == "crash") {
    *kind = FaultKind::kCrash;
  } else if (text == "throw") {
    *kind = FaultKind::kThrow;
  } else {
    return Status::InvalidArgument("unknown fault kind '" + text +
                                   "' in rule '" + rule_text +
                                   "' (want error, crash or throw)");
  }
  return Status::OK();
}

/// `point@rate[:k][:kind]`: `parts` is the ':'-split with parts[0] ==
/// "point@rate" already cut at `at`.
Result<FaultRule> ParseProbabilisticRule(const std::string& text,
                                         const std::vector<std::string>& parts,
                                         size_t at) {
  FaultRule rule;
  rule.probabilistic = true;
  rule.point = parts[0].substr(0, at);
  const std::string rate = parts[0].substr(at + 1);
  try {
    size_t pos = 0;
    rule.rate = std::stod(rate, &pos);
    if (pos != rate.size() || rule.rate <= 0.0 || rule.rate > 1.0) {
      throw std::invalid_argument(rate);
    }
  } catch (...) {
    return Status::InvalidArgument("bad rate in fault rule '" + text +
                                   "' (want a probability in (0, 1])");
  }
  size_t next = 1;
  if (parts.size() > next && !parts[next].empty() &&
      std::isdigit(static_cast<unsigned char>(parts[next][0]))) {
    try {
      size_t pos = 0;
      const long long k = std::stoll(parts[next], &pos);
      if (pos != parts[next].size() || k <= 0) {
        throw std::invalid_argument(parts[next]);
      }
      rule.burst = static_cast<uint64_t>(k);
    } catch (...) {
      return Status::InvalidArgument("bad burst length in fault rule '" +
                                     text + "' (want a positive integer)");
    }
    ++next;
  }
  if (parts.size() > next) {
    if (parts.size() > next + 1) {
      return Status::InvalidArgument("bad fault rule '" + text +
                                     "' (expected point@rate[:k][:kind])");
    }
    ARIADNE_RETURN_NOT_OK(ParseKind(parts[next], text, &rule.kind));
  }
  return rule;
}

Result<FaultRule> ParseRule(const std::string& text) {
  const std::vector<std::string> parts = Split(text, ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument(
        "bad fault rule '" + text +
        "' (expected point:N[+][:error|crash|throw] or point@rate[:k])");
  }
  const size_t at = parts[0].find('@');
  if (at != std::string::npos && at > 0) {
    return ParseProbabilisticRule(text, parts, at);
  }
  if (parts.size() < 2 || parts.size() > 3) {
    return Status::InvalidArgument(
        "bad fault rule '" + text +
        "' (expected point:N[+][:error|crash|throw])");
  }
  FaultRule rule;
  rule.point = parts[0];
  std::string count = parts[1];
  if (!count.empty() && count.back() == '+') {
    rule.persistent = true;
    count.pop_back();
  }
  try {
    size_t pos = 0;
    const long long n = std::stoll(count, &pos);
    if (pos != count.size() || n <= 0) throw std::invalid_argument(count);
    rule.occurrence = static_cast<uint64_t>(n);
  } catch (...) {
    return Status::InvalidArgument("bad occurrence count in fault rule '" +
                                   text + "' (want a positive integer)");
  }
  if (parts.size() == 3) {
    ARIADNE_RETURN_NOT_OK(ParseKind(parts[2], text, &rule.kind));
  }
  return rule;
}

}  // namespace

Status FaultInjector::Arm(const std::string& scenario, uint64_t seed) {
  std::vector<FaultRule> rules;
  for (const std::string& part : Split(scenario, ',')) {
    if (part.empty()) continue;
    ARIADNE_ASSIGN_OR_RETURN(FaultRule rule, ParseRule(part));
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) {
    return Status::InvalidArgument("empty fault scenario '" + scenario + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  rule_state_.clear();
  for (size_t i = 0; i < rules_.size(); ++i) {
    RuleState state;
    // One independent splitmix64 stream per rule, derived from the
    // scenario seed, so rules don't perturb each other's draws.
    state.rng_state = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    rule_state_.push_back(state);
  }
  counts_.clear();
  fired_ = 0;
  seed_ = seed;
  armed_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
  rule_state_.clear();
  counts_.clear();
  fired_ = 0;
}

Status FaultInjector::Hit(const char* point) {
  if (!armed()) return Status::OK();
  FaultKind kind = FaultKind::kError;
  uint64_t hit = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    hit = ++counts_[point];
    for (size_t i = 0; i < rules_.size(); ++i) {
      const FaultRule& rule = rules_[i];
      if (rule.point != point) continue;
      if (rule.probabilistic) {
        RuleState& state = rule_state_[i];
        if (state.burst_left > 0) {
          // Mid-burst: keep failing until the burst is spent, then heal.
          --state.burst_left;
          fire = true;
        } else {
          Rng rng(state.rng_state);
          const bool triggered = rng.NextBool(rule.rate);
          state.rng_state += 0x9e3779b97f4a7c15ULL;  // one splitmix64 step
          if (triggered) {
            state.burst_left = rule.burst - 1;
            fire = true;
          }
        }
      } else if (hit == rule.occurrence ||
                 (rule.persistent && hit > rule.occurrence)) {
        fire = true;
      }
      if (fire) {
        kind = rule.kind;
        break;
      }
    }
    if (fire && kind != FaultKind::kCrash) ++fired_;
  }
  if (!fire) return Status::OK();
  const std::string what = "injected fault at point '" + std::string(point) +
                           "' (hit " + std::to_string(hit) + ")";
  switch (kind) {
    case FaultKind::kError:
      return Status::IOError(what);
    case FaultKind::kThrow:
      throw std::runtime_error(what);
    case FaultKind::kCrash:
      // A stand-in for kill -9 / power loss: no flushing, no unwinding,
      // no atexit handlers. Crash-matrix tests assert this exit code.
      std::_Exit(kCrashExitCode);
  }
  return Status::OK();
}

uint64_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(point);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace ariadne::recovery
