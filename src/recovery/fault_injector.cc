#include "recovery/fault_injector.h"

#include <cstdlib>
#include <stdexcept>

#include "common/logging.h"
#include "common/string_util.h"

namespace ariadne::recovery {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

namespace {

Result<FaultRule> ParseRule(const std::string& text) {
  const std::vector<std::string> parts = Split(text, ':');
  if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
    return Status::InvalidArgument(
        "bad fault rule '" + text +
        "' (expected point:N[+][:error|crash|throw])");
  }
  FaultRule rule;
  rule.point = parts[0];
  std::string count = parts[1];
  if (!count.empty() && count.back() == '+') {
    rule.persistent = true;
    count.pop_back();
  }
  try {
    size_t pos = 0;
    const long long n = std::stoll(count, &pos);
    if (pos != count.size() || n <= 0) throw std::invalid_argument(count);
    rule.occurrence = static_cast<uint64_t>(n);
  } catch (...) {
    return Status::InvalidArgument("bad occurrence count in fault rule '" +
                                   text + "' (want a positive integer)");
  }
  if (parts.size() == 3) {
    if (parts[2] == "error") {
      rule.kind = FaultKind::kError;
    } else if (parts[2] == "crash") {
      rule.kind = FaultKind::kCrash;
    } else if (parts[2] == "throw") {
      rule.kind = FaultKind::kThrow;
    } else {
      return Status::InvalidArgument("unknown fault kind '" + parts[2] +
                                     "' in rule '" + text +
                                     "' (want error, crash or throw)");
    }
  }
  return rule;
}

}  // namespace

Status FaultInjector::Arm(const std::string& scenario, uint64_t seed) {
  std::vector<FaultRule> rules;
  for (const std::string& part : Split(scenario, ',')) {
    if (part.empty()) continue;
    ARIADNE_ASSIGN_OR_RETURN(FaultRule rule, ParseRule(part));
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) {
    return Status::InvalidArgument("empty fault scenario '" + scenario + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  counts_.clear();
  fired_ = 0;
  seed_ = seed;
  armed_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
  counts_.clear();
  fired_ = 0;
}

Status FaultInjector::Hit(const char* point) {
  if (!armed()) return Status::OK();
  FaultKind kind = FaultKind::kError;
  uint64_t hit = 0;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    hit = ++counts_[point];
    for (const FaultRule& rule : rules_) {
      if (rule.point != point) continue;
      if (hit == rule.occurrence || (rule.persistent && hit > rule.occurrence)) {
        fire = true;
        kind = rule.kind;
        break;
      }
    }
    if (fire && kind != FaultKind::kCrash) ++fired_;
  }
  if (!fire) return Status::OK();
  const std::string what = "injected fault at point '" + std::string(point) +
                           "' (hit " + std::to_string(hit) + ")";
  switch (kind) {
    case FaultKind::kError:
      return Status::IOError(what);
    case FaultKind::kThrow:
      throw std::runtime_error(what);
    case FaultKind::kCrash:
      // A stand-in for kill -9 / power loss: no flushing, no unwinding,
      // no atexit handlers. Crash-matrix tests assert this exit code.
      std::_Exit(kCrashExitCode);
  }
  return Status::OK();
}

uint64_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(point);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace ariadne::recovery
