#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/serialize.h"
#include "common/string_util.h"

namespace ariadne {

namespace {
constexpr uint32_t kBinaryMagic = 0x41524731;  // "ARG1"
}  // namespace

Result<Graph> LoadEdgeList(const std::string& path,
                           VertexId num_vertices_hint) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open edge list: " + path);
  GraphBuilder builder;
  builder.EnsureVertices(num_vertices_hint);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::istringstream ls{std::string(trimmed)};
    VertexId src, dst;
    double weight = 1.0;
    if (!(ls >> src >> dst)) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected 'src dst [weight]'");
    }
    ls >> weight;  // optional
    if (src < 0 || dst < 0) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": negative vertex id");
    }
    builder.AddEdge(src, dst, weight);
  }
  return builder.Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# ariadne edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    auto weights = graph.OutWeights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out << v << " " << nbrs[i] << " " << weights[i] << "\n";
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  BinaryWriter w;
  w.WriteU32(kBinaryMagic);
  w.WriteI64(graph.num_vertices());
  w.WriteI64(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    auto weights = graph.OutWeights(v);
    w.WriteI64(static_cast<int64_t>(nbrs.size()));
    for (size_t i = 0; i < nbrs.size(); ++i) {
      w.WriteI64(nbrs[i]);
      w.WriteDouble(weights[i]);
    }
  }
  return WriteFile(path, w.data());
}

Result<Graph> LoadBinary(const std::string& path) {
  ARIADNE_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  BinaryReader r(std::move(data));
  ARIADNE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kBinaryMagic) {
    return Status::ParseError("bad magic in binary graph: " + path);
  }
  ARIADNE_ASSIGN_OR_RETURN(int64_t n, r.ReadI64());
  ARIADNE_ASSIGN_OR_RETURN(int64_t m, r.ReadI64());
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(m));
  for (VertexId v = 0; v < n; ++v) {
    ARIADNE_ASSIGN_OR_RETURN(int64_t deg, r.ReadI64());
    for (int64_t i = 0; i < deg; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(int64_t dst, r.ReadI64());
      ARIADNE_ASSIGN_OR_RETURN(double weight, r.ReadDouble());
      edges.push_back(Edge{v, dst, weight});
    }
  }
  if (static_cast<int64_t>(edges.size()) != m) {
    return Status::ParseError("edge count mismatch in binary graph");
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace ariadne
