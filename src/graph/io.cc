#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/serialize.h"
#include "common/string_util.h"

namespace ariadne {

namespace {
constexpr uint32_t kBinaryMagic = 0x41524731;  // "ARG1"
}  // namespace

Result<Graph> LoadEdgeList(const std::string& path,
                           VertexId num_vertices_hint) {
  // Streaming two-pass construction straight into CSR (DESIGN.md §2.7):
  // pass 1 finds dimensions and per-vertex degrees, pass 2 scatters edges
  // into the preallocated arrays. Peak memory is the final CSR plus two
  // cursor arrays — the old edge-vector path peaked at ~2x graph size.
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open edge list: " + path);
  std::vector<int64_t> out_offsets(1, 0), in_offsets(1, 0);
  auto ensure_vertex = [&](VertexId v) {
    if (static_cast<size_t>(v) + 2 > out_offsets.size()) {
      out_offsets.resize(static_cast<size_t>(v) + 2, 0);
      in_offsets.resize(static_cast<size_t>(v) + 2, 0);
    }
  };
  if (num_vertices_hint > 0) ensure_vertex(num_vertices_hint - 1);
  std::string line;
  int64_t lineno = 0;
  int64_t num_edges = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::istringstream ls{std::string(trimmed)};
    VertexId src, dst;
    if (!(ls >> src >> dst)) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": expected 'src dst [weight]'");
    }
    if (src < 0 || dst < 0) {
      return Status::ParseError(path + ":" + std::to_string(lineno) +
                                ": negative vertex id");
    }
    ensure_vertex(std::max(src, dst));
    ++out_offsets[static_cast<size_t>(src) + 1];
    ++in_offsets[static_cast<size_t>(dst) + 1];
    ++num_edges;
  }
  const VertexId n = static_cast<VertexId>(out_offsets.size()) - 1;
  for (size_t v = 0; v + 1 < out_offsets.size(); ++v) {
    out_offsets[v + 1] += out_offsets[v];
    in_offsets[v + 1] += in_offsets[v];
  }
  std::vector<VertexId> out_dst(static_cast<size_t>(num_edges));
  std::vector<double> out_weight(static_cast<size_t>(num_edges));
  std::vector<VertexId> in_src(static_cast<size_t>(num_edges));
  std::vector<double> in_weight(static_cast<size_t>(num_edges));
  {
    std::vector<int64_t> out_cursor(out_offsets.begin(),
                                    out_offsets.end() - 1);
    std::vector<int64_t> in_cursor(in_offsets.begin(), in_offsets.end() - 1);
    in.clear();
    in.seekg(0);
    if (!in) return Status::IOError("cannot rewind edge list: " + path);
    while (std::getline(in, line)) {
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
      std::istringstream ls{std::string(trimmed)};
      VertexId src, dst;
      double weight = 1.0;
      if (!(ls >> src >> dst)) {
        return Status::ParseError(path +
                                  ": file changed between loader passes");
      }
      ls >> weight;  // optional
      if (src < 0 || src >= n || dst < 0 || dst >= n) {
        return Status::ParseError(path +
                                  ": file changed between loader passes");
      }
      const int64_t op = out_cursor[static_cast<size_t>(src)]++;
      out_dst[static_cast<size_t>(op)] = dst;
      out_weight[static_cast<size_t>(op)] = weight;
      const int64_t ip = in_cursor[static_cast<size_t>(dst)]++;
      in_src[static_cast<size_t>(ip)] = src;
      in_weight[static_cast<size_t>(ip)] = weight;
    }
  }
  return Graph::FromCsr(n, std::move(out_offsets), std::move(out_dst),
                        std::move(out_weight), std::move(in_offsets),
                        std::move(in_src), std::move(in_weight));
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# ariadne edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    auto weights = graph.OutWeights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out << v << " " << nbrs[i] << " " << weights[i] << "\n";
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  BinaryWriter w;
  w.WriteU32(kBinaryMagic);
  w.WriteI64(graph.num_vertices());
  w.WriteI64(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    auto weights = graph.OutWeights(v);
    w.WriteI64(static_cast<int64_t>(nbrs.size()));
    for (size_t i = 0; i < nbrs.size(); ++i) {
      w.WriteI64(nbrs[i]);
      w.WriteDouble(weights[i]);
    }
  }
  return WriteFile(path, w.data());
}

Result<Graph> LoadBinary(const std::string& path) {
  ARIADNE_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  BinaryReader r(std::move(data));
  ARIADNE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kBinaryMagic) {
    return Status::ParseError("bad magic in binary graph: " + path);
  }
  ARIADNE_ASSIGN_OR_RETURN(int64_t n, r.ReadI64());
  ARIADNE_ASSIGN_OR_RETURN(int64_t m, r.ReadI64());
  if (n < 0 || m < 0) {
    return Status::ParseError("negative dimensions in binary graph");
  }
  // Single-pass CSR build: the file stores each vertex's out-adjacency in
  // order, so the out arrays fill front to back while in-degrees are
  // counted; the in-direction is then scattered from the out CSR. No
  // intermediate edge vector (the old path peaked at ~2x graph size).
  std::vector<int64_t> out_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<int64_t> in_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<VertexId> out_dst(static_cast<size_t>(m));
  std::vector<double> out_weight(static_cast<size_t>(m));
  int64_t filled = 0;
  for (VertexId v = 0; v < n; ++v) {
    ARIADNE_ASSIGN_OR_RETURN(int64_t deg, r.ReadI64());
    if (deg < 0 || deg > m - filled) {
      return Status::ParseError("edge count mismatch in binary graph");
    }
    for (int64_t i = 0; i < deg; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(int64_t dst, r.ReadI64());
      ARIADNE_ASSIGN_OR_RETURN(double weight, r.ReadDouble());
      if (dst < 0 || dst >= n) {
        return Status::ParseError("vertex id out of range in binary graph");
      }
      out_dst[static_cast<size_t>(filled)] = dst;
      out_weight[static_cast<size_t>(filled)] = weight;
      ++in_offsets[static_cast<size_t>(dst) + 1];
      ++filled;
    }
    out_offsets[static_cast<size_t>(v) + 1] = filled;
  }
  if (filled != m) {
    return Status::ParseError("edge count mismatch in binary graph");
  }
  for (VertexId v = 0; v < n; ++v) {
    in_offsets[static_cast<size_t>(v) + 1] +=
        in_offsets[static_cast<size_t>(v)];
  }
  std::vector<VertexId> in_src(static_cast<size_t>(m));
  std::vector<double> in_weight(static_cast<size_t>(m));
  {
    std::vector<int64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      for (int64_t i = out_offsets[static_cast<size_t>(v)];
           i < out_offsets[static_cast<size_t>(v) + 1]; ++i) {
        const VertexId dst = out_dst[static_cast<size_t>(i)];
        const int64_t ip = cursor[static_cast<size_t>(dst)]++;
        in_src[static_cast<size_t>(ip)] = v;
        in_weight[static_cast<size_t>(ip)] = out_weight[static_cast<size_t>(i)];
      }
    }
  }
  return Graph::FromCsr(n, std::move(out_offsets), std::move(out_dst),
                        std::move(out_weight), std::move(in_offsets),
                        std::move(in_src), std::move(in_weight));
}

}  // namespace ariadne
