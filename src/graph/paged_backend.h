#ifndef ARIADNE_GRAPH_PAGED_BACKEND_H_
#define ARIADNE_GRAPH_PAGED_BACKEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "graph/graph.h"

namespace ariadne {

/// Options of an opened paged backend.
struct PagedBackendOptions {
  /// Byte budget for decoded partition fragments (the topology share of
  /// the unified memory budget, storage/memory_budget.h). The budget is
  /// soft at the single-fragment level: one fragment is always allowed to
  /// be resident even if it alone exceeds the budget (jumbo semantics,
  /// like the provenance page cache).
  size_t budget_bytes = 64ull << 20;
  /// Run the async prefetcher thread (PrefetchVertexRange /
  /// AdviseSequentialScan hints become loads instead of no-ops).
  bool enable_prefetch = true;
  /// Checksum-verify every partition frame at Open (pays one full file
  /// scan; corruption otherwise surfaces at first fault).
  bool verify_on_open = false;
  /// Transient-read retry ladder (DESIGN.md §2.8). A partition read that
  /// exhausts it gets one reopen-and-revalidate of the spill fd before
  /// the error goes sticky.
  RetryPolicy io_retry;
};

/// Out-of-core graph backend (DESIGN.md §2.7): CSR topology cut into
/// contiguous vertex partitions, each serialized as one checksummed
/// "checked frame" (storage/page.h) in an AGP1 spill file, faulted into a
/// decoded-fragment cache under a byte budget with LRU eviction and an
/// asynchronous prefetcher thread.
///
/// Topology is immutable, so there is no dirty state and eviction is
/// always safe: the cache holds shared_ptr fragments, eviction drops only
/// the cache's reference, and readers keep their fragment alive through a
/// per-thread two-slot lease (slot = partition parity), so the spans
/// returned by the adjacency accessors stay valid until the calling
/// thread touches a third distinct partition. Every engine/eval access
/// pattern is (at worst) two adjacent partitions per thread at a time.
///
/// Determinism: paging changes only *where* topology bytes live, never
/// their content or iteration order — adjacency per vertex is the same
/// (neighbor, weight)-sorted sequence Graph::FromEdges produces, so
/// vertex values and captured provenance are byte-identical to the
/// in-memory backend for any thread count or budget
/// (graph_backend_test.cc).
class PagedBackend final : public Graph {
 public:
  /// Writes `graph` to an AGP1 spill file at `path`, `vertices_per_partition`
  /// vertices per partition frame (0 picks a default targeting ~4 MiB
  /// decoded fragments).
  static Status CreateFrom(const Graph& graph, const std::string& path,
                           VertexId vertices_per_partition = 0);

  /// Streams a whitespace `src dst [weight]` edge-list text file into an
  /// AGP1 spill file at `path` WITHOUT materializing the graph: pass 1
  /// finds the vertex/edge counts, pass 2 scatters edges into per-partition
  /// bucket temp files (`path` + ".bucket.*", removed on success), pass 3
  /// builds one partition fragment at a time. Peak memory is O(one
  /// partition), so graphs larger than RAM can be prepared for paged runs.
  static Status BuildFromEdgeList(const std::string& edge_list_path,
                                  const std::string& path,
                                  VertexId vertices_per_partition = 0,
                                  VertexId num_vertices_hint = 0);

  /// Opens an AGP1 spill file. The returned backend is self-contained
  /// (owns its fd and prefetcher) and is used wherever a `const Graph&`
  /// is expected.
  static Result<std::unique_ptr<PagedBackend>> Open(
      const std::string& path, PagedBackendOptions options = {});

  ~PagedBackend() override;
  PagedBackend(const PagedBackend&) = delete;
  PagedBackend& operator=(const PagedBackend&) = delete;

  // ---- Graph backend surface ----

  int64_t OutDegree(VertexId v) const override;
  int64_t InDegree(VertexId v) const override;
  std::span<const VertexId> OutNeighbors(VertexId v) const override;
  std::span<const double> OutWeights(VertexId v) const override;
  std::span<const VertexId> InNeighbors(VertexId v) const override;
  std::span<const double> InWeights(VertexId v) const override;

  const char* backend_name() const override { return "paged"; }
  bool paged() const override { return true; }
  int num_partitions() const override {
    return static_cast<int>(directory_.size());
  }
  VertexId PartitionSpan() const override { return vertices_per_partition_; }
  void PrefetchVertexRange(VertexId first, VertexId last) const override;
  void AdviseSequentialScan(VertexId v) const override;
  Status backend_error() const override;
  GraphBackendStats backend_stats() const override;

  // ---- Paged-only surface ----

  /// Re-reads and checksum-verifies every frame of the spill file (the
  /// corruption test's probe; also --verify in tools).
  Status VerifyAllPartitions() const;

  /// Largest decoded fragment — the minimum budget that avoids rereading
  /// a partition within one sequential sweep (tools warn below this).
  size_t max_partition_bytes() const { return max_partition_bytes_; }

  const std::string& path() const { return path_; }

  /// Releases the calling thread's fragment leases (test hook; leases
  /// otherwise persist per thread so resident_bytes in tests would count
  /// fragments the cache already evicted).
  static void ReleaseThreadLeases();

 private:
  /// One resident partition: a zero-copy CSR view over the raw frame
  /// payload (one uninitialized 8-aligned buffer filled by a single
  /// pread), offsets rebased to the partition (out_offsets[0] == 0).
  /// Every array element is 8 bytes (VertexId = int64_t, double), so the
  /// six arrays stay naturally aligned at fixed offsets in the payload —
  /// faulting a partition is one read plus (first touch only) one
  /// checksum scan, with no per-array copies. Immutable once built.
  struct Fragment {
    VertexId first = 0;   ///< first vertex id of the partition
    VertexId count = 0;   ///< vertices in the partition
    size_t payload_bytes = 0;
    std::unique_ptr<char[]> payload;
    const int64_t* out_offsets = nullptr;  // count + 1
    const VertexId* out_dst = nullptr;
    const double* out_weight = nullptr;
    const int64_t* in_offsets = nullptr;  // count + 1
    const VertexId* in_src = nullptr;
    const double* in_weight = nullptr;
  };

  /// Write-side fragment being assembled by CreateFrom/BuildFromEdgeList
  /// before encoding; the read side never materializes these vectors.
  struct FragmentBuilder {
    VertexId first = 0;
    VertexId count = 0;
    std::vector<int64_t> out_offsets;  // count + 1
    std::vector<VertexId> out_dst;
    std::vector<double> out_weight;
    std::vector<int64_t> in_offsets;  // count + 1
    std::vector<VertexId> in_src;
    std::vector<double> in_weight;
  };

  /// Directory entry of one partition frame in the spill file.
  struct PartitionEntry {
    uint64_t offset = 0;         ///< frame start (byte offset in file)
    uint64_t frame_bytes = 0;    ///< checked-frame length incl. overhead
    uint64_t decoded_bytes = 0;  ///< payload bytes; the residency charge
  };

  PagedBackend() = default;

  static std::string EncodeFragment(const FragmentBuilder& frag);
  /// Validates the payload header/sizes and builds the pointer view;
  /// takes ownership of the buffer.
  static Result<Fragment> DecodeFragment(std::unique_ptr<char[]> payload,
                                         size_t payload_bytes,
                                         VertexId expect_first,
                                         VertexId expect_count);
  static VertexId DefaultPartitionSpan(VertexId num_vertices,
                                       int64_t num_edges);

  int PartitionOf(VertexId v) const {
    return static_cast<int>(v / vertices_per_partition_);
  }

  /// The lease fast path: returns the fragment holding `v`, faulting it
  /// in if needed. Returns nullptr only after a read error (sticky).
  const Fragment* Lease(VertexId v) const;

  /// Locked lookup behind the lease: cache hit, wait-on-in-flight, or
  /// demand load. `from_prefetcher` only routes the stats.
  std::shared_ptr<const Fragment> GetFragment(int partition,
                                              bool from_prefetcher) const;

  /// Reads + decodes partition `p` from the file (no lock held). The
  /// frame's checksum is verified only when `verify_checksum` is set: the
  /// spill file is opened read-only and immutable for the backend's
  /// lifetime, so GetFragment verifies each partition's first load and
  /// skips the digest on reloads after eviction. Transient read errors
  /// (fault point "graph-partition-read") are retried per
  /// options_.io_retry before the failure propagates.
  Result<std::shared_ptr<const Fragment>> LoadFragment(
      int p, bool verify_checksum) const;

  /// One attempt of LoadFragment's read+decode (no retry, no fault hook).
  Result<std::shared_ptr<const Fragment>> ReadFragmentOnce(
      int p, bool verify_checksum) const;

  /// Last-ditch recovery before a read error goes sticky: reopens the
  /// spill file, revalidates its footer magic, and atomically swaps the
  /// new descriptor onto fd_ (dup2), so concurrent preads never see a
  /// closed fd. Serialized by reopen_mu_.
  Status ReopenAndRevalidate() const;

  /// Inserts into the cache and evicts LRU fragments over budget.
  /// Requires mu_ held.
  void InsertLocked(int p, std::shared_ptr<const Fragment> frag) const;
  void TouchLocked(int p) const;

  void EnqueuePrefetch(int partition) const;
  void PrefetcherMain();

  std::string path_;
  int fd_ = -1;
  PagedBackendOptions options_;
  VertexId vertices_per_partition_ = 0;
  std::vector<PartitionEntry> directory_;
  size_t max_partition_bytes_ = 0;
  uint64_t instance_id_ = 0;  ///< tags thread-local lease slots

  mutable std::mutex mu_;
  mutable std::condition_variable load_done_;
  mutable std::unordered_map<int, std::shared_ptr<const Fragment>> cache_;
  mutable std::list<int> lru_;  // front = coldest
  mutable std::unordered_map<int, std::list<int>::iterator> lru_pos_;
  mutable std::unordered_set<int> loading_;
  /// Per-partition flag: frame checksum has been verified this session
  /// (first demand/prefetch load, VerifyAllPartitions, or verify_on_open).
  mutable std::vector<uint8_t> frame_verified_;
  mutable size_t resident_bytes_ = 0;
  mutable Status error_ = Status::OK();
  mutable GraphBackendStats stats_;
  /// Serializes reopen-and-revalidate so concurrently failing readers
  /// don't race dup2 swaps of fd_.
  mutable std::mutex reopen_mu_;

  // Prefetcher state (guarded by prefetch_mu_).
  mutable std::mutex prefetch_mu_;
  mutable std::condition_variable prefetch_cv_;
  mutable std::deque<int> prefetch_queue_;
  bool prefetch_stop_ = false;
  std::thread prefetcher_;
  /// Last partition AdviseSequentialScan saw (cheap dedup of per-vertex
  /// hints down to one enqueue per partition crossing).
  mutable std::atomic<int64_t> last_advised_{-1};
};

}  // namespace ariadne

#endif  // ARIADNE_GRAPH_PAGED_BACKEND_H_
