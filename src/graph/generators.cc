#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/random.h"

namespace ariadne {

Result<Graph> GenerateRmat(const RmatOptions& options) {
  if (options.scale < 1 || options.scale > 30) {
    return Status::InvalidArgument("rmat scale must be in [1,30]");
  }
  const double d = 1.0 - options.a - options.b - options.c;
  if (options.a < 0 || options.b < 0 || options.c < 0 || d < 0) {
    return Status::InvalidArgument("rmat probabilities must be >= 0 and sum <= 1");
  }
  const VertexId n = VertexId{1} << options.scale;
  const int64_t m = static_cast<int64_t>(options.avg_degree * static_cast<double>(n));
  Rng rng(options.seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (int64_t i = 0; i < m; ++i) {
    VertexId src = 0, dst = 0;
    for (int level = 0; level < options.scale; ++level) {
      const double u = rng.NextDouble();
      int quadrant;
      if (u < options.a) {
        quadrant = 0;
      } else if (u < options.a + options.b) {
        quadrant = 1;
      } else if (u < options.a + options.b + options.c) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      src = (src << 1) | (quadrant >> 1);
      dst = (dst << 1) | (quadrant & 1);
    }
    builder.AddEdge(src, dst,
                    rng.NextDouble(options.min_weight, options.max_weight));
  }
  if (options.drop_self_loops) builder.DropSelfLoops();
  if (options.dedup) builder.Dedup();
  return builder.Build();
}

Result<Graph> GenerateErdosRenyi(VertexId n, int64_t m, uint64_t seed,
                                 bool dedup) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  Rng rng(seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (int64_t i = 0; i < m; ++i) {
    const VertexId src = static_cast<VertexId>(rng.NextUInt(static_cast<uint64_t>(n)));
    VertexId dst = static_cast<VertexId>(rng.NextUInt(static_cast<uint64_t>(n)));
    if (dst == src) dst = (dst + 1) % n;
    builder.AddEdge(src, dst, rng.NextDouble());
  }
  if (dedup) builder.Dedup();
  return builder.Build();
}

Result<Graph> GenerateChain(VertexId n) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1, 1.0);
  return builder.Build();
}

Result<Graph> GenerateCycle(VertexId n) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n, 1.0);
  return builder.Build();
}

Result<Graph> GenerateStar(VertexId n) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 1; v < n; ++v) {
    builder.AddEdge(0, v, 1.0);
    builder.AddEdge(v, 0, 1.0);
  }
  return builder.Build();
}

Result<Graph> GenerateGrid(VertexId rows, VertexId cols) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("grid dims must be positive");
  }
  GraphBuilder builder;
  builder.EnsureVertices(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.AddEdge(id(r, c), id(r, c + 1), 1.0);
        builder.AddEdge(id(r, c + 1), id(r, c), 1.0);
      }
      if (r + 1 < rows) {
        builder.AddEdge(id(r, c), id(r + 1, c), 1.0);
        builder.AddEdge(id(r + 1, c), id(r, c), 1.0);
      }
    }
  }
  return builder.Build();
}

Result<Graph> GenerateComplete(VertexId n) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) builder.AddEdge(u, v, 1.0);
    }
  }
  return builder.Build();
}

Result<BipartiteRatings> GenerateBipartiteRatings(
    const BipartiteRatingsOptions& options) {
  if (options.num_users <= 0 || options.num_items <= 0) {
    return Status::InvalidArgument("users/items must be positive");
  }
  if (options.ratings_per_user <= 0 ||
      options.ratings_per_user > options.num_items) {
    return Status::InvalidArgument("ratings_per_user must be in [1, num_items]");
  }
  Rng rng(options.seed);
  ZipfSampler zipf(static_cast<size_t>(options.num_items),
                   options.zipf_exponent);

  // Base item qualities so the rating matrix has learnable structure.
  std::vector<double> item_quality(static_cast<size_t>(options.num_items));
  for (auto& q : item_quality) {
    q = rng.NextDouble(options.min_rating, options.max_rating);
  }

  GraphBuilder builder;
  builder.EnsureVertices(options.num_users + options.num_items);
  std::unordered_set<VertexId> picked;
  for (VertexId u = 0; u < options.num_users; ++u) {
    picked.clear();
    const double user_bias = rng.NextDouble(-0.5, 0.5);
    while (static_cast<int>(picked.size()) < options.ratings_per_user) {
      const VertexId item = static_cast<VertexId>(zipf.Sample(rng));
      if (!picked.insert(item).second) continue;
      double rating = item_quality[static_cast<size_t>(item)] + user_bias +
                      rng.NextDouble(-0.5, 0.5);
      rating = std::clamp(rating, options.min_rating, options.max_rating);
      const VertexId item_vertex = options.num_users + item;
      builder.AddEdge(u, item_vertex, rating);
      builder.AddEdge(item_vertex, u, rating);
    }
  }
  ARIADNE_ASSIGN_OR_RETURN(Graph g, builder.Build());
  return BipartiteRatings{std::move(g), options.num_users, options.num_items};
}

}  // namespace ariadne
