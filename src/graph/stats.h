#ifndef ARIADNE_GRAPH_STATS_H_
#define ARIADNE_GRAPH_STATS_H_

#include "common/status.h"
#include "graph/graph.h"

namespace ariadne {

/// Summary characteristics used by the Table 2 reproduction.
struct GraphStats {
  VertexId num_vertices = 0;
  int64_t num_edges = 0;
  double avg_degree = 0.0;
  int64_t max_out_degree = 0;
  int64_t max_in_degree = 0;
  /// Average over sampled sources of the farthest BFS distance reached
  /// (ignoring unreachable vertices) — an effective-diameter estimate
  /// comparable to the paper's "Avg Diameter" column.
  double avg_diameter = 0.0;
  size_t input_bytes = 0;
};

/// Computes stats; `diameter_samples` BFS runs from seeded random sources.
GraphStats ComputeGraphStats(const Graph& graph, int diameter_samples = 8,
                             uint64_t seed = 1);

/// Vertex with the largest out-degree (used to pick the paper's capture
/// source for PageRank/WCC custom capture).
VertexId HighestDegreeVertex(const Graph& graph);

}  // namespace ariadne

#endif  // ARIADNE_GRAPH_STATS_H_
