#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

namespace ariadne {

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               std::vector<Edge> edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_vertices || e.dst < 0 ||
        e.dst >= num_vertices) {
      return Status::OutOfRange("edge (" + std::to_string(e.src) + "," +
                                std::to_string(e.dst) +
                                ") references vertex outside [0," +
                                std::to_string(num_vertices) + ")");
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  const size_t m = edges.size();

  // Counting sort into CSR, out-direction.
  g.out_offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) ++g.out_offsets_[e.src + 1];
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  g.out_dst_.resize(m);
  g.out_weight_.resize(m);
  {
    std::vector<int64_t> cursor(g.out_offsets_.begin(),
                                g.out_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const int64_t pos = cursor[e.src]++;
      g.out_dst_[pos] = e.dst;
      g.out_weight_[pos] = e.weight;
    }
  }

  // In-direction.
  g.in_offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) ++g.in_offsets_[e.dst + 1];
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_src_.resize(m);
  g.in_weight_.resize(m);
  {
    std::vector<int64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const int64_t pos = cursor[e.dst]++;
      g.in_src_[pos] = e.src;
      g.in_weight_[pos] = e.weight;
    }
  }

  // Sort adjacency lists for deterministic iteration and binary-searchable
  // HasEdge; weights move with their neighbor.
  for (VertexId v = 0; v < num_vertices; ++v) {
    const int64_t b = g.out_offsets_[v], e = g.out_offsets_[v + 1];
    std::vector<std::pair<VertexId, double>> tmp;
    tmp.reserve(static_cast<size_t>(e - b));
    for (int64_t i = b; i < e; ++i) tmp.emplace_back(g.out_dst_[i], g.out_weight_[i]);
    std::sort(tmp.begin(), tmp.end());
    for (int64_t i = b; i < e; ++i) {
      g.out_dst_[i] = tmp[static_cast<size_t>(i - b)].first;
      g.out_weight_[i] = tmp[static_cast<size_t>(i - b)].second;
    }
    const int64_t ib = g.in_offsets_[v], ie = g.in_offsets_[v + 1];
    tmp.clear();
    for (int64_t i = ib; i < ie; ++i) tmp.emplace_back(g.in_src_[i], g.in_weight_[i]);
    std::sort(tmp.begin(), tmp.end());
    for (int64_t i = ib; i < ie; ++i) {
      g.in_src_[i] = tmp[static_cast<size_t>(i - ib)].first;
      g.in_weight_[i] = tmp[static_cast<size_t>(i - ib)].second;
    }
  }
  return g;
}

bool Graph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, double weight) {
  edges_.push_back(Edge{src, dst, weight});
  num_vertices_ = std::max(num_vertices_, std::max(src, dst) + 1);
}

void GraphBuilder::EnsureVertices(VertexId n) {
  num_vertices_ = std::max(num_vertices_, n);
}

void GraphBuilder::Dedup() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

void GraphBuilder::DropSelfLoops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

Result<Graph> GraphBuilder::Build() {
  return Graph::FromEdges(num_vertices_, std::move(edges_));
}

}  // namespace ariadne
