#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

namespace ariadne {

Result<Graph> Graph::FromEdges(VertexId num_vertices,
                               std::vector<Edge> edges) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  for (const Edge& e : edges) {
    if (e.src < 0 || e.src >= num_vertices || e.dst < 0 ||
        e.dst >= num_vertices) {
      return Status::OutOfRange("edge (" + std::to_string(e.src) + "," +
                                std::to_string(e.dst) +
                                ") references vertex outside [0," +
                                std::to_string(num_vertices) + ")");
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = static_cast<int64_t>(edges.size());
  const size_t m = edges.size();

  // Counting sort into CSR, out-direction.
  g.out_offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) ++g.out_offsets_[e.src + 1];
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  g.out_dst_.resize(m);
  g.out_weight_.resize(m);
  {
    std::vector<int64_t> cursor(g.out_offsets_.begin(),
                                g.out_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const int64_t pos = cursor[e.src]++;
      g.out_dst_[pos] = e.dst;
      g.out_weight_[pos] = e.weight;
    }
  }

  // In-direction.
  g.in_offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) ++g.in_offsets_[e.dst + 1];
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_src_.resize(m);
  g.in_weight_.resize(m);
  {
    std::vector<int64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const int64_t pos = cursor[e.dst]++;
      g.in_src_[pos] = e.src;
      g.in_weight_[pos] = e.weight;
    }
  }

  // Sort adjacency lists for deterministic iteration and binary-searchable
  // HasEdge; weights move with their neighbor.
  for (VertexId v = 0; v < num_vertices; ++v) {
    const int64_t b = g.out_offsets_[v], e = g.out_offsets_[v + 1];
    std::vector<std::pair<VertexId, double>> tmp;
    tmp.reserve(static_cast<size_t>(e - b));
    for (int64_t i = b; i < e; ++i) tmp.emplace_back(g.out_dst_[i], g.out_weight_[i]);
    std::sort(tmp.begin(), tmp.end());
    for (int64_t i = b; i < e; ++i) {
      g.out_dst_[i] = tmp[static_cast<size_t>(i - b)].first;
      g.out_weight_[i] = tmp[static_cast<size_t>(i - b)].second;
    }
    const int64_t ib = g.in_offsets_[v], ie = g.in_offsets_[v + 1];
    tmp.clear();
    for (int64_t i = ib; i < ie; ++i) tmp.emplace_back(g.in_src_[i], g.in_weight_[i]);
    std::sort(tmp.begin(), tmp.end());
    for (int64_t i = ib; i < ie; ++i) {
      g.in_src_[i] = tmp[static_cast<size_t>(i - ib)].first;
      g.in_weight_[i] = tmp[static_cast<size_t>(i - ib)].second;
    }
  }
  return g;
}

namespace {

// Validates one CSR direction: offsets monotone, starting at 0, covering
// `adjacency` exactly, with every neighbor id in range.
Status CheckCsrSide(const char* side, VertexId num_vertices,
                    const std::vector<int64_t>& offsets,
                    const std::vector<VertexId>& adjacency,
                    const std::vector<double>& weights) {
  if (offsets.size() != static_cast<size_t>(num_vertices) + 1 ||
      offsets.front() != 0) {
    return Status::InvalidArgument(std::string(side) +
                                   " offsets malformed (size/first entry)");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::InvalidArgument(std::string(side) +
                                     " offsets not monotone at vertex " +
                                     std::to_string(i - 1));
    }
  }
  if (offsets.back() != static_cast<int64_t>(adjacency.size()) ||
      adjacency.size() != weights.size()) {
    return Status::InvalidArgument(
        std::string(side) + " offsets/adjacency/weight sizes disagree");
  }
  for (VertexId u : adjacency) {
    if (u < 0 || u >= num_vertices) {
      return Status::OutOfRange(std::string(side) + " neighbor " +
                                std::to_string(u) + " outside [0," +
                                std::to_string(num_vertices) + ")");
    }
  }
  return Status::OK();
}

// Sorts each vertex's adjacency by (neighbor, weight) — the iteration-order
// contract FromEdges establishes and every backend must match.
void SortCsrAdjacency(VertexId num_vertices,
                      const std::vector<int64_t>& offsets,
                      std::vector<VertexId>* adjacency,
                      std::vector<double>* weights) {
  std::vector<std::pair<VertexId, double>> tmp;
  for (VertexId v = 0; v < num_vertices; ++v) {
    const int64_t b = offsets[v], e = offsets[v + 1];
    if (e - b < 2) continue;
    tmp.clear();
    tmp.reserve(static_cast<size_t>(e - b));
    for (int64_t i = b; i < e; ++i) {
      tmp.emplace_back((*adjacency)[i], (*weights)[i]);
    }
    std::sort(tmp.begin(), tmp.end());
    for (int64_t i = b; i < e; ++i) {
      (*adjacency)[i] = tmp[static_cast<size_t>(i - b)].first;
      (*weights)[i] = tmp[static_cast<size_t>(i - b)].second;
    }
  }
}

}  // namespace

Result<Graph> Graph::FromCsr(VertexId num_vertices,
                             std::vector<int64_t> out_offsets,
                             std::vector<VertexId> out_dst,
                             std::vector<double> out_weight,
                             std::vector<int64_t> in_offsets,
                             std::vector<VertexId> in_src,
                             std::vector<double> in_weight,
                             bool adjacency_sorted) {
  if (num_vertices < 0) {
    return Status::InvalidArgument("negative vertex count");
  }
  ARIADNE_RETURN_NOT_OK(
      CheckCsrSide("out", num_vertices, out_offsets, out_dst, out_weight));
  ARIADNE_RETURN_NOT_OK(
      CheckCsrSide("in", num_vertices, in_offsets, in_src, in_weight));
  if (out_dst.size() != in_src.size()) {
    return Status::InvalidArgument("out/in edge counts disagree: " +
                                   std::to_string(out_dst.size()) + " vs " +
                                   std::to_string(in_src.size()));
  }
  if (!adjacency_sorted) {
    SortCsrAdjacency(num_vertices, out_offsets, &out_dst, &out_weight);
    SortCsrAdjacency(num_vertices, in_offsets, &in_src, &in_weight);
  }
  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = static_cast<int64_t>(out_dst.size());
  g.out_offsets_ = std::move(out_offsets);
  g.out_dst_ = std::move(out_dst);
  g.out_weight_ = std::move(out_weight);
  g.in_offsets_ = std::move(in_offsets);
  g.in_src_ = std::move(in_src);
  g.in_weight_ = std::move(in_weight);
  return g;
}

bool Graph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, double weight) {
  edges_.push_back(Edge{src, dst, weight});
  num_vertices_ = std::max(num_vertices_, std::max(src, dst) + 1);
}

void GraphBuilder::EnsureVertices(VertexId n) {
  num_vertices_ = std::max(num_vertices_, n);
}

void GraphBuilder::Dedup() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

void GraphBuilder::DropSelfLoops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

Result<Graph> GraphBuilder::Build() {
  return Graph::FromEdges(num_vertices_, std::move(edges_));
}

}  // namespace ariadne
