#include "graph/paged_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/serialize.h"
#include "common/string_util.h"
#include "recovery/fault_injector.h"
#include "storage/page.h"

namespace ariadne {

namespace {

// AGP1 spill file layout (all frames are storage::AppendCheckedFrame
// checked frames, so every region is length- and checksum-guarded):
//
//   [header frame][partition frame 0]...[partition frame P-1]
//   [directory frame][dir_offset u64][kFooterMagic u64]
//
// The 16-byte raw footer locates the directory; header and directory are
// read through ParseCheckedFrame, partition frames through LoadFragment
// (length prefix cross-checked against the checksummed directory, digest
// verified on each partition's first load).
constexpr uint32_t kAgpMagic = 0x31504741;  // "AGP1"
constexpr uint32_t kAgpVersion = 1;
constexpr uint64_t kFooterMagic = 0x31504741454e4441ull;  // "ADNEAGP1"

// Fragment payload: [count u64][out_edges u64][in_edges u64] then the six
// CSR arrays as raw little-endian 8-byte words (offsets rebased to the
// partition). Every element is 8 bytes, so after a size check the decoded
// fragment is a pointer view straight into the pread buffer — faulting a
// partition is one read (plus a first-touch checksum scan), never an
// array copy.
template <typename T>
void AppendArray(const std::vector<T>& v, std::string* out) {
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

Status StatusFromErrno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

// pread exactly `n` bytes at `offset` (retrying short reads).
Status PreadAll(int fd, void* buf, size_t n, uint64_t offset,
                const std::string& path) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::pread(fd, p, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("pread failed on", path);
    }
    if (got == 0) {
      return Status::IOError("unexpected EOF at byte " +
                             std::to_string(offset) + " in " + path);
    }
    p += got;
    offset += static_cast<uint64_t>(got);
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

/// Per-thread fragment lease: two direct-mapped slots (slot = partition
/// parity), so the current and next partition of a sequential sweep never
/// evict each other's lease. Slots are tagged with the backend's global
/// instance id — address reuse after a backend is destroyed can never
/// resurface a stale fragment. The hit path compares `v` against the
/// slot's cached vertex range, so repeat accesses cost two compares and
/// no division.
struct LeaseSlot {
  uint64_t instance = 0;
  int partition = -1;
  VertexId first = 0;  ///< vertex range [first, end) of the leased fragment
  VertexId end = 0;
  std::shared_ptr<const void> frag;  // type-erased Fragment keep-alive
  const void* raw = nullptr;
};
thread_local LeaseSlot g_lease_slots[2];

std::atomic<uint64_t> g_next_instance_id{1};

}  // namespace

std::string PagedBackend::EncodeFragment(const FragmentBuilder& frag) {
  std::string payload;
  const uint64_t count = static_cast<uint64_t>(frag.count);
  const uint64_t out_edges = frag.out_dst.size();
  const uint64_t in_edges = frag.in_src.size();
  payload.reserve(24 + (frag.out_offsets.size() + frag.in_offsets.size() +
                        out_edges + in_edges) *
                           8 +
                  (out_edges + in_edges) * 8);
  payload.append(reinterpret_cast<const char*>(&count), 8);
  payload.append(reinterpret_cast<const char*>(&out_edges), 8);
  payload.append(reinterpret_cast<const char*>(&in_edges), 8);
  AppendArray(frag.out_offsets, &payload);
  AppendArray(frag.out_dst, &payload);
  AppendArray(frag.out_weight, &payload);
  AppendArray(frag.in_offsets, &payload);
  AppendArray(frag.in_src, &payload);
  AppendArray(frag.in_weight, &payload);
  return payload;
}

Result<PagedBackend::Fragment> PagedBackend::DecodeFragment(
    std::unique_ptr<char[]> payload, size_t payload_bytes,
    VertexId expect_first, VertexId expect_count) {
  if (payload_bytes < 24) {
    return Status::ParseError("fragment payload shorter than its header");
  }
  uint64_t count, out_edges, in_edges;
  std::memcpy(&count, payload.get(), 8);
  std::memcpy(&out_edges, payload.get() + 8, 8);
  std::memcpy(&in_edges, payload.get() + 16, 8);
  if (count != static_cast<uint64_t>(expect_count)) {
    return Status::ParseError("fragment vertex count " +
                              std::to_string(count) + " != directory count " +
                              std::to_string(expect_count));
  }
  // Every array element is 8 bytes, so the payload size is fully
  // determined by the header: any truncation or trailing garbage shows up
  // as a size mismatch before a single pointer is formed.
  const uint64_t max_words = payload_bytes / 8;
  if (out_edges > max_words || in_edges > max_words ||
      24 + (count + 1) * 16 + (out_edges + in_edges) * 16 != payload_bytes) {
    return Status::ParseError("fragment payload size does not match its "
                              "header counts");
  }
  Fragment frag;
  frag.first = expect_first;
  frag.count = expect_count;
  frag.payload_bytes = payload_bytes;
  frag.payload = std::move(payload);
  const char* base = frag.payload.get();
  // operator new[] storage is aligned for max_align_t and every section
  // offset below is a multiple of 8, so the reinterpret_casts are aligned.
  frag.out_offsets = reinterpret_cast<const int64_t*>(base + 24);
  frag.out_dst = reinterpret_cast<const VertexId*>(
      reinterpret_cast<const char*>(frag.out_offsets + count + 1));
  frag.out_weight = reinterpret_cast<const double*>(
      reinterpret_cast<const char*>(frag.out_dst + out_edges));
  frag.in_offsets = reinterpret_cast<const int64_t*>(
      reinterpret_cast<const char*>(frag.out_weight + out_edges));
  frag.in_src = reinterpret_cast<const VertexId*>(
      reinterpret_cast<const char*>(frag.in_offsets + count + 1));
  frag.in_weight = reinterpret_cast<const double*>(
      reinterpret_cast<const char*>(frag.in_src + in_edges));
  if (frag.out_offsets[0] != 0 ||
      frag.out_offsets[count] != static_cast<int64_t>(out_edges) ||
      frag.in_offsets[0] != 0 ||
      frag.in_offsets[count] != static_cast<int64_t>(in_edges)) {
    return Status::ParseError("fragment offsets do not cover edge arrays");
  }
  return frag;
}

VertexId PagedBackend::DefaultPartitionSpan(VertexId num_vertices,
                                            int64_t num_edges) {
  // Target ~4 MiB decoded fragments: per vertex 16 bytes of offsets plus
  // ~32 bytes per incident edge half (id + weight, both directions).
  const double per_vertex =
      16.0 + 32.0 * (num_vertices > 0
                         ? static_cast<double>(num_edges) /
                               static_cast<double>(num_vertices)
                         : 0.0);
  VertexId span = static_cast<VertexId>((4.0 * (1 << 20)) / per_vertex);
  span = std::max<VertexId>(span, 1024);
  return std::min(span, std::max<VertexId>(num_vertices, 1));
}

// ---- Creation ----

namespace {

/// Shared tail of CreateFrom/BuildFromEdgeList: streams header +
/// per-partition frames + directory + footer to `path`. `emit` is called
/// once per partition and must return the encoded fragment payload.
Status WriteAgpFile(
    const std::string& path, VertexId num_vertices, int64_t num_edges,
    VertexId span,
    const std::function<Result<std::string>(VertexId first, VertexId count)>&
        emit) {
  const int num_parts =
      num_vertices == 0
          ? 0
          : static_cast<int>((num_vertices + span - 1) / span);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);

  BinaryWriter header;
  header.WriteU32(kAgpMagic);
  header.WriteU32(kAgpVersion);
  header.WriteI64(num_vertices);
  header.WriteI64(num_edges);
  header.WriteI64(span);
  header.WriteI64(num_parts);
  std::string frame;
  storage::AppendCheckedFrame(header.data(), &frame);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  uint64_t offset = frame.size();

  BinaryWriter directory;
  directory.WriteU64(static_cast<uint64_t>(num_parts));
  for (int p = 0; p < num_parts; ++p) {
    const VertexId first = static_cast<VertexId>(p) * span;
    const VertexId count = std::min<VertexId>(span, num_vertices - first);
    ARIADNE_ASSIGN_OR_RETURN(std::string payload, emit(first, count));
    frame.clear();
    storage::AppendCheckedFrame(payload, &frame);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    directory.WriteU64(offset);
    directory.WriteU64(frame.size());
    directory.WriteU64(payload.size());
    offset += frame.size();
  }

  frame.clear();
  storage::AppendCheckedFrame(directory.data(), &frame);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.write(reinterpret_cast<const char*>(&offset), 8);
  out.write(reinterpret_cast<const char*>(&kFooterMagic), 8);
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace

Status PagedBackend::CreateFrom(const Graph& graph, const std::string& path,
                                VertexId vertices_per_partition) {
  const VertexId n = graph.num_vertices();
  const VertexId span = vertices_per_partition > 0
                            ? vertices_per_partition
                            : DefaultPartitionSpan(n, graph.num_edges());
  return WriteAgpFile(
      path, n, graph.num_edges(), span,
      [&](VertexId first, VertexId count) -> Result<std::string> {
        FragmentBuilder frag;
        frag.first = first;
        frag.count = count;
        frag.out_offsets.assign(static_cast<size_t>(count) + 1, 0);
        frag.in_offsets.assign(static_cast<size_t>(count) + 1, 0);
        for (VertexId v = first; v < first + count; ++v) {
          const size_t local = static_cast<size_t>(v - first);
          auto od = graph.OutNeighbors(v);
          auto ow = graph.OutWeights(v);
          auto id = graph.InNeighbors(v);
          auto iw = graph.InWeights(v);
          frag.out_dst.insert(frag.out_dst.end(), od.begin(), od.end());
          frag.out_weight.insert(frag.out_weight.end(), ow.begin(), ow.end());
          frag.in_src.insert(frag.in_src.end(), id.begin(), id.end());
          frag.in_weight.insert(frag.in_weight.end(), iw.begin(), iw.end());
          frag.out_offsets[local + 1] =
              static_cast<int64_t>(frag.out_dst.size());
          frag.in_offsets[local + 1] = static_cast<int64_t>(frag.in_src.size());
        }
        return EncodeFragment(frag);
      });
}

Status PagedBackend::BuildFromEdgeList(const std::string& edge_list_path,
                                       const std::string& path,
                                       VertexId vertices_per_partition,
                                       VertexId num_vertices_hint) {
  // Pass 1: dimensions only (no per-edge state).
  VertexId max_vertex = num_vertices_hint - 1;
  int64_t num_edges = 0;
  {
    std::ifstream in(edge_list_path);
    if (!in) {
      return Status::IOError("cannot open edge list: " + edge_list_path);
    }
    std::string line;
    int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
      std::istringstream ls{std::string(trimmed)};
      VertexId src, dst;
      if (!(ls >> src >> dst)) {
        return Status::ParseError(edge_list_path + ":" +
                                  std::to_string(lineno) +
                                  ": expected 'src dst [weight]'");
      }
      if (src < 0 || dst < 0) {
        return Status::ParseError(edge_list_path + ":" +
                                  std::to_string(lineno) +
                                  ": negative vertex id");
      }
      max_vertex = std::max(max_vertex, std::max(src, dst));
      ++num_edges;
    }
  }
  const VertexId n = max_vertex + 1;
  if (n <= 0) return Status::InvalidArgument("empty edge list");
  const VertexId span = vertices_per_partition > 0
                            ? vertices_per_partition
                            : DefaultPartitionSpan(n, num_edges);
  const int num_parts = static_cast<int>((n + span - 1) / span);

  // Pass 2: scatter each edge into the bucket files of the partitions
  // owning its endpoints (record: src, dst, weight, direction byte).
  // Memory stays O(1); disk holds ~2x the edge list transiently.
  struct BucketRecord {
    VertexId src;
    VertexId dst;
    double weight;
    uint8_t direction;  // 0 = out (owner = src), 1 = in (owner = dst)
  };
  std::vector<std::string> bucket_paths(static_cast<size_t>(num_parts));
  std::vector<std::unique_ptr<std::ofstream>> buckets;
  buckets.reserve(bucket_paths.size());
  auto cleanup_buckets = [&]() {
    buckets.clear();
    for (const std::string& bp : bucket_paths) {
      if (!bp.empty()) std::remove(bp.c_str());
    }
  };
  for (int p = 0; p < num_parts; ++p) {
    bucket_paths[static_cast<size_t>(p)] =
        path + ".bucket." + std::to_string(p);
    buckets.push_back(std::make_unique<std::ofstream>(
        bucket_paths[static_cast<size_t>(p)],
        std::ios::binary | std::ios::trunc));
    if (!*buckets.back()) {
      Status s = Status::IOError("cannot open bucket file: " +
                                 bucket_paths[static_cast<size_t>(p)]);
      cleanup_buckets();
      return s;
    }
  }
  {
    std::ifstream in(edge_list_path);
    if (!in) {
      cleanup_buckets();
      return Status::IOError("cannot reopen edge list: " + edge_list_path);
    }
    std::string line;
    while (std::getline(in, line)) {
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
      std::istringstream ls{std::string(trimmed)};
      VertexId src, dst;
      double weight = 1.0;
      ls >> src >> dst >> weight;
      BucketRecord rec{src, dst, weight, 0};
      auto& ob = *buckets[static_cast<size_t>(src / span)];
      ob.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
      rec.direction = 1;
      auto& ib = *buckets[static_cast<size_t>(dst / span)];
      ib.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
    }
    for (auto& b : buckets) {
      b->flush();
      if (!*b) {
        cleanup_buckets();
        return Status::IOError("bucket write failed under " + path);
      }
    }
    buckets.clear();
  }

  // Pass 3: one partition at a time — sort its bucket, build the local
  // CSR with the same (neighbor, weight) order FromEdges guarantees.
  Status written = WriteAgpFile(
      path, n, num_edges, span,
      [&](VertexId first, VertexId count) -> Result<std::string> {
        const int p = static_cast<int>(first / span);
        ARIADNE_ASSIGN_OR_RETURN(
            std::string raw, ReadFile(bucket_paths[static_cast<size_t>(p)]));
        if (raw.size() % sizeof(BucketRecord) != 0) {
          return Status::ParseError("bucket file size not a record multiple");
        }
        const size_t num_recs = raw.size() / sizeof(BucketRecord);
        const BucketRecord* recs =
            reinterpret_cast<const BucketRecord*>(raw.data());
        FragmentBuilder frag;
        frag.first = first;
        frag.count = count;
        frag.out_offsets.assign(static_cast<size_t>(count) + 1, 0);
        frag.in_offsets.assign(static_cast<size_t>(count) + 1, 0);
        for (size_t i = 0; i < num_recs; ++i) {
          const BucketRecord& r = recs[i];
          if (r.direction == 0) {
            ++frag.out_offsets[r.src - first + 1];
          } else {
            ++frag.in_offsets[r.dst - first + 1];
          }
        }
        for (VertexId v = 0; v < count; ++v) {
          frag.out_offsets[v + 1] += frag.out_offsets[v];
          frag.in_offsets[v + 1] += frag.in_offsets[v];
        }
        frag.out_dst.resize(static_cast<size_t>(frag.out_offsets[count]));
        frag.out_weight.resize(frag.out_dst.size());
        frag.in_src.resize(static_cast<size_t>(frag.in_offsets[count]));
        frag.in_weight.resize(frag.in_src.size());
        std::vector<int64_t> out_cursor(frag.out_offsets.begin(),
                                        frag.out_offsets.end() - 1);
        std::vector<int64_t> in_cursor(frag.in_offsets.begin(),
                                       frag.in_offsets.end() - 1);
        for (size_t i = 0; i < num_recs; ++i) {
          const BucketRecord& r = recs[i];
          if (r.direction == 0) {
            const int64_t pos = out_cursor[r.src - first]++;
            frag.out_dst[static_cast<size_t>(pos)] = r.dst;
            frag.out_weight[static_cast<size_t>(pos)] = r.weight;
          } else {
            const int64_t pos = in_cursor[r.dst - first]++;
            frag.in_src[static_cast<size_t>(pos)] = r.src;
            frag.in_weight[static_cast<size_t>(pos)] = r.weight;
          }
        }
        std::vector<std::pair<VertexId, double>> tmp;
        for (VertexId v = 0; v < count; ++v) {
          for (int pass = 0; pass < 2; ++pass) {
            auto& offs = pass == 0 ? frag.out_offsets : frag.in_offsets;
            auto& ids = pass == 0 ? frag.out_dst : frag.in_src;
            auto& ws = pass == 0 ? frag.out_weight : frag.in_weight;
            const int64_t b = offs[v], e = offs[v + 1];
            if (e - b < 2) continue;
            tmp.clear();
            for (int64_t i = b; i < e; ++i) {
              tmp.emplace_back(ids[static_cast<size_t>(i)],
                               ws[static_cast<size_t>(i)]);
            }
            std::sort(tmp.begin(), tmp.end());
            for (int64_t i = b; i < e; ++i) {
              ids[static_cast<size_t>(i)] = tmp[static_cast<size_t>(i - b)].first;
              ws[static_cast<size_t>(i)] = tmp[static_cast<size_t>(i - b)].second;
            }
          }
        }
        return EncodeFragment(frag);
      });
  cleanup_buckets();
  return written;
}

// ---- Opening ----

Result<std::unique_ptr<PagedBackend>> PagedBackend::Open(
    const std::string& path, PagedBackendOptions options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return StatusFromErrno("cannot open spill file", path);
  auto backend = std::unique_ptr<PagedBackend>(new PagedBackend());
  backend->path_ = path;
  backend->fd_ = fd;
  backend->options_ = options;
  backend->instance_id_ =
      g_next_instance_id.fetch_add(1, std::memory_order_relaxed);

  struct stat st;
  if (::fstat(fd, &st) != 0) return StatusFromErrno("fstat failed on", path);
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < 16) {
    return Status::ParseError("spill file too small for its footer: " + path);
  }
  char footer[16];
  ARIADNE_RETURN_NOT_OK(PreadAll(fd, footer, 16, file_size - 16, path));
  uint64_t dir_offset, magic;
  std::memcpy(&dir_offset, footer, 8);
  std::memcpy(&magic, footer + 8, 8);
  if (magic != kFooterMagic) {
    return Status::ParseError("bad footer magic in spill file: " + path);
  }
  if (dir_offset >= file_size - 16) {
    return Status::ParseError("directory offset out of range in " + path);
  }

  // Directory frame.
  std::string dir_raw(file_size - 16 - dir_offset, '\0');
  ARIADNE_RETURN_NOT_OK(
      PreadAll(fd, dir_raw.data(), dir_raw.size(), dir_offset, path));
  size_t off = 0;
  auto dir_payload = storage::ParseCheckedFrame(dir_raw, &off);
  if (!dir_payload.ok()) {
    return dir_payload.status().WithContext("directory of " + path);
  }
  BinaryReader dir(std::string(dir_payload.value()));
  ARIADNE_ASSIGN_OR_RETURN(uint64_t num_parts, dir.ReadU64());
  backend->directory_.resize(num_parts);
  for (uint64_t p = 0; p < num_parts; ++p) {
    PartitionEntry& e = backend->directory_[p];
    ARIADNE_ASSIGN_OR_RETURN(e.offset, dir.ReadU64());
    ARIADNE_ASSIGN_OR_RETURN(e.frame_bytes, dir.ReadU64());
    ARIADNE_ASSIGN_OR_RETURN(e.decoded_bytes, dir.ReadU64());
    if (e.offset + e.frame_bytes > dir_offset) {
      return Status::ParseError("partition " + std::to_string(p) +
                                " extends past the directory in " + path);
    }
    backend->max_partition_bytes_ =
        std::max(backend->max_partition_bytes_, size_t{e.decoded_bytes});
  }

  // Header frame.
  std::string head_raw(std::min<uint64_t>(dir_offset, 4096), '\0');
  ARIADNE_RETURN_NOT_OK(PreadAll(fd, head_raw.data(), head_raw.size(), 0,
                                 path));
  off = 0;
  auto head_payload = storage::ParseCheckedFrame(head_raw, &off);
  if (!head_payload.ok()) {
    return head_payload.status().WithContext("header of " + path);
  }
  BinaryReader head(std::string(head_payload.value()));
  ARIADNE_ASSIGN_OR_RETURN(uint32_t head_magic, head.ReadU32());
  ARIADNE_ASSIGN_OR_RETURN(uint32_t version, head.ReadU32());
  if (head_magic != kAgpMagic || version != kAgpVersion) {
    return Status::ParseError("bad header magic/version in " + path);
  }
  ARIADNE_ASSIGN_OR_RETURN(int64_t n, head.ReadI64());
  ARIADNE_ASSIGN_OR_RETURN(int64_t m, head.ReadI64());
  ARIADNE_ASSIGN_OR_RETURN(int64_t span, head.ReadI64());
  ARIADNE_ASSIGN_OR_RETURN(int64_t parts, head.ReadI64());
  if (span <= 0 || parts != static_cast<int64_t>(num_parts)) {
    return Status::ParseError("header/directory partition counts disagree in " +
                              path);
  }
  backend->SetCounts(n, m);
  backend->frame_verified_.assign(num_parts, 0);
  backend->vertices_per_partition_ = span;
  backend->stats_.partitions = static_cast<int32_t>(num_parts);
  backend->stats_.budget_bytes = options.budget_bytes;
  backend->stats_.max_partition_bytes = backend->max_partition_bytes_;
  for (const PartitionEntry& e : backend->directory_) {
    backend->stats_.footprint_bytes += e.decoded_bytes;
  }

  if (options.verify_on_open) {
    ARIADNE_RETURN_NOT_OK(backend->VerifyAllPartitions());
  }
  if (options.enable_prefetch) {
    backend->prefetcher_ = std::thread([b = backend.get()] {
      b->PrefetcherMain();
    });
  }
  return backend;
}

PagedBackend::~PagedBackend() {
  if (prefetcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(prefetch_mu_);
      prefetch_stop_ = true;
    }
    prefetch_cv_.notify_all();
    prefetcher_.join();
  }
  if (fd_ >= 0) ::close(fd_);
}

// ---- Read path ----

Result<std::shared_ptr<const PagedBackend::Fragment>>
PagedBackend::LoadFragment(int p, bool verify_checksum) const {
  std::shared_ptr<const Fragment> frag;
  const RetryOutcome read = RetryTransient(
      options_.io_retry, static_cast<uint64_t>(p), [&] {
        Status attempt = recovery::CheckFaultPoint("graph-partition-read");
        if (attempt.ok()) {
          auto once = ReadFragmentOnce(p, verify_checksum);
          if (once.ok()) {
            frag = std::move(once).value();
          } else {
            attempt = once.status();
          }
        }
        return attempt;
      });
  if (read.retries() > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.read_retries += static_cast<uint64_t>(read.retries());
  }
  if (!read.status.ok()) return read.status;
  return frag;
}

Result<std::shared_ptr<const PagedBackend::Fragment>>
PagedBackend::ReadFragmentOnce(int p, bool verify_checksum) const {
  const PartitionEntry& e = directory_[static_cast<size_t>(p)];
  if (e.frame_bytes != e.decoded_bytes + storage::kCheckedFrameOverhead) {
    return Status::ParseError("directory frame/payload sizes disagree for "
                              "partition " + std::to_string(p) + " of " +
                              path_);
  }
  // Frame layout: [len u64][payload][Checksum64 u64]. The payload goes
  // straight into the fragment's own buffer (uninitialized, 8-aligned by
  // operator new[]) so a load is one big read with no staging copy; the
  // length prefix is cross-checked against the (itself checksummed)
  // directory, so prefix corruption is caught even on no-digest reloads.
  uint64_t len_prefix = 0, want_sum = 0;
  ARIADNE_RETURN_NOT_OK(PreadAll(fd_, &len_prefix, 8, e.offset, path_));
  if (len_prefix != e.decoded_bytes) {
    return Status::ParseError(
        "frame length prefix " + std::to_string(len_prefix) +
        " disagrees with the directory for partition " + std::to_string(p) +
        " of " + path_);
  }
  auto payload = std::unique_ptr<char[]>(new char[e.decoded_bytes]);
  ARIADNE_RETURN_NOT_OK(
      PreadAll(fd_, payload.get(), e.decoded_bytes, e.offset + 8, path_));
  if (verify_checksum) {
    ARIADNE_RETURN_NOT_OK(PreadAll(fd_, &want_sum, 8,
                                   e.offset + 8 + e.decoded_bytes, path_));
    if (storage::Checksum64({payload.get(), e.decoded_bytes}) != want_sum) {
      return Status::ParseError("frame checksum mismatch in partition " +
                                std::to_string(p) + " of " + path_);
    }
  }
  const VertexId first = static_cast<VertexId>(p) * vertices_per_partition_;
  const VertexId count =
      std::min(vertices_per_partition_, num_vertices() - first);
  auto frag =
      DecodeFragment(std::move(payload), e.decoded_bytes, first, count);
  if (!frag.ok()) {
    return frag.status().WithContext("partition " + std::to_string(p) +
                                     " of " + path_);
  }
  return std::make_shared<const Fragment>(std::move(frag).value());
}

Status PagedBackend::ReopenAndRevalidate() const {
  std::lock_guard<std::mutex> lock(reopen_mu_);
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return StatusFromErrno("reopen failed for spill file", path_);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return StatusFromErrno("fstat failed after reopening", path_);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  char footer[16];
  uint64_t magic = 0;
  Status valid = file_size < 16
                     ? Status::ParseError("reopened spill file too small "
                                          "for its footer: " + path_)
                     : PreadAll(fd, footer, 16, file_size - 16, path_);
  if (valid.ok()) {
    std::memcpy(&magic, footer + 8, 8);
    if (magic != kFooterMagic) {
      valid = Status::ParseError("bad footer magic after reopening " + path_);
    }
  }
  if (!valid.ok()) {
    ::close(fd);
    return valid;
  }
  // dup2 retargets the existing descriptor number atomically, so readers
  // mid-pread on fd_ keep working (same immutable file either way).
  if (::dup2(fd, fd_) < 0) {
    ::close(fd);
    return StatusFromErrno("dup2 failed while reopening", path_);
  }
  ::close(fd);
  std::lock_guard<std::mutex> slock(mu_);
  ++stats_.fd_reopens;
  return Status::OK();
}

void PagedBackend::TouchLocked(int p) const {
  auto it = lru_pos_.find(p);
  if (it != lru_pos_.end()) lru_.splice(lru_.end(), lru_, it->second);
}

void PagedBackend::InsertLocked(
    int p, std::shared_ptr<const Fragment> frag) const {
  // Residency is charged with the directory's decoded_bytes — the same
  // figure footprint_bytes sums — so a budget equal to the footprint
  // really holds every partition (a per-fragment overhead surcharge here
  // once made a 100% budget thrash the whole file every sweep).
  resident_bytes_ += directory_[static_cast<size_t>(p)].decoded_bytes;
  cache_[p] = std::move(frag);
  lru_pos_[p] = lru_.insert(lru_.end(), p);
  // Evict coldest fragments over budget, but never the one just inserted
  // (jumbo semantics: a single oversized fragment may exceed the budget).
  while (resident_bytes_ > options_.budget_bytes && lru_.size() > 1) {
    const int victim = lru_.front();
    lru_.pop_front();
    lru_pos_.erase(victim);
    resident_bytes_ -= directory_[static_cast<size_t>(victim)].decoded_bytes;
    cache_.erase(victim);
    ++stats_.evictions;
  }
  stats_.resident_bytes = resident_bytes_;
}

std::shared_ptr<const PagedBackend::Fragment> PagedBackend::GetFragment(
    int partition, bool from_prefetcher) const {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!error_.ok()) return nullptr;
    auto it = cache_.find(partition);
    if (it != cache_.end()) {
      TouchLocked(partition);
      if (!from_prefetcher) ++stats_.cache_hits;
      return it->second;
    }
    if (loading_.count(partition) == 0) break;
    // Another thread (or the prefetcher) is reading this partition; wait
    // for it instead of issuing a duplicate IO.
    load_done_.wait(lock);
  }
  loading_.insert(partition);
  const bool verify = frame_verified_[static_cast<size_t>(partition)] == 0;
  lock.unlock();

  auto loaded = LoadFragment(partition, verify);
  if (!loaded.ok() && IsTransientError(loaded.status())) {
    // Retries exhausted on a transient error: one reopen-and-revalidate
    // of the spill fd (the descriptor itself may be the casualty — NFS
    // staleness, a pulled mount) before the error goes sticky.
    if (ReopenAndRevalidate().ok()) {
      loaded = LoadFragment(partition, verify);
    }
  }

  lock.lock();
  loading_.erase(partition);
  if (!loaded.ok()) {
    ++stats_.gave_up;
    if (error_.ok()) error_ = loaded.status();
    lock.unlock();
    load_done_.notify_all();
    return nullptr;
  }
  frame_verified_[static_cast<size_t>(partition)] = 1;
  if (from_prefetcher) {
    ++stats_.prefetch_loads;
  } else {
    ++stats_.partition_faults;
  }
  InsertLocked(partition, loaded.value());
  std::shared_ptr<const Fragment> frag = cache_[partition];
  lock.unlock();
  load_done_.notify_all();
  return frag;
}

const PagedBackend::Fragment* PagedBackend::Lease(VertexId v) const {
  // Hit path: range-check both slots — no division, no lock.
  for (const LeaseSlot& slot : g_lease_slots) {
    if (slot.instance == instance_id_ && v >= slot.first && v < slot.end) {
      return static_cast<const Fragment*>(slot.raw);
    }
  }
  const int p = PartitionOf(v);
  LeaseSlot& slot = g_lease_slots[static_cast<size_t>(p) & 1];
  std::shared_ptr<const Fragment> frag = GetFragment(p, false);
  if (frag == nullptr) return nullptr;
  slot.instance = instance_id_;
  slot.partition = p;
  slot.first = frag->first;
  slot.end = frag->first + frag->count;
  slot.raw = frag.get();
  slot.frag = std::move(frag);
  return static_cast<const Fragment*>(slot.raw);
}

void PagedBackend::ReleaseThreadLeases() {
  for (LeaseSlot& slot : g_lease_slots) {
    slot = LeaseSlot{};
  }
}

int64_t PagedBackend::OutDegree(VertexId v) const {
  const Fragment* f = Lease(v);
  if (f == nullptr) return 0;
  const size_t local = static_cast<size_t>(v - f->first);
  return f->out_offsets[local + 1] - f->out_offsets[local];
}

int64_t PagedBackend::InDegree(VertexId v) const {
  const Fragment* f = Lease(v);
  if (f == nullptr) return 0;
  const size_t local = static_cast<size_t>(v - f->first);
  return f->in_offsets[local + 1] - f->in_offsets[local];
}

std::span<const VertexId> PagedBackend::OutNeighbors(VertexId v) const {
  const Fragment* f = Lease(v);
  if (f == nullptr) return {};
  const size_t local = static_cast<size_t>(v - f->first);
  return {f->out_dst + f->out_offsets[local],
          static_cast<size_t>(f->out_offsets[local + 1] -
                              f->out_offsets[local])};
}

std::span<const double> PagedBackend::OutWeights(VertexId v) const {
  const Fragment* f = Lease(v);
  if (f == nullptr) return {};
  const size_t local = static_cast<size_t>(v - f->first);
  return {f->out_weight + f->out_offsets[local],
          static_cast<size_t>(f->out_offsets[local + 1] -
                              f->out_offsets[local])};
}

std::span<const VertexId> PagedBackend::InNeighbors(VertexId v) const {
  const Fragment* f = Lease(v);
  if (f == nullptr) return {};
  const size_t local = static_cast<size_t>(v - f->first);
  return {f->in_src + f->in_offsets[local],
          static_cast<size_t>(f->in_offsets[local + 1] -
                              f->in_offsets[local])};
}

std::span<const double> PagedBackend::InWeights(VertexId v) const {
  const Fragment* f = Lease(v);
  if (f == nullptr) return {};
  const size_t local = static_cast<size_t>(v - f->first);
  return {f->in_weight + f->in_offsets[local],
          static_cast<size_t>(f->in_offsets[local + 1] -
                              f->in_offsets[local])};
}

Status PagedBackend::backend_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

GraphBackendStats PagedBackend::backend_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GraphBackendStats s = stats_;
  s.resident_bytes = resident_bytes_;
  return s;
}

// ---- Prefetch ----

void PagedBackend::EnqueuePrefetch(int partition) const {
  if (!options_.enable_prefetch || partition < 0 ||
      partition >= num_partitions()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.count(partition) > 0 || loading_.count(partition) > 0) return;
    ++stats_.prefetch_requests;
  }
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_queue_.push_back(partition);
  }
  prefetch_cv_.notify_one();
}

void PagedBackend::PrefetchVertexRange(VertexId first, VertexId last) const {
  if (first < 0) first = 0;
  if (last >= num_vertices()) last = num_vertices() - 1;
  if (first > last) return;
  for (int p = PartitionOf(first); p <= PartitionOf(last); ++p) {
    EnqueuePrefetch(p);
  }
}

void PagedBackend::AdviseSequentialScan(VertexId v) const {
  // Only partition-boundary crossings matter; everything else is a cheap
  // early-out so callers may hint every vertex of a scan.
  if (v % vertices_per_partition_ != 0) return;
  const int64_t p = v / vertices_per_partition_;
  if (last_advised_.exchange(p, std::memory_order_relaxed) == p) return;
  EnqueuePrefetch(static_cast<int>(p + 1));
}

void PagedBackend::PrefetcherMain() {
  for (;;) {
    int partition;
    {
      std::unique_lock<std::mutex> lock(prefetch_mu_);
      prefetch_cv_.wait(lock, [this] {
        return prefetch_stop_ || !prefetch_queue_.empty();
      });
      if (prefetch_stop_) return;
      partition = prefetch_queue_.front();
      prefetch_queue_.pop_front();
    }
    // GetFragment dedups against cached/in-flight and records the sticky
    // error on failure; the reader that needs the partition will see it.
    (void)GetFragment(partition, true);
  }
}

Status PagedBackend::VerifyAllPartitions() const {
  // The full-fidelity probe: always re-reads and checksums every frame
  // (LoadFragment with verify_checksum also cross-checks the length
  // prefix against the directory and validates the decoded view).
  for (size_t p = 0; p < directory_.size(); ++p) {
    ARIADNE_RETURN_NOT_OK(
        LoadFragment(static_cast<int>(p), /*verify_checksum=*/true)
            .status());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!frame_verified_.empty()) {
    std::fill(frame_verified_.begin(), frame_verified_.end(), uint8_t{1});
  }
  return Status::OK();
}

}  // namespace ariadne
