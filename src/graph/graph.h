#ifndef ARIADNE_GRAPH_GRAPH_H_
#define ARIADNE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ariadne {

/// Vertex identifier. Vertices of a Graph are dense ids [0, num_vertices).
using VertexId = int64_t;

/// A directed, weighted edge used during graph construction.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  bool operator==(const Edge& other) const = default;
};

/// Counters of a paged graph backend (all zero for the in-memory backend).
/// Reported through RunStats and `ariadne_run --stats-json` so out-of-core
/// runs are measurable from one JSON blob (DESIGN.md §2.7).
struct GraphBackendStats {
  uint64_t budget_bytes = 0;     ///< decoded-fragment cache budget
  uint64_t resident_bytes = 0;   ///< decoded bytes currently cached
  uint64_t footprint_bytes = 0;  ///< decoded bytes of the whole topology
  uint64_t partition_faults = 0;  ///< demand loads that blocked a reader
  uint64_t cache_hits = 0;        ///< fault-path hits in the fragment cache
  uint64_t prefetch_loads = 0;    ///< fragment loads done by the prefetcher
  uint64_t prefetch_requests = 0;  ///< prefetch hints enqueued
  uint64_t evictions = 0;
  uint64_t max_partition_bytes = 0;  ///< largest decoded fragment (working set)
  int32_t partitions = 0;
  /// Resilience counters (DESIGN.md §2.8): partition reads retried after
  /// a transient error, spill-fd reopen-and-revalidate recoveries, and
  /// loads abandoned (error went sticky) after retries + reopen.
  uint64_t read_retries = 0;
  uint64_t fd_reopens = 0;
  uint64_t gave_up = 0;
};

/// Directed graph in CSR (compressed sparse row) form with both out- and
/// in-adjacency, plus per-edge double weights. This is the input graph the
/// VC engine iterates over; provenance annotates its vertices (compact
/// representation, paper §3).
///
/// `Graph` doubles as the *GraphBackend* interface (DESIGN.md §2.7): the
/// virtual adjacency surface below is the pluggable-storage contract, and
/// this base class IS the in-memory backend — zero-copy spans straight
/// over resident CSR arrays, exactly the pre-backend behavior. The paged
/// backend (`PagedBackend`, src/graph/paged_backend.h) overrides the
/// surface with buffer-managed partition fragments faulted from a
/// checksummed spill file under a byte budget, plus async prefetch. Every
/// consumer (engine, analytics, eval, serve) programs against `const
/// Graph&` and works with either backend; vertex values and captured
/// provenance are byte-identical across backends by construction, because
/// a backend only changes *where* topology bytes live, never their
/// content.
class Graph {
 public:
  /// Builds a graph with `num_vertices` vertices (ids [0, num_vertices))
  /// from an edge list. Edges referencing out-of-range vertices are an
  /// error. Parallel edges are kept (VC engines permit them); callers that
  /// need simple graphs deduplicate first (GraphBuilder::Dedup).
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge> edges);

  /// Builds directly from prefilled CSR arrays (both directions). Offsets
  /// must be monotone and cover the arrays exactly; adjacency is sorted
  /// per vertex by (neighbor, weight) unless `adjacency_sorted` promises
  /// it already is. The streaming loaders (graph/io.cc) use this to
  /// construct a graph without ever materializing an edge list.
  static Result<Graph> FromCsr(VertexId num_vertices,
                               std::vector<int64_t> out_offsets,
                               std::vector<VertexId> out_dst,
                               std::vector<double> out_weight,
                               std::vector<int64_t> in_offsets,
                               std::vector<VertexId> in_src,
                               std::vector<double> in_weight,
                               bool adjacency_sorted = false);

  Graph() = default;
  virtual ~Graph() = default;
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Counts are plain members (set by every backend), so the per-message
  // range check in the engine's send path never pays a virtual call.
  VertexId num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return num_edges_; }

  // ---- Backend surface (virtual; base = in-memory backend) ----

  virtual int64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  virtual int64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  virtual std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_dst_.data() + out_offsets_[v],
            static_cast<size_t>(OutDegree(v))};
  }
  virtual std::span<const double> OutWeights(VertexId v) const {
    return {out_weight_.data() + out_offsets_[v],
            static_cast<size_t>(OutDegree(v))};
  }
  virtual std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_src_.data() + in_offsets_[v], static_cast<size_t>(InDegree(v))};
  }
  virtual std::span<const double> InWeights(VertexId v) const {
    return {in_weight_.data() + in_offsets_[v],
            static_cast<size_t>(InDegree(v))};
  }

  /// Short backend name for logs/stats ("in-memory", "paged").
  virtual const char* backend_name() const { return "in-memory"; }

  /// True when topology lives behind a buffer manager; the engine only
  /// issues residency hints (and barrier error checks) when set.
  virtual bool paged() const { return false; }

  /// Partition geometry. The in-memory backend is one partition spanning
  /// every vertex; the paged backend cuts vertices into contiguous
  /// fixed-width ranges whose fragments fault in and out independently.
  virtual int num_partitions() const { return 1; }
  /// Vertices per partition (prefetch-window unit for the engine).
  virtual VertexId PartitionSpan() const { return num_vertices_; }

  /// Asynchronous hint that vertices [first, last] are about to be read.
  /// Best-effort and content-neutral: prefetching only warms the fragment
  /// cache, so results are identical whether or not hints are issued.
  virtual void PrefetchVertexRange(VertexId first, VertexId last) const {
    (void)first;
    (void)last;
  }

  /// Hint from sequential whole-graph scans (adjacency precompute, naive
  /// eval): called with each visited vertex; the paged backend kicks off
  /// the next partition's load when `v` crosses a partition boundary.
  virtual void AdviseSequentialScan(VertexId v) const { (void)v; }

  /// Sticky IO/corruption error of the backend's read path. Adjacency
  /// accessors cannot return Status (they hand out spans on the hot
  /// path), so a failed fault records the error here and serves an empty
  /// span; the engine re-checks at every superstep barrier and fails the
  /// run loudly instead of computing over silently missing edges.
  virtual Status backend_error() const { return Status::OK(); }

  virtual GraphBackendStats backend_stats() const { return {}; }

  // ---- Non-virtual helpers (defined over the surface above) ----

  /// True if the directed edge (src, dst) exists (log in OutDegree(src)).
  bool HasEdge(VertexId src, VertexId dst) const;

  double AverageDegree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) /
                     static_cast<double>(num_vertices_);
  }

  /// Nominal on-disk footprint of the input graph (8 bytes per vertex,
  /// 20 bytes per edge: src, dst, weight-as-float). The denominator of the
  /// provenance/input size ratios in paper Tables 3-4.
  size_t InputByteSize() const {
    return static_cast<size_t>(num_vertices_) * 8 +
           static_cast<size_t>(num_edges()) * 20;
  }

 protected:
  /// Derived backends (which keep no resident CSR arrays) set the counts
  /// the non-virtual accessors serve.
  void SetCounts(VertexId num_vertices, int64_t num_edges) {
    num_vertices_ = num_vertices;
    num_edges_ = num_edges;
  }

 private:
  VertexId num_vertices_ = 0;
  int64_t num_edges_ = 0;
  std::vector<int64_t> out_offsets_;  // size num_vertices_ + 1
  std::vector<VertexId> out_dst_;
  std::vector<double> out_weight_;
  std::vector<int64_t> in_offsets_;
  std::vector<VertexId> in_src_;
  std::vector<double> in_weight_;
};

/// Incremental edge accumulator with id remapping and dedup helpers.
class GraphBuilder {
 public:
  /// Adds a directed edge; grows the vertex count to cover both endpoints.
  void AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Ensures the graph has at least `n` vertices even if isolated.
  void EnsureVertices(VertexId n);

  /// Removes duplicate (src, dst) pairs, keeping the first weight.
  void Dedup();

  /// Drops self-loop edges (src == dst).
  void DropSelfLoops();

  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  VertexId num_vertices() const { return num_vertices_; }

  Result<Graph> Build();

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace ariadne

#endif  // ARIADNE_GRAPH_GRAPH_H_
