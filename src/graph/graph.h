#ifndef ARIADNE_GRAPH_GRAPH_H_
#define ARIADNE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ariadne {

/// Vertex identifier. Vertices of a Graph are dense ids [0, num_vertices).
using VertexId = int64_t;

/// A directed, weighted edge used during graph construction.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  bool operator==(const Edge& other) const = default;
};

/// Immutable directed graph in CSR (compressed sparse row) form with both
/// out- and in-adjacency, plus per-edge double weights. This is the input
/// graph the VC engine iterates over; provenance annotates its vertices
/// (compact representation, paper §3).
class Graph {
 public:
  /// Builds a graph with `num_vertices` vertices (ids [0, num_vertices))
  /// from an edge list. Edges referencing out-of-range vertices are an
  /// error. Parallel edges are kept (VC engines permit them); callers that
  /// need simple graphs deduplicate first (GraphBuilder::Dedup).
  static Result<Graph> FromEdges(VertexId num_vertices,
                                 std::vector<Edge> edges);

  Graph() = default;

  VertexId num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(out_dst_.size()); }

  int64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  int64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_dst_.data() + out_offsets_[v],
            static_cast<size_t>(OutDegree(v))};
  }
  std::span<const double> OutWeights(VertexId v) const {
    return {out_weight_.data() + out_offsets_[v],
            static_cast<size_t>(OutDegree(v))};
  }
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_src_.data() + in_offsets_[v], static_cast<size_t>(InDegree(v))};
  }
  std::span<const double> InWeights(VertexId v) const {
    return {in_weight_.data() + in_offsets_[v],
            static_cast<size_t>(InDegree(v))};
  }

  /// True if the directed edge (src, dst) exists (linear in OutDegree(src)).
  bool HasEdge(VertexId src, VertexId dst) const;

  double AverageDegree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(num_edges()) /
                     static_cast<double>(num_vertices_);
  }

  /// Nominal on-disk footprint of the input graph (8 bytes per vertex,
  /// 20 bytes per edge: src, dst, weight-as-float). The denominator of the
  /// provenance/input size ratios in paper Tables 3-4.
  size_t InputByteSize() const {
    return static_cast<size_t>(num_vertices_) * 8 +
           static_cast<size_t>(num_edges()) * 20;
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<int64_t> out_offsets_;  // size num_vertices_ + 1
  std::vector<VertexId> out_dst_;
  std::vector<double> out_weight_;
  std::vector<int64_t> in_offsets_;
  std::vector<VertexId> in_src_;
  std::vector<double> in_weight_;
};

/// Incremental edge accumulator with id remapping and dedup helpers.
class GraphBuilder {
 public:
  /// Adds a directed edge; grows the vertex count to cover both endpoints.
  void AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Ensures the graph has at least `n` vertices even if isolated.
  void EnsureVertices(VertexId n);

  /// Removes duplicate (src, dst) pairs, keeping the first weight.
  void Dedup();

  /// Drops self-loop edges (src == dst).
  void DropSelfLoops();

  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  VertexId num_vertices() const { return num_vertices_; }

  Result<Graph> Build();

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace ariadne

#endif  // ARIADNE_GRAPH_GRAPH_H_
