#include "graph/stats.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/random.h"

namespace ariadne {

namespace {

/// Longest finite BFS distance from `src` over out-edges.
int64_t BfsEccentricity(const Graph& g, VertexId src) {
  std::vector<int64_t> dist(static_cast<size_t>(g.num_vertices()), -1);
  std::queue<VertexId> q;
  dist[static_cast<size_t>(src)] = 0;
  q.push(src);
  int64_t max_dist = 0;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.OutNeighbors(v)) {
      if (dist[static_cast<size_t>(u)] < 0) {
        dist[static_cast<size_t>(u)] = dist[static_cast<size_t>(v)] + 1;
        max_dist = std::max(max_dist, dist[static_cast<size_t>(u)]);
        q.push(u);
      }
    }
  }
  return max_dist;
}

}  // namespace

GraphStats ComputeGraphStats(const Graph& graph, int diameter_samples,
                             uint64_t seed) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  stats.avg_degree = graph.AverageDegree();
  stats.input_bytes = graph.InputByteSize();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
  }
  if (graph.num_vertices() > 0 && diameter_samples > 0) {
    Rng rng(seed);
    double total = 0;
    for (int i = 0; i < diameter_samples; ++i) {
      const VertexId src = static_cast<VertexId>(
          rng.NextUInt(static_cast<uint64_t>(graph.num_vertices())));
      total += static_cast<double>(BfsEccentricity(graph, src));
    }
    stats.avg_diameter = total / diameter_samples;
  }
  return stats;
}

VertexId HighestDegreeVertex(const Graph& graph) {
  VertexId best = 0;
  int64_t best_degree = -1;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > best_degree) {
      best_degree = graph.OutDegree(v);
      best = v;
    }
  }
  return best;
}

}  // namespace ariadne
