#ifndef ARIADNE_GRAPH_IO_H_
#define ARIADNE_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace ariadne {

/// Loads a whitespace-separated edge-list text file: one `src dst [weight]`
/// per line; `#` and `%` lines are comments (SNAP / DIMACS-challenge
/// style, matching the paper's dataset distribution format). Vertex ids
/// must be non-negative; the vertex count is 1 + max id unless
/// `num_vertices_hint` is larger.
Result<Graph> LoadEdgeList(const std::string& path,
                           VertexId num_vertices_hint = 0);

/// Writes `src dst weight` lines; inverse of LoadEdgeList.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Compact binary graph format (magic + counts + CSR arrays via
/// BinaryWriter). Round-trips exactly.
Status SaveBinary(const Graph& graph, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

}  // namespace ariadne

#endif  // ARIADNE_GRAPH_IO_H_
