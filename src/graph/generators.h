#ifndef ARIADNE_GRAPH_GENERATORS_H_
#define ARIADNE_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace ariadne {

/// Options for the R-MAT generator (Chakrabarti et al.), the stand-in for
/// the paper's web crawls (indochina-2004, uk-2002, arabic-2005, uk-2005).
/// Defaults reproduce a skewed, small-diameter web-like degree
/// distribution with average degree ~= `avg_degree`.
struct RmatOptions {
  int scale = 14;             ///< num_vertices = 2^scale
  double avg_degree = 16.0;   ///< edges = avg_degree * num_vertices
  double a = 0.57, b = 0.19, c = 0.19;  ///< R-MAT quadrant probabilities (d = 1-a-b-c)
  uint64_t seed = 42;
  bool dedup = true;          ///< drop parallel edges
  bool drop_self_loops = true;
  double min_weight = 0.0;    ///< uniform edge weights in [min_weight, max_weight)
  double max_weight = 1.0;
};

/// Generates an R-MAT graph. Weights are uniform in
/// [min_weight, max_weight) — the paper assigns random 0-1 weights for SSSP.
Result<Graph> GenerateRmat(const RmatOptions& options);

/// G(n, m) Erdős–Rényi-style digraph: m directed edges sampled uniformly.
Result<Graph> GenerateErdosRenyi(VertexId n, int64_t m, uint64_t seed,
                                 bool dedup = true);

/// Directed chain 0 -> 1 -> ... -> n-1 (unit weights). Maximal-diameter
/// stress case for layered evaluation.
Result<Graph> GenerateChain(VertexId n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Result<Graph> GenerateCycle(VertexId n);

/// Star: hub 0 with spokes 1..n-1 (edges hub -> spoke and spoke -> hub).
Result<Graph> GenerateStar(VertexId n);

/// 2D grid with bidirectional edges between 4-neighbors.
Result<Graph> GenerateGrid(VertexId rows, VertexId cols);

/// Complete digraph on n vertices (no self loops).
Result<Graph> GenerateComplete(VertexId n);

/// Options for the synthetic bipartite ratings graph — the stand-in for
/// MovieLens-20M in the ALS experiments (paper §6, dataset ML-20).
struct BipartiteRatingsOptions {
  VertexId num_users = 2000;
  VertexId num_items = 500;
  int ratings_per_user = 50;   ///< sampled without replacement per user
  double zipf_exponent = 1.1;  ///< item popularity skew
  double min_rating = 0.0;
  double max_rating = 5.0;
  uint64_t seed = 7;
};

/// Generated bipartite graph plus the id layout (users first, then items).
struct BipartiteRatings {
  Graph graph;          ///< edges user <-> item in both directions, weight = rating
  VertexId num_users;   ///< users are vertices [0, num_users)
  VertexId num_items;   ///< items are vertices [num_users, num_users+num_items)

  bool IsUser(VertexId v) const { return v < num_users; }
};

/// Generates user->item ratings with Zipf item popularity; every rating
/// appears as two directed edges (user->item, item->user) so ALS's
/// alternating message exchange works on the plain VC engine. Ratings are
/// drawn from a per-item base quality plus user noise, clamped to
/// [min_rating, max_rating].
Result<BipartiteRatings> GenerateBipartiteRatings(
    const BipartiteRatingsOptions& options);

}  // namespace ariadne

#endif  // ARIADNE_GRAPH_GENERATORS_H_
