#include "provenance/store.h"

#include <algorithm>

#include "common/serialize.h"

namespace ariadne {

void Layer::Add(int rel, VertexId vertex, std::vector<Tuple> tuples) {
  if (tuples.empty()) return;
  LayerSlice slice;
  slice.rel = rel;
  slice.vertex = vertex;
  slice.tuples = std::move(tuples);
  for (const Tuple& t : slice.tuples) byte_size += TupleByteSize(t);
  slices.push_back(std::move(slice));
}

void Layer::Canonicalize() {
  std::stable_sort(slices.begin(), slices.end(),
                   [](const LayerSlice& a, const LayerSlice& b) {
                     if (a.rel != b.rel) return a.rel < b.rel;
                     return a.vertex < b.vertex;
                   });
}

int ProvenanceStore::AddRelation(const std::string& name, int arity) {
  const int existing = RelId(name);
  if (existing >= 0) return existing;
  schema_.push_back(StoredRelation{name, arity});
  return static_cast<int>(schema_.size() - 1);
}

int ProvenanceStore::RelId(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StoreSchema ProvenanceStore::ToStoreSchema() const {
  StoreSchema out;
  for (const auto& rel : schema_) {
    out.relations.push_back(StoreSchema::Entry{rel.name, rel.arity});
  }
  return out;
}

Status ProvenanceStore::EnableSpill(std::string dir, size_t budget_bytes) {
  if (dir.empty()) return Status::InvalidArgument("empty spill directory");
  spill_dir_ = std::move(dir);
  spill_budget_ = budget_bytes;
  spill_enabled_ = true;
  return ApplySpillPolicy();
}

Status ProvenanceStore::AppendLayer(Layer layer) {
  if (layer.step != static_cast<Superstep>(layers_.size())) {
    return Status::InvalidArgument(
        "layers must be appended in superstep order (got " +
        std::to_string(layer.step) + ", expected " +
        std::to_string(layers_.size()) + ")");
  }
  LayerEntry entry;
  entry.byte_size = layer.byte_size;
  entry.step = layer.step;
  entry.resident = std::move(layer);
  layers_.push_back(std::move(entry));
  return ApplySpillPolicy();
}

Result<const Layer*> ProvenanceStore::GetLayer(int step) {
  if (step < 0 || step >= num_layers()) {
    return Status::OutOfRange("layer " + std::to_string(step) +
                              " out of range");
  }
  LayerEntry& entry = layers_[static_cast<size_t>(step)];
  if (!entry.resident.has_value()) {
    ARIADNE_ASSIGN_OR_RETURN(Layer layer, LoadLayer(entry));
    entry.resident = std::move(layer);
    // Layered evaluation touches one layer at a time: evict other
    // reloaded layers to honor the budget (never the one just loaded).
    ARIADNE_RETURN_NOT_OK(ApplySpillPolicy(step));
  }
  return &*entry.resident;
}

size_t ProvenanceStore::TotalBytes() const {
  size_t bytes = static_layer_.byte_size;
  for (const auto& entry : layers_) bytes += entry.byte_size;
  return bytes;
}

size_t ProvenanceStore::InMemoryBytes() const {
  size_t bytes = static_layer_.byte_size;
  for (const auto& entry : layers_) {
    if (entry.resident.has_value()) bytes += entry.byte_size;
  }
  return bytes;
}

int64_t ProvenanceStore::TotalTuples() const {
  int64_t n = 0;
  for (const auto& slice : static_layer_.slices) {
    n += static_cast<int64_t>(slice.tuples.size());
  }
  for (const auto& entry : layers_) {
    if (!entry.resident.has_value()) continue;
    for (const auto& slice : entry.resident->slices) {
      n += static_cast<int64_t>(slice.tuples.size());
    }
  }
  return n;
}

int ProvenanceStore::SpilledLayerCount() const {
  int n = 0;
  for (const auto& entry : layers_) {
    if (!entry.resident.has_value()) ++n;
  }
  return n;
}

Status ProvenanceStore::SpillLayer(LayerEntry& entry) {
  if (!entry.resident.has_value()) return Status::OK();
  if (entry.spill_path.empty()) {
    BinaryWriter writer;
    SerializeLayer(*entry.resident, writer);
    entry.spill_path =
        spill_dir_ + "/layer_" + std::to_string(entry.step) + ".bin";
    ARIADNE_RETURN_NOT_OK(WriteFile(entry.spill_path, writer.data()));
  }
  entry.resident.reset();
  return Status::OK();
}

Result<Layer> ProvenanceStore::LoadLayer(const LayerEntry& entry) const {
  ARIADNE_ASSIGN_OR_RETURN(std::string data, ReadFile(entry.spill_path));
  BinaryReader reader(std::move(data));
  return DeserializeLayer(reader);
}

Status ProvenanceStore::ApplySpillPolicy(int keep_step) {
  if (!spill_enabled_) return Status::OK();
  size_t resident = InMemoryBytes();
  // Oldest-first spill until under budget; `keep_step` stays resident.
  for (auto& entry : layers_) {
    if (resident <= spill_budget_) break;
    if (!entry.resident.has_value()) continue;
    if (static_cast<int>(entry.step) == keep_step) continue;
    resident -= entry.byte_size;
    ARIADNE_RETURN_NOT_OK(SpillLayer(entry));
  }
  return Status::OK();
}

void SerializeLayer(const Layer& layer, BinaryWriter& writer) {
  writer.WriteI64(layer.step);
  writer.WriteU64(layer.slices.size());
  for (const auto& slice : layer.slices) {
    writer.WriteU32(static_cast<uint32_t>(slice.rel));
    writer.WriteI64(slice.vertex);
    writer.WriteU64(slice.tuples.size());
    for (const Tuple& t : slice.tuples) {
      writer.WriteU32(static_cast<uint32_t>(t.size()));
      for (const Value& v : t) writer.WriteValue(v);
    }
  }
}

Result<Layer> DeserializeLayer(BinaryReader& reader) {
  Layer layer;
  ARIADNE_ASSIGN_OR_RETURN(int64_t step, reader.ReadI64());
  layer.step = static_cast<Superstep>(step);
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_slices, reader.ReadU64());
  for (uint64_t s = 0; s < n_slices; ++s) {
    ARIADNE_ASSIGN_OR_RETURN(uint32_t rel, reader.ReadU32());
    ARIADNE_ASSIGN_OR_RETURN(int64_t vertex, reader.ReadI64());
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_tuples, reader.ReadU64());
    std::vector<Tuple> tuples;
    tuples.reserve(n_tuples);
    for (uint64_t i = 0; i < n_tuples; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
      Tuple t;
      t.reserve(arity);
      for (uint32_t a = 0; a < arity; ++a) {
        ARIADNE_ASSIGN_OR_RETURN(Value v, reader.ReadValue());
        t.push_back(std::move(v));
      }
      tuples.push_back(std::move(t));
    }
    layer.Add(static_cast<int>(rel), vertex, std::move(tuples));
  }
  return layer;
}

Status ProvenanceStore::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU32(0x41505631);  // "APV1"
  writer.WriteU64(schema_.size());
  for (const auto& rel : schema_) {
    writer.WriteString(rel.name);
    writer.WriteU32(static_cast<uint32_t>(rel.arity));
  }
  SerializeLayer(static_layer_, writer);
  writer.WriteU64(layers_.size());
  // Note: spilled layers are reloaded for the save.
  for (const auto& entry : layers_) {
    if (entry.resident.has_value()) {
      SerializeLayer(*entry.resident, writer);
    } else {
      auto loaded = LoadLayer(entry);
      if (!loaded.ok()) return loaded.status();
      SerializeLayer(*loaded, writer);
    }
  }
  return WriteFile(path, writer.data());
}

Result<ProvenanceStore> ProvenanceStore::LoadFromFile(
    const std::string& path) {
  ARIADNE_ASSIGN_OR_RETURN(std::string data, ReadFile(path));
  BinaryReader reader(std::move(data));
  ARIADNE_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != 0x41505631) {
    return Status::ParseError("bad provenance store magic");
  }
  ProvenanceStore store;
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_rels, reader.ReadU64());
  for (uint64_t i = 0; i < n_rels; ++i) {
    ARIADNE_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    ARIADNE_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
    store.AddRelation(name, static_cast<int>(arity));
  }
  ARIADNE_ASSIGN_OR_RETURN(store.static_layer_, DeserializeLayer(reader));
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_layers, reader.ReadU64());
  for (uint64_t i = 0; i < n_layers; ++i) {
    ARIADNE_ASSIGN_OR_RETURN(Layer layer, DeserializeLayer(reader));
    ARIADNE_RETURN_NOT_OK(store.AppendLayer(std::move(layer)));
  }
  return store;
}

}  // namespace ariadne
