#include "provenance/store.h"

#include <cstring>
#include <utility>

#include "common/serialize.h"
#include "storage/page.h"

namespace ariadne {

namespace {

constexpr uint32_t kStoreMagicV1 = 0x41505631;  ///< legacy row-major image
constexpr uint32_t kStoreMagicV2 = 0x41505632;  ///< page-compressed image

/// Bytes before the checksummed body of an APV2 image:
/// [u32 magic][u32 flags][u64 fnv1a(body)].
constexpr size_t kV2HeaderBytes = 4 + 4 + 8;

/// Header flags bit 0: the image holds a *degraded* capture — the body
/// starts with a degraded-metadata section (see SerializeToString) and
/// layered eval refuses full-history queries over the loaded store.
constexpr uint32_t kV2FlagDegraded = 1u;

}  // namespace

void ProvenanceStore::MarkDegraded(Superstep at_step,
                                   std::vector<int> surviving_rels,
                                   std::string reason) {
  if (degraded()) return;  // first degradation wins; it names the cause
  degraded_at_ = at_step;
  surviving_rels_ = std::move(surviving_rels);
  degraded_reason_ = std::move(reason);
}

int ProvenanceStore::AddRelation(const std::string& name, int arity) {
  const int existing = RelId(name);
  if (existing >= 0) return existing;
  schema_.push_back(StoredRelation{name, arity});
  return static_cast<int>(schema_.size() - 1);
}

int ProvenanceStore::RelId(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StoreSchema ProvenanceStore::ToStoreSchema() const {
  StoreSchema out;
  for (const auto& rel : schema_) {
    out.relations.push_back(StoreSchema::Entry{rel.name, rel.arity});
  }
  return out;
}

Status ProvenanceStore::EnableSpill(std::string dir, size_t budget_bytes) {
  storage::LayerStoreOptions options;
  options.dir = std::move(dir);
  options.mem_budget_bytes = budget_bytes;
  return ConfigureStorage(std::move(options));
}

Status ProvenanceStore::ConfigureStorage(storage::LayerStoreOptions options) {
  return layers_->Configure(std::move(options));
}

Status ProvenanceStore::AppendLayer(Layer layer) {
  return layers_->Append(std::make_shared<Layer>(std::move(layer)));
}

Status ProvenanceStore::Flush() { return layers_->Drain(); }

Result<const Layer*> ProvenanceStore::GetLayer(int step) {
  auto layer = layers_->Read(step);
  if (!layer.ok()) return layer.status();
  loaded_ = std::move(layer).value();
  return loaded_.get();
}

Result<std::shared_ptr<const Layer>> ProvenanceStore::GetLayerRelations(
    int step, const std::vector<int>& rels) const {
  return layers_->ReadRelations(step, rels);
}

void ProvenanceStore::PrefetchLayer(int step,
                                    const std::vector<int>& rels) const {
  layers_->Prefetch(step, rels);
}

size_t ProvenanceStore::TotalBytes() const {
  return static_layer_.byte_size + layers_->TotalBytes();
}

size_t ProvenanceStore::InMemoryBytes() const {
  return static_layer_.byte_size + layers_->InMemoryBytes();
}

int64_t ProvenanceStore::TotalTuples() const {
  int64_t n = 0;
  for (const auto& slice : static_layer_.slices) {
    n += static_cast<int64_t>(slice.tuples.size());
  }
  return n + layers_->TotalTuples();
}

Status ProvenanceStore::SaveToFile(const std::string& path) const {
  ARIADNE_ASSIGN_OR_RETURN(std::string image, SerializeToString());
  return WriteFile(path, image);
}

Result<std::string> ProvenanceStore::SerializeToString() const {
  BinaryWriter body;
  if (degraded()) {
    // Degraded section comes first (gated by header flags bit 0), so a
    // complete capture's image is byte-for-byte the classic APV2 layout.
    body.WriteI64(degraded_at_);
    body.WriteString(degraded_reason_);
    body.WriteU64(surviving_rels_.size());
    for (int rel : surviving_rels_) body.WriteI64(rel);
  }
  body.WriteU64(schema_.size());
  for (const auto& rel : schema_) {
    body.WriteString(rel.name);
    body.WriteU32(static_cast<uint32_t>(rel.arity));
  }
  SerializeLayer(static_layer_, body);
  const int n_layers = layers_->num_layers();
  body.WriteU64(static_cast<uint64_t>(n_layers));
  for (int step = 0; step < n_layers; ++step) {
    auto layer = layers_->Read(step);
    if (!layer.ok()) {
      return layer.status().WithContext("saving layer " +
                                        std::to_string(step));
    }
    // Always re-encode with the default page size: the image bytes are
    // then independent of the spill configuration the store ran under.
    const std::vector<storage::Page> pages =
        storage::EncodeLayer(**layer, storage::kDefaultPageSize);
    std::string blob;
    for (const storage::Page& page : pages) {
      storage::SerializePage(page, &blob);
    }
    body.WriteI64((*layer)->step);
    body.WriteU64(pages.size());
    body.WriteString(blob);
  }
  BinaryWriter out;
  out.WriteU32(kStoreMagicV2);
  out.WriteU32(degraded() ? kV2FlagDegraded : 0);
  out.WriteU64(storage::Fnv1a(body.data()));
  std::string file = out.MoveData();
  file += body.data();
  return file;
}

namespace {

Result<ProvenanceStore> LoadLegacyV1(BinaryReader& reader,
                                     const std::string& path) {
  ProvenanceStore store;
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_rels, reader.ReadU64());
  // A schema entry costs >= 12 bytes (length-prefixed name + arity).
  if (n_rels > reader.remaining() / 12) {
    return Status::ParseError("relation count " + std::to_string(n_rels) +
                              " exceeds remaining bytes in " + path +
                              " at offset " + std::to_string(reader.pos()));
  }
  for (uint64_t i = 0; i < n_rels; ++i) {
    ARIADNE_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    ARIADNE_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
    store.AddRelation(name, static_cast<int>(arity));
  }
  {
    auto layer = DeserializeLayer(reader);
    if (!layer.ok()) return layer.status().WithContext(path);
    store.static_layer() = std::move(layer).value();
  }
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_layers, reader.ReadU64());
  if (n_layers > reader.remaining() / 16) {
    return Status::ParseError("layer count " + std::to_string(n_layers) +
                              " exceeds remaining bytes in " + path +
                              " at offset " + std::to_string(reader.pos()));
  }
  for (uint64_t i = 0; i < n_layers; ++i) {
    auto layer = DeserializeLayer(reader);
    if (!layer.ok()) {
      return layer.status().WithContext(path + " (layer " +
                                        std::to_string(i) + ")");
    }
    ARIADNE_RETURN_NOT_OK(store.AppendLayer(std::move(layer).value()));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError(std::to_string(reader.remaining()) +
                              " trailing byte(s) in " + path +
                              " after layer data");
  }
  return store;
}

Result<ProvenanceStore> LoadV2(BinaryReader& reader, const std::string& path,
                               bool degraded) {
  ProvenanceStore store;
  if (degraded) {
    ARIADNE_ASSIGN_OR_RETURN(int64_t at_step, reader.ReadI64());
    ARIADNE_ASSIGN_OR_RETURN(std::string reason, reader.ReadString());
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_surviving, reader.ReadU64());
    if (at_step < 0 || n_surviving > reader.remaining() / 8) {
      return Status::ParseError("bad degraded-capture section in " + path +
                                " at offset " + std::to_string(reader.pos()));
    }
    std::vector<int> surviving;
    surviving.reserve(n_surviving);
    for (uint64_t i = 0; i < n_surviving; ++i) {
      ARIADNE_ASSIGN_OR_RETURN(int64_t rel, reader.ReadI64());
      surviving.push_back(static_cast<int>(rel));
    }
    store.MarkDegraded(static_cast<Superstep>(at_step), std::move(surviving),
                       std::move(reason));
  }
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_rels, reader.ReadU64());
  if (n_rels > reader.remaining() / 12) {
    return Status::ParseError("relation count " + std::to_string(n_rels) +
                              " exceeds remaining bytes in " + path +
                              " at offset " + std::to_string(reader.pos()));
  }
  for (uint64_t i = 0; i < n_rels; ++i) {
    ARIADNE_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    ARIADNE_ASSIGN_OR_RETURN(uint32_t arity, reader.ReadU32());
    store.AddRelation(name, static_cast<int>(arity));
  }
  {
    auto layer = DeserializeLayer(reader);
    if (!layer.ok()) return layer.status().WithContext(path);
    store.static_layer() = std::move(layer).value();
  }
  ARIADNE_ASSIGN_OR_RETURN(uint64_t n_layers, reader.ReadU64());
  // A layer costs >= 24 bytes (step + page count + blob length).
  if (n_layers > reader.remaining() / 24) {
    return Status::ParseError("layer count " + std::to_string(n_layers) +
                              " exceeds remaining bytes in " + path +
                              " at offset " + std::to_string(reader.pos()));
  }
  for (uint64_t i = 0; i < n_layers; ++i) {
    ARIADNE_ASSIGN_OR_RETURN(int64_t step, reader.ReadI64());
    ARIADNE_ASSIGN_OR_RETURN(uint64_t n_pages, reader.ReadU64());
    ARIADNE_ASSIGN_OR_RETURN(std::string blob, reader.ReadString());
    if (n_pages > blob.size() / storage::kPageWireHeaderBytes) {
      return Status::ParseError("page count " + std::to_string(n_pages) +
                                " exceeds layer blob in " + path +
                                " (layer " + std::to_string(i) + ")");
    }
    Layer layer;
    layer.step = static_cast<Superstep>(step);
    size_t offset = 0;
    for (uint64_t p = 0; p < n_pages; ++p) {
      auto page = storage::ParsePage(blob, &offset);
      if (!page.ok()) {
        return page.status().WithContext(path + " (layer " +
                                         std::to_string(i) + ")");
      }
      Status decoded = storage::DecodePage(*page, &layer);
      if (!decoded.ok()) {
        return decoded.WithContext(path + " (layer " + std::to_string(i) +
                                   ", page " + std::to_string(p) + ")");
      }
    }
    if (offset != blob.size()) {
      return Status::ParseError(std::to_string(blob.size() - offset) +
                                " trailing byte(s) in layer blob of " + path +
                                " (layer " + std::to_string(i) + ")");
    }
    ARIADNE_RETURN_NOT_OK(store.AppendLayer(std::move(layer)));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError(std::to_string(reader.remaining()) +
                              " trailing byte(s) in " + path +
                              " after layer data");
  }
  return store;
}

}  // namespace

Result<ProvenanceStore> ProvenanceStore::LoadFromFile(
    const std::string& path) {
  std::string data;
  {
    auto read = ReadFile(path);
    if (!read.ok()) return read.status();
    data = std::move(read).value();
  }
  return LoadFromBytes(std::move(data), path);
}

Result<ProvenanceStore> ProvenanceStore::LoadFromBytes(
    std::string data, const std::string& origin) {
  if (data.size() < 4) {
    return Status::ParseError("truncated provenance store image " + origin +
                              " (" + std::to_string(data.size()) + " bytes)");
  }
  uint32_t magic;
  std::memcpy(&magic, data.data(), sizeof(magic));
  if (magic == kStoreMagicV1) {
    BinaryReader reader(std::move(data));
    (void)reader.ReadU32();  // magic, just validated
    return LoadLegacyV1(reader, origin);
  }
  if (magic != kStoreMagicV2) {
    return Status::ParseError("bad provenance store magic in " + origin);
  }
  if (data.size() < kV2HeaderBytes) {
    return Status::ParseError("truncated provenance store header in " +
                              origin);
  }
  uint32_t flags;
  std::memcpy(&flags, data.data() + 4, sizeof(flags));
  if ((flags & ~kV2FlagDegraded) != 0) {
    return Status::ParseError("unsupported provenance store flags " +
                              std::to_string(flags) + " in " + origin);
  }
  uint64_t checksum;
  std::memcpy(&checksum, data.data() + 8, sizeof(checksum));
  const uint64_t actual = storage::Fnv1a(
      std::string_view(data).substr(kV2HeaderBytes));
  if (actual != checksum) {
    return Status::ParseError("provenance store checksum mismatch in " +
                              origin);
  }
  BinaryReader reader(std::move(data));
  (void)reader.ReadU32();  // magic
  (void)reader.ReadU32();  // flags
  (void)reader.ReadU64();  // checksum, just verified
  return LoadV2(reader, origin, (flags & kV2FlagDegraded) != 0);
}

}  // namespace ariadne
