#ifndef ARIADNE_PROVENANCE_COMPACT_VIEW_H_
#define ARIADNE_PROVENANCE_COMPACT_VIEW_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "provenance/store.h"

namespace ariadne {

/// The compact provenance representation of paper §3 (Figure 4) as a
/// browsable API: one node per input vertex, annotated with its relation
/// tables across all supersteps. Where the ProvenanceStore organizes
/// tuples by *layer* (for layered evaluation), this view re-groups them
/// by *vertex* — the shape a developer inspects when debugging a single
/// vertex's history ("what did vertex 42 do, and when?").
class CompactProvenance {
 public:
  /// Materializes the per-vertex view from `store` (loads spilled layers
  /// on demand; the view owns copies of the tuples).
  static Result<CompactProvenance> Build(ProvenanceStore* store);

  /// Vertices with at least one captured fact, ascending.
  std::vector<VertexId> Vertices() const;

  /// Tuples of `relation` at `vertex` (empty when absent). Tuples appear
  /// in capture (superstep) order.
  const std::vector<Tuple>& Table(VertexId vertex,
                                  const std::string& relation) const;

  /// Value history of a vertex: (superstep, value), ascending, from the
  /// stored `value` (or `prov-value`) relation.
  std::vector<std::pair<Superstep, Value>> ValueHistory(VertexId vertex) const;

  /// Supersteps the vertex was active in, ascending.
  std::vector<Superstep> ActiveSupersteps(VertexId vertex) const;

  /// The evolution chain (paper Fig 3): consecutive activation pairs.
  std::vector<std::pair<Superstep, Superstep>> Evolution(
      VertexId vertex) const;

  /// Peers this vertex sent messages to / received messages from, with
  /// the superstep of each exchange (message payloads elided).
  std::vector<std::pair<VertexId, Superstep>> SentTo(VertexId vertex) const;
  std::vector<std::pair<VertexId, Superstep>> ReceivedFrom(
      VertexId vertex) const;

  /// Human-readable single-vertex dump (the Figure 4 box).
  std::string Describe(VertexId vertex) const;

  size_t TotalBytes() const { return total_bytes_; }

 private:
  struct VertexTables {
    std::unordered_map<int, std::vector<Tuple>> by_relation;
  };

  const std::vector<Tuple>& RelTable(VertexId vertex, int rel) const;

  std::vector<StoredRelation> schema_;
  std::unordered_map<VertexId, VertexTables> vertices_;
  int value_rel_ = -1, superstep_rel_ = -1, evolution_rel_ = -1;
  int send_rel_ = -1, receive_rel_ = -1;
  size_t total_bytes_ = 0;
};

}  // namespace ariadne

#endif  // ARIADNE_PROVENANCE_COMPACT_VIEW_H_
