#include "provenance/compact_view.h"

#include <algorithm>

namespace ariadne {

Result<CompactProvenance> CompactProvenance::Build(ProvenanceStore* store) {
  CompactProvenance view;
  view.schema_ = store->schema();
  auto rel_id = [&](const char* a, const char* b = nullptr) {
    const int primary = store->RelId(a);
    if (primary >= 0 || b == nullptr) return primary;
    return store->RelId(b);
  };
  view.value_rel_ = rel_id("value", "prov-value");
  view.superstep_rel_ = rel_id("superstep");
  view.evolution_rel_ = rel_id("evolution");
  view.send_rel_ = rel_id("send-message", "prov-send");
  view.receive_rel_ = rel_id("receive-message");

  auto absorb = [&](const Layer& layer) {
    for (const auto& slice : layer.slices) {
      auto& table = view.vertices_[slice.vertex].by_relation[slice.rel];
      for (const Tuple& t : slice.tuples) {
        view.total_bytes_ += TupleByteSize(t);
        table.push_back(t);
      }
    }
  };
  absorb(store->static_data());
  for (int step = 0; step < store->num_layers(); ++step) {
    ARIADNE_ASSIGN_OR_RETURN(const Layer* layer, store->GetLayer(step));
    absorb(*layer);
  }
  return view;
}

std::vector<VertexId> CompactProvenance::Vertices() const {
  std::vector<VertexId> out;
  out.reserve(vertices_.size());
  for (const auto& [v, tables] : vertices_) out.push_back(v);
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<Tuple>& CompactProvenance::RelTable(VertexId vertex,
                                                      int rel) const {
  static const std::vector<Tuple> kEmpty;
  if (rel < 0) return kEmpty;
  auto it = vertices_.find(vertex);
  if (it == vertices_.end()) return kEmpty;
  auto jt = it->second.by_relation.find(rel);
  return jt == it->second.by_relation.end() ? kEmpty : jt->second;
}

const std::vector<Tuple>& CompactProvenance::Table(
    VertexId vertex, const std::string& relation) const {
  static const std::vector<Tuple> kEmpty;
  for (size_t r = 0; r < schema_.size(); ++r) {
    if (schema_[r].name == relation) {
      return RelTable(vertex, static_cast<int>(r));
    }
  }
  return kEmpty;
}

std::vector<std::pair<Superstep, Value>> CompactProvenance::ValueHistory(
    VertexId vertex) const {
  std::vector<std::pair<Superstep, Value>> out;
  // Stored as value(x, d, i) or prov-value(x, i, d): detect by column
  // kind (the superstep column is the integer one).
  for (const Tuple& t : RelTable(vertex, value_rel_)) {
    if (t.size() != 3) continue;
    if (value_rel_ >= 0 &&
        schema_[static_cast<size_t>(value_rel_)].name == "prov-value") {
      if (t[1].is_int()) {
        out.emplace_back(static_cast<Superstep>(t[1].AsInt()), t[2]);
      }
    } else if (t[2].is_int()) {
      out.emplace_back(static_cast<Superstep>(t[2].AsInt()), t[1]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<Superstep> CompactProvenance::ActiveSupersteps(
    VertexId vertex) const {
  std::vector<Superstep> out;
  for (const Tuple& t : RelTable(vertex, superstep_rel_)) {
    if (t.size() == 2 && t[1].is_int()) {
      out.push_back(static_cast<Superstep>(t[1].AsInt()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Superstep, Superstep>> CompactProvenance::Evolution(
    VertexId vertex) const {
  std::vector<std::pair<Superstep, Superstep>> out;
  for (const Tuple& t : RelTable(vertex, evolution_rel_)) {
    if (t.size() == 3 && t[1].is_int() && t[2].is_int()) {
      out.emplace_back(static_cast<Superstep>(t[1].AsInt()),
                       static_cast<Superstep>(t[2].AsInt()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<VertexId, Superstep>> CompactProvenance::SentTo(
    VertexId vertex) const {
  std::vector<std::pair<VertexId, Superstep>> out;
  for (const Tuple& t : RelTable(vertex, send_rel_)) {
    // send-message(x, y, m, i) or prov-send(x, i).
    if (t.size() == 4 && t[1].is_int() && t[3].is_int()) {
      out.emplace_back(t[1].AsInt(), static_cast<Superstep>(t[3].AsInt()));
    } else if (t.size() == 2 && t[1].is_int()) {
      out.emplace_back(-1, static_cast<Superstep>(t[1].AsInt()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<VertexId, Superstep>> CompactProvenance::ReceivedFrom(
    VertexId vertex) const {
  std::vector<std::pair<VertexId, Superstep>> out;
  for (const Tuple& t : RelTable(vertex, receive_rel_)) {
    if (t.size() == 4 && t[1].is_int() && t[3].is_int()) {
      out.emplace_back(t[1].AsInt(), static_cast<Superstep>(t[3].AsInt()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string CompactProvenance::Describe(VertexId vertex) const {
  std::string out = "vertex " + std::to_string(vertex) + "\n";
  const auto values = ValueHistory(vertex);
  if (!values.empty()) {
    out += "  values:";
    for (const auto& [step, value] : values) {
      out += " @" + std::to_string(step) + "=" + value.ToString();
    }
    out += "\n";
  }
  const auto active = ActiveSupersteps(vertex);
  if (!active.empty()) {
    out += "  active:";
    for (Superstep s : active) out += " " + std::to_string(s);
    out += "\n";
  }
  const auto sent = SentTo(vertex);
  if (!sent.empty()) {
    out += "  sent:";
    for (const auto& [peer, step] : sent) {
      out += " ->" + (peer >= 0 ? std::to_string(peer) : std::string("?")) +
             "@" + std::to_string(step);
    }
    out += "\n";
  }
  const auto received = ReceivedFrom(vertex);
  if (!received.empty()) {
    out += "  received:";
    for (const auto& [peer, step] : received) {
      out += " <-" + std::to_string(peer) + "@" + std::to_string(step);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ariadne
