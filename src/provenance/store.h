#ifndef ARIADNE_PROVENANCE_STORE_H_
#define ARIADNE_PROVENANCE_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "engine/types.h"
#include "graph/graph.h"
#include "pql/analysis.h"
#include "pql/relation.h"

namespace ariadne {

/// Schema entry of a stored provenance relation.
struct StoredRelation {
  std::string name;
  int arity = 0;
};

/// All tuples one vertex contributed to one relation within a layer.
struct LayerSlice {
  int rel = 0;  ///< index into ProvenanceStore schema
  VertexId vertex = 0;
  std::vector<Tuple> tuples;
};

/// One layer of the provenance graph (Definition 5.1): everything captured
/// during one superstep, in the compact per-vertex representation.
struct Layer {
  Superstep step = 0;
  std::vector<LayerSlice> slices;
  size_t byte_size = 0;

  void Add(int rel, VertexId vertex, std::vector<Tuple> tuples);

  /// Sorts slices into (rel, vertex) order. Capture wrappers call this
  /// before sealing a layer: multi-threaded capture appends slices in
  /// scheduling order, and canonicalizing makes the stored provenance —
  /// and its serialized bytes — identical for any engine thread count.
  void Canonicalize();
};

/// The captured provenance graph. Layers are appended in superstep order
/// during capture; a separate "static" segment holds superstep-independent
/// relations (e.g. the prov-edges copy of paper Query 11). When a memory
/// budget is set, sealed layers beyond the budget spill to disk (the
/// stand-in for the paper's asynchronous HDFS offload) and reload on
/// demand during layered evaluation.
class ProvenanceStore {
 public:
  ProvenanceStore() = default;

  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;
  ProvenanceStore(ProvenanceStore&&) = default;
  ProvenanceStore& operator=(ProvenanceStore&&) = default;

  // ---- Schema ----

  /// Registers (or finds) a stored relation; returns its id.
  int AddRelation(const std::string& name, int arity);
  int RelId(const std::string& name) const;  ///< -1 if absent
  const std::vector<StoredRelation>& schema() const { return schema_; }

  /// Schema view for Analyze() of offline queries.
  StoreSchema ToStoreSchema() const;

  // ---- Building (capture) ----

  /// Enables spilling: when in-memory layer bytes exceed `budget_bytes`,
  /// the oldest resident layers are written to `dir`.
  Status EnableSpill(std::string dir, size_t budget_bytes);

  Layer& static_layer() { return static_layer_; }

  /// Seals a layer (must have `layer.step == num_layers()`), then applies
  /// the spill policy.
  Status AppendLayer(Layer layer);

  // ---- Reading ----

  int num_layers() const { return static_cast<int>(layers_.size()); }

  /// The layer for superstep `step`, loading it from spill if necessary.
  /// The returned pointer is valid until the next GetLayer/AppendLayer.
  Result<const Layer*> GetLayer(int step);

  const Layer& static_data() const { return static_layer_; }

  /// Logical provenance size in bytes (resident + spilled + static) — the
  /// quantity in paper Tables 3 and 4.
  size_t TotalBytes() const;
  size_t InMemoryBytes() const;
  int64_t TotalTuples() const;
  int SpilledLayerCount() const;

  /// Serializes the whole store (schema + static + layers) / reloads it.
  Status SaveToFile(const std::string& path) const;
  static Result<ProvenanceStore> LoadFromFile(const std::string& path);

 private:
  struct LayerEntry {
    std::optional<Layer> resident;
    std::string spill_path;  ///< non-empty when spilled
    size_t byte_size = 0;    ///< logical size even when spilled
    Superstep step = 0;
  };

  Status SpillLayer(LayerEntry& entry);
  Result<Layer> LoadLayer(const LayerEntry& entry) const;
  Status ApplySpillPolicy(int keep_step = -1);

  std::vector<StoredRelation> schema_;
  Layer static_layer_;
  std::vector<LayerEntry> layers_;
  std::string spill_dir_;
  size_t spill_budget_ = 0;  ///< 0: spilling disabled
  bool spill_enabled_ = false;
};

/// Serialization helpers (also used by tests).
void SerializeLayer(const Layer& layer, BinaryWriter& writer);
Result<Layer> DeserializeLayer(BinaryReader& reader);

}  // namespace ariadne

#endif  // ARIADNE_PROVENANCE_STORE_H_
