#ifndef ARIADNE_PROVENANCE_STORE_H_
#define ARIADNE_PROVENANCE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "engine/types.h"
#include "pql/analysis.h"
#include "pql/relation.h"
#include "storage/layer.h"
#include "storage/layer_store.h"

namespace ariadne {

/// The captured provenance graph. Layers are appended in superstep order
/// during capture; a separate "static" segment holds superstep-independent
/// relations (e.g. the prov-edges copy of paper Query 11).
///
/// Layer storage is delegated to storage::LayerStore: with a spill
/// configuration, sealed layers are encoded into compressed columnar pages
/// and written behind by a background flusher (the stand-in for the
/// paper's asynchronous HDFS offload), decoded copies are evicted under a
/// byte budget, and reads are served resident -> page cache -> disk,
/// optionally restricted to a relation subset.
class ProvenanceStore {
 public:
  ProvenanceStore() : layers_(std::make_unique<storage::LayerStore>()) {}

  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;
  ProvenanceStore(ProvenanceStore&&) = default;
  ProvenanceStore& operator=(ProvenanceStore&&) = default;

  // ---- Schema ----

  /// Registers (or finds) a stored relation; returns its id.
  int AddRelation(const std::string& name, int arity);
  int RelId(const std::string& name) const;  ///< -1 if absent
  const std::vector<StoredRelation>& schema() const { return schema_; }

  /// Schema view for Analyze() of offline queries.
  StoreSchema ToStoreSchema() const;

  // ---- Building (capture) ----

  /// Enables spilling with default storage options: layers beyond
  /// `budget_bytes` of decoded bytes go to `dir` as compressed pages.
  /// Existing layers are flushed before the call returns.
  Status EnableSpill(std::string dir, size_t budget_bytes);

  /// Full-control variant of EnableSpill (thread count, page size,
  /// write-behind bound).
  Status ConfigureStorage(storage::LayerStoreOptions options);
  bool spill_enabled() const { return layers_->spill_enabled(); }

  Layer& static_layer() { return static_layer_; }

  /// Seals the layer for superstep `num_layers()`. With spill enabled the
  /// encode+write happens on the background flusher, so the superstep
  /// barrier is not held up (bounded by the write-behind backpressure).
  Status AppendLayer(Layer layer);

  /// Waits for all background writes to hit disk and re-enforces the
  /// memory budget; returns the first flush error (sticky). Call after
  /// capture and before relying on SpilledLayerCount or spill files.
  Status Flush();

  // ---- Reading ----

  int num_layers() const { return layers_->num_layers(); }

  /// The layer for superstep `step`, loading it from spill if necessary.
  /// The returned pointer is valid until the next GetLayer/AppendLayer.
  /// NOT safe for concurrent callers (the pointer is kept alive by a
  /// store member); concurrent readers use GetLayerRelations instead.
  Result<const Layer*> GetLayer(int step);

  /// Like GetLayer, but only the relations in `rels` are materialized
  /// (empty = all) — pages of other relations are never read or decoded.
  /// May return a relation superset when the full layer is already in
  /// memory. The shared_ptr keeps the data alive independently of the
  /// store's eviction decisions. Const and thread-safe: any number of
  /// concurrent readers (the serve scheduler's queries) may call this on
  /// one store.
  Result<std::shared_ptr<const Layer>> GetLayerRelations(
      int step, const std::vector<int>& rels) const;

  /// Asynchronous hint that `step` (restricted to `rels`) is about to be
  /// read. Layered evaluation issues these direction-aware. Best-effort.
  void PrefetchLayer(int step, const std::vector<int>& rels) const;

  const Layer& static_data() const { return static_layer_; }

  /// Logical provenance size in bytes (resident + spilled + static) — the
  /// quantity in paper Tables 3 and 4.
  size_t TotalBytes() const;
  size_t InMemoryBytes() const;
  int64_t TotalTuples() const;
  int SpilledLayerCount() const { return layers_->SpilledCount(); }

  /// Flusher / page-cache / read-path counters of the storage subsystem.
  storage::StorageStats storage_stats() const { return layers_->stats(); }

  /// Serializes the whole store (schema + static + layers) / reloads it.
  /// Writes the page-compressed "APV2" image; the bytes are identical for
  /// any spill configuration or engine thread count. LoadFromFile also
  /// accepts the legacy row-major "APV1" format.
  Status SaveToFile(const std::string& path) const;
  static Result<ProvenanceStore> LoadFromFile(const std::string& path);

  /// The framed APV2 image as bytes / its inverse. SaveToFile and
  /// LoadFromFile are thin wrappers; checkpoints embed the image bytes in
  /// the engine's program-state blob (`origin` names the byte source in
  /// parse errors, the way LoadFromFile uses the path).
  Result<std::string> SerializeToString() const;
  static Result<ProvenanceStore> LoadFromBytes(std::string data,
                                               const std::string& origin);

  // ---- Degraded capture (DESIGN.md §2.4) ----

  /// Records that capture stopped being complete at `at_step`: from that
  /// superstep on, only `surviving_rels` (store relation ids; empty =
  /// capture fully off) keep being captured. Persisted in the APV2 image
  /// (header flags bit 0), so eval refusal survives save/load.
  void MarkDegraded(Superstep at_step, std::vector<int> surviving_rels,
                    std::string reason);
  bool degraded() const { return degraded_at_ >= 0; }
  Superstep degraded_at() const { return degraded_at_; }
  const std::vector<int>& surviving_relations() const {
    return surviving_rels_;
  }
  const std::string& degraded_reason() const { return degraded_reason_; }

  /// Storage-layer half of degradation: permanently stop spilling and
  /// keep unflushed layers resident (forwarded to LayerStore).
  void EnterStorageDegradedMode() { layers_->EnterDegradedMode(); }
  Status storage_flush_error() const { return layers_->flush_error(); }

 private:
  std::vector<StoredRelation> schema_;
  Layer static_layer_;
  /// unique_ptr keeps ProvenanceStore movable: background flush tasks
  /// hold a LayerStore `this`, which therefore must not move.
  std::unique_ptr<storage::LayerStore> layers_;
  /// Keeps the layer returned by the last GetLayer alive (the raw-pointer
  /// contract above), independent of store eviction.
  std::shared_ptr<const Layer> loaded_;
  /// Degraded-capture metadata; degraded_at_ < 0 means a complete capture.
  Superstep degraded_at_ = -1;
  std::vector<int> surviving_rels_;
  std::string degraded_reason_;
};

}  // namespace ariadne

#endif  // ARIADNE_PROVENANCE_STORE_H_
