#ifndef ARIADNE_PQL_PARSER_H_
#define ARIADNE_PQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "pql/ast.h"

namespace ariadne {

/// Parses PQL text into a Program.
///
/// Grammar (paper §4.2 surface syntax):
///   program    := rule+
///   rule       := head ("<-" | ":-") literal ("," literal)* "."
///   head       := ident "(" head_term ("," head_term)* ")"
///   head_term  := AGGR "(" var ")" | term
///   literal    := ["!"|"not"] ident "(" term ("," term)* ")"
///               | term cmp_op term
///   term       := additive over primary; primary := var | number |
///                 string | $param | "(" term ")"
///
/// Lower-case identifiers are variables inside argument positions;
/// numbers/strings are constants; `$name` is a parameter bound via
/// Program::BindParameters. AGGR is one of COUNT/SUM/MIN/MAX/AVG
/// (case-insensitive).
Result<Program> ParseProgram(const std::string& text);

/// Recovering variant: syntax errors are reported to `sink` (with source
/// spans) and parsing resumes at the next '.', so a single pass surfaces
/// every malformed rule. Returns the rules that did parse (possibly
/// none); callers should check `sink.has_errors()`.
Program ParseProgram(const std::string& text, DiagnosticSink& sink);

/// Convenience: parse a single rule.
Result<Rule> ParseRule(const std::string& text);

}  // namespace ariadne

#endif  // ARIADNE_PQL_PARSER_H_
