#include "pql/relation.h"

#include <algorithm>

namespace ariadne {

size_t TupleHash::operator()(const Tuple& t) const {
  size_t seed = t.size();
  for (const Value& v : t) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleByteSize(const Tuple& t) {
  size_t bytes = 8;  // row overhead
  for (const Value& v : t) bytes += v.ByteSize();
  return bytes;
}

bool Relation::Insert(Tuple t) {
  // Duplicate check without storing: hash the candidate via the probe
  // sentinel, then commit only when new.
  probe_ = &t;
  if (dedup_.find(kProbeIdx) != dedup_.end()) {
    probe_ = nullptr;
    return false;
  }
  probe_ = nullptr;
  tuples_.push_back(std::move(t));
  const uint32_t idx = static_cast<uint32_t>(tuples_.size() - 1);
  dedup_.insert(idx);
  byte_size_ += TupleByteSize(tuples_.back());
  ++version_;
  // Extend any live indexes so Probe results stay complete.
  for (auto& [col, index] : indexes_) {
    if (index.indexed_up_to == idx) {
      index.buckets[tuples_.back()[static_cast<size_t>(col)]].push_back(idx);
      index.indexed_up_to = idx + 1;
    }
  }
  return true;
}

bool Relation::Contains(const Tuple& t) const {
  auto* self = const_cast<Relation*>(this);
  self->probe_ = &t;
  const bool found = self->dedup_.find(kProbeIdx) != self->dedup_.end();
  self->probe_ = nullptr;
  return found;
}

const std::vector<uint32_t>& Relation::Probe(int col, const Value& v) {
  static const std::vector<uint32_t> kEmpty;
  ColumnIndex& index = indexes_[col];
  while (index.indexed_up_to < tuples_.size()) {
    const uint32_t i = static_cast<uint32_t>(index.indexed_up_to);
    index.buckets[tuples_[i][static_cast<size_t>(col)]].push_back(i);
    ++index.indexed_up_to;
  }
  auto it = index.buckets.find(v);
  return it == index.buckets.end() ? kEmpty : it->second;
}

bool Relation::ReplaceAll(std::vector<Tuple> tuples) {
  // Deduplicate the input so the no-change check compares sets.
  std::unordered_set<Tuple, TupleHash> incoming(tuples.begin(), tuples.end());
  if (incoming.size() == tuples_.size()) {
    bool same = true;
    for (const Tuple& t : incoming) {
      if (!Contains(t)) {
        same = false;
        break;
      }
    }
    if (same) return false;
  }
  Clear();
  for (const Tuple& t : incoming) Insert(t);
  return true;
}

void Relation::RemoveIf(const std::function<bool(const Tuple&)>& pred) {
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  for (Tuple& t : tuples_) {
    if (!pred(t)) kept.push_back(std::move(t));
  }
  Clear();
  for (Tuple& t : kept) Insert(std::move(t));
}

void Relation::Clear() {
  dedup_.clear();
  tuples_.clear();
  indexes_.clear();
  byte_size_ = 0;
  ++version_;
  ++epoch_;
}

std::vector<std::string> Relation::ToSortedStrings() const {
  std::vector<std::string> out;
  out.reserve(tuples_.size());
  for (const Tuple& t : tuples_) out.push_back(TupleToString(t));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ariadne
